//! BSSR — the bulk SkySR algorithm (§5, Algorithm 1) with its four
//! optimisation techniques.
//!
//! BSSR finds all skyline sequenced routes in a single branch-and-bound
//! search: a priority queue `Q_b` of partial routes is repeatedly expanded
//! by the modified Dijkstra algorithm (`mdijkstra`), which discovers the
//! next semantically matching PoIs; completed routes maintain the minimal
//! set `S` whose members define the pruning thresholds (Definition 5.4).
//! Correctness rests on Lemmas 5.1–5.5: a route whose length score reaches
//! the threshold for its (minimum-possible) semantic score can never
//! contribute to the final skyline.
//!
//! The optimisations, each independently toggleable via [`BssrConfig`] for
//! the §7.3 ablations:
//! 1. **NNinit** ([`nninit`]) seeds `S` before the search;
//! 2. the **arranged priority queue** ([`queue`]) dequeues large/cheap
//!    routes first;
//! 3. **possible minimum distances** ([`bounds`]) tighten the lower bound;
//! 4. **on-the-fly caching** ([`cache`]) re-uses modified-Dijkstra results.

pub mod bounds;
pub mod cache;
mod mdijkstra;
pub mod nninit;
pub mod queue;
pub mod repair;
pub mod warm;

use std::time::Instant;

use skysr_graph::DijkstraWorkspace;

pub use bounds::LowerBoundMode;
pub use queue::QueuePolicy;
pub use repair::{RepairOutcome, RepairResult, RepairStats};

use crate::bssr::cache::SearchCache;
use crate::bssr::mdijkstra::{mdijkstra_step, Scratch, StepEnv};
use crate::bssr::queue::RouteQueue;
use crate::context::QueryContext;
use crate::dominance::SkylineSet;
use crate::error::QueryError;
use crate::prepared::PreparedQuery;
use crate::query::SkySrQuery;
use crate::route::{PartialRoute, SkylineRoute};
use crate::stats::{EngineProfile, QueryStats};

/// Which optimisations are active.
///
/// `Hash` because the configuration is part of `skysr-service`'s result
/// cache key: runs under different configurations must not share entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BssrConfig {
    /// Optimisation 1: NNinit initial search (§5.3.1).
    pub use_init_search: bool,
    /// Optimisation 2: route-queue arrangement (§5.3.2).
    pub queue_policy: QueuePolicy,
    /// Optimisation 3: minimum-distance lower bounds (§5.3.3).
    pub lower_bound: LowerBoundMode,
    /// Optimisation 4: on-the-fly caching (§5.3.4).
    pub use_cache: bool,
}

impl Default for BssrConfig {
    fn default() -> BssrConfig {
        BssrConfig {
            use_init_search: true,
            queue_policy: QueuePolicy::Proposed,
            lower_bound: LowerBoundMode::Full,
            use_cache: true,
        }
    }
}

impl BssrConfig {
    /// "BSSR w/o Opt" from Figure 3: the plain branch-and-bound search
    /// with a conventional distance-based queue and no other optimisation.
    pub fn unoptimized() -> BssrConfig {
        BssrConfig {
            use_init_search: false,
            queue_policy: QueuePolicy::DistanceBased,
            lower_bound: LowerBoundMode::Off,
            use_cache: false,
        }
    }
}

/// Warm-start seed material for one run (see [`warm`]).
///
/// All variants preserve exactness: seeds are validated against the target
/// query, rescored under its own positions, and only ever *tighten* the
/// pruning thresholds. Unusable routes are skipped, so foreign material
/// degrades to a cold run.
#[derive(Clone, Copy, Debug, Default)]
pub enum WarmSeeds<'a> {
    /// Cold run.
    #[default]
    None,
    /// A (k−1)-position prefix skyline, or any same-start full-length
    /// skyline (ancestor-category reuse) — routes are completed/validated
    /// by [`warm::seed_prefix_routes`].
    PrefixOrFull(&'a [SkylineRoute]),
    /// A skyline of the ⟨c₂, …, c_k⟩ suffix from the same start, prepended
    /// one leg by [`warm::seed_suffix_routes`].
    Suffix(&'a [SkylineRoute]),
}

/// Receiver for provisional Pareto points during an observed run (anytime
/// streaming). Called once per distinct route, in the order the search
/// proves them; the route is a skyline member at call time, so it is
/// dominated-or-equal by the final exact skyline.
pub type ProgressSink<'s> = &'s mut dyn FnMut(&SkylineRoute);

/// How many queue pops pass between deadline polls during a run with
/// [`Bssr::set_deadline`] armed. See the poll site in
/// [`Bssr::run_prepared_observed`] for the rationale.
pub const DEADLINE_CHECK_EVERY: u32 = 16;

/// Tracks which skyline members an observed run has already reported, so
/// each provisional point reaches the sink exactly once even though the
/// skyline is re-diffed after every step.
#[derive(Default)]
struct Emitter {
    seen_version: u64,
    emitted: Vec<SkylineRoute>,
}

impl Emitter {
    fn flush(&mut self, skyline: &SkylineSet, sink: &mut dyn FnMut(&SkylineRoute)) {
        if skyline.version() == self.seen_version {
            return;
        }
        self.seen_version = skyline.version();
        for route in skyline.routes() {
            if !self.emitted.iter().any(|e| e == route) {
                sink(route);
                self.emitted.push(route.clone());
            }
        }
    }
}

/// Result of one BSSR run.
#[derive(Clone, Debug)]
pub struct BssrResult {
    /// The skyline sequenced routes, sorted by ascending length.
    pub routes: Vec<SkylineRoute>,
    /// Instrumentation for the ablation experiments.
    pub stats: QueryStats,
    /// The run's deadline (see [`Bssr::set_deadline`]) expired before the
    /// search drained its queue: `routes` is the mutually non-dominated
    /// partial skyline proven so far — every member a genuine valid route
    /// dominated-or-equal by the exact skyline — but the set may be
    /// incomplete. Always `false` for runs without a deadline.
    pub truncated: bool,
}

/// Reusable engine state (Dijkstra workspace + modified-Dijkstra buffers)
/// detached from any graph borrow.
///
/// A long-lived worker serving a *dynamic* graph re-pins a fresh snapshot
/// whenever a weight epoch publishes, which means rebuilding its [`Bssr`]
/// (the engine borrows the pinned graph). The workspaces are tens of
/// megabytes on city-scale graphs and already paged in; recycling them
/// through [`Bssr::with_scratch`] / [`Bssr::into_scratch`] makes the
/// rebuild allocation-free.
pub struct BssrScratch {
    ws: DijkstraWorkspace,
    scratch: Scratch,
    profile: EngineProfile,
}

impl BssrScratch {
    /// Scratch sized for graphs with up to `n` vertices (grown on demand if
    /// a larger graph shows up).
    pub fn new(n: usize) -> BssrScratch {
        BssrScratch {
            ws: DijkstraWorkspace::new(n),
            scratch: Scratch::new(n),
            profile: EngineProfile::default(),
        }
    }

    /// Cumulative engine-work profile over every query this scratch has
    /// served — across all the engines that recycled it. The telemetry
    /// layer's "how much raw graph work has this worker done" gauge.
    pub fn profile(&self) -> EngineProfile {
        self.profile
    }
}

impl std::fmt::Debug for BssrScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BssrScratch").field("profile", &self.profile).finish_non_exhaustive()
    }
}

/// The BSSR query engine. Holds reusable scratch space, so construct once
/// and run many queries.
pub struct Bssr<'g> {
    ctx: QueryContext<'g>,
    cfg: BssrConfig,
    ws: DijkstraWorkspace,
    scratch: Scratch,
    profile: EngineProfile,
    deadline: Option<Instant>,
}

impl<'g> Bssr<'g> {
    /// Engine with the default (fully optimised) configuration.
    pub fn new(ctx: &QueryContext<'g>) -> Bssr<'g> {
        Bssr::with_config(ctx, BssrConfig::default())
    }

    /// Engine with an explicit configuration (ablations).
    pub fn with_config(ctx: &QueryContext<'g>, cfg: BssrConfig) -> Bssr<'g> {
        let n = ctx.graph.num_vertices();
        Bssr::with_scratch(ctx, cfg, BssrScratch::new(n))
    }

    /// Engine recycling previously allocated scratch (see [`BssrScratch`]).
    pub fn with_scratch(ctx: &QueryContext<'g>, cfg: BssrConfig, scratch: BssrScratch) -> Bssr<'g> {
        let n = ctx.graph.num_vertices();
        let BssrScratch { mut ws, scratch: mut sc, profile } = scratch;
        ws.ensure(n);
        sc.ensure(n);
        Bssr { ctx: *ctx, cfg, ws, scratch: sc, profile, deadline: None }
    }

    /// Releases the engine's scratch for reuse by a successor engine.
    pub fn into_scratch(self) -> BssrScratch {
        BssrScratch { ws: self.ws, scratch: self.scratch, profile: self.profile }
    }

    /// Active configuration.
    pub fn config(&self) -> &BssrConfig {
        &self.cfg
    }

    /// Sets (or clears) the anytime cutoff for subsequent runs.
    ///
    /// With a deadline armed, a run that reaches it mid-search stops
    /// expanding, returns the partial skyline proven so far, and marks the
    /// result [`BssrResult::truncated`] — degraded mode instead of a
    /// timeout. Exactness is unaffected when the search finishes first;
    /// the deadline is re-checked every [`DEADLINE_CHECK_EVERY`] queue
    /// pops, so the overshoot is a bounded handful of expansions. The
    /// setting persists across runs until changed.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Cumulative engine-work profile (carried through the recycled
    /// scratch; see [`BssrScratch::profile`]).
    pub fn profile(&self) -> EngineProfile {
        self.profile
    }

    /// Folds one run's stats into the cumulative profile.
    pub(crate) fn absorb_profile(&mut self, stats: &QueryStats) {
        self.profile.absorb(&stats.profile());
    }

    /// Validates and runs `query`.
    pub fn run(&mut self, query: &SkySrQuery) -> Result<BssrResult, QueryError> {
        let pq = PreparedQuery::prepare(&self.ctx, query)?;
        Ok(self.run_prepared(&pq))
    }

    /// [`Bssr::run`] reporting each provisional Pareto point to `sink` the
    /// moment the search proves it (anytime streaming). Every emitted
    /// route is a genuine valid sequenced route that was a skyline member
    /// when emitted, so it is dominated-or-equal by some member of the
    /// final exact skyline; each distinct route is emitted at most once.
    pub fn run_observed(
        &mut self,
        query: &SkySrQuery,
        sink: ProgressSink<'_>,
    ) -> Result<BssrResult, QueryError> {
        let pq = PreparedQuery::prepare(&self.ctx, query)?;
        Ok(self.run_prepared_observed(&pq, WarmSeeds::None, Some(sink)))
    }

    /// [`Bssr::run_with_seeds`] with a provisional-point sink (see
    /// [`Bssr::run_observed`]). Warm seeds that survive domination are
    /// emitted too — they are valid routes like any other member.
    pub fn run_with_seeds_observed(
        &mut self,
        query: &SkySrQuery,
        prefix: &[SkylineRoute],
        sink: ProgressSink<'_>,
    ) -> Result<BssrResult, QueryError> {
        let pq = PreparedQuery::prepare(&self.ctx, query)?;
        let seeds =
            if prefix.is_empty() { WarmSeeds::None } else { WarmSeeds::PrefixOrFull(prefix) };
        Ok(self.run_prepared_observed(&pq, seeds, Some(sink)))
    }

    /// [`Bssr::run_with_suffix_seeds`] with a provisional-point sink (see
    /// [`Bssr::run_observed`]).
    pub fn run_with_suffix_seeds_observed(
        &mut self,
        query: &SkySrQuery,
        suffix: &[SkylineRoute],
        sink: ProgressSink<'_>,
    ) -> Result<BssrResult, QueryError> {
        let pq = PreparedQuery::prepare(&self.ctx, query)?;
        Ok(self.run_prepared_observed(&pq, WarmSeeds::Suffix(suffix), Some(sink)))
    }

    /// Validates and runs `query` warm-started from a cached skyline of its
    /// (k−1)-position prefix — or any same-start full-length skyline, e.g.
    /// an ancestor-category variant's (semantic cache reuse; see [`warm`]).
    ///
    /// The result is score-equivalent to a cold [`Bssr::run`] — the seeds
    /// only tighten the pruning thresholds, exactly as NNinit does. Routes
    /// in `prefix` that do not fit the query are ignored, so passing a
    /// skyline from an unrelated query degrades to a cold run.
    pub fn run_with_seeds(
        &mut self,
        query: &SkySrQuery,
        prefix: &[SkylineRoute],
    ) -> Result<BssrResult, QueryError> {
        let pq = PreparedQuery::prepare(&self.ctx, query)?;
        Ok(self.run_prepared_warm(&pq, prefix))
    }

    /// Validates and runs `query` warm-started from a cached skyline of its
    /// *suffix* ⟨c₂, …, c_k⟩ over the same start: each suffix route is
    /// prepended one shortest-path leg through a first-position match
    /// ([`warm::seed_suffix_routes`]). Exactness is preserved the same way
    /// as every other warm start — seeds are genuine valid routes that only
    /// tighten the thresholds.
    pub fn run_with_suffix_seeds(
        &mut self,
        query: &SkySrQuery,
        suffix: &[SkylineRoute],
    ) -> Result<BssrResult, QueryError> {
        let pq = PreparedQuery::prepare(&self.ctx, query)?;
        Ok(self.run_prepared_seeded(&pq, WarmSeeds::Suffix(suffix)))
    }

    /// Runs a pre-compiled query (lets callers reuse the preparation across
    /// engines, e.g. when comparing configurations).
    pub fn run_prepared(&mut self, pq: &PreparedQuery) -> BssrResult {
        self.run_prepared_seeded(pq, WarmSeeds::None)
    }

    /// [`Bssr::run_prepared`] with warm-start seeds from a prefix (or
    /// full-length) skyline; an empty slice is a cold run.
    pub fn run_prepared_warm(&mut self, pq: &PreparedQuery, prefix: &[SkylineRoute]) -> BssrResult {
        let seeds =
            if prefix.is_empty() { WarmSeeds::None } else { WarmSeeds::PrefixOrFull(prefix) };
        self.run_prepared_seeded(pq, seeds)
    }

    /// [`Bssr::run_prepared`] with explicit warm-seed material.
    pub fn run_prepared_seeded(&mut self, pq: &PreparedQuery, seeds: WarmSeeds<'_>) -> BssrResult {
        self.run_prepared_observed(pq, seeds, None)
    }

    /// The full engine: [`Bssr::run_prepared_seeded`] with an optional
    /// provisional-point sink. The sink is flushed at every point the
    /// skyline can grow — after NNinit, after warm seeding, and after
    /// every multi-criteria Dijkstra step — by diffing the skyline
    /// against the routes already emitted (cheap: skylines are small and
    /// [`SkylineSet::version`] gates the diff to actual insertions).
    pub fn run_prepared_observed(
        &mut self,
        pq: &PreparedQuery,
        seeds: WarmSeeds<'_>,
        mut sink: Option<ProgressSink<'_>>,
    ) -> BssrResult {
        let t0 = Instant::now();
        let mut stats = QueryStats::default();
        let k = pq.len();

        // A position nothing can match ⇒ no sequenced route exists.
        if pq.unmatchable_position().is_some() {
            stats.total_time = t0.elapsed();
            return BssrResult { routes: Vec::new(), stats, truncated: false };
        }

        let ctx = self.ctx;
        let mut skyline = SkylineSet::new();
        let mut emitter = Emitter::default();

        if self.cfg.use_init_search {
            nninit::nninit(&ctx, pq, &mut self.ws, &mut skyline, &mut stats);
        }
        if let Some(sink) = sink.as_deref_mut() {
            emitter.flush(&skyline, sink);
        }

        // Warm start: seed completions of a cached skyline *before* the
        // minimum-distance bounds are computed, so the tightened threshold
        // also shrinks the bound-computation search radius.
        match seeds {
            WarmSeeds::None => {}
            WarmSeeds::PrefixOrFull(routes) => {
                warm::seed_prefix_routes(&ctx, pq, routes, &mut self.ws, &mut skyline, &mut stats);
            }
            WarmSeeds::Suffix(routes) => {
                warm::seed_suffix_routes(&ctx, pq, routes, &mut self.ws, &mut skyline, &mut stats);
            }
        }
        if let Some(sink) = sink.as_deref_mut() {
            emitter.flush(&skyline, sink);
        }

        let bounds = if self.cfg.lower_bound == LowerBoundMode::Off {
            bounds::MinDistBounds::disabled(k)
        } else {
            bounds::MinDistBounds::compute(
                &ctx,
                pq,
                skyline.threshold_zero(),
                self.cfg.lower_bound,
                &mut self.ws,
                &mut stats,
            )
        };

        // Lemma 5.5 is sound for a position iff no other position can match
        // PoIs from the same category trees (see mdijkstra docs).
        let mut lemma55 = vec![true; k];
        for (i, flag) in lemma55.iter_mut().enumerate() {
            for j in 0..k {
                if i != j && pq.positions[i].trees.iter().any(|t| pq.positions[j].trees.contains(t))
                {
                    *flag = false;
                }
            }
        }

        // σ-suffix: the best similarity product positions i..k can still
        // contribute. `1 − sim_acc(R) × sigma_suffix[|R|]` is then the
        // *achievable* minimum semantic of any completion of R — tighter
        // than the paper's `s(R)` whenever a remaining position has no
        // perfect match (best_sim < 1), and every threshold probe below
        // uses it (sound by the Lemma 5.3 argument: no completion can
        // score below the achievable minimum).
        let mut sigma_suffix = vec![1.0f64; k + 1];
        for i in (0..k).rev() {
            sigma_suffix[i] = pq.positions[i].best_sim() * sigma_suffix[i + 1];
        }

        let env = StepEnv {
            ctx: &ctx,
            pq,
            bounds: &bounds,
            lemma55: &lemma55,
            sigma_suffix: &sigma_suffix,
            use_cache: self.cfg.use_cache,
        };
        let mut cache = SearchCache::new();
        let mut queue = RouteQueue::new(self.cfg.queue_policy);

        // Algorithm 1, line 4: search position 1 matches from the start.
        mdijkstra_step(
            &env,
            &mut self.scratch,
            &mut cache,
            &PartialRoute::empty(),
            pq.start,
            &mut queue,
            &mut skyline,
            &mut stats,
            true,
        );
        if let Some(sink) = sink.as_deref_mut() {
            emitter.flush(&skyline, sink);
        }

        // Algorithm 1, lines 5–9. The deadline is polled every
        // `DEADLINE_CHECK_EVERY` pops: `Instant::now` per iteration would
        // be measurable on hit-dominated workloads, and a handful of
        // overshot expansions cannot hurt correctness — the skyline only
        // tightens.
        let mut truncated = false;
        // Start one shy of the period so the very first pop polls: an
        // already-expired deadline must truncate before any expansion.
        let mut pops_since_check = DEADLINE_CHECK_EVERY - 1;
        while let Some(rd) = queue.pop() {
            if let Some(deadline) = self.deadline {
                pops_since_check += 1;
                if pops_since_check >= DEADLINE_CHECK_EVERY {
                    pops_since_check = 0;
                    if Instant::now() >= deadline {
                        truncated = true;
                        break;
                    }
                }
            }
            // Re-check against the (possibly improved) threshold before
            // spending a search on a stale route.
            if rd.length() >= skyline.threshold(env.min_semantic(&rd)) {
                stats.threshold_prunes += 1;
                continue;
            }
            let source = rd.last_poi().expect("queued routes contain at least one PoI");
            mdijkstra_step(
                &env,
                &mut self.scratch,
                &mut cache,
                &rd,
                source,
                &mut queue,
                &mut skyline,
                &mut stats,
                false,
            );
            if let Some(sink) = sink.as_deref_mut() {
                emitter.flush(&skyline, sink);
            }
        }

        stats.total_time = t0.elapsed();
        self.profile.absorb(&stats.profile());
        BssrResult { routes: skyline.into_routes(), stats, truncated }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::PaperExample;
    use skysr_graph::{Cost, VertexId};

    fn expect_paper_skyline(routes: &[SkylineRoute]) {
        assert_eq!(routes.len(), 2, "got {routes:?}");
        // Sorted by length: ⟨p6, p9, p8⟩ (11, 0.5) then ⟨p10, p12, p13⟩ (13, 0).
        assert_eq!(routes[0].pois, vec![VertexId(6), VertexId(9), VertexId(8)]);
        assert_eq!(routes[0].length, Cost::new(11.0));
        assert_eq!(routes[0].semantic, 0.5);
        assert_eq!(routes[1].pois, vec![VertexId(10), VertexId(12), VertexId(13)]);
        assert_eq!(routes[1].length, Cost::new(13.0));
        assert_eq!(routes[1].semantic, 0.0);
    }

    #[test]
    fn default_config_reproduces_table_4_final_state() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let mut bssr = Bssr::new(&ctx);
        let result = bssr.run(&ex.query()).unwrap();
        expect_paper_skyline(&result.routes);
    }

    #[test]
    fn every_ablation_returns_the_same_skyline() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let configs = [
            BssrConfig::default(),
            BssrConfig::unoptimized(),
            BssrConfig { use_init_search: false, ..BssrConfig::default() },
            BssrConfig { queue_policy: QueuePolicy::DistanceBased, ..BssrConfig::default() },
            BssrConfig { lower_bound: LowerBoundMode::Off, ..BssrConfig::default() },
            BssrConfig { lower_bound: LowerBoundMode::Semantic, ..BssrConfig::default() },
            BssrConfig { use_cache: false, ..BssrConfig::default() },
        ];
        for cfg in configs {
            let mut bssr = Bssr::with_config(&ctx, cfg);
            let result = bssr.run(&ex.query()).unwrap();
            expect_paper_skyline(&result.routes);
        }
    }

    #[test]
    fn observed_run_streams_each_provisional_point_once_dominated_by_final() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let mut bssr = Bssr::new(&ctx);
        let mut provisional: Vec<SkylineRoute> = Vec::new();
        let result = bssr.run_observed(&ex.query(), &mut |r| provisional.push(r.clone())).unwrap();
        expect_paper_skyline(&result.routes);
        assert!(!provisional.is_empty(), "the search proves points before completion");
        for (i, p) in provisional.iter().enumerate() {
            assert!(!provisional[..i].contains(p), "route streamed twice: {p:?}");
            assert!(
                result
                    .routes
                    .iter()
                    .any(|f| f.length.get() <= p.length.get() && f.semantic <= p.semantic),
                "provisional point not dominated-or-equal by the final skyline: {p:?}"
            );
        }
        // The final members themselves were all streamed on the way.
        for f in &result.routes {
            assert!(provisional.contains(f), "final member never streamed: {f:?}");
        }
        // Observing changes nothing about the answer.
        let unobserved = bssr.run(&ex.query()).unwrap();
        assert_eq!(unobserved.routes, result.routes);
    }

    #[test]
    fn expired_deadline_truncates_to_a_valid_partial_skyline() {
        use std::time::Duration;
        let ex = PaperExample::new();
        let ctx = ex.context();
        // Unoptimized config: no NNinit and no pruning bounds, so the queue
        // is guaranteed non-empty when the deadline is polled.
        let mut bssr = Bssr::with_config(&ctx, BssrConfig::unoptimized());
        let exact = bssr.run(&ex.query()).unwrap();
        assert!(!exact.truncated);

        bssr.set_deadline(Some(Instant::now() - Duration::from_millis(1)));
        let partial = bssr.run(&ex.query()).unwrap();
        assert!(partial.truncated, "expired deadline must truncate the run");
        // Every partial member is a genuine route dominated-or-equal by the
        // exact skyline, and the partial is itself mutually non-dominated.
        for p in &partial.routes {
            assert!(
                exact
                    .routes
                    .iter()
                    .any(|f| f.length.get() <= p.length.get() && f.semantic <= p.semantic),
                "partial route not dominated-or-equal by exact skyline: {p:?}"
            );
            assert!(
                !partial.routes.iter().any(|q| q != p
                    && q.length.get() <= p.length.get()
                    && q.semantic <= p.semantic
                    && (q.length.get() < p.length.get() || q.semantic < p.semantic)),
                "partial skyline contains a dominated member: {p:?}"
            );
        }

        // A generous deadline changes nothing, and clearing it disarms.
        bssr.set_deadline(Some(Instant::now() + Duration::from_secs(60)));
        let relaxed = bssr.run(&ex.query()).unwrap();
        assert!(!relaxed.truncated);
        assert_eq!(relaxed.routes, exact.routes);
        bssr.set_deadline(None);
        let cleared = bssr.run(&ex.query()).unwrap();
        assert!(!cleared.truncated);
        assert_eq!(cleared.routes, exact.routes);
    }

    #[test]
    fn stats_reflect_optimisations() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let with = Bssr::new(&ctx).run(&ex.query()).unwrap().stats;
        let without =
            Bssr::with_config(&ctx, BssrConfig::unoptimized()).run(&ex.query()).unwrap().stats;
        // The initial search must shrink the first step's search space.
        assert!(with.first_mdijkstra_weight_sum <= without.first_mdijkstra_weight_sum);
        assert_eq!(with.init_routes, 2);
        assert_eq!(without.init_routes, 0);
        // The optimised run prunes routes the plain run must enqueue.
        assert!(with.routes_enqueued <= without.routes_enqueued);
    }

    #[test]
    fn scratch_profile_accumulates_across_recycled_engines() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let mut engine = Bssr::with_scratch(&ctx, BssrConfig::default(), BssrScratch::new(16));
        let r1 = engine.run(&ex.query()).unwrap();
        let after_one = engine.profile();
        assert_eq!(after_one, r1.stats.profile(), "first run seeds the tally");
        assert!(after_one.settled > 0 && after_one.heap_pushes > 0);
        // Recycle the scratch into a fresh engine: the tally must carry
        // over and keep growing.
        let scratch = engine.into_scratch();
        assert_eq!(scratch.profile(), after_one);
        let mut engine = Bssr::with_scratch(&ctx, BssrConfig::default(), scratch);
        engine.run(&ex.query()).unwrap();
        let after_two = engine.profile();
        assert!(after_two.settled >= after_one.settled * 2);
        assert_eq!(after_two.mdijkstra_runs, after_one.mdijkstra_runs * 2);
    }

    #[test]
    fn single_position_query() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let gift = ex.forest.by_name("Gift Shop").unwrap();
        let mut bssr = Bssr::new(&ctx);
        let result = bssr.run(&SkySrQuery::new(ex.vq, [gift])).unwrap();
        // Nearest gift shop: p8 via p1/p6–p9 (7 + 3 + 1.5 = 11.5 or
        // 7.5 + 2 + 1.5 = 11). Nearest hobby (sem 0.5): p7 at 12 — longer
        // AND semantically worse → dominated. Skyline = the perfect route.
        assert_eq!(result.routes.len(), 1);
        assert_eq!(result.routes[0].pois, vec![VertexId(8)]);
        assert_eq!(result.routes[0].length, Cost::new(11.0));
        assert_eq!(result.routes[0].semantic, 0.0);
    }

    #[test]
    fn unmatchable_query_returns_empty() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        // Food tree has no PoIs for a query on a fresh forest category? Use
        // a sequence with an A&E position twice: matchable. Instead craft a
        // forest category with no PoIs: "Shop & Service" root itself has
        // PoIs (gift/hobby), so use a new forest-less approach: query a
        // category whose tree has PoIs but an impossible requirement.
        use skysr_category::Requirement;
        let gift = ex.forest.by_name("Gift Shop").unwrap();
        let hobby = ex.forest.by_name("Hobby Shop").unwrap();
        let shop = ex.forest.by_name("Shop & Service").unwrap();
        // Require Shop tree but exclude the whole Shop subtree → matches
        // nothing.
        let req = Requirement::category(gift).but_not(shop);
        let q = SkySrQuery::with_positions(
            ex.vq,
            [crate::query::PositionSpec::Requirement(req), hobby.into()],
        );
        let mut bssr = Bssr::new(&ctx);
        let result = bssr.run(&q).unwrap();
        assert!(result.routes.is_empty());
    }

    #[test]
    fn same_tree_positions_remain_exact() {
        // Both positions draw from the Shop tree: Lemma 5.5 is disabled for
        // them and the result must still be the exact skyline. Query:
        // ⟨Gift, Hobby⟩ from vq.
        let ex = PaperExample::new();
        let ctx = ex.context();
        let gift = ex.forest.by_name("Gift Shop").unwrap();
        let hobby = ex.forest.by_name("Hobby Shop").unwrap();
        let q = SkySrQuery::new(ex.vq, [gift, hobby]);
        let mut bssr = Bssr::new(&ctx);
        let fast = bssr.run(&q).unwrap();
        let slow = Bssr::with_config(&ctx, BssrConfig::unoptimized()).run(&q).unwrap();
        assert_eq!(fast.routes, slow.routes);
        // All returned routes have distinct PoIs.
        for r in &fast.routes {
            let mut pois = r.pois.clone();
            pois.sort_unstable();
            pois.dedup();
            assert_eq!(pois.len(), r.pois.len());
        }
        assert!(!fast.routes.is_empty());
    }

    #[test]
    fn start_on_a_matching_poi() {
        // Start the query on p2 (an Asian restaurant) asking for
        // ⟨Asian, A&E⟩: p2 itself must be usable at distance 0.
        let ex = PaperExample::new();
        let ctx = ex.context();
        let asian = ex.forest.by_name("Asian Restaurant").unwrap();
        let arts = ex.forest.by_name("Arts & Entertainment").unwrap();
        let mut bssr = Bssr::new(&ctx);
        let result = bssr.run(&SkySrQuery::new(ex.p(2), [asian, arts])).unwrap();
        assert!(result.routes.iter().any(|r| r.pois[0] == ex.p(2) && r.length == Cost::new(4.0)));
    }

    #[test]
    fn warm_start_from_prefix_skyline_matches_cold_run() {
        use crate::route::equivalent_skylines;
        let ex = PaperExample::new();
        let ctx = ex.context();
        let full = ex.query();
        let mut bssr = Bssr::new(&ctx);
        // Every proper prefix ⟨c1..cj⟩ warm-starts the (j+1)-position
        // query. A given prefix may contribute nothing (NNinit can already
        // dominate all its completions — warm_seed_routes counts only
        // *inserted* seeds), but across the chain at least one must.
        let mut any_seeded = false;
        for j in 1..full.len() {
            let prefix_q = SkySrQuery::with_positions(full.start, full.sequence[..j].to_vec());
            let next_q = SkySrQuery::with_positions(full.start, full.sequence[..=j].to_vec());
            let prefix = bssr.run(&prefix_q).unwrap().routes;
            let cold = bssr.run(&next_q).unwrap();
            let warm = bssr.run_with_seeds(&next_q, &prefix).unwrap();
            assert!(
                equivalent_skylines(&warm.routes, &cold.routes),
                "prefix len {j}: warm {:?} vs cold {:?}",
                warm.routes,
                cold.routes
            );
            any_seeded |= warm.stats.warm_seed_routes > 0;
            // The seeds can only tighten thresholds: never more enqueued
            // work than the cold run.
            assert!(warm.stats.routes_enqueued <= cold.stats.routes_enqueued);
        }
        assert!(any_seeded, "some prefix must seed surviving routes");
    }

    #[test]
    fn suffix_warm_start_matches_cold_run() {
        use crate::route::equivalent_skylines;
        let ex = PaperExample::new();
        let ctx = ex.context();
        let full = ex.query();
        let mut bssr = Bssr::new(&ctx);
        let suffix_q = SkySrQuery::with_positions(full.start, full.sequence[1..].to_vec());
        let suffix = bssr.run(&suffix_q).unwrap().routes;
        let cold = bssr.run(&full).unwrap();
        let warm = bssr.run_with_suffix_seeds(&full, &suffix).unwrap();
        assert!(
            equivalent_skylines(&warm.routes, &cold.routes),
            "suffix warm {:?} vs cold {:?}",
            warm.routes,
            cold.routes
        );
        assert!(warm.stats.routes_enqueued <= cold.stats.routes_enqueued);
        // A foreign suffix (wrong positions entirely) degrades to cold.
        let gift = ex.forest.by_name("Gift Shop").unwrap();
        let foreign = bssr.run(&SkySrQuery::new(ex.vq, [gift])).unwrap().routes;
        let degraded = bssr.run_with_suffix_seeds(&full, &foreign).unwrap();
        assert!(equivalent_skylines(&degraded.routes, &cold.routes));
    }

    #[test]
    fn warm_start_with_foreign_prefix_stays_exact() {
        use crate::route::equivalent_skylines;
        let ex = PaperExample::new();
        let ctx = ex.context();
        // A prefix skyline computed for a *different* first position (Gift
        // instead of Hobby) from the same start: its semantic scores are
        // wrong for this query, so the seeder must rescore the routes
        // under the query's own positions — the result must still be the
        // exact skyline.
        let gift = ex.forest.by_name("Gift Shop").unwrap();
        let hobby = ex.forest.by_name("Hobby Shop").unwrap();
        let mut bssr = Bssr::new(&ctx);
        let foreign = bssr.run(&SkySrQuery::new(ex.vq, [gift])).unwrap().routes;
        let q = SkySrQuery::new(ex.vq, [hobby, gift]);
        let cold = bssr.run(&q).unwrap();
        let warm = bssr.run_with_seeds(&q, &foreign).unwrap();
        assert!(
            equivalent_skylines(&warm.routes, &cold.routes),
            "warm {:?} vs cold {:?}",
            warm.routes,
            cold.routes
        );
    }

    #[test]
    fn queue_policy_affects_visits_not_results() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let proposed = Bssr::new(&ctx).run(&ex.query()).unwrap();
        let distance = Bssr::with_config(
            &ctx,
            BssrConfig { queue_policy: QueuePolicy::DistanceBased, ..BssrConfig::default() },
        )
        .run(&ex.query())
        .unwrap();
        assert_eq!(proposed.routes, distance.routes);
    }
}
