//! The `skysr-d` network layer: serve the query engine over TCP.
//!
//! Three pieces, all std-only (the runtime vendors no async stack):
//!
//! * [`wire`] — the length-prefixed binary protocol: frame layout,
//!   version handshake, incremental [`wire::FrameReader`], and typed
//!   [`ProtocolError`]s instead of panics on adversarial bytes;
//! * [`Server`] — the daemon's event loop: a single poll thread over
//!   nonblocking sockets that accepts connections, decodes frames, feeds
//!   the [`Service`](crate::Service) through its non-blocking
//!   `try_submit` (parking submissions when the bounded queue pushes
//!   back), and pumps each in-flight query's provisional
//!   [`Progress`](wire::Frame::Progress) points and
//!   [`Final`](wire::Frame::Final) answer back out;
//! * [`RemoteService`] — the client: implements the same
//!   [`QueryService`](crate::QueryService) trait as the in-process
//!   [`Service`](crate::Service), so every driver in this crate (replay,
//!   bench, examples) runs against either transport unchanged.
//!
//! The anytime-streaming contract holds across the wire: every
//! `Progress` route the daemon emits is a genuine valid route that is
//! dominated-or-equal by the final exact skyline, so a client that stops
//! listening at its deadline (`StreamTicket::wait_deadline`) holds a
//! sound — merely possibly incomplete — partial answer, flagged
//! `approximate`.

pub mod client;
pub mod server;
pub mod wire;

pub use client::RemoteService;
pub use server::{ServeBackend, Server, ServerConfig};
pub use wire::{
    DatasetFingerprint, Frame, FrameReader, ProtocolError, FEATURE_MULTI_TENANT, FEATURE_STREAMING,
    PROTOCOL_V1, PROTOCOL_VERSION,
};

use crate::context::ServiceContext;

impl DatasetFingerprint {
    /// Fingerprints the dataset (and current weight epoch) a context
    /// serves — what [`Server`] advertises in its handshake and a
    /// verifying client compares its shadow dataset against.
    pub fn of(ctx: &ServiceContext) -> DatasetFingerprint {
        DatasetFingerprint {
            vertices: ctx.graph().num_vertices() as u64,
            arcs: ctx.graph().num_arcs() as u64,
            pois: ctx.pois().num_pois() as u64,
            epoch: ctx.current_epoch(),
        }
    }
}
