//! Immutable CSR (compressed sparse row) road network.
//!
//! The paper's graph `G = (V ∪ P, E)` is stored as one vertex id space with
//! a packed adjacency array: `offsets[v] .. offsets[v + 1]` indexes into
//! parallel `targets` / `weights` arrays. Undirected graphs store both arc
//! directions so traversal never branches on directedness.
//!
//! Since the dynamic-weights work, the CSR arrays live behind an `Arc` and
//! a [`RoadNetwork`] value is a cheap *view*: shared topology plus an
//! optional sparse [`WeightOverlay`] that
//! reweights individual arcs. Views are produced by
//! [`WeightEpoch`](crate::epoch::WeightEpoch), which publishes batched
//! weight deltas as copy-on-write overlays with monotonically increasing
//! epoch ids; a search holding a view is pinned to its epoch and never
//! observes a concurrent update.

use std::sync::Arc;

use crate::epoch::{EpochId, WeightOverlay};
use crate::geometry::GeoPoint;
use crate::weight::Cost;
use crate::{builder::InputEdge, VertexId};

/// The shared, truly immutable CSR arrays (topology + base weights).
#[derive(Debug)]
pub(crate) struct CsrStorage {
    pub(crate) offsets: Vec<u32>,
    pub(crate) targets: Vec<VertexId>,
    pub(crate) weights: Vec<f64>,
    pub(crate) coords: Vec<Option<GeoPoint>>,
    pub(crate) directed: bool,
    pub(crate) num_input_edges: usize,
}

/// An immutable weighted road network (a cheap, `Arc`-backed view).
///
/// Cloning shares the underlying CSR arrays; two clones may differ only in
/// the weight overlay (and therefore the [`epoch`](RoadNetwork::epoch))
/// they carry.
#[derive(Clone, Debug)]
pub struct RoadNetwork {
    storage: Arc<CsrStorage>,
    overlay: Option<Arc<WeightOverlay>>,
}

impl RoadNetwork {
    /// Packs input edges into CSR form. Undirected graphs get both arcs.
    pub(crate) fn from_edges(
        coords: Vec<Option<GeoPoint>>,
        edges: &[InputEdge],
        directed: bool,
    ) -> RoadNetwork {
        let n = coords.len();
        let arcs = if directed { edges.len() } else { edges.len() * 2 };
        let mut degree = vec![0u32; n + 1];
        for e in edges {
            degree[e.from.index() + 1] += 1;
            if !directed {
                degree[e.to.index() + 1] += 1;
            }
        }
        for i in 0..n {
            degree[i + 1] += degree[i];
        }
        let offsets = degree.clone();
        let mut cursor = degree;
        let mut targets = vec![VertexId(0); arcs];
        let mut weights = vec![0.0f64; arcs];
        let mut place = |cursor: &mut Vec<u32>, from: VertexId, to: VertexId, w: f64| {
            let slot = cursor[from.index()] as usize;
            targets[slot] = to;
            weights[slot] = w;
            cursor[from.index()] += 1;
        };
        for e in edges {
            place(&mut cursor, e.from, e.to, e.weight);
            if !directed {
                place(&mut cursor, e.to, e.from, e.weight);
            }
        }
        RoadNetwork {
            storage: Arc::new(CsrStorage {
                offsets,
                targets,
                weights,
                coords,
                directed,
                num_input_edges: edges.len(),
            }),
            overlay: None,
        }
    }

    /// A view over the same storage with `overlay` applied. An empty
    /// overlay still tags the view with the overlay's epoch.
    pub(crate) fn with_overlay(&self, overlay: Arc<WeightOverlay>) -> RoadNetwork {
        RoadNetwork { storage: Arc::clone(&self.storage), overlay: Some(overlay) }
    }

    /// The weight overlay this view carries, if any.
    pub(crate) fn overlay(&self) -> Option<&Arc<WeightOverlay>> {
        self.overlay.as_ref()
    }

    /// Whether `other` is a view over the same CSR storage (same topology
    /// and base weights, possibly different overlays).
    pub fn same_storage(&self, other: &RoadNetwork) -> bool {
        Arc::ptr_eq(&self.storage, &other.storage)
    }

    /// The weight epoch this view is pinned to. A freshly built network is
    /// at [`EpochId::BASE`]; views produced by
    /// [`WeightEpoch::pin`](crate::epoch::WeightEpoch::pin) carry the
    /// publishing epoch.
    #[inline]
    pub fn epoch(&self) -> EpochId {
        self.overlay.as_ref().map_or(EpochId::BASE, |o| o.epoch())
    }

    /// Number of vertices (|V| + |P| in the paper's terms).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.storage.coords.len()
    }

    /// Number of *input* edges (each undirected edge counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.storage.num_input_edges
    }

    /// Number of stored arcs (2·|E| for undirected graphs).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.storage.targets.len()
    }

    /// Whether this network is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.storage.directed
    }

    /// Out-neighbours of `v` with arc costs (overlay weights applied).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Cost)> + '_ {
        let lo = self.storage.offsets[v.index()] as usize;
        let hi = self.storage.offsets[v.index() + 1] as usize;
        // One range probe per call; the per-arc work below is a cursor
        // comparison against an (almost always empty) sub-slice.
        let (oa, ow) = match &self.overlay {
            Some(o) => o.range(lo as u32, hi as u32),
            None => (&[][..], &[][..]),
        };
        let mut cursor = 0usize;
        self.storage.targets[lo..hi].iter().zip(&self.storage.weights[lo..hi]).enumerate().map(
            move |(i, (&t, &w))| {
                let slot = (lo + i) as u32;
                while cursor < oa.len() && oa[cursor] < slot {
                    cursor += 1;
                }
                let w = if cursor < oa.len() && oa[cursor] == slot { ow[cursor] } else { w };
                (t, Cost::new(w))
            },
        )
    }

    /// The endpoints and current (overlay-applied) weight of arc `slot`.
    ///
    /// Arc slots index the packed adjacency array (`0..num_arcs()`); the
    /// tail vertex is recovered by binary search over the offsets. Used by
    /// workload drivers to sample edges for weight updates.
    ///
    /// # Panics
    /// If `slot >= num_arcs()`.
    pub fn arc(&self, slot: usize) -> (VertexId, VertexId, Cost) {
        assert!(slot < self.num_arcs(), "arc slot {slot} out of range");
        let from = self.storage.offsets.partition_point(|&o| o as usize <= slot) - 1;
        let w = match self.overlay.as_ref().and_then(|o| o.weight_of(slot as u32)) {
            Some(w) => w,
            None => self.storage.weights[slot],
        };
        (VertexId(from as u32), self.storage.targets[slot], Cost::new(w))
    }

    /// The *base* (epoch-0) weight of arc `slot`, ignoring any overlay.
    pub fn base_arc_weight(&self, slot: usize) -> Cost {
        Cost::new(self.storage.weights[slot])
    }

    /// The effective (overlay-applied) weight of arc `slot`, without the
    /// endpoint recovery [`RoadNetwork::arc`] pays for.
    #[inline]
    pub(crate) fn arc_weight(&self, slot: u32) -> f64 {
        match self.overlay.as_ref().and_then(|o| o.weight_of(slot)) {
            Some(w) => w,
            None => self.storage.weights[slot as usize],
        }
    }

    /// A *new storage* with this view's effective weights plus `extra`
    /// folded into the base weight array — the base-CSR snapshot merge
    /// behind [`WeightEpoch::compact`](crate::epoch::WeightEpoch::compact).
    /// O(|arcs| + |V|) copy; topology and coordinates are duplicated so the
    /// old storage (and every pinned view over it) stays untouched.
    pub(crate) fn with_weights_folded(&self, extra: &WeightOverlay) -> RoadNetwork {
        let s = &self.storage;
        let mut weights = s.weights.clone();
        if let Some(o) = &self.overlay {
            for (slot, w) in o.entries() {
                weights[slot as usize] = w;
            }
        }
        for (slot, w) in extra.entries() {
            weights[slot as usize] = w;
        }
        RoadNetwork {
            storage: Arc::new(CsrStorage {
                offsets: s.offsets.clone(),
                targets: s.targets.clone(),
                weights,
                coords: s.coords.clone(),
                directed: s.directed,
                num_input_edges: s.num_input_edges,
            }),
            overlay: None,
        }
    }

    /// Arc slots of every stored arc `from → to` (several for parallel
    /// edges, empty if the arc does not exist).
    pub(crate) fn arcs_between(&self, from: VertexId, to: VertexId) -> Vec<u32> {
        let lo = self.storage.offsets[from.index()] as usize;
        let hi = self.storage.offsets[from.index() + 1] as usize;
        (lo..hi).filter(|&s| self.storage.targets[s] == to).map(|s| s as u32).collect()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.storage.offsets[v.index() + 1] - self.storage.offsets[v.index()]) as usize
    }

    /// Coordinates of `v`, if present.
    #[inline]
    pub fn coords_of(&self, v: VertexId) -> Option<GeoPoint> {
        self.storage.coords.get(v.index()).copied().flatten()
    }

    /// All vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.num_vertices() as u32).map(VertexId)
    }

    /// Sum of all arc weights under this view's overlay; a rough "size" of
    /// the road network used by search-space instrumentation.
    pub fn total_weight(&self) -> f64 {
        let base: f64 = self.storage.weights.iter().sum();
        match &self.overlay {
            None => base,
            Some(o) => {
                base + o
                    .entries()
                    .map(|(slot, w)| w - self.storage.weights[slot as usize])
                    .sum::<f64>()
            }
        }
    }

    /// Approximate heap footprint in bytes (CSR arrays + coordinates +
    /// overlay), counted once per storage regardless of how many views
    /// share it.
    pub fn heap_bytes(&self) -> usize {
        self.storage.offsets.len() * std::mem::size_of::<u32>()
            + self.storage.targets.len() * std::mem::size_of::<VertexId>()
            + self.storage.weights.len() * std::mem::size_of::<f64>()
            + self.storage.coords.len() * std::mem::size_of::<Option<GeoPoint>>()
            + self.overlay.as_ref().map_or(0, |o| o.heap_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::epoch::{WeightDelta, WeightEpoch};

    fn line(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..n).map(|_| b.add_vertex()).collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1], 1.0);
        }
        b.build()
    }

    #[test]
    fn csr_degrees_and_counts() {
        let g = line(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_arcs(), 8);
        assert_eq!(g.degree(VertexId(0)), 1);
        assert_eq!(g.degree(VertexId(2)), 2);
        assert_eq!(g.epoch(), EpochId::BASE);
    }

    #[test]
    fn neighbors_yield_costs() {
        let g = line(3);
        let n: Vec<_> = g.neighbors(VertexId(1)).collect();
        assert_eq!(n.len(), 2);
        for (_, c) in n {
            assert_eq!(c, Cost::new(1.0));
        }
    }

    #[test]
    fn isolated_vertex_has_no_neighbors() {
        let mut b = GraphBuilder::new();
        b.add_vertex();
        let g = b.build();
        assert_eq!(g.neighbors(VertexId(0)).count(), 0);
        assert_eq!(g.degree(VertexId(0)), 0);
    }

    #[test]
    fn parallel_edges_are_preserved() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex();
        let v1 = b.add_vertex();
        b.add_edge(v0, v1, 1.0);
        b.add_edge(v0, v1, 3.0);
        let g = b.build();
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn total_weight_counts_arcs() {
        let g = line(3); // two edges of weight 1 stored in both directions
        assert_eq!(g.total_weight(), 4.0);
    }

    #[test]
    fn self_loop_supported() {
        let mut b = GraphBuilder::new();
        let v = b.add_vertex();
        b.add_edge(v, v, 5.0);
        let g = b.build();
        // Undirected self loop stores two arcs.
        assert_eq!(g.degree(v), 2);
    }

    #[test]
    fn heap_bytes_positive() {
        assert!(line(10).heap_bytes() > 0);
    }

    #[test]
    fn clones_share_storage() {
        let g = line(4);
        let h = g.clone();
        assert!(g.same_storage(&h));
    }

    #[test]
    fn arc_recovers_endpoints_and_weight() {
        let g = line(3); // arcs: 0→1, 1→0, 1→2, 2→1
        let mut seen = Vec::new();
        for s in 0..g.num_arcs() {
            let (from, to, w) = g.arc(s);
            assert_eq!(w, Cost::new(1.0));
            seen.push((from.0, to.0));
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
    }

    #[test]
    fn overlaid_view_changes_weights_and_totals() {
        let g = line(3);
        let epochs = WeightEpoch::new(g.clone());
        epochs.publish(&[WeightDelta::new(VertexId(0), VertexId(1), 7.0)]);
        let pinned = epochs.pin();
        // Both directions of the undirected edge are reweighted.
        assert_eq!(pinned.neighbors(VertexId(0)).next().unwrap().1, Cost::new(7.0));
        let back: Vec<_> = pinned.neighbors(VertexId(1)).collect();
        assert!(back.contains(&(VertexId(0), Cost::new(7.0))));
        assert!(back.contains(&(VertexId(2), Cost::new(1.0))));
        assert_eq!(pinned.total_weight(), 7.0 + 7.0 + 1.0 + 1.0);
        // The base view is untouched.
        assert_eq!(g.total_weight(), 4.0);
        assert_eq!(g.neighbors(VertexId(0)).next().unwrap().1, Cost::new(1.0));
        // Base weights stay visible through the pinned view too.
        for s in 0..pinned.num_arcs() {
            assert_eq!(pinned.base_arc_weight(s), Cost::new(1.0));
        }
    }
}
