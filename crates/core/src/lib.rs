//! SkySR — skyline sequenced route queries (the paper's contribution).
//!
//! Given a start vertex and an ordered list of PoI category requirements,
//! a SkySR query (Definition 4.2) returns every sequenced route that is not
//! dominated in the (route length, semantic score) plane. This crate
//! implements:
//!
//! * the query model: [`PoiTable`], [`QueryContext`], [`query::SkySrQuery`],
//!   routes and scores ([`route`]), dominance and minimal skyline sets
//!   ([`dominance`]);
//! * **BSSR**, the bulk SkySR algorithm of §5 ([`bssr`]) with all four
//!   optimisation techniques (NNinit, arranged priority queue, possible
//!   minimum distances, on-the-fly caching), each independently toggleable
//!   for the ablation experiments;
//! * the competitors used in §7: iterated optimal-sequenced-route search
//!   with the Dijkstra-based solution ([`osr`]) and the PNE approach
//!   ([`pne`]), wrapped into exact skyline baselines ([`baseline`]);
//! * an exhaustive oracle for testing ([`naive`]);
//! * the §6 variations: destination-constrained SkySR and unordered skyline
//!   trip planning ([`variants`]), multi-category PoIs and complex category
//!   requirements (built into [`PoiTable`] / [`prepared`]);
//! * the running example of Figure 1 / §5.5 as a reusable fixture
//!   ([`paper_example`]).

pub mod baseline;
pub mod bssr;
pub mod context;
pub mod dominance;
pub mod error;
pub mod naive;
pub mod osr;
pub mod paper_example;
pub mod pne;
pub mod poi;
pub mod prepared;
pub mod query;
pub mod route;
pub mod stats;
pub mod variants;

pub use context::QueryContext;
pub use error::QueryError;
pub use poi::PoiTable;
pub use prepared::PreparedQuery;
pub use query::{CanonicalPosition, PositionSpec, SkySrQuery};
pub use route::SkylineRoute;
pub use stats::{EngineProfile, QueryStats};
