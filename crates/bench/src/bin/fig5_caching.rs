//! Regenerates Figure 5: on-the-fly caching effect on Dijkstra executions.
fn main() {
    let cfg = skysr_bench::ExpConfig::from_env();
    let datasets = cfg.datasets();
    skysr_bench::experiments::fig5(&cfg, &datasets);
}
