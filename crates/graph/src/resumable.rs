//! Resumable (incremental) Dijkstra — the nearest-neighbour stream used by
//! the PNE baseline.
//!
//! PNE (Sharifzadeh et al., the paper's \[16\]) repeatedly asks "give me the
//! *k*-th nearest PoI of category c from vertex u" with increasing k. A
//! [`ResumableDijkstra`] keeps its heap and distance map alive between
//! calls, so each `next_settled` pays only the incremental frontier
//! expansion. Distances live in a hash map (not a |V| array) because many
//! streams are alive simultaneously during a PNE run.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::csr::RoadNetwork;
use crate::fxhash::FxHashMap;
use crate::stats::SearchStats;
use crate::weight::Cost;
use crate::VertexId;

/// An incrementally advancing Dijkstra search.
pub struct ResumableDijkstra<'g> {
    graph: &'g RoadNetwork,
    dist: FxHashMap<u32, f64>,
    settled: FxHashMap<u32, f64>,
    heap: BinaryHeap<Reverse<(Cost, VertexId)>>,
    stats: SearchStats,
}

impl<'g> ResumableDijkstra<'g> {
    /// Starts a search rooted at `source`.
    pub fn new(graph: &'g RoadNetwork, source: VertexId) -> ResumableDijkstra<'g> {
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((Cost::ZERO, source)));
        let mut dist = FxHashMap::default();
        dist.insert(source.0, 0.0);
        ResumableDijkstra {
            graph,
            dist,
            settled: FxHashMap::default(),
            heap,
            stats: SearchStats::default(),
        }
    }

    /// Settles and returns the next-closest unsettled vertex, or `None`
    /// when the reachable component is exhausted.
    pub fn next_settled(&mut self) -> Option<(VertexId, Cost)> {
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if self.settled.contains_key(&u.0) {
                continue;
            }
            if self.dist.get(&u.0).is_some_and(|&best| best < d.get()) {
                continue;
            }
            self.settled.insert(u.0, d.get());
            self.stats.settled += 1;
            for (v, w) in self.graph.neighbors(u) {
                self.stats.relaxed += 1;
                self.stats.weight_sum += w.get();
                if self.settled.contains_key(&v.0) {
                    continue;
                }
                let nd = d + w;
                let slot = self.dist.entry(v.0).or_insert(f64::INFINITY);
                if nd.get() < *slot {
                    *slot = nd.get();
                    self.heap.push(Reverse((nd, v)));
                    self.stats.pushed += 1;
                }
            }
            return Some((u, d));
        }
        None
    }

    /// Advances until `pred` accepts a settled vertex; returns it.
    pub fn next_matching<F: FnMut(VertexId) -> bool>(
        &mut self,
        mut pred: F,
    ) -> Option<(VertexId, Cost)> {
        while let Some((v, d)) = self.next_settled() {
            if pred(v) {
                return Some((v, d));
            }
        }
        None
    }

    /// Distance of an already settled vertex.
    pub fn settled_distance(&self, v: VertexId) -> Option<Cost> {
        self.settled.get(&v.0).copied().map(Cost::new)
    }

    /// Number of vertices settled so far.
    pub fn num_settled(&self) -> usize {
        self.settled.len()
    }

    /// Accumulated search statistics.
    pub fn stats(&self) -> SearchStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::dijkstra::{dijkstra, DijkstraWorkspace};

    fn grid3x3() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..9).map(|_| b.add_vertex()).collect();
        for r in 0..3 {
            for c in 0..3 {
                let i = r * 3 + c;
                if c + 1 < 3 {
                    b.add_edge(v[i], v[i + 1], 1.0);
                }
                if r + 1 < 3 {
                    b.add_edge(v[i], v[i + 3], 1.0);
                }
            }
        }
        b.build()
    }

    #[test]
    fn settles_in_nondecreasing_order() {
        let g = grid3x3();
        let mut rd = ResumableDijkstra::new(&g, VertexId(0));
        let mut last = Cost::ZERO;
        let mut count = 0;
        while let Some((_, d)) = rd.next_settled() {
            assert!(d >= last);
            last = d;
            count += 1;
        }
        assert_eq!(count, 9);
    }

    #[test]
    fn agrees_with_batch_dijkstra() {
        let g = grid3x3();
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        dijkstra(&g, &mut ws, VertexId(4));
        let mut rd = ResumableDijkstra::new(&g, VertexId(4));
        while rd.next_settled().is_some() {}
        for v in g.vertices() {
            assert_eq!(rd.settled_distance(v), ws.distance(v), "vertex {v:?}");
        }
    }

    #[test]
    fn next_matching_skips_non_matches() {
        let g = grid3x3();
        let mut rd = ResumableDijkstra::new(&g, VertexId(0));
        // First vertex with id >= 6 by distance is 6 (dist 2).
        let (v, d) = rd.next_matching(|v| v.0 >= 6).unwrap();
        assert_eq!(v, VertexId(6));
        assert_eq!(d, Cost::new(2.0));
        // Stream resumes after the match.
        let (v2, _) = rd.next_matching(|v| v.0 >= 6).unwrap();
        assert!(v2.0 >= 6 && v2 != v);
    }

    #[test]
    fn exhausted_stream_returns_none() {
        let mut b = GraphBuilder::new();
        b.add_vertex();
        let g = b.build();
        let mut rd = ResumableDijkstra::new(&g, VertexId(0));
        assert_eq!(rd.next_settled(), Some((VertexId(0), Cost::ZERO)));
        assert_eq!(rd.next_settled(), None);
        assert_eq!(rd.next_settled(), None);
        assert_eq!(rd.num_settled(), 1);
    }
}
