//! Dataset selection shared by the workload commands (`replay`, `bench`,
//! `serve`): either an explicit dataset FILE, or a generation recipe
//! (`--preset`/`--scale`/`--seed`).

use skysr_data::codec;
use skysr_data::dataset::{Dataset, DatasetSpec, Preset};

use crate::args::Args;

/// Parses an optional typed flag with a default.
pub fn parse_flag<T: std::str::FromStr>(
    args: &mut Args,
    name: &str,
    default: T,
) -> Result<T, String> {
    match args.optional(name) {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("bad --{name}")),
    }
}

/// Loads a dataset file, mapping errors to a CLI-friendly message.
pub fn load(path: &str) -> Result<Dataset, String> {
    codec::load_dataset(path).map_err(|e| format!("cannot load {path}: {e}"))
}

/// Shared dataset selection of the workload commands: either an explicit
/// FILE, or a generation recipe.
pub struct CityArgs {
    /// An explicit dataset file, exclusive with the recipe flags.
    pub file: Option<String>,
    /// Preset of the generated city.
    pub preset: Preset,
    /// Optional down/up-scale factor of the preset.
    pub scale: Option<f64>,
    /// Generation (and workload) seed.
    pub seed: u64,
}

/// Consumes the dataset-selection arguments.
pub fn dataset_args(args: &mut Args) -> Result<CityArgs, String> {
    let file = args.positional_opt();
    let preset_arg = args.optional("preset");
    let scale_arg = args.optional("scale");
    if file.is_some() && (preset_arg.is_some() || scale_arg.is_some()) {
        return Err(
            "--preset/--scale describe the generated city and conflict with a dataset FILE \
             argument"
                .into(),
        );
    }
    let preset = parse_preset(preset_arg.as_deref().unwrap_or("cal-small"))?;
    let scale: Option<f64> =
        scale_arg.map(|s| s.parse().map_err(|_| "bad --scale".to_string())).transpose()?;
    let seed: u64 = parse_flag(args, "seed", 7)?;
    Ok(CityArgs { file, preset, scale, seed })
}

/// Resolves [`CityArgs`] into a dataset: load the named file, or generate
/// from the recipe.
pub fn load_or_generate(city: &CityArgs) -> Result<Dataset, String> {
    match &city.file {
        Some(f) => load(f),
        None => {
            let mut dspec = DatasetSpec::preset(city.preset).seed(city.seed);
            if let Some(s) = city.scale {
                dspec = dspec.scale(s);
            }
            eprintln!("generating {} ...", dspec.name);
            Ok(dspec.generate())
        }
    }
}

/// Rejects sequence lengths the dataset's category forest cannot serve.
pub fn check_seq_len(dataset: &Dataset, seq_len: usize) -> Result<(), String> {
    let populated = dataset.populated_trees();
    if seq_len > populated {
        return Err(format!(
            "--seq-len {seq_len} exceeds the dataset's {populated} populated category trees \
             (workload positions must come from distinct trees)"
        ));
    }
    Ok(())
}

/// Parses a preset name.
pub fn parse_preset(s: &str) -> Result<Preset, String> {
    Ok(match s {
        "tokyo" => Preset::Tokyo,
        "nyc" => Preset::Nyc,
        "cal" => Preset::Cal,
        "tokyo-small" => Preset::TokyoSmall,
        "nyc-small" => Preset::NycSmall,
        "cal-small" => Preset::CalSmall,
        _ => return Err(format!("unknown preset {s:?}")),
    })
}
