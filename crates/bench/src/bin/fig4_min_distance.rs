//! Regenerates Figure 4: magnitude of the minimum-distance lower bounds.
fn main() {
    let cfg = skysr_bench::ExpConfig::from_env();
    let datasets = cfg.datasets();
    skysr_bench::experiments::fig4(&cfg, &datasets);
    skysr_bench::experiments::ablation_bounds(&cfg, &datasets);
}
