//! End-to-end correctness of the concurrent service on generated cities:
//! concurrency and caching must never change an answer.

use std::sync::Arc;

use skysr_core::bssr::{Bssr, BssrConfig};
use skysr_data::dataset::{Dataset, DatasetSpec, Preset};
use skysr_data::workload::WorkloadSpec;
use skysr_service::replay::{replay, ReplaySpec, StreamPattern};
use skysr_service::{QueryService, Service, ServiceConfig, ServiceContext};

fn city() -> Dataset {
    DatasetSpec::preset(Preset::CalSmall).scale(0.08).seed(21).generate()
}

#[test]
fn concurrent_replay_matches_sequential_execution() {
    // The ISSUE's acceptance bar: a skewed replay across ≥ 4 workers whose
    // every answer is identical to a sequential `Bssr::run`, with a
    // nonzero cache hit-rate.
    let spec = ReplaySpec {
        total: 400,
        distinct: 60,
        workers: 4,
        seq_len: 2,
        verify: true,
        ..ReplaySpec::default()
    };
    let report = replay(city(), &spec);
    assert_eq!(report.verify_mismatches, Some(0));
    assert_eq!(report.metrics.completed, 400);
    assert_eq!(report.workers, 4);
    assert!(report.metrics.cache.hits > 0, "skewed stream must hit the cache");
    assert!(report.metrics.executed < report.metrics.completed, "cache hits must save searches");
    assert!(report.metrics.throughput_qps > 0.0);
    assert!(report.metrics.latency_p50 <= report.metrics.latency_p99);
}

#[test]
fn caching_disabled_still_matches_sequential() {
    // Coalescing stays on: concurrent duplicates may still share a search,
    // but every answer remains correct and nothing touches the cache.
    let spec = ReplaySpec {
        total: 120,
        distinct: 40,
        workers: 4,
        seq_len: 2,
        cache_capacity: 0,
        verify: true,
        ..ReplaySpec::default()
    };
    let report = replay(city(), &spec);
    assert_eq!(report.verify_mismatches, Some(0));
    assert_eq!(
        report.metrics.executed + report.metrics.coalesced,
        120,
        "every request is searched or coalesced onto one"
    );
    assert_eq!(report.metrics.cache.hits, 0);
    assert_eq!(report.metrics.cache.misses, 0, "a disabled cache sees no lookups");
    assert_eq!(report.metrics.cache.insertions, 0);
}

#[test]
fn all_reuse_disabled_runs_every_search_and_matches_sequential() {
    // PR 1's "exact-match cache only" baseline minus the cache: with
    // caching, coalescing and prefix reuse all off, every request must run
    // its own search.
    let spec = ReplaySpec {
        total: 120,
        distinct: 40,
        workers: 4,
        seq_len: 2,
        cache_capacity: 0,
        coalesce: false,
        prefix_reuse: false,
        verify: true,
        ..ReplaySpec::default()
    };
    let report = replay(city(), &spec);
    assert_eq!(report.verify_mismatches, Some(0));
    assert_eq!(report.metrics.executed, 120, "every request runs a search");
    assert_eq!(report.metrics.coalesced, 0);
    assert_eq!(report.metrics.seeded_prefix, 0);
    assert_eq!(report.metrics.cache.hits, 0);
}

#[test]
fn prefix_chain_replay_warm_starts_and_stays_exact() {
    // One worker makes reuse deterministic: the stream walks length
    // wavefronts, so by the time any ⟨c1..ck⟩ query runs, its (k−1)-prefix
    // skyline is cached and must warm-start the search. Verification
    // compares every answer against a sequential cold run — the
    // correctness gate for semantic reuse.
    let spec = ReplaySpec {
        total: 90,
        distinct: 10,
        workers: 1,
        seq_len: 3,
        pattern: StreamPattern::PrefixChains,
        verify: true,
        ..ReplaySpec::default()
    };
    let report = replay(city(), &spec);
    assert_eq!(report.verify_mismatches, Some(0));
    assert_eq!(report.distinct, 30, "pool expands to every chain prefix");
    assert!(
        report.metrics.seeded_prefix > 0,
        "length-wavefront chains must warm-start ({} searches)",
        report.metrics.executed
    );
    // Reuse never runs extra searches: one per distinct pool entry.
    assert!(report.metrics.executed <= 30);
}

#[test]
fn prefix_chain_replay_concurrent_matches_sequential() {
    // Same workload across 8 workers: whatever interleaving happens
    // (warm, cold, coalesced, cached), every answer must stay
    // score-equivalent to sequential execution.
    let spec = ReplaySpec {
        total: 300,
        distinct: 12,
        workers: 8,
        seq_len: 3,
        pattern: StreamPattern::PrefixChains,
        verify: true,
        ..ReplaySpec::default()
    };
    let report = replay(city(), &spec);
    assert_eq!(report.verify_mismatches, Some(0));
    assert_eq!(report.metrics.completed, 300);
}

#[test]
fn duplicate_burst_replay_verifies_against_sequential() {
    let spec = ReplaySpec {
        total: 300,
        distinct: 20,
        workers: 8,
        seq_len: 2,
        burst: 16,
        pattern: StreamPattern::DuplicateBursts,
        verify: true,
        ..ReplaySpec::default()
    };
    let report = replay(city(), &spec);
    assert_eq!(report.verify_mismatches, Some(0));
    assert_eq!(report.metrics.completed, 300);
    assert_eq!(
        report.metrics.executed + report.metrics.coalesced + report.metrics.cache.hits,
        300,
        "every answer is exactly one of searched / coalesced / cached"
    );
}

#[test]
fn cache_hits_equal_cold_runs_on_generated_queries() {
    let dataset = city();
    let workload = WorkloadSpec::new(2).queries(12).seed(3).generate(&dataset);
    let ctx = Arc::new(ServiceContext::from_dataset(dataset));

    // Reference: the plain sequential engine on the borrowed context.
    let qctx = ctx.query_context();
    let mut engine = Bssr::with_config(&qctx, BssrConfig::default());
    let reference: Vec<_> =
        workload.queries.iter().map(|q| engine.run(q).unwrap().routes).collect();

    let service =
        Service::new(Arc::clone(&ctx), ServiceConfig { workers: 4, ..ServiceConfig::default() });
    let cold = service.run_batch(workload.queries.iter().cloned());
    let warm = service.run_batch(workload.queries.iter().cloned());
    for ((cold, warm), want) in cold.iter().zip(&warm).zip(&reference) {
        let cold = cold.as_ref().unwrap();
        let warm = warm.as_ref().unwrap();
        assert!(warm.cache_hit(), "second pass must be served from cache");
        assert_eq!(cold.routes.as_ref(), want.as_slice());
        assert_eq!(warm.routes, cold.routes);
    }
    let m = service.shutdown();
    assert_eq!(m.completed, 24);
    assert_eq!(m.cache.hits, 12);
}

#[test]
fn eviction_pressure_keeps_answers_correct() {
    let dataset = city();
    let workload = WorkloadSpec::new(2).queries(20).seed(5).generate(&dataset);
    let ctx = Arc::new(ServiceContext::from_dataset(dataset));
    // A 4-entry cache under 20 distinct queries, twice: heavy eviction.
    let service = Service::new(
        Arc::clone(&ctx),
        ServiceConfig { workers: 4, cache_capacity: 4, ..ServiceConfig::default() },
    );
    let first = service.run_batch(workload.queries.iter().cloned());
    let second = service.run_batch(workload.queries.iter().cloned());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.as_ref().unwrap().routes, b.as_ref().unwrap().routes);
    }
    let m = service.metrics();
    assert!(m.cache.evictions > 0, "capacity 4 must evict under 20 queries");
    assert_eq!(m.cache.len, 4);
}
