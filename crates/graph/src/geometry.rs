//! Geographic primitives: haversine distances and point-to-segment
//! projection.
//!
//! The paper uses "distances based on longitude and latitude as edge
//! weights" (§7.1) and embeds each PoI "on the closest edge". Both
//! operations live here so the dataset generator and the graph builder share
//! one definition of distance.

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A WGS84-style coordinate (degrees).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point, asserting the coordinates are finite.
    pub fn new(lat: f64, lon: f64) -> GeoPoint {
        assert!(lat.is_finite() && lon.is_finite(), "coordinates must be finite");
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to `other` in metres (haversine formula).
    pub fn haversine_m(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Linear interpolation between two points (good enough at city scale,
    /// where the datasets live).
    pub fn lerp(&self, other: &GeoPoint, t: f64) -> GeoPoint {
        GeoPoint {
            lat: self.lat + (other.lat - self.lat) * t,
            lon: self.lon + (other.lon - self.lon) * t,
        }
    }
}

/// Result of projecting a point onto a segment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Projection {
    /// Parameter along the segment in `[0, 1]` (0 = segment start).
    pub t: f64,
    /// Squared planar distance (in degree-space, scaled by cos(lat)) from
    /// the point to the projection; only meaningful for *comparisons*.
    pub dist2: f64,
}

/// Projects `p` onto the segment `a -> b` using an equirectangular local
/// approximation (fine at the sub-city scale of PoI embedding).
///
/// Returns the clamped parameter and a comparable squared distance, so the
/// caller can pick the *closest* edge for a PoI (as in the paper's reference \[10\], the embedding
/// the paper follows).
pub fn project_onto_segment(p: GeoPoint, a: GeoPoint, b: GeoPoint) -> Projection {
    // Local planar frame centred at `a`, x = lon·cos(lat), y = lat.
    let k = a.lat.to_radians().cos();
    let (px, py) = ((p.lon - a.lon) * k, p.lat - a.lat);
    let (bx, by) = ((b.lon - a.lon) * k, b.lat - a.lat);
    let len2 = bx * bx + by * by;
    let t = if len2 <= f64::EPSILON { 0.0 } else { ((px * bx + py * by) / len2).clamp(0.0, 1.0) };
    let (dx, dy) = (px - t * bx, py - t * by);
    Projection { t, dist2: dx * dx + dy * dy }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_zero_for_same_point() {
        let p = GeoPoint::new(35.68, 139.76);
        assert_eq!(p.haversine_m(&p), 0.0);
    }

    #[test]
    fn haversine_known_distance() {
        // Tokyo Station to Shinjuku Station is roughly 6.2 km.
        let tokyo = GeoPoint::new(35.681236, 139.767125);
        let shinjuku = GeoPoint::new(35.690921, 139.700258);
        let d = tokyo.haversine_m(&shinjuku);
        assert!((5_500.0..7_000.0).contains(&d), "got {d}");
    }

    #[test]
    fn haversine_is_symmetric() {
        let a = GeoPoint::new(40.7128, -74.0060);
        let b = GeoPoint::new(40.7306, -73.9352);
        assert!((a.haversine_m(&b) - b.haversine_m(&a)).abs() < 1e-9);
    }

    #[test]
    fn haversine_triangle_inequality() {
        let a = GeoPoint::new(40.0, -74.0);
        let b = GeoPoint::new(40.1, -74.1);
        let c = GeoPoint::new(40.2, -73.9);
        assert!(a.haversine_m(&c) <= a.haversine_m(&b) + b.haversine_m(&c) + 1e-9);
    }

    #[test]
    fn lerp_endpoints() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(1.0, 2.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.lat - 0.5).abs() < 1e-12 && (mid.lon - 1.0).abs() < 1e-12);
    }

    #[test]
    fn projection_clamps_to_segment() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 1.0);
        // A point "before" the segment start projects to t = 0.
        let before = project_onto_segment(GeoPoint::new(0.0, -1.0), a, b);
        assert_eq!(before.t, 0.0);
        // A point "past" the end projects to t = 1.
        let past = project_onto_segment(GeoPoint::new(0.0, 2.0), a, b);
        assert_eq!(past.t, 1.0);
        // A point above the middle projects to t = 0.5.
        let mid = project_onto_segment(GeoPoint::new(0.5, 0.5), a, b);
        assert!((mid.t - 0.5).abs() < 1e-12);
    }

    #[test]
    fn projection_distance_orders_edges() {
        let p = GeoPoint::new(0.1, 0.5);
        let near = project_onto_segment(p, GeoPoint::new(0.0, 0.0), GeoPoint::new(0.0, 1.0));
        let far = project_onto_segment(p, GeoPoint::new(1.0, 0.0), GeoPoint::new(1.0, 1.0));
        assert!(near.dist2 < far.dist2);
    }

    #[test]
    fn degenerate_segment_projects_to_start() {
        let a = GeoPoint::new(0.3, 0.3);
        let pr = project_onto_segment(GeoPoint::new(0.4, 0.4), a, a);
        assert_eq!(pr.t, 0.0);
        assert!(pr.dist2 > 0.0);
    }
}
