//! Micro-benchmarks for the semantic-hierarchy substrate: Wu–Palmer
//! similarity, dense similarity-table construction, and requirement
//! evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use skysr_category::foursquare::foursquare_forest;
use skysr_category::similarity::SimilarityTable;
use skysr_category::{CategoryId, Requirement, Similarity, WuPalmer};
use std::hint::black_box;

fn bench_similarity(c: &mut Criterion) {
    let forest = foursquare_forest();
    let cats: Vec<CategoryId> = forest.categories().collect();
    let sushi = forest.by_name("Sushi Restaurant").unwrap();
    let bakery = forest.by_name("Bakery").unwrap();
    let gift = forest.by_name("Gift Shop").unwrap();

    c.bench_function("wu_palmer_pairwise_all", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &a in &cats {
                for &x in &cats {
                    acc += WuPalmer.sim(&forest, a, x);
                }
            }
            black_box(acc)
        })
    });

    c.bench_function("similarity_table_build", |b| {
        b.iter(|| black_box(SimilarityTable::build(&forest, &WuPalmer, sushi)))
    });

    let table = SimilarityTable::build(&forest, &WuPalmer, sushi);
    c.bench_function("similarity_table_lookup", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in &cats {
                acc += table.sim(x);
            }
            black_box(acc)
        })
    });

    let req = Requirement::any_of([sushi, bakery]).but_not(gift);
    c.bench_function("requirement_eval", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &x in &cats {
                acc += req.similarity(&forest, &WuPalmer, &[x]);
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_similarity);
criterion_main!(benches);
