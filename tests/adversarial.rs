//! Adversarial regression tests for the subtle correctness decisions
//! documented in DESIGN.md:
//!
//! 1. the paper's *super-category-sequence* enumeration can miss skyline
//!    routes whose PoI categories are cousins of the query category — our
//!    similarity-level enumeration must not;
//! 2. the on-the-fly cache's radius discipline: a cached narrow search
//!    must not be reused for a wider request (thresholds loosen for
//!    semantically better routes);
//! 3. Lemma 5.5's path-similarity skip must not fire when the would-be
//!    replacement PoI is already in the route (same-tree positions).

use skysr::category::{ForestBuilder, WuPalmer};
use skysr::core::baseline::{DijBaseline, PneBaseline};
use skysr::core::bssr::{Bssr, BssrConfig};
use skysr::core::naive::naive_skysr;
use skysr::core::{PoiTable, PreparedQuery, QueryContext, SkySrQuery};
use skysr::graph::GraphBuilder;

/// The construction from DESIGN.md §2: query category A (leaf); sibling B
/// and *deeper cousin* C carry the candidate PoIs. The super-sequence
/// enumeration would only run OSR for ⟨A⟩ and ⟨T⟩ (ancestors of A):
/// OSR(⟨A⟩) = the A-PoI, OSR(⟨T⟩) = the closest tree PoI = the C-PoI —
/// never surfacing the *B*-PoI, which belongs to the true skyline
/// (it is semantically better than C and shorter than A).
#[test]
fn cousin_route_missed_by_super_sequences_is_found() {
    let mut fb = ForestBuilder::new();
    let t = fb.add_root("T");
    let a = fb.add_child(t, "A");
    let b = fb.add_child(t, "B");
    let c = fb.add_child(b, "C"); // deeper: sim(A, C) < sim(A, B) < 1
    let forest = fb.build();
    // Wu–Palmer sanity for the construction.
    use skysr::category::Similarity;
    let sim_ab = WuPalmer.sim(&forest, a, b);
    let sim_ac = WuPalmer.sim(&forest, a, c);
    assert!(sim_ac < sim_ab && sim_ab < 1.0);

    // Distances: C-PoI at 5, B-PoI at 7, A-PoI at 10.
    let mut g = GraphBuilder::new();
    let vq = g.add_vertex();
    let pc = g.add_vertex();
    let pb = g.add_vertex();
    let pa = g.add_vertex();
    g.add_edge(vq, pc, 5.0);
    g.add_edge(vq, pb, 7.0);
    g.add_edge(vq, pa, 10.0);
    let graph = g.build();
    let mut pois = PoiTable::new(graph.num_vertices());
    pois.add_poi(pa, a);
    pois.add_poi(pb, b);
    pois.add_poi(pc, c);
    pois.finalize(&forest);
    let ctx = QueryContext::new(&graph, &forest, &pois);
    let q = SkySrQuery::new(vq, [a]);

    // True skyline: all three PoIs are Pareto-optimal
    // (10, 0) ⊀ (7, 1−sim_ab) ⊀ (5, 1−sim_ac).
    let pq = PreparedQuery::prepare(&ctx, &q).unwrap();
    let oracle = naive_skysr(&ctx, &pq, 1000);
    assert_eq!(oracle.len(), 3, "{oracle:?}");
    assert!(oracle.iter().any(|r| r.pois == vec![pb]), "the cousin-sibling route is skyline");

    // BSSR and both (level-enumerating) baselines find all three.
    let bssr = Bssr::new(&ctx).run(&q).unwrap();
    assert_eq!(bssr.routes, oracle);
    let dij = DijBaseline::new(&ctx).run(&q).unwrap();
    assert_eq!(dij.routes, oracle);
    let pne = PneBaseline::new(&ctx).run(&q).unwrap();
    assert_eq!(pne.routes, oracle);
    // Three similarity levels ⇒ three OSR calls — one more than the two
    // super-sequences ⟨A⟩, ⟨T⟩ the paper's naive would run.
    assert_eq!(dij.combos, 3);
}

/// Cache radius discipline. Construct a query where the same (vertex,
/// position) pair is searched twice: first by a semantically *worse* route
/// (tight threshold → small radius), then by a semantically *better* route
/// (loose threshold → larger radius). If the cache ignored radii, the
/// second search would silently miss far-away matches and the skyline
/// would be wrong. With many start alternatives, compare cache on vs off.
#[test]
fn cache_radius_discipline_preserves_exactness() {
    let mut fb = ForestBuilder::new();
    let food = fb.add_root("Food");
    let asian = fb.add_child(food, "Asian");
    let italian = fb.add_child(food, "Italian");
    let shop = fb.add_root("Shop");
    let gift = fb.add_child(shop, "Gift");
    let hobby = fb.add_child(shop, "Hobby");
    let forest = fb.build();

    // Hub `h` hosts position-2 searches reached by two different
    // position-1 PoIs: the perfect (Asian) one is far, the semantic
    // (Italian) one is near; beyond the hub sit a near hobby shop and a
    // far gift shop.
    let mut g = GraphBuilder::new();
    let vq = g.add_vertex(); // 0
    let p_asian = g.add_vertex(); // 1 (far perfect)
    let p_italian = g.add_vertex(); // 2 (near semantic)
    let hub = g.add_vertex(); // 3
    let p_hobby = g.add_vertex(); // 4 (near, semantic for Gift)
    let p_gift = g.add_vertex(); // 5 (far, perfect for Gift)
    g.add_edge(vq, p_asian, 9.0);
    g.add_edge(vq, p_italian, 1.0);
    g.add_edge(p_asian, hub, 1.0);
    g.add_edge(p_italian, hub, 1.0);
    g.add_edge(hub, p_hobby, 1.0);
    g.add_edge(hub, p_gift, 6.0);
    let graph = g.build();
    let mut pois = PoiTable::new(graph.num_vertices());
    pois.add_poi(p_asian, asian);
    pois.add_poi(p_italian, italian);
    pois.add_poi(p_hobby, hobby);
    pois.add_poi(p_gift, gift);
    pois.finalize(&forest);
    let ctx = QueryContext::new(&graph, &forest, &pois);
    let q = SkySrQuery::new(vq, [asian, gift]);

    let pq = PreparedQuery::prepare(&ctx, &q).unwrap();
    let oracle = naive_skysr(&ctx, &pq, 1000);
    let with_cache = Bssr::new(&ctx).run(&q).unwrap();
    let without_cache =
        Bssr::with_config(&ctx, BssrConfig { use_cache: false, ..BssrConfig::default() })
            .run(&q)
            .unwrap();
    assert_eq!(with_cache.routes, oracle);
    assert_eq!(without_cache.routes, oracle);
}

/// Same-tree positions: a route ⟨Gift, Hobby⟩ where the nearest Hobby
/// candidate lies *behind* the route's own first PoI. A naive Lemma 5.5
/// filter (skip matches behind higher-similarity PoIs) would discard it
/// using the in-route PoI as witness — invalidly, since the witness cannot
/// replace the match in the same route.
#[test]
fn same_tree_positions_do_not_lose_routes() {
    let mut fb = ForestBuilder::new();
    let shop = fb.add_root("Shop");
    let gift = fb.add_child(shop, "Gift");
    let hobby = fb.add_child(shop, "Hobby");
    let forest = fb.build();
    // vq — g1(Gift) — h1(Hobby): the only hobby shop is behind the gift
    // shop the route just used.
    let mut g = GraphBuilder::new();
    let vq = g.add_vertex();
    let g1 = g.add_vertex();
    let h1 = g.add_vertex();
    g.add_edge(vq, g1, 2.0);
    g.add_edge(g1, h1, 3.0);
    let graph = g.build();
    let mut pois = PoiTable::new(graph.num_vertices());
    pois.add_poi(g1, gift);
    pois.add_poi(h1, hobby);
    pois.finalize(&forest);
    let ctx = QueryContext::new(&graph, &forest, &pois);
    let q = SkySrQuery::new(vq, [gift, hobby]);
    let result = Bssr::new(&ctx).run(&q).unwrap();
    assert_eq!(result.routes.len(), 1);
    assert_eq!(result.routes[0].pois, vec![g1, h1]);
    assert_eq!(result.routes[0].length.get(), 5.0);
    assert_eq!(result.routes[0].semantic, 0.0);
}

/// Zero-weight edges (co-located PoIs after edge splitting) must not break
/// the search or the dominance logic.
#[test]
fn zero_weight_edges_are_handled() {
    let mut fb = ForestBuilder::new();
    let food = fb.add_root("Food");
    let asian = fb.add_child(food, "Asian");
    let shop = fb.add_root("Shop");
    let gift = fb.add_child(shop, "Gift");
    let forest = fb.build();
    let mut g = GraphBuilder::new();
    let vq = g.add_vertex();
    let p1 = g.add_vertex();
    let p2 = g.add_vertex(); // co-located with p1
    g.add_edge(vq, p1, 1.0);
    g.add_edge(p1, p2, 0.0);
    let graph = g.build();
    let mut pois = PoiTable::new(graph.num_vertices());
    pois.add_poi(p1, asian);
    pois.add_poi(p2, gift);
    pois.finalize(&forest);
    let ctx = QueryContext::new(&graph, &forest, &pois);
    let result = Bssr::new(&ctx).run(&SkySrQuery::new(vq, [asian, gift])).unwrap();
    assert_eq!(result.routes.len(), 1);
    assert_eq!(result.routes[0].length.get(), 1.0);
}
