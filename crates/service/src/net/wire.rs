//! The `skysr-d` wire protocol: length-prefixed binary frames over TCP.
//!
//! Every frame is `[u32 len][u8 type][payload]`, little-endian, where
//! `len` counts the type byte plus the payload. Floating-point values
//! travel as raw IEEE-754 bits ([`f64::to_bits`]), so skylines round-trip
//! **bit-exactly** — the oracle verifier compares scores at `1e-9`
//! resolution and the transport must not perturb them.
//!
//! A connection opens with a version handshake: the client sends
//! [`Frame::Hello`] (protocol version + feature flags), the server
//! answers [`Frame::Welcome`] (its version, features, and a
//! [`DatasetFingerprint`] of the dataset it serves). Version mismatches
//! are a typed [`ProtocolError::VersionMismatch`], never a garbled
//! stream.
//!
//! **v2 (multi-tenant).** A v2 `Welcome` additionally carries the
//! *dataset registry* — one `(region id, name, fingerprint)` entry per
//! resident shard — and a v2 `Submit`'s options may address a region
//! (option flag bit 3). Compatibility is one-directional by design: a
//! v1 client greeting a v2 daemon is answered with a v1-*shaped*
//! `Welcome` (version 1, no registry — the default shard's fingerprint
//! only) and served single-shard, since a v1 `Submit` can never carry a
//! region and region-less requests route to the default shard. The
//! version field of the `Welcome` being decoded says whether registry
//! bytes follow, so both shapes parse exactly (v1 payloads end after the
//! fingerprint; trailing bytes stay an error).
//!
//! Decoding is defensive end to end: adversarial bytes produce
//! [`ProtocolError`]s (`Oversized`, `Malformed`), never panics — every
//! length is bounds-checked, every enum tag matched exhaustively, every
//! float validated before it reaches a panicking constructor
//! ([`Cost::new`], [`WeightDelta::new`]), and recursive requirement
//! payloads are depth- and breadth-limited.

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

use skysr_category::{CategoryId, Requirement};
use skysr_core::error::QueryError;
use skysr_core::query::{PositionSpec, SkySrQuery};
use skysr_core::route::SkylineRoute;
use skysr_graph::{Cost, EpochId, VertexId, WeightDelta};

use crate::cache::CacheCounters;
use crate::metrics::{MetricsSnapshot, Served};
use crate::plan::{ReuseStrategies, SeedSource};
use crate::service::{QueryRequest, QueryResponse, RequestOptions};
use crate::shard::{RegionId, RegionInfo};
use crate::telemetry::{HistogramSnapshot, Rung, RungSummary};
use skysr_graph::EpochGcStats;

/// Protocol version this build speaks. Bumped on any incompatible frame
/// change; the handshake rejects mismatches outright — with one
/// deliberate exception: a v2 *server* still serves a v1 client (see the
/// module docs), so old deployments keep working against a multi-tenant
/// daemon.
pub const PROTOCOL_VERSION: u16 = 2;

/// The protocol version before multi-tenancy: one dataset, no registry,
/// no region addressing. What a v2 server speaks *down* to when greeted
/// by a v1 client.
pub const PROTOCOL_V1: u16 = 1;

/// Feature flag: the peer understands [`Frame::Progress`] streaming.
pub const FEATURE_STREAMING: u32 = 1;

/// Feature flag (v2): the peer understands the multi-tenant extensions —
/// the `Welcome` registry and region-addressed `Submit` options.
pub const FEATURE_MULTI_TENANT: u32 = 2;

/// Largest frame either side accepts (length prefix included), generous
/// for city-scale metrics snapshots yet small enough that an adversarial
/// length prefix cannot balloon memory.
pub const MAX_FRAME: usize = 16 << 20;

/// Bounds on recursive/complex payloads, enforced during decode.
const MAX_POSITIONS: usize = 256;
const MAX_REQ_DEPTH: usize = 16;
const MAX_REQ_BRANCHES: usize = 256;
const MAX_ROUTE_POIS: usize = 4096;
const MAX_REGIONS: usize = 1024;
const MAX_REGION_NAME: usize = 256;

/// Everything that can go wrong on the wire — handshake mismatches,
/// adversarial or truncated bytes, oversized frames, and transport
/// failures. The decode paths return these; they never panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Our version.
        ours: u16,
        /// The peer's version.
        theirs: u16,
    },
    /// A frame announced a length beyond [`MAX_FRAME`].
    Oversized {
        /// Announced length.
        len: usize,
        /// The limit it exceeded.
        max: usize,
    },
    /// The payload bytes do not decode as the announced frame.
    Malformed(&'static str),
    /// A structurally valid frame arrived where the protocol state
    /// machine does not allow it (e.g. anything before `Hello`).
    UnexpectedFrame(&'static str),
    /// The server's dataset fingerprint does not match the client's
    /// shadow dataset — replay verification against it would be
    /// meaningless.
    DatasetMismatch(String),
    /// The transport failed (connect/read/write error, or EOF mid-frame).
    Disconnected(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: we speak v{ours}, peer speaks v{theirs}")
            }
            ProtocolError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes announced, limit {max}")
            }
            ProtocolError::Malformed(what) => write!(f, "malformed frame: {what}"),
            ProtocolError::UnexpectedFrame(what) => write!(f, "unexpected frame: {what}"),
            ProtocolError::DatasetMismatch(what) => write!(f, "dataset mismatch: {what}"),
            ProtocolError::Disconnected(what) => write!(f, "connection lost: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl ProtocolError {
    pub(crate) fn io(context: &str, e: std::io::Error) -> ProtocolError {
        ProtocolError::Disconnected(format!("{context}: {e}"))
    }
}

/// Identity of the dataset a daemon serves, exchanged in the handshake so
/// a client driving oracle verification against a local shadow dataset
/// can refuse to proceed when the two have drifted apart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatasetFingerprint {
    /// Graph vertices.
    pub vertices: u64,
    /// Graph arcs.
    pub arcs: u64,
    /// PoI count.
    pub pois: u64,
    /// The daemon's current weight epoch at handshake time. A shadow
    /// context must start from the same epoch (and identical weights) for
    /// epoch-pinned verification to be sound.
    pub epoch: EpochId,
}

/// One protocol frame. `C→S` frames flow client-to-server, `S→C` the
/// other way; the `id` on query frames is the *client's* correlation id,
/// echoed verbatim so a client can demultiplex interleaved answers.
#[derive(Clone, Debug)]
pub enum Frame {
    /// C→S, first frame on a connection: version + feature handshake.
    Hello {
        /// Client protocol version.
        version: u16,
        /// Client feature flags ([`FEATURE_STREAMING`]).
        features: u32,
    },
    /// S→C, the handshake answer.
    Welcome {
        /// Server protocol version — the version *this connection* will
        /// speak: a v2 daemon answers a v1 client with `version: 1` (and
        /// an empty, un-encoded registry).
        version: u16,
        /// Server feature flags.
        features: u32,
        /// What the daemon is serving: the default shard's fingerprint —
        /// the whole story for a single-shard daemon or a v1 connection,
        /// kept in the fixed part of the frame so v1 clients decode it
        /// unchanged.
        fingerprint: DatasetFingerprint,
        /// v2 only: the dataset registry, one entry per resident region
        /// (registration order; entry 0 is the default shard, whose
        /// fingerprint repeats `fingerprint`). Never encoded when
        /// `version` is 1.
        registry: Vec<RegionInfo>,
    },
    /// C→S: one query submission.
    Submit {
        /// Client correlation id.
        id: u64,
        /// Whether the client wants [`Frame::Progress`] streaming.
        streaming: bool,
        /// The query envelope.
        request: QueryRequest,
    },
    /// S→C: one provisional Pareto point for a streaming submission
    /// (dominated-or-equal by the eventual final skyline).
    Progress {
        /// Client correlation id.
        id: u64,
        /// The provisional route.
        route: SkylineRoute,
    },
    /// S→C: the final, exact answer for a submission.
    Final {
        /// Client correlation id.
        id: u64,
        /// The full response (routes, epoch, `Served`, timings).
        response: QueryResponse,
    },
    /// S→C: the submission was rejected by query validation.
    QueryFailed {
        /// Client correlation id.
        id: u64,
        /// Why.
        error: QueryError,
    },
    /// C→S: request a metrics snapshot.
    MetricsReq,
    /// S→C: the snapshot (also the acknowledged farewell to
    /// [`Frame::Shutdown`]).
    MetricsRep(Box<MetricsSnapshot>),
    /// C→S: publish a weight-update batch as one new epoch.
    PublishWeights(Vec<WeightDelta>),
    /// S→C: the epoch the batch created.
    WeightsPublished {
        /// The new epoch.
        epoch: EpochId,
    },
    /// C→S: drain and stop the daemon. Answered with one final
    /// [`Frame::MetricsRep`], then the server closes.
    Shutdown,
    /// S→C: the server hit a protocol error on this connection and is
    /// about to close it.
    Fault {
        /// Human-readable cause.
        message: String,
    },
}

const T_HELLO: u8 = 1;
const T_WELCOME: u8 = 2;
const T_SUBMIT: u8 = 3;
const T_PROGRESS: u8 = 4;
const T_FINAL: u8 = 5;
const T_QUERY_FAILED: u8 = 6;
const T_METRICS_REQ: u8 = 7;
const T_METRICS_REP: u8 = 8;
const T_PUBLISH_WEIGHTS: u8 = 9;
const T_WEIGHTS_PUBLISHED: u8 = 10;
const T_SHUTDOWN: u8 = 11;
const T_FAULT: u8 = 12;

// ---------------------------------------------------------------------
// Encoding primitives: plain appends onto a byte vector.

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}
fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}
fn put_duration(out: &mut Vec<u8>, d: Duration) {
    put_u64(out, d.as_nanos().min(u64::MAX as u128) as u64);
}
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Cursor over a received payload. Every take is bounds-checked; running
/// off the end is [`ProtocolError::Malformed`], not a panic.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.pos.checked_add(n).ok_or(ProtocolError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(ProtocolError::Malformed("truncated payload"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("sized take")))
    }
    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("sized take")))
    }
    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("sized take")))
    }
    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn duration(&mut self) -> Result<Duration, ProtocolError> {
        Ok(Duration::from_nanos(self.u64()?))
    }
    fn str(&mut self) -> Result<String, ProtocolError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::Malformed("invalid utf-8"))
    }

    fn done(&self) -> Result<(), ProtocolError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed("trailing bytes after payload"))
        }
    }
}

// ---------------------------------------------------------------------
// Domain codecs.

fn put_requirement(out: &mut Vec<u8>, req: &Requirement) {
    match req {
        Requirement::Category(c) => {
            put_u8(out, 0);
            put_u32(out, c.0);
        }
        Requirement::AnyOf(branches) => {
            put_u8(out, 1);
            put_u16(out, branches.len() as u16);
            for b in branches {
                put_requirement(out, b);
            }
        }
        Requirement::AllOf(branches) => {
            put_u8(out, 2);
            put_u16(out, branches.len() as u16);
            for b in branches {
                put_requirement(out, b);
            }
        }
        Requirement::Exclude { base, not } => {
            put_u8(out, 3);
            put_requirement(out, base);
            put_u32(out, not.0);
        }
    }
}

fn take_requirement(r: &mut Reader<'_>, depth: usize) -> Result<Requirement, ProtocolError> {
    if depth > MAX_REQ_DEPTH {
        return Err(ProtocolError::Malformed("requirement nesting too deep"));
    }
    match r.u8()? {
        0 => Ok(Requirement::Category(CategoryId(r.u32()?))),
        tag @ (1 | 2) => {
            let n = r.u16()? as usize;
            if n > MAX_REQ_BRANCHES {
                return Err(ProtocolError::Malformed("too many requirement branches"));
            }
            let mut branches = Vec::with_capacity(n);
            for _ in 0..n {
                branches.push(take_requirement(r, depth + 1)?);
            }
            Ok(if tag == 1 { Requirement::AnyOf(branches) } else { Requirement::AllOf(branches) })
        }
        3 => {
            let base = Box::new(take_requirement(r, depth + 1)?);
            let not = CategoryId(r.u32()?);
            Ok(Requirement::Exclude { base, not })
        }
        _ => Err(ProtocolError::Malformed("unknown requirement tag")),
    }
}

fn put_query(out: &mut Vec<u8>, q: &SkySrQuery) {
    put_u32(out, q.start.0);
    put_u16(out, q.sequence.len() as u16);
    for pos in &q.sequence {
        match pos {
            PositionSpec::Category(c) => {
                put_u8(out, 0);
                put_u32(out, c.0);
            }
            PositionSpec::Requirement(req) => {
                put_u8(out, 1);
                put_requirement(out, req);
            }
        }
    }
}

fn take_query(r: &mut Reader<'_>) -> Result<SkySrQuery, ProtocolError> {
    let start = VertexId(r.u32()?);
    let n = r.u16()? as usize;
    if n > MAX_POSITIONS {
        return Err(ProtocolError::Malformed("too many query positions"));
    }
    let mut sequence = Vec::with_capacity(n);
    for _ in 0..n {
        sequence.push(match r.u8()? {
            0 => PositionSpec::Category(CategoryId(r.u32()?)),
            1 => PositionSpec::Requirement(take_requirement(r, 0)?),
            _ => return Err(ProtocolError::Malformed("unknown position tag")),
        });
    }
    Ok(SkySrQuery { start, sequence })
}

fn strategy_bits(s: ReuseStrategies) -> u8 {
    (s.caching as u8)
        | (s.coalesce as u8) << 1
        | (s.prefix as u8) << 2
        | (s.ancestor as u8) << 3
        | (s.suffix as u8) << 4
        | (s.repair as u8) << 5
}

fn strategies_from_bits(bits: u8) -> ReuseStrategies {
    ReuseStrategies {
        caching: bits & 1 != 0,
        coalesce: bits & 2 != 0,
        prefix: bits & 4 != 0,
        ancestor: bits & 8 != 0,
        suffix: bits & 16 != 0,
        repair: bits & 32 != 0,
    }
}

fn put_options(out: &mut Vec<u8>, o: &RequestOptions) {
    let flags = (o.deadline.is_some() as u8)
        | (o.trace as u8) << 1
        | (o.reuse.is_some() as u8) << 2
        | (o.region.is_some() as u8) << 3;
    put_u8(out, flags);
    if let Some(d) = o.deadline {
        put_duration(out, d);
    }
    if let Some(mask) = o.reuse {
        put_u8(out, strategy_bits(mask));
    }
    if let Some(region) = o.region {
        put_u16(out, region.0);
    }
}

fn take_options(r: &mut Reader<'_>) -> Result<RequestOptions, ProtocolError> {
    let flags = r.u8()?;
    if flags & !0b1111 != 0 {
        return Err(ProtocolError::Malformed("unknown option flags"));
    }
    let deadline = if flags & 1 != 0 { Some(r.duration()?) } else { None };
    let reuse = if flags & 4 != 0 { Some(strategies_from_bits(r.u8()?)) } else { None };
    // v2 region addressing. A v1 peer never sets bit 3, so v1 payloads
    // decode unchanged.
    let region = if flags & 8 != 0 { Some(RegionId(r.u16()?)) } else { None };
    Ok(RequestOptions { deadline, trace: flags & 2 != 0, reuse, region })
}

fn put_route(out: &mut Vec<u8>, route: &SkylineRoute) {
    put_u16(out, route.pois.len() as u16);
    for p in &route.pois {
        put_u32(out, p.0);
    }
    put_f64(out, route.length.get());
    put_f64(out, route.semantic);
}

fn take_route(r: &mut Reader<'_>) -> Result<SkylineRoute, ProtocolError> {
    let n = r.u16()? as usize;
    if n > MAX_ROUTE_POIS {
        return Err(ProtocolError::Malformed("route too long"));
    }
    let mut pois = Vec::with_capacity(n);
    for _ in 0..n {
        pois.push(VertexId(r.u32()?));
    }
    let length = r.f64()?;
    let semantic = r.f64()?;
    // `Cost::new` panics on NaN and score comparisons assume ordered
    // floats, so reject them here — adversarial bytes must not panic.
    if length.is_nan() || semantic.is_nan() {
        return Err(ProtocolError::Malformed("NaN route score"));
    }
    Ok(SkylineRoute { pois, length: Cost::new(length), semantic })
}

fn put_served(out: &mut Vec<u8>, served: Served) {
    match served {
        Served::Search { seeded } => {
            put_u8(out, 0);
            put_u8(
                out,
                match seeded {
                    None => 0,
                    Some(SeedSource::Prefix) => 1,
                    Some(SeedSource::Ancestor) => 2,
                    Some(SeedSource::Suffix) => 3,
                },
            );
        }
        Served::CacheHit => put_u8(out, 1),
        Served::Coalesced => put_u8(out, 2),
        Served::Repaired { fallback, routes_untouched, routes_rescored } => {
            put_u8(out, 3);
            put_u8(out, fallback as u8);
            put_u64(out, routes_untouched as u64);
            put_u64(out, routes_rescored as u64);
        }
        Served::Approximate => put_u8(out, 4),
    }
}

fn take_served(r: &mut Reader<'_>) -> Result<Served, ProtocolError> {
    match r.u8()? {
        0 => Ok(Served::Search {
            seeded: match r.u8()? {
                0 => None,
                1 => Some(SeedSource::Prefix),
                2 => Some(SeedSource::Ancestor),
                3 => Some(SeedSource::Suffix),
                _ => return Err(ProtocolError::Malformed("unknown seed source")),
            },
        }),
        1 => Ok(Served::CacheHit),
        2 => Ok(Served::Coalesced),
        3 => Ok(Served::Repaired {
            fallback: r.u8()? != 0,
            routes_untouched: r.u64()? as usize,
            routes_rescored: r.u64()? as usize,
        }),
        4 => Ok(Served::Approximate),
        _ => Err(ProtocolError::Malformed("unknown served tag")),
    }
}

fn put_query_error(out: &mut Vec<u8>, e: &QueryError) {
    match e {
        QueryError::UnknownStart(v) => {
            put_u8(out, 0);
            put_u32(out, v.0);
        }
        QueryError::EmptySequence => put_u8(out, 1),
        QueryError::UnknownCategory(c) => {
            put_u8(out, 2);
            put_u32(out, c.0);
        }
        QueryError::UnmatchablePosition(i) => {
            put_u8(out, 3);
            put_u64(out, *i as u64);
        }
        QueryError::UnknownDestination(v) => {
            put_u8(out, 4);
            put_u32(out, v.0);
        }
        QueryError::Overloaded => put_u8(out, 5),
        QueryError::UnknownRegion(region) => {
            put_u8(out, 6);
            put_u16(out, *region);
        }
    }
}

fn take_query_error(r: &mut Reader<'_>) -> Result<QueryError, ProtocolError> {
    match r.u8()? {
        0 => Ok(QueryError::UnknownStart(VertexId(r.u32()?))),
        1 => Ok(QueryError::EmptySequence),
        2 => Ok(QueryError::UnknownCategory(CategoryId(r.u32()?))),
        3 => Ok(QueryError::UnmatchablePosition(r.u64()? as usize)),
        4 => Ok(QueryError::UnknownDestination(VertexId(r.u32()?))),
        5 => Ok(QueryError::Overloaded),
        6 => Ok(QueryError::UnknownRegion(r.u16()?)),
        _ => Err(ProtocolError::Malformed("unknown error tag")),
    }
}

fn put_histogram(out: &mut Vec<u8>, h: &HistogramSnapshot) {
    let (buckets, count, sum_ns, max_ns) = h.parts();
    put_u32(out, buckets.len() as u32);
    for &(idx, c) in buckets {
        put_u32(out, idx);
        put_u64(out, c);
    }
    put_u64(out, count);
    put_u64(out, sum_ns);
    put_u64(out, max_ns);
}

fn take_histogram(r: &mut Reader<'_>) -> Result<HistogramSnapshot, ProtocolError> {
    let n = r.u32()? as usize;
    if n > 4096 {
        return Err(ProtocolError::Malformed("too many histogram buckets"));
    }
    let mut buckets = Vec::with_capacity(n);
    for _ in 0..n {
        let idx = r.u32()?;
        let c = r.u64()?;
        buckets.push((idx, c));
    }
    let count = r.u64()?;
    let sum_ns = r.u64()?;
    let max_ns = r.u64()?;
    Ok(HistogramSnapshot::from_parts(buckets, count, sum_ns, max_ns))
}

fn put_metrics(out: &mut Vec<u8>, m: &MetricsSnapshot) {
    for v in [
        m.completed,
        m.failed,
        m.executed,
        m.coalesced,
        m.seeded_prefix,
        m.seeded_ancestor,
        m.seeded_suffix,
        m.stale_served,
        m.repairs,
        m.repair_fallbacks,
        m.routes_untouched,
        m.routes_rescored,
        m.approximate_served,
        m.rejected,
        m.shed_deadline,
    ] {
        put_u64(out, v);
    }
    put_duration(out, m.wall);
    put_f64(out, m.throughput_qps);
    for d in [m.latency_mean, m.latency_p50, m.latency_p90, m.latency_p99, m.latency_max] {
        put_duration(out, d);
    }
    put_histogram(out, &m.latency_hist);
    put_histogram(out, &m.queue_wait_hist);
    put_histogram(out, &m.engine_hist);
    put_u8(out, m.rungs.len() as u8);
    for rs in &m.rungs {
        let idx = Rung::ALL.iter().position(|r| *r == rs.rung).expect("rung is in ALL");
        put_u8(out, idx as u8);
        put_histogram(out, &rs.hist);
    }
    put_f64(out, m.mean_skyline_size);
    put_u64(out, m.max_skyline_size as u64);
    for v in [
        m.cache.hits,
        m.cache.misses,
        m.cache.insertions,
        m.cache.evictions,
        m.cache.invalidations,
        m.cache.len,
    ] {
        put_u64(out, v);
    }
    put_u64(out, m.epochs.retained as u64);
    put_u64(out, m.epochs.retained_max as u64);
    put_u64(out, m.epochs.retention as u64);
    put_u64(out, m.epochs.compacted);
    put_u64(out, m.epochs.rebases);
    put_u64(out, m.epochs.overlay_len as u64);
}

fn take_metrics(r: &mut Reader<'_>) -> Result<MetricsSnapshot, ProtocolError> {
    let completed = r.u64()?;
    let failed = r.u64()?;
    let executed = r.u64()?;
    let coalesced = r.u64()?;
    let seeded_prefix = r.u64()?;
    let seeded_ancestor = r.u64()?;
    let seeded_suffix = r.u64()?;
    let stale_served = r.u64()?;
    let repairs = r.u64()?;
    let repair_fallbacks = r.u64()?;
    let routes_untouched = r.u64()?;
    let routes_rescored = r.u64()?;
    let approximate_served = r.u64()?;
    let rejected = r.u64()?;
    let shed_deadline = r.u64()?;
    let wall = r.duration()?;
    let throughput_qps = r.f64()?;
    let latency_mean = r.duration()?;
    let latency_p50 = r.duration()?;
    let latency_p90 = r.duration()?;
    let latency_p99 = r.duration()?;
    let latency_max = r.duration()?;
    let latency_hist = take_histogram(r)?;
    let queue_wait_hist = take_histogram(r)?;
    let engine_hist = take_histogram(r)?;
    let nrungs = r.u8()? as usize;
    if nrungs > Rung::ALL.len() {
        return Err(ProtocolError::Malformed("too many rung summaries"));
    }
    let mut rungs = Vec::with_capacity(nrungs);
    for _ in 0..nrungs {
        let idx = r.u8()? as usize;
        let rung = *Rung::ALL.get(idx).ok_or(ProtocolError::Malformed("unknown rung index"))?;
        rungs.push(RungSummary { rung, hist: take_histogram(r)? });
    }
    let mean_skyline_size = r.f64()?;
    let max_skyline_size = r.u64()? as usize;
    let cache = CacheCounters {
        hits: r.u64()?,
        misses: r.u64()?,
        insertions: r.u64()?,
        evictions: r.u64()?,
        invalidations: r.u64()?,
        len: r.u64()?,
    };
    let epochs = EpochGcStats {
        retained: r.u64()? as usize,
        retained_max: r.u64()? as usize,
        retention: r.u64()? as usize,
        compacted: r.u64()?,
        rebases: r.u64()?,
        overlay_len: r.u64()? as usize,
    };
    Ok(MetricsSnapshot {
        completed,
        failed,
        executed,
        coalesced,
        seeded_prefix,
        seeded_ancestor,
        seeded_suffix,
        stale_served,
        repairs,
        repair_fallbacks,
        routes_untouched,
        routes_rescored,
        approximate_served,
        rejected,
        shed_deadline,
        wall,
        throughput_qps,
        latency_mean,
        latency_p50,
        latency_p90,
        latency_p99,
        latency_max,
        latency_hist,
        queue_wait_hist,
        engine_hist,
        rungs,
        mean_skyline_size,
        max_skyline_size,
        cache,
        epochs,
    })
}

// ---------------------------------------------------------------------
// Frame codec.

impl Frame {
    /// Serializes the frame — length prefix, type byte, payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(64);
        match self {
            Frame::Hello { version, features } => {
                put_u8(&mut body, T_HELLO);
                put_u16(&mut body, *version);
                put_u32(&mut body, *features);
            }
            Frame::Welcome { version, features, fingerprint, registry } => {
                put_u8(&mut body, T_WELCOME);
                put_u16(&mut body, *version);
                put_u32(&mut body, *features);
                put_u64(&mut body, fingerprint.vertices);
                put_u64(&mut body, fingerprint.arcs);
                put_u64(&mut body, fingerprint.pois);
                put_u64(&mut body, fingerprint.epoch.get());
                // The registry exists only on the wire of a v2
                // connection: a v1 client rejects any trailing bytes, so
                // a v1-shaped Welcome must end exactly here.
                if *version >= 2 {
                    put_u16(&mut body, registry.len() as u16);
                    for info in registry {
                        put_u16(&mut body, info.id.0);
                        put_str(&mut body, &info.name);
                        put_u64(&mut body, info.fingerprint.vertices);
                        put_u64(&mut body, info.fingerprint.arcs);
                        put_u64(&mut body, info.fingerprint.pois);
                        put_u64(&mut body, info.fingerprint.epoch.get());
                    }
                }
            }
            Frame::Submit { id, streaming, request } => {
                put_u8(&mut body, T_SUBMIT);
                put_u64(&mut body, *id);
                put_u8(&mut body, *streaming as u8);
                put_query(&mut body, &request.query);
                put_options(&mut body, &request.options);
            }
            Frame::Progress { id, route } => {
                put_u8(&mut body, T_PROGRESS);
                put_u64(&mut body, *id);
                put_route(&mut body, route);
            }
            Frame::Final { id, response } => {
                put_u8(&mut body, T_FINAL);
                put_u64(&mut body, *id);
                put_u32(&mut body, response.routes.len() as u32);
                for route in response.routes.iter() {
                    put_route(&mut body, route);
                }
                put_u64(&mut body, response.epoch.get());
                put_served(&mut body, response.served);
                put_duration(&mut body, response.latency);
                put_u64(&mut body, response.request_id);
                put_duration(&mut body, response.queue_wait);
            }
            Frame::QueryFailed { id, error } => {
                put_u8(&mut body, T_QUERY_FAILED);
                put_u64(&mut body, *id);
                put_query_error(&mut body, error);
            }
            Frame::MetricsReq => put_u8(&mut body, T_METRICS_REQ),
            Frame::MetricsRep(m) => {
                put_u8(&mut body, T_METRICS_REP);
                put_metrics(&mut body, m);
            }
            Frame::PublishWeights(deltas) => {
                put_u8(&mut body, T_PUBLISH_WEIGHTS);
                put_u32(&mut body, deltas.len() as u32);
                for d in deltas {
                    put_u32(&mut body, d.from.0);
                    put_u32(&mut body, d.to.0);
                    put_f64(&mut body, d.weight);
                }
            }
            Frame::WeightsPublished { epoch } => {
                put_u8(&mut body, T_WEIGHTS_PUBLISHED);
                put_u64(&mut body, epoch.get());
            }
            Frame::Shutdown => put_u8(&mut body, T_SHUTDOWN),
            Frame::Fault { message } => {
                put_u8(&mut body, T_FAULT);
                put_str(&mut body, message);
            }
        }
        let mut out = Vec::with_capacity(4 + body.len());
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        out
    }

    fn decode(body: &[u8]) -> Result<Frame, ProtocolError> {
        let mut r = Reader::new(body);
        let frame = match r.u8()? {
            T_HELLO => Frame::Hello { version: r.u16()?, features: r.u32()? },
            T_WELCOME => {
                let version = r.u16()?;
                let features = r.u32()?;
                let fingerprint = DatasetFingerprint {
                    vertices: r.u64()?,
                    arcs: r.u64()?,
                    pois: r.u64()?,
                    epoch: EpochId(r.u64()?),
                };
                // The announced version tells us whether registry bytes
                // follow: v1 payloads end right here.
                let registry = if version >= 2 {
                    let n = r.u16()? as usize;
                    if n > MAX_REGIONS {
                        return Err(ProtocolError::Malformed("too many registry entries"));
                    }
                    let mut registry = Vec::with_capacity(n);
                    for _ in 0..n {
                        let id = RegionId(r.u16()?);
                        let name = r.str()?;
                        if name.len() > MAX_REGION_NAME {
                            return Err(ProtocolError::Malformed("region name too long"));
                        }
                        let fingerprint = DatasetFingerprint {
                            vertices: r.u64()?,
                            arcs: r.u64()?,
                            pois: r.u64()?,
                            epoch: EpochId(r.u64()?),
                        };
                        registry.push(RegionInfo { id, name, fingerprint });
                    }
                    registry
                } else {
                    Vec::new()
                };
                Frame::Welcome { version, features, fingerprint, registry }
            }
            T_SUBMIT => {
                let id = r.u64()?;
                let streaming = r.u8()? != 0;
                let query = take_query(&mut r)?;
                let options = take_options(&mut r)?;
                Frame::Submit { id, streaming, request: QueryRequest { query, options } }
            }
            T_PROGRESS => Frame::Progress { id: r.u64()?, route: take_route(&mut r)? },
            T_FINAL => {
                let id = r.u64()?;
                let n = r.u32()? as usize;
                if n > MAX_ROUTE_POIS {
                    return Err(ProtocolError::Malformed("skyline too large"));
                }
                let mut routes = Vec::with_capacity(n);
                for _ in 0..n {
                    routes.push(take_route(&mut r)?);
                }
                let routes: Arc<[SkylineRoute]> = routes.into();
                let epoch = EpochId(r.u64()?);
                let served = take_served(&mut r)?;
                let latency = r.duration()?;
                let request_id = r.u64()?;
                let queue_wait = r.duration()?;
                Frame::Final {
                    id,
                    response: QueryResponse {
                        routes,
                        epoch,
                        served,
                        latency,
                        request_id,
                        queue_wait,
                    },
                }
            }
            T_QUERY_FAILED => Frame::QueryFailed { id: r.u64()?, error: take_query_error(&mut r)? },
            T_METRICS_REQ => Frame::MetricsReq,
            T_METRICS_REP => Frame::MetricsRep(Box::new(take_metrics(&mut r)?)),
            T_PUBLISH_WEIGHTS => {
                let n = r.u32()? as usize;
                if n > 1 << 20 {
                    return Err(ProtocolError::Malformed("too many weight deltas"));
                }
                let mut deltas = Vec::with_capacity(n);
                for _ in 0..n {
                    let from = VertexId(r.u32()?);
                    let to = VertexId(r.u32()?);
                    let weight = r.f64()?;
                    // `WeightDelta::new` asserts non-negative (NaN fails
                    // that comparison and would panic) — validate first.
                    if !weight.is_finite() || weight < 0.0 {
                        return Err(ProtocolError::Malformed("invalid delta weight"));
                    }
                    deltas.push(WeightDelta::new(from, to, weight));
                }
                Frame::PublishWeights(deltas)
            }
            T_WEIGHTS_PUBLISHED => Frame::WeightsPublished { epoch: EpochId(r.u64()?) },
            T_SHUTDOWN => Frame::Shutdown,
            T_FAULT => Frame::Fault { message: r.str()? },
            _ => return Err(ProtocolError::Malformed("unknown frame type")),
        };
        r.done()?;
        Ok(frame)
    }
}

/// Incremental frame decoder: feed it raw socket bytes in whatever chunks
/// the kernel hands out; it yields complete frames as they materialize.
/// Handles frames split across reads and multiple frames per read; an
/// announced length beyond `max_frame` is rejected *before* any buffering
/// ([`ProtocolError::Oversized`]).
pub struct FrameReader {
    buf: Vec<u8>,
    max_frame: usize,
}

impl FrameReader {
    /// Decoder enforcing `max_frame` (see [`MAX_FRAME`]).
    pub fn new(max_frame: usize) -> FrameReader {
        FrameReader { buf: Vec::with_capacity(4096), max_frame }
    }

    /// Appends received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded (true mid-frame when > 0 after
    /// draining [`FrameReader::next_frame`]).
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// The next complete frame, `Ok(None)` if more bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtocolError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().expect("sized slice")) as usize;
        if len == 0 {
            return Err(ProtocolError::Malformed("empty frame"));
        }
        if len > self.max_frame {
            return Err(ProtocolError::Oversized { len, max: self.max_frame });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let frame = Frame::decode(&self.buf[4..4 + len])?;
        self.buf.drain(..4 + len);
        Ok(Some(frame))
    }
}

/// Writes one frame to a blocking stream (handshake paths; the server's
/// event loop uses buffered nonblocking writes instead).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), ProtocolError> {
    let bytes = frame.to_bytes();
    w.write_all(&bytes).map_err(|e| ProtocolError::io("write", e))?;
    w.flush().map_err(|e| ProtocolError::io("flush", e))
}

/// Reads one frame from a blocking stream.
pub fn read_frame<R: Read>(r: &mut R, max_frame: usize) -> Result<Frame, ProtocolError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes).map_err(|e| ProtocolError::io("read length", e))?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 {
        return Err(ProtocolError::Malformed("empty frame"));
    }
    if len > max_frame {
        return Err(ProtocolError::Oversized { len, max: max_frame });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| ProtocolError::io("read payload", e))?;
    Frame::decode(&body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> SkySrQuery {
        SkySrQuery {
            start: VertexId(7),
            sequence: vec![
                PositionSpec::Category(CategoryId(3)),
                PositionSpec::Requirement(Requirement::Exclude {
                    base: Box::new(Requirement::AnyOf(vec![
                        Requirement::Category(CategoryId(1)),
                        Requirement::AllOf(vec![Requirement::Category(CategoryId(2))]),
                    ])),
                    not: CategoryId(9),
                }),
            ],
        }
    }

    fn sample_route() -> SkylineRoute {
        SkylineRoute {
            pois: vec![VertexId(6), VertexId(9), VertexId(8)],
            length: Cost::new(11.25),
            semantic: 0.5,
        }
    }

    fn roundtrip(frame: &Frame) -> Frame {
        let bytes = frame.to_bytes();
        let mut fr = FrameReader::new(MAX_FRAME);
        fr.extend(&bytes);
        let decoded = fr.next_frame().expect("valid frame").expect("complete frame");
        assert_eq!(fr.pending(), 0, "no leftovers");
        decoded
    }

    #[test]
    fn submit_roundtrips_bit_exactly() {
        let request = QueryRequest {
            query: sample_query(),
            options: RequestOptions {
                deadline: Some(Duration::from_millis(5)),
                trace: true,
                reuse: Some(ReuseStrategies::none()),
                region: Some(RegionId(3)),
            },
        };
        let Frame::Submit { id, streaming, request: back } =
            roundtrip(&Frame::Submit { id: 42, streaming: true, request: request.clone() })
        else {
            panic!("wrong frame");
        };
        assert_eq!(id, 42);
        assert!(streaming);
        assert_eq!(back, request);
    }

    #[test]
    fn final_frame_roundtrips_scores_bit_exactly() {
        // An irrational-ish score exercises the f64-bits path: any decimal
        // detour would perturb the low mantissa bits.
        let route = SkylineRoute {
            pois: vec![VertexId(1)],
            length: Cost::new(1.0 / 3.0),
            semantic: 2.0_f64.sqrt() / 2.0,
        };
        let response = QueryResponse {
            routes: vec![route.clone(), sample_route()].into(),
            epoch: EpochId(3),
            served: Served::Repaired { fallback: false, routes_untouched: 2, routes_rescored: 1 },
            latency: Duration::from_micros(123),
            request_id: 9,
            queue_wait: Duration::from_nanos(77),
        };
        let Frame::Final { id, response: back } =
            roundtrip(&Frame::Final { id: 5, response: response.clone() })
        else {
            panic!("wrong frame");
        };
        assert_eq!(id, 5);
        assert_eq!(back.routes[0].length.get().to_bits(), route.length.get().to_bits());
        assert_eq!(back.routes[0].semantic.to_bits(), route.semantic.to_bits());
        assert_eq!(back.epoch, response.epoch);
        assert_eq!(back.served, response.served);
        assert_eq!(back.latency, response.latency);
        assert_eq!(back.request_id, 9);
        assert_eq!(back.queue_wait, response.queue_wait);
    }

    #[test]
    fn frames_split_across_reads_decode_once_complete() {
        let frame =
            Frame::Submit { id: 1, streaming: false, request: QueryRequest::new(sample_query()) };
        let bytes = frame.to_bytes();
        let mut fr = FrameReader::new(MAX_FRAME);
        // Feed one byte at a time: no partial prefix may decode.
        for (i, b) in bytes.iter().enumerate() {
            let is_last = i + 1 == bytes.len();
            fr.extend(std::slice::from_ref(b));
            let got = fr.next_frame().expect("never malformed");
            if is_last {
                assert!(matches!(got, Some(Frame::Submit { id: 1, .. })));
            } else {
                assert!(got.is_none(), "decoded early at byte {i}");
            }
        }
    }

    #[test]
    fn multiple_frames_per_read_all_decode() {
        let frames = [
            Frame::Hello { version: PROTOCOL_VERSION, features: FEATURE_STREAMING },
            Frame::Progress { id: 2, route: sample_route() },
            Frame::Shutdown,
            Frame::WeightsPublished { epoch: EpochId(4) },
        ];
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&f.to_bytes());
        }
        let mut fr = FrameReader::new(MAX_FRAME);
        fr.extend(&bytes);
        assert!(matches!(fr.next_frame().unwrap(), Some(Frame::Hello { .. })));
        assert!(matches!(fr.next_frame().unwrap(), Some(Frame::Progress { id: 2, .. })));
        assert!(matches!(fr.next_frame().unwrap(), Some(Frame::Shutdown)));
        assert!(matches!(
            fr.next_frame().unwrap(),
            Some(Frame::WeightsPublished { epoch: EpochId(4) })
        ));
        assert!(fr.next_frame().unwrap().is_none());
        assert_eq!(fr.pending(), 0);
    }

    #[test]
    fn oversized_frames_are_rejected_before_buffering() {
        let mut fr = FrameReader::new(1024);
        fr.extend(&(2048u32).to_le_bytes());
        assert!(matches!(fr.next_frame(), Err(ProtocolError::Oversized { len: 2048, max: 1024 })));
    }

    #[test]
    fn adversarial_bytes_error_instead_of_panicking() {
        // A battery of hostile payloads: truncations, bad tags, NaN
        // scores, bogus lengths, deep recursion. Every one must come back
        // as a typed error.
        let cases: Vec<Vec<u8>> = vec![
            // Unknown frame type.
            {
                let mut b = vec![0u8; 0];
                put_u32(&mut b, 1);
                put_u8(&mut b, 0xEE);
                b
            },
            // Empty frame.
            (0u32).to_le_bytes().to_vec(),
            // Submit truncated mid-query.
            {
                let full = Frame::Submit {
                    id: 1,
                    streaming: false,
                    request: QueryRequest::new(sample_query()),
                }
                .to_bytes();
                let cut = full.len() - 3;
                let mut b = Vec::new();
                put_u32(&mut b, (cut - 4) as u32);
                b.extend_from_slice(&full[4..cut]);
                b
            },
            // Progress with NaN semantic.
            {
                let mut body = vec![T_PROGRESS];
                put_u64(&mut body, 1);
                put_u16(&mut body, 1);
                put_u32(&mut body, 5);
                put_f64(&mut body, 1.0);
                put_f64(&mut body, f64::NAN);
                let mut b = Vec::new();
                put_u32(&mut b, body.len() as u32);
                b.extend(body);
                b
            },
            // PublishWeights with negative weight.
            {
                let mut body = vec![T_PUBLISH_WEIGHTS];
                put_u32(&mut body, 1);
                put_u32(&mut body, 0);
                put_u32(&mut body, 1);
                put_f64(&mut body, -2.0);
                let mut b = Vec::new();
                put_u32(&mut b, body.len() as u32);
                b.extend(body);
                b
            },
            // Requirement nested beyond the depth limit.
            {
                let mut body = vec![T_SUBMIT];
                put_u64(&mut body, 1);
                put_u8(&mut body, 0);
                put_u32(&mut body, 0); // start
                put_u16(&mut body, 1); // one position
                put_u8(&mut body, 1); // requirement position
                for _ in 0..(MAX_REQ_DEPTH + 2) {
                    put_u8(&mut body, 3); // Exclude{ base: ...
                }
                let mut b = Vec::new();
                put_u32(&mut b, body.len() as u32);
                b.extend(body);
                b
            },
            // Trailing garbage after a valid Shutdown payload.
            {
                let mut b = Vec::new();
                put_u32(&mut b, 3);
                put_u8(&mut b, T_SHUTDOWN);
                put_u16(&mut b, 0xBEEF);
                b
            },
            // Submit with an undefined option flag (bit 4 — beyond the
            // v2 region bit).
            {
                let mut body = vec![T_SUBMIT];
                put_u64(&mut body, 1);
                put_u8(&mut body, 0);
                put_u32(&mut body, 0); // start
                put_u16(&mut body, 0); // no positions
                put_u8(&mut body, 0b1_0000); // unknown option flag
                let mut b = Vec::new();
                put_u32(&mut b, body.len() as u32);
                b.extend(body);
                b
            },
            // Submit announcing a region (flag bit 3) but truncated
            // before the region id.
            {
                let mut body = vec![T_SUBMIT];
                put_u64(&mut body, 1);
                put_u8(&mut body, 0);
                put_u32(&mut body, 0); // start
                put_u16(&mut body, 0); // no positions
                put_u8(&mut body, 0b1000); // region follows... except it doesn't
                let mut b = Vec::new();
                put_u32(&mut b, body.len() as u32);
                b.extend(body);
                b
            },
            // v2 Welcome announcing an absurd registry size.
            {
                let mut body = vec![T_WELCOME];
                put_u16(&mut body, 2);
                put_u32(&mut body, FEATURE_STREAMING | FEATURE_MULTI_TENANT);
                for _ in 0..4 {
                    put_u64(&mut body, 1); // fingerprint
                }
                put_u16(&mut body, u16::MAX); // registry entries
                let mut b = Vec::new();
                put_u32(&mut b, body.len() as u32);
                b.extend(body);
                b
            },
            // v1 Welcome with trailing registry bytes: a v1 payload ends
            // at the fingerprint, whatever follows is garbage.
            {
                let mut body = vec![T_WELCOME];
                put_u16(&mut body, 1);
                put_u32(&mut body, FEATURE_STREAMING);
                for _ in 0..4 {
                    put_u64(&mut body, 1); // fingerprint
                }
                put_u16(&mut body, 0); // v2-style registry count on a v1 frame
                let mut b = Vec::new();
                put_u32(&mut b, body.len() as u32);
                b.extend(body);
                b
            },
        ];
        for (i, bytes) in cases.iter().enumerate() {
            let mut fr = FrameReader::new(MAX_FRAME);
            fr.extend(bytes);
            match fr.next_frame() {
                Err(_) => {}
                Ok(other) => panic!("case {i} decoded as {other:?} instead of erroring"),
            }
        }
    }

    #[test]
    fn metrics_snapshot_roundtrips() {
        // Build a real snapshot by running a recorder briefly.
        use crate::metrics::{LatencyBreakdown, MetricsRecorder};
        let rec = MetricsRecorder::default();
        rec.record(
            LatencyBreakdown {
                queue_wait: Duration::from_micros(10),
                service: Duration::from_micros(90),
                engine: Some(Duration::from_micros(70)),
            },
            2,
            Served::Search { seeded: Some(SeedSource::Prefix) },
        );
        rec.record(
            LatencyBreakdown {
                queue_wait: Duration::from_micros(1),
                service: Duration::from_micros(2),
                engine: None,
            },
            2,
            Served::CacheHit,
        );
        rec.record_stale_serve();
        let m = rec.snapshot(
            Duration::from_millis(5),
            CacheCounters {
                hits: 1,
                misses: 1,
                insertions: 1,
                evictions: 0,
                invalidations: 0,
                len: 1,
            },
            EpochGcStats {
                retained: 2,
                retained_max: 3,
                retention: 4,
                compacted: 5,
                rebases: 1,
                overlay_len: 6,
            },
        );
        let Frame::MetricsRep(back) = roundtrip(&Frame::MetricsRep(Box::new(m.clone()))) else {
            panic!("wrong frame");
        };
        assert_eq!(back.completed, m.completed);
        assert_eq!(back.stale_served, 1);
        assert_eq!(back.latency_hist, m.latency_hist);
        assert_eq!(back.queue_wait_hist, m.queue_wait_hist);
        assert_eq!(back.engine_hist, m.engine_hist);
        assert_eq!(back.rungs.len(), m.rungs.len());
        for (a, b) in back.rungs.iter().zip(m.rungs.iter()) {
            assert_eq!(a.rung, b.rung);
            assert_eq!(a.hist, b.hist);
        }
        assert_eq!(back.cache, m.cache);
        assert_eq!(back.epochs, m.epochs);
        assert_eq!(back.throughput_qps.to_bits(), m.throughput_qps.to_bits());
        assert_eq!(back.latency_p99, m.latency_p99);
    }

    #[test]
    fn v2_welcome_roundtrips_the_registry() {
        let fp = |seed: u64| DatasetFingerprint {
            vertices: 100 + seed,
            arcs: 400 + seed,
            pois: 20 + seed,
            epoch: EpochId(seed),
        };
        let registry = vec![
            RegionInfo { id: RegionId(0), name: "bay-area".into(), fingerprint: fp(0) },
            RegionInfo { id: RegionId(1), name: "la-basin".into(), fingerprint: fp(1) },
        ];
        let Frame::Welcome { version, features, fingerprint, registry: back } =
            roundtrip(&Frame::Welcome {
                version: PROTOCOL_VERSION,
                features: FEATURE_STREAMING | FEATURE_MULTI_TENANT,
                fingerprint: fp(0),
                registry: registry.clone(),
            })
        else {
            panic!("wrong frame");
        };
        assert_eq!(version, PROTOCOL_VERSION);
        assert_eq!(features, FEATURE_STREAMING | FEATURE_MULTI_TENANT);
        assert_eq!(fingerprint, fp(0));
        assert_eq!(back, registry);
    }

    #[test]
    fn v1_welcome_has_no_registry_bytes() {
        // A v1-shaped Welcome (what a v2 daemon sends a v1 client) must
        // serialize to exactly the v1 layout: type + version + features +
        // fingerprint, nothing after — a v1 peer rejects trailing bytes.
        let frame = Frame::Welcome {
            version: PROTOCOL_V1,
            features: FEATURE_STREAMING,
            fingerprint: DatasetFingerprint { vertices: 10, arcs: 40, pois: 5, epoch: EpochId(0) },
            registry: Vec::new(),
        };
        let bytes = frame.to_bytes();
        assert_eq!(bytes.len(), 4 + 1 + 2 + 4 + 32, "v1 Welcome layout drifted");
        let Frame::Welcome { version, registry, .. } = roundtrip(&frame) else {
            panic!("wrong frame");
        };
        assert_eq!(version, PROTOCOL_V1);
        assert!(registry.is_empty());
    }

    #[test]
    fn region_less_options_stay_v1_compatible() {
        // A region-less Submit must not grow new bytes: its option flags
        // stay within the v1 mask, so a v1 daemon decodes it unchanged.
        let request = QueryRequest::new(sample_query());
        let Frame::Submit { request: back, .. } =
            roundtrip(&Frame::Submit { id: 8, streaming: false, request: request.clone() })
        else {
            panic!("wrong frame");
        };
        assert_eq!(back, request);
        assert_eq!(back.options.region, None);
    }

    #[test]
    fn query_errors_roundtrip() {
        for e in [
            QueryError::UnknownStart(VertexId(3)),
            QueryError::EmptySequence,
            QueryError::UnknownCategory(CategoryId(7)),
            QueryError::UnmatchablePosition(2),
            QueryError::UnknownDestination(VertexId(11)),
            QueryError::Overloaded,
            QueryError::UnknownRegion(7),
        ] {
            let Frame::QueryFailed { id, error } =
                roundtrip(&Frame::QueryFailed { id: 1, error: e.clone() })
            else {
                panic!("wrong frame");
            };
            assert_eq!(id, 1);
            assert_eq!(error, e);
        }
    }
}
