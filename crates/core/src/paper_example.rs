//! The running example of Figure 1 / Example 1.1 / §5.5 as a test fixture.
//!
//! The paper's figure fixes the qualitative structure (which PoI carries
//! which category, which routes win) and the trace in §5.5 pins several
//! concrete numbers: NNinit finds `⟨p2, p5, p8⟩` with length 15 and
//! `⟨p2, p5, p7⟩` with length 12, and the final skyline is
//! `{⟨p10, p12, p13⟩, ⟨p6, p9, p8⟩}`. The edge weights below realise all
//! of those constraints, so golden tests can replay the paper's trace:
//!
//! * categories — Asian: p2, p10; Italian: p1, p6, p11;
//!   A&E: p5, p9, p12; Gift: p8, p13; Hobby: p3, p4, p7;
//! * query — ⟨Asian restaurant, A&E, Gift shop⟩ from `v_q`;
//! * NNinit: nearest perfect Asian is p2 (6), then p5 (4); on the last leg
//!   it finds the Hobby shop p7 (semantic, total 12) before the Gift shop
//!   p8 (perfect, total 15) — Example 5.6 verbatim;
//! * final skyline: perfect route ⟨p10, p12, p13⟩ (length 13, semantic 0)
//!   and ⟨p6, p9, p8⟩ (length 11, semantic 0.5) — Table 4, step 12.

use skysr_category::{CategoryForest, CategoryId, ForestBuilder};
use skysr_graph::{GraphBuilder, RoadNetwork, VertexId};

use crate::context::QueryContext;
use crate::poi::PoiTable;
use crate::prepared::PreparedQuery;
use crate::query::SkySrQuery;

/// The Figure 1 fixture.
pub struct PaperExample {
    /// Road network (vertex 0 is `v_q`, vertices 1–13 are p1–p13).
    pub graph: RoadNetwork,
    /// Forest: Food {Asian, Italian}, Shop&Service {Gift, Hobby}, A&E.
    pub forest: CategoryForest,
    /// PoI associations.
    pub pois: PoiTable,
    /// The start vertex `v_q`.
    pub vq: VertexId,
    asian: CategoryId,
    arts: CategoryId,
    gift: CategoryId,
}

impl Default for PaperExample {
    fn default() -> Self {
        Self::new()
    }
}

impl PaperExample {
    /// Builds the fixture.
    pub fn new() -> PaperExample {
        let mut fb = ForestBuilder::new();
        let food = fb.add_root("Food");
        let asian = fb.add_child(food, "Asian Restaurant");
        let italian = fb.add_child(food, "Italian Restaurant");
        let shop = fb.add_root("Shop & Service");
        let gift = fb.add_child(shop, "Gift Shop");
        let hobby = fb.add_child(shop, "Hobby Shop");
        let arts = fb.add_root("Arts & Entertainment");
        let forest = fb.build();

        let mut gb = GraphBuilder::new();
        // Vertex 0 = vq; 1..=13 = p1..=p13.
        for _ in 0..14 {
            gb.add_vertex();
        }
        let v = |i: u32| VertexId(i);
        let edges: &[(u32, u32, f64)] = &[
            (0, 2, 6.0),   // vq - p2
            (0, 10, 8.0),  // vq - p10
            (0, 1, 7.0),   // vq - p1
            (0, 6, 7.5),   // vq - p6
            (0, 11, 9.0),  // vq - p11
            (2, 5, 4.0),   // p2 - p5
            (5, 7, 2.0),   // p5 - p7
            (5, 8, 5.0),   // p5 - p8
            (10, 12, 2.0), // p10 - p12
            (12, 13, 3.0), // p12 - p13
            (1, 9, 3.0),   // p1 - p9
            (6, 9, 2.0),   // p6 - p9
            (9, 8, 1.5),   // p9 - p8
            (11, 5, 10.0), // p11 - p5
            (9, 3, 9.0),   // p9 - p3
            (12, 4, 9.0),  // p12 - p4
        ];
        for &(a, b, w) in edges {
            gb.add_edge(v(a), v(b), w);
        }
        let graph = gb.build();

        let mut pois = PoiTable::new(graph.num_vertices());
        for i in [2u32, 10] {
            pois.add_poi(v(i), asian);
        }
        for i in [1u32, 6, 11] {
            pois.add_poi(v(i), italian);
        }
        for i in [5u32, 9, 12] {
            pois.add_poi(v(i), arts);
        }
        for i in [8u32, 13] {
            pois.add_poi(v(i), gift);
        }
        for i in [3u32, 4, 7] {
            pois.add_poi(v(i), hobby);
        }
        pois.finalize(&forest);

        PaperExample { graph, forest, pois, vq: VertexId(0), asian, arts, gift }
    }

    /// PoI vertex `p_i` (1-based, as in the paper).
    pub fn p(&self, i: u32) -> VertexId {
        assert!((1..=13).contains(&i));
        VertexId(i)
    }

    /// Query context over the fixture.
    pub fn context(&self) -> QueryContext<'_> {
        QueryContext::new(&self.graph, &self.forest, &self.pois)
    }

    /// The Example 1.1 query: ⟨Asian restaurant, A&E, Gift shop⟩ from vq.
    pub fn query(&self) -> SkySrQuery {
        SkySrQuery::new(self.vq, [self.asian, self.arts, self.gift])
    }

    /// Prepared form of [`PaperExample::query`].
    pub fn prepared(&self, ctx: &QueryContext<'_>) -> PreparedQuery {
        PreparedQuery::prepare(ctx, &self.query()).expect("fixture query is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysr_graph::dijkstra::dijkstra;
    use skysr_graph::{Cost, DijkstraWorkspace};

    #[test]
    fn fixture_is_connected_and_sized() {
        let ex = PaperExample::new();
        assert_eq!(ex.graph.num_vertices(), 14);
        assert!(skysr_graph::connectivity::is_connected(&ex.graph));
        assert_eq!(ex.pois.num_pois(), 13);
    }

    #[test]
    fn distances_match_trace() {
        let ex = PaperExample::new();
        let mut ws = DijkstraWorkspace::new(ex.graph.num_vertices());
        dijkstra(&ex.graph, &mut ws, ex.vq);
        // NNinit's first leg: p2 at 6 is the closest perfect Asian.
        assert_eq!(ws.distance(ex.p(2)), Some(Cost::new(6.0)));
        assert_eq!(ws.distance(ex.p(10)), Some(Cost::new(8.0)));
        // Lengths of the two skyline routes.
        // ⟨p10, p12, p13⟩: 8 + 2 + 3 = 13.
        // ⟨p6, p9, p8⟩: 7.5 + 2 + 1.5 = 11.
        assert_eq!(ws.distance(ex.p(6)), Some(Cost::new(7.5)));
    }

    #[test]
    fn position_sets_match_figure1() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let pq = ex.prepared(&ctx);
        // P1 (restaurants) = {p1, p2, p6, p10, p11} — Example 5.10.
        let p1: Vec<u32> = pq.positions[0].semantic.iter().map(|v| v.0).collect();
        assert_eq!(p1, vec![1, 2, 6, 10, 11]);
        // P2 (A&E) = {p5, p9, p12}.
        let p2: Vec<u32> = pq.positions[1].semantic.iter().map(|v| v.0).collect();
        assert_eq!(p2, vec![5, 9, 12]);
        // P3 (shops) = {p3, p4, p7, p8, p13}.
        let p3: Vec<u32> = pq.positions[2].semantic.iter().map(|v| v.0).collect();
        assert_eq!(p3, vec![3, 4, 7, 8, 13]);
        // Perfect sets.
        let perf1: Vec<u32> = pq.positions[0].perfect.iter().map(|v| v.0).collect();
        assert_eq!(perf1, vec![2, 10]);
        let perf3: Vec<u32> = pq.positions[2].perfect.iter().map(|v| v.0).collect();
        assert_eq!(perf3, vec![8, 13]);
    }

    #[test]
    fn similarity_structure() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let pq = ex.prepared(&ctx);
        // Italian vs Asian: Wu–Palmer siblings under Food → 0.5.
        assert_eq!(pq.positions[0].sim_of(&ctx, ex.p(6)), 0.5);
        assert_eq!(pq.positions[0].sim_of(&ctx, ex.p(2)), 1.0);
        // Hobby vs Gift → 0.5.
        assert_eq!(pq.positions[2].sim_of(&ctx, ex.p(7)), 0.5);
        // A&E is a single-node tree: only perfect matches, σ* = None.
        assert_eq!(pq.positions[1].sigma_star, None);
        assert_eq!(pq.positions[0].sigma_star, Some(0.5));
    }
}
