//! Log-bucketed latency histograms — HDR-style fixed buckets, lock-free
//! recording, mergeable snapshots.
//!
//! # Bucket scheme
//!
//! Values are nanoseconds (`u64`). The first `SUB` buckets hold the
//! values `0..SUB` exactly; above that, each power-of-two octave is split
//! into `SUB` equal sub-buckets (the classic log-linear layout). With
//! `SUB = 32` a value `v ≥ 32` lands in a bucket of width `2^⌊log₂ v⌋ / 32`,
//! so any quantile read off a bucket's upper edge overestimates the true
//! value by at most **1/32 ≈ 3.2 %** — "exact" percentiles at the
//! resolution any latency report needs, from the same fixed 1 920 × 8-byte
//! footprint whether the histogram saw ten samples or ten billion.
//!
//! Recording is one relaxed `fetch_add` on the bucket plus three on the
//! count/sum/max gauges — no locks, so worker threads never contend, and
//! per-worker histograms are unnecessary: snapshots of one shared
//! histogram are already mergeable across workers (and across processes,
//! via [`HistogramSnapshot::merge`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-buckets per octave (and the width of the exact linear range).
const SUB: u64 = 32;
const SUB_BITS: u32 = SUB.trailing_zeros();
/// Total buckets: the linear range plus 59 octaves covering all of `u64`.
const N_BUCKETS: usize = (SUB as usize) + (64 - SUB_BITS as usize) * SUB as usize;

/// Index of the bucket holding `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // 2^top ≤ v, top ≥ SUB_BITS
    let octave = (top - SUB_BITS) as usize;
    let sub = ((v >> (top - SUB_BITS)) & (SUB - 1)) as usize;
    SUB as usize + octave * SUB as usize + sub
}

/// Largest value the bucket at `idx` can hold (its inclusive upper edge) —
/// the value quantile reads report.
#[inline]
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB as usize {
        return idx as u64;
    }
    let octave = (idx - SUB as usize) / SUB as usize;
    let sub = ((idx - SUB as usize) % SUB as usize) as u64;
    // The top bucket's edge is exactly `u64::MAX`; add `width - 1` as one
    // term so the intermediate sum never overflows.
    let width = 1u64 << octave;
    ((SUB + sub) << octave) + (width - 1)
}

/// A fixed-size log-bucketed histogram of nanosecond durations.
///
/// Cheap to record into from any number of threads; snapshot with
/// [`Histogram::snapshot`] for quantiles and export.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one duration.
    pub fn record(&self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one raw nanosecond value.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy (sparse: only non-empty buckets), safe to take
    /// while other threads keep recording.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u32, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u32, n))
            })
            .collect();
        // Count from the buckets themselves so the snapshot is internally
        // consistent even when racing recorders (sum/max/mean are gauges
        // and may trail by in-flight samples; quantile ranks may not).
        let count = buckets.iter().map(|&(_, n)| n).sum();
        HistogramSnapshot {
            buckets,
            count,
            sum_ns: self.sum.load(Ordering::Relaxed),
            max_ns: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`], mergeable across workers and
/// queryable for quantiles.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(bucket index, count)` for every non-empty bucket, ascending.
    buckets: Vec<(u32, u64)>,
    /// Total samples (sum of bucket counts).
    count: u64,
    /// Sum of all recorded values.
    sum_ns: u64,
    /// Largest recorded value (exact, not bucketed).
    max_ns: u64,
}

impl HistogramSnapshot {
    /// The raw parts `(buckets, count, sum_ns, max_ns)` — what a wire
    /// codec serializes. `buckets` is `(bucket index, count)` per
    /// non-empty bucket, ascending.
    pub fn parts(&self) -> (&[(u32, u64)], u64, u64, u64) {
        (&self.buckets, self.count, self.sum_ns, self.max_ns)
    }

    /// Rebuilds a snapshot from [`HistogramSnapshot::parts`] (the wire
    /// codec's decode half). Callers are trusted to pass parts that came
    /// from a real snapshot; quantile math on fabricated parts is merely
    /// nonsense, never unsafe.
    pub fn from_parts(buckets: Vec<(u32, u64)>, count: u64, sum_ns: u64, max_ns: u64) -> Self {
        HistogramSnapshot { buckets, count, sum_ns, max_ns }
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean over all samples (exact — tracked outside the buckets).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_ns / self.count)
    }

    /// Largest recorded value (exact).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), nearest-rank over the buckets,
    /// reported as the holding bucket's upper edge — within 1/32 ≈ 3.2 %
    /// of (and never below) the true nearest-rank sample.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                // Never report past the exactly-tracked maximum.
                return Duration::from_nanos(bucket_upper(idx as usize).min(self.max_ns));
            }
        }
        self.max()
    }

    /// Folds `other` into this snapshot (cross-worker / cross-process
    /// aggregation). Bucket boundaries are fixed and identical everywhere,
    /// so merging is exact.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: Vec<(u32, u64)> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia == ib {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else {
                        merged.push((ib, nb));
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// `(upper edge in ns, cumulative count ≤ that edge)` per non-empty
    /// bucket — the exact shape a Prometheus `_bucket{le=…}` series wants.
    pub fn cumulative(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut acc = 0u64;
        self.buckets.iter().map(move |&(idx, n)| {
            acc += n;
            (bucket_upper(idx as usize), acc)
        })
    }

    /// Sum of all recorded values in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_then_log_linear() {
        // The linear range is exact.
        for v in 0..SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
        // Indices are monotone, uppers invert the mapping, and every value
        // sits at or below its bucket's upper edge within the 1/32 bound.
        let probes: Vec<u64> = (0..64)
            .chain([95, 96, 97, 127, 128, 129, 1_000, 65_535, 65_536, 1 << 40, u64::MAX - 1])
            .chain((5..63).map(|e| (1u64 << e) - 1))
            .chain((5..63).map(|e| 1u64 << e))
            .collect();
        for &v in &probes {
            let idx = bucket_index(v);
            let upper = bucket_upper(idx);
            assert!(upper >= v, "upper {upper} < value {v}");
            if v >= SUB {
                // Relative overshoot stays within one sub-bucket width.
                assert!(
                    (upper - v) as f64 <= v as f64 / SUB as f64,
                    "value {v}: upper {upper} overshoots by more than 1/{SUB}"
                );
            }
            if idx > 0 {
                assert!(bucket_upper(idx - 1) < v, "value {v} also fits bucket {}", idx - 1);
            }
        }
        assert!(bucket_index(u64::MAX) < N_BUCKETS);
    }

    #[test]
    fn quantiles_stay_within_the_error_bound_of_exact_sort() {
        // Deterministic pseudo-random latencies spanning ns..seconds.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let h = Histogram::default();
        let mut exact: Vec<u64> = Vec::new();
        for _ in 0..10_000 {
            let magnitude = 1u64 << (next() % 30);
            let v = next() % magnitude;
            h.record_ns(v);
            exact.push(v);
        }
        exact.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count(), 10_000);
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let truth = exact[rank - 1];
            let got = snap.quantile(q).as_nanos() as u64;
            assert!(got >= truth, "q{q}: bucketed {got} below exact {truth}");
            let bound = (truth / SUB).max(1);
            assert!(
                got <= truth + bound,
                "q{q}: bucketed {got} beyond exact {truth} + 1/{SUB} bound"
            );
        }
        assert_eq!(snap.max().as_nanos() as u64, *exact.last().unwrap());
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::default();
        let b = Histogram::default();
        let both = Histogram::default();
        for i in 0..1_000u64 {
            let v = i * i * 37 + 5;
            if i % 2 == 0 {
                a.record_ns(v)
            } else {
                b.record_ns(v)
            };
            both.record_ns(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
        // Merging an empty snapshot is a no-op.
        let before = merged.clone();
        merged.merge(&HistogramSnapshot::default());
        assert_eq!(merged, before);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let snap = Histogram::default().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.quantile(0.99), Duration::ZERO);
        assert_eq!(snap.mean(), Duration::ZERO);
        assert_eq!(snap.max(), Duration::ZERO);
        assert_eq!(snap.cumulative().count(), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::default());
        let threads: Vec<_> = (0..8u64)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record_ns(t * 1_000 + i % 997);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 80_000);
        assert_eq!(h.count(), 80_000);
        assert_eq!(snap.cumulative().last().unwrap().1, 80_000);
    }

    #[test]
    fn cumulative_counts_are_monotone_and_end_at_count() {
        let h = Histogram::default();
        for v in [1u64, 10, 100, 1_000, 10_000, 100_000, 100_000] {
            h.record_ns(v);
        }
        let snap = h.snapshot();
        let pairs: Vec<(u64, u64)> = snap.cumulative().collect();
        assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(pairs.last().unwrap().1, snap.count());
    }
}
