//! Cross-algorithm agreement on generated datasets: the `Dij` and `PNE`
//! baselines (iterated OSR over similarity-level combinations) must return
//! the same skyline as BSSR, query for query — the paper's "all algorithms
//! output the same routes".

use skysr::core::baseline::{DijBaseline, PneBaseline};
use skysr::core::bssr::Bssr;
use skysr::core::SkylineRoute;
use skysr::prelude::*;

fn assert_same_scores(a: &[SkylineRoute], b: &[SkylineRoute], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: {a:?} vs {b:?}");
    for (x, y) in a.iter().zip(b) {
        assert!(
            (x.length.get() - y.length.get()).abs() <= 1e-6 * (1.0 + y.length.get().abs()),
            "{label}: {x:?} vs {y:?}"
        );
        assert!((x.semantic - y.semantic).abs() <= 1e-9, "{label}: {x:?} vs {y:?}");
    }
}

fn check_dataset(dataset: &Dataset, seq_len: usize, queries: usize, seed: u64) {
    let ctx = dataset.context();
    let workload = WorkloadSpec::new(seq_len).queries(queries).seed(seed).generate(dataset);
    let mut bssr = Bssr::new(&ctx);
    let mut dij = DijBaseline::new(&ctx);
    for (i, q) in workload.queries.iter().enumerate() {
        let b = bssr.run(q).unwrap();
        let d = dij.run(q).unwrap();
        assert_same_scores(&b.routes, &d.routes, &format!("{} dij q{i}", dataset.name));
        let mut pne = PneBaseline::new(&ctx);
        let p = pne.run(q).unwrap();
        assert_same_scores(&b.routes, &p.routes, &format!("{} pne q{i}", dataset.name));
    }
}

#[test]
fn cal_like_dataset_seq2() {
    let d = DatasetSpec::preset(Preset::CalSmall).scale(0.06).seed(31).generate();
    check_dataset(&d, 2, 6, 1);
}

#[test]
fn cal_like_dataset_seq3() {
    let d = DatasetSpec::preset(Preset::CalSmall).scale(0.06).seed(32).generate();
    check_dataset(&d, 3, 4, 2);
}

#[test]
fn foursquare_dataset_seq2() {
    let d = DatasetSpec::preset(Preset::TokyoSmall).scale(0.05).seed(33).generate();
    check_dataset(&d, 2, 5, 3);
}

#[test]
fn foursquare_dataset_seq3() {
    let d = DatasetSpec::preset(Preset::NycSmall).scale(0.03).seed(34).generate();
    check_dataset(&d, 3, 3, 4);
}

#[test]
fn baselines_report_combination_counts() {
    let d = DatasetSpec::preset(Preset::CalSmall).scale(0.06).seed(35).generate();
    let ctx = d.context();
    let w = WorkloadSpec::new(2).queries(1).seed(5).generate(&d);
    let mut dij = DijBaseline::new(&ctx);
    let r = dij.run(&w.queries[0]).unwrap();
    // Every position has at least the perfect level, and the Cal forest
    // guarantees at least two levels somewhere.
    assert!(r.combos >= 2, "{:?}", r.combos);
    assert_eq!(r.osr_calls, r.combos);
    assert!(r.total_time.as_nanos() > 0);
}
