//! `skysr-d` — the standalone SkySR network daemon.
//!
//! A thin shell over the same serve loop as `skysr-cli serve`: identical
//! flags, identical wire protocol. See [`skysr_cli::serve`].

use std::process::ExitCode;

use skysr_cli::args::Args;
use skysr_cli::serve;

fn main() -> ExitCode {
    // The daemon takes no command word; reuse the CLI parser by
    // synthesizing the one it would have seen as `skysr-cli serve`.
    let argv: Vec<String> =
        std::iter::once("serve".to_owned()).chain(std::env::args().skip(1)).collect();
    let run = Args::parse(argv).and_then(|mut args| serve::run_serve(&mut args));
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", serve::usage());
            ExitCode::FAILURE
        }
    }
}
