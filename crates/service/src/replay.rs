//! Workload replay: a Zipf-skewed query stream over a pool of distinct
//! generated queries, executed through a [`QueryService`].
//!
//! Real query traffic repeats itself — popular start areas and category
//! sequences recur, which is exactly what a cross-query result cache
//! exploits. The replay driver models that with the same skew machinery
//! the dataset generator uses (`skysr_data::zipf`): a pool of `distinct`
//! queries is generated per §7.1 ([`WorkloadSpec`]), then `total` requests
//! are drawn from the pool with Zipf(`zipf_exponent`) popularity, shuffled
//! into an arrival order, and pushed through the service.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use skysr_core::bssr::{Bssr, BssrConfig};
use skysr_core::query::SkySrQuery;
use skysr_core::route::SkylineRoute;
use skysr_data::dataset::Dataset;
use skysr_data::workload::WorkloadSpec;
use skysr_data::zipf::Zipf;

use crate::context::ServiceContext;
use crate::metrics::MetricsSnapshot;
use crate::service::{QueryService, ServiceConfig};

/// Parameters of one replay run.
#[derive(Clone, Debug)]
pub struct ReplaySpec {
    /// Total requests replayed.
    pub total: usize,
    /// Distinct queries in the pool the stream draws from.
    pub distinct: usize,
    /// Category-sequence length of generated queries.
    pub seq_len: usize,
    /// Zipf exponent of query popularity (0 = uniform, 1 = classic skew).
    pub zipf_exponent: f64,
    /// RNG seed for pool generation and stream sampling.
    pub seed: u64,
    /// Worker threads (0 = one per CPU).
    pub workers: usize,
    /// Result-cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Submission-queue capacity.
    pub queue_capacity: usize,
    /// Engine configuration.
    pub engine: BssrConfig,
    /// Also run every request sequentially on one thread and compare
    /// skylines route-by-route.
    pub verify: bool,
}

impl Default for ReplaySpec {
    fn default() -> ReplaySpec {
        ReplaySpec {
            total: 1000,
            distinct: 100,
            seq_len: 3,
            zipf_exponent: 1.0,
            seed: 7,
            workers: 4,
            cache_capacity: 1024,
            queue_capacity: 256,
            engine: BssrConfig::default(),
            verify: false,
        }
    }
}

/// Outcome of a replay run.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Requests replayed.
    pub total: usize,
    /// Distinct queries in the pool.
    pub distinct: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the concurrent replay.
    pub wall: Duration,
    /// Service metrics over the replay window.
    pub metrics: MetricsSnapshot,
    /// `Some(mismatches)` when verification ran: the number of requests
    /// whose concurrent skyline differed from the sequential one.
    pub verify_mismatches: Option<usize>,
}

impl std::fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "replayed    {} requests ({} distinct) on {} workers in {:.2} s",
            self.total,
            self.distinct,
            self.workers,
            self.wall.as_secs_f64()
        )?;
        write!(f, "{}", self.metrics)?;
        if let Some(m) = self.verify_mismatches {
            write!(f, "\nverify      ")?;
            if m == 0 {
                write!(f, "OK — concurrent skylines identical to sequential execution")?;
            } else {
                write!(f, "FAILED — {m} mismatching request(s)")?;
            }
        }
        Ok(())
    }
}

/// Builds the request stream: `spec.total` indexes into a pool of
/// `spec.distinct` queries, Zipf-popular and shuffled into arrival order.
fn request_stream(spec: &ReplaySpec) -> Vec<usize> {
    let zipf = Zipf::new(spec.distinct, spec.zipf_exponent);
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x7e_706c_6179); // "replay"
    let mut stream: Vec<usize> = (0..spec.total).map(|_| zipf.sample(&mut rng)).collect();
    stream.shuffle(&mut rng);
    stream
}

/// Replays `spec` against `dataset` and reports service metrics.
///
/// The dataset is consumed: its graph, forest and PoI table become the
/// shared [`ServiceContext`]. When `spec.verify` is set, every request is
/// also answered by a sequential [`Bssr`] run and the skylines compared
/// exactly.
///
/// # Panics
/// If `spec.total` or `spec.distinct` is zero, or the dataset cannot
/// populate a workload of `spec.seq_len` (see [`WorkloadSpec::generate`]).
pub fn replay(dataset: Dataset, spec: &ReplaySpec) -> ReplayReport {
    assert!(spec.total > 0 && spec.distinct > 0, "replay needs a non-empty stream");
    let pool = WorkloadSpec::new(spec.seq_len)
        .queries(spec.distinct)
        .seed(spec.seed)
        .generate(&dataset)
        .queries;
    let stream = request_stream(spec);

    let ctx = Arc::new(ServiceContext::from_dataset(dataset));
    let service = QueryService::new(
        Arc::clone(&ctx),
        ServiceConfig {
            workers: spec.workers,
            queue_capacity: spec.queue_capacity,
            cache_capacity: spec.cache_capacity,
            engine: spec.engine,
        },
    );
    let workers = service.config().workers;

    let t0 = Instant::now();
    let outcomes = service.run_batch(stream.iter().map(|&i| pool[i].clone()));
    let wall = t0.elapsed();
    let metrics = service.metrics();
    drop(service);

    let verify_mismatches = spec.verify.then(|| {
        let sequential = sequential_skylines(&ctx, &pool, spec.engine);
        stream
            .iter()
            .zip(&outcomes)
            .filter(|&(&i, outcome)| match outcome {
                Ok(response) => response.routes.as_ref() != sequential[i].as_slice(),
                Err(_) => true,
            })
            .count()
    });

    ReplayReport {
        total: spec.total,
        distinct: spec.distinct,
        workers,
        wall,
        metrics,
        verify_mismatches,
    }
}

/// One-threaded reference answers for every pool query.
fn sequential_skylines(
    ctx: &ServiceContext,
    pool: &[SkySrQuery],
    engine: BssrConfig,
) -> Vec<Vec<SkylineRoute>> {
    let qctx = ctx.query_context();
    let mut bssr = Bssr::with_config(&qctx, engine);
    pool.iter().map(|q| bssr.run(q).expect("generated queries are valid").routes).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_skewed_and_deterministic() {
        let spec = ReplaySpec { total: 2_000, distinct: 50, ..ReplaySpec::default() };
        let a = request_stream(&spec);
        let b = request_stream(&spec);
        assert_eq!(a, b);
        assert!(a.iter().all(|&i| i < 50));
        // Zipf(1) over 50 ranks: rank 0 draws ~22% of all requests.
        let zeros = a.iter().filter(|&&i| i == 0).count();
        assert!(zeros > a.len() / 10, "rank 0 appeared only {zeros} times");
        let spec2 = ReplaySpec { seed: 8, ..spec };
        assert_ne!(request_stream(&spec2), a);
    }

    #[test]
    fn uniform_exponent_spreads_requests() {
        let spec =
            ReplaySpec { total: 5_000, distinct: 10, zipf_exponent: 0.0, ..ReplaySpec::default() };
        let stream = request_stream(&spec);
        for rank in 0..10 {
            let n = stream.iter().filter(|&&i| i == rank).count();
            assert!((250..=750).contains(&n), "rank {rank}: {n}");
        }
    }
}
