//! k-skyband sequenced routes — the standard skyline relaxation from the
//! literature the paper builds on (Börzsöny et al. \[2\]): return every
//! sequenced route dominated by **fewer than k** other routes. `k = 1` is
//! exactly the SkySR query; larger `k` gives the user near-Pareto
//! alternatives (useful when, as §7.4 notes, the plain skyline can be
//! small).
//!
//! The bulk search carries over from BSSR with one change to the pruning
//! theory: a (partial) route may be discarded only when **at least k**
//! already-found sequenced routes dominate-or-tie its score pair —
//! equivalently, when its length reaches the *k-th smallest* qualifying
//! member length, `l̄_k(s) = k-min { l(R') | s(R') ≤ s }`. Completed
//! routes are never evicted during the search (a later route cannot reduce
//! an earlier route's dominator count); the final skyband is filtered from
//! the collected pool, which is provably a superset of the true k-skyband:
//! any pruned route had ≥ k pool dominators, and dominance is transitive,
//! so pruned routes can never hide a needed dominator. Score-equivalent
//! duplicates collapse to the first found (as in Definition 4.1's minimal
//! set).
//!
//! Lemma 5.5's path-similarity shortcut exhibits only a *single*
//! dominating replacement, which no longer justifies discarding a route
//! for `k > 1`, so it stays off here.

use std::collections::BinaryHeap;
use std::time::Instant;

use skysr_graph::{dijkstra_with, Cost, DijkstraWorkspace, Settle, VertexId};

use crate::context::QueryContext;
use crate::error::QueryError;
use crate::prepared::PreparedQuery;
use crate::query::SkySrQuery;
use crate::route::{approx_le, PartialRoute, SkylineRoute};
use crate::stats::QueryStats;

/// Pool of completed routes with k-threshold queries.
#[derive(Debug, Default)]
struct SkybandPool {
    routes: Vec<SkylineRoute>,
}

impl SkybandPool {
    /// Number of members dominating-or-tying the score pair.
    fn covering_count(&self, length: Cost, semantic: f64) -> usize {
        self.routes
            .iter()
            .filter(|r| approx_le(r.length.get(), length.get()) && approx_le(r.semantic, semantic))
            .count()
    }

    /// `l̄_k(s)`: the k-th smallest member length among members with
    /// semantic ≤ `semantic`; `+∞` if fewer than `k` qualify.
    fn threshold_k(&self, semantic: f64, k: usize) -> Cost {
        let mut lens: Vec<Cost> =
            self.routes.iter().filter(|r| r.semantic <= semantic).map(|r| r.length).collect();
        if lens.len() < k {
            return Cost::INFINITY;
        }
        lens.sort_unstable();
        lens[k - 1]
    }

    /// Inserts unless ≥ k members already cover the score pair. Note that
    /// *ties count as cover*: score-equivalent routes are distinct
    /// dominator-count contributors in the skyband definition, so up to k
    /// equivalents are retained (more can never change any decision); the
    /// final output keeps one representative per score (Definition 4.1's
    /// minimal-set convention).
    fn insert(&mut self, route: SkylineRoute, k: usize) -> bool {
        if self.covering_count(route.length, route.semantic) >= k {
            return false;
        }
        self.routes.push(route);
        true
    }

    /// Final exact filter: members dominated by fewer than `k` pool
    /// members, one representative per score pair.
    fn into_skyband(self, k: usize) -> Vec<SkylineRoute> {
        let mut out: Vec<SkylineRoute> = Vec::new();
        for r in &self.routes {
            if self.routes.iter().filter(|o| o.dominates(r)).count() < k
                && !out.iter().any(|o| o.equivalent(r))
            {
                out.push(r.clone());
            }
        }
        out.sort_by(|a, b| a.length.cmp(&b.length).then(a.semantic.total_cmp(&b.semantic)));
        out
    }
}

struct Entry(PartialRoute);

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .len()
            .cmp(&other.0.len())
            .then_with(|| Cost::new(other.0.semantic()).cmp(&Cost::new(self.0.semantic())))
            .then_with(|| other.0.length().cmp(&self.0.length()))
    }
}

/// A k-skyband sequenced-route query.
#[derive(Clone, Debug, PartialEq)]
pub struct SkybandQuery {
    /// The underlying start + category sequence.
    pub query: SkySrQuery,
    /// Dominance budget: routes with fewer than `k` dominators qualify
    /// (`k = 1` reproduces the SkySR query).
    pub k: usize,
}

/// Result of a skyband query.
#[derive(Clone, Debug)]
pub struct SkybandResult {
    /// The k-skyband, sorted by (length, semantic).
    pub routes: Vec<SkylineRoute>,
    /// Instrumentation.
    pub stats: QueryStats,
}

impl SkybandQuery {
    /// Convenience constructor.
    pub fn new(query: SkySrQuery, k: usize) -> SkybandQuery {
        SkybandQuery { query, k }
    }

    /// Runs the bulk k-skyband search.
    pub fn run(&self, ctx: &QueryContext<'_>) -> Result<SkybandResult, QueryError> {
        assert!(self.k >= 1, "k must be at least 1");
        let t0 = Instant::now();
        let pq = PreparedQuery::prepare(ctx, &self.query)?;
        let seq_len = pq.len();
        let mut stats = QueryStats::default();
        if pq.unmatchable_position().is_some() {
            return Ok(SkybandResult { routes: Vec::new(), stats });
        }
        let mut pool = SkybandPool::default();
        let mut ws = DijkstraWorkspace::new(ctx.graph.num_vertices());
        let mut queue: BinaryHeap<Entry> = BinaryHeap::new();
        self.expand(
            ctx,
            &pq,
            &PartialRoute::empty(),
            seq_len,
            &mut ws,
            &mut queue,
            &mut pool,
            &mut stats,
        );
        while let Some(Entry(route)) = queue.pop() {
            if route.length() >= pool.threshold_k(route.semantic(), self.k) {
                stats.threshold_prunes += 1;
                continue;
            }
            self.expand(ctx, &pq, &route, seq_len, &mut ws, &mut queue, &mut pool, &mut stats);
        }
        let routes = pool.into_skyband(self.k);
        stats.total_time = t0.elapsed();
        Ok(SkybandResult { routes, stats })
    }

    #[allow(clippy::too_many_arguments)]
    fn expand(
        &self,
        ctx: &QueryContext<'_>,
        pq: &PreparedQuery,
        route: &PartialRoute,
        seq_len: usize,
        ws: &mut DijkstraWorkspace,
        queue: &mut BinaryHeap<Entry>,
        pool: &mut SkybandPool,
        stats: &mut QueryStats,
    ) {
        let pos = route.len();
        let position = &pq.positions[pos];
        let source = route.last_poi().unwrap_or(pq.start);
        let base = route.length();
        stats.mdijkstra_runs += 1;
        let threshold = pool.threshold_k(route.semantic(), self.k);
        let mut found: Vec<(VertexId, Cost, f64)> = Vec::new();
        let s = dijkstra_with(ctx.graph, ws, &[(source, Cost::ZERO)], |u, d| {
            if base + d >= threshold {
                return Settle::Stop;
            }
            let sim = position.sim_of(ctx, u);
            if sim > 0.0 && !route.contains(u) {
                found.push((u, d, sim));
            }
            Settle::Continue
        });
        stats.search.merge(&s);
        for (u, d, sim) in found {
            let rt = route.extend(u, d, sim);
            if rt.length() >= pool.threshold_k(rt.semantic(), self.k) {
                stats.threshold_prunes += 1;
                continue;
            }
            if rt.len() == seq_len {
                pool.insert(rt.into_skyline_route(), self.k);
            } else {
                queue.push(Entry(rt));
                stats.routes_enqueued += 1;
                stats.queue_peak = stats.queue_peak.max(queue.len());
            }
        }
    }
}

/// Exhaustive oracle: enumerate all sequenced routes, count strict
/// dominators, keep those with fewer than `k`, collapsing score twins.
pub fn naive_skyband(
    ctx: &QueryContext<'_>,
    query: &SkySrQuery,
    k: usize,
    limit: u64,
) -> Result<Vec<SkylineRoute>, QueryError> {
    let pq = PreparedQuery::prepare(ctx, query)?;
    let all = crate::naive::naive_all_routes(ctx, &pq, limit);
    let mut out: Vec<SkylineRoute> = Vec::new();
    for r in &all {
        if all.iter().filter(|o| o.dominates(r)).count() < k && !out.iter().any(|o| o.equivalent(r))
        {
            out.push(r.clone());
        }
    }
    out.sort_by(|a, b| a.length.cmp(&b.length).then(a.semantic.total_cmp(&b.semantic)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bssr::Bssr;
    use crate::paper_example::PaperExample;

    fn assert_same(got: &[SkylineRoute], want: &[SkylineRoute]) {
        assert_eq!(got.len(), want.len(), "{got:?}\nvs\n{want:?}");
        for (g, w) in got.iter().zip(want) {
            assert!((g.length.get() - w.length.get()).abs() < 1e-9);
            assert!((g.semantic - w.semantic).abs() < 1e-12);
        }
    }

    #[test]
    fn k1_equals_skyline() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let sky = Bssr::new(&ctx).run(&ex.query()).unwrap();
        let band = SkybandQuery::new(ex.query(), 1).run(&ctx).unwrap();
        assert_same(&band.routes, &sky.routes);
    }

    #[test]
    fn k2_matches_oracle_and_extends_k1() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        for k in [2usize, 3] {
            let band = SkybandQuery::new(ex.query(), k).run(&ctx).unwrap();
            let want = naive_skyband(&ctx, &ex.query(), k, 1_000_000).unwrap();
            assert_same(&band.routes, &want);
        }
        let k1 = SkybandQuery::new(ex.query(), 1).run(&ctx).unwrap();
        let k2 = SkybandQuery::new(ex.query(), 2).run(&ctx).unwrap();
        let k3 = SkybandQuery::new(ex.query(), 3).run(&ctx).unwrap();
        assert!(k2.routes.len() >= k1.routes.len());
        assert!(k3.routes.len() >= k2.routes.len());
        // On the fixture, k = 2 surfaces near-optimal alternatives like
        // ⟨p1, p9, p8⟩ (11.5, 0.5) and ⟨p2, p5, p7⟩ (12, 0.5).
        assert!(k2.routes.iter().any(|r| (r.length.get() - 11.5).abs() < 1e-9));
    }

    #[test]
    fn skyband_membership_counts_are_respected() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let band = SkybandQuery::new(ex.query(), 2).run(&ctx).unwrap();
        // Every member is dominated by at most one other member.
        for r in &band.routes {
            let dominators = band.routes.iter().filter(|o| o.dominates(r)).count();
            assert!(dominators < 2, "{r:?} has {dominators} dominators");
        }
    }

    #[test]
    fn single_position_skyband() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let gift = ex.forest.by_name("Gift Shop").unwrap();
        let q = SkySrQuery::new(ex.vq, [gift]);
        for k in 1..=3 {
            let band = SkybandQuery::new(q.clone(), k).run(&ctx).unwrap();
            let want = naive_skyband(&ctx, &q, k, 1_000_000).unwrap();
            assert_same(&band.routes, &want);
        }
    }
}
