//! The `skysr-d` serve loop, shared by the standalone daemon binary and
//! `skysr-cli serve`.
//!
//! Builds (or loads) a dataset, stands up a [`Service`] over it (or, with
//! `--shards N`, N per-region services behind a
//! [`Router`](skysr_service::Router)), binds the
//! non-blocking TCP server and blocks until a client sends the `Shutdown`
//! frame — at which point the daemon stops accepting, drains every
//! in-flight query, answers the requester with a final metrics snapshot
//! and exits. A multi-shard daemon speaks protocol v2: its `Welcome`
//! advertises the region registry, `Submit` frames may carry a region id,
//! and v1 clients are still served by the default shard (region 0).

use std::sync::Arc;

use skysr_core::bssr::BssrConfig;
use skysr_service::{
    QueryService, Server, ServerConfig, Service, ServiceConfig, ServiceContext, ShardRegistry,
    TelemetryConfig,
};

use crate::args::Args;
use crate::city::{dataset_args, load_or_generate, parse_flag, CityArgs};

/// Usage text of the standalone `skysr-d` binary (the `serve` flags).
pub fn usage() -> &'static str {
    "usage:\n  \
     skysr-d [FILE] [--preset <tokyo|nyc|cal|tokyo-small|nyc-small|cal-small>]\n  \
     \t[--scale F] [--seed N] [--addr HOST:PORT] [--workers N] [--cache N]\n  \
     \t[--queue N] [--coalesce true|false] [--prefix-reuse true|false]\n  \
     \t[--ancestor-reuse true|false] [--suffix-reuse true|false]\n  \
     \t[--repair true|false] [--admission true|false] [--shards N]\n\n\
     Serves SkySR queries over the skysr-d wire protocol until a client\n\
     sends Shutdown (e.g. `skysr-cli shutdown --connect HOST:PORT`).\n\
     --shards N serves N regions (datasets seeded --seed, --seed+1, ...)\n\
     behind one multi-tenant router on a single socket.\n\
     `skysr-cli serve` accepts the same flags."
}

/// Runs the daemon: bind, announce, serve until drained.
pub fn run_serve(args: &mut Args) -> Result<(), String> {
    let city = dataset_args(args)?;
    let addr = args.optional("addr").unwrap_or_else(|| "127.0.0.1:7878".to_owned());
    let config = ServiceConfig {
        workers: parse_flag(args, "workers", 4)?,
        queue_capacity: parse_flag(args, "queue", 256)?,
        cache_capacity: parse_flag(args, "cache", 1024)?,
        coalesce: parse_flag(args, "coalesce", true)?,
        prefix_reuse: parse_flag(args, "prefix-reuse", true)?,
        ancestor_reuse: parse_flag(args, "ancestor-reuse", true)?,
        suffix_reuse: parse_flag(args, "suffix-reuse", true)?,
        repair: parse_flag(args, "repair", false)?,
        admission: parse_flag(args, "admission", false)?,
        engine: BssrConfig::default(),
        telemetry: TelemetryConfig::default(),
        ..ServiceConfig::default()
    };
    let shards: usize = parse_flag(args, "shards", 1)?;
    args.finish()?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    if shards > 1 {
        if city.file.is_some() {
            return Err("--shards generates one dataset per region and conflicts with a dataset \
                 FILE argument"
                .into());
        }
        let mut registry = ShardRegistry::new();
        let mut stats = Vec::with_capacity(shards);
        for i in 0..shards {
            let region = CityArgs {
                file: None,
                preset: city.preset,
                scale: city.scale,
                seed: city.seed + i as u64,
            };
            let dataset = load_or_generate(&region)?;
            let (v, p, e) = dataset.stats();
            stats.push(format!("region-{i}: |V|={v} |P|={p} |E|={e}"));
            let ctx = Arc::new(ServiceContext::from_dataset(dataset));
            registry.add(format!("region-{i}"), ctx, config.clone());
        }
        let router = Arc::new(registry.into_router());
        let mut server = Server::spawn(addr.as_str(), Arc::clone(&router), ServerConfig::default())
            .map_err(|e| format!("cannot bind {addr}: {e}"))?;
        // The listening line goes to stdout so scripts (CI) can wait on it.
        println!(
            "skysr-d listening on {} ({shards} shards; {})",
            server.local_addr(),
            stats.join("; ")
        );
        server.join();
        let metrics = router.metrics();
        eprintln!(
            "skysr-d drained and stopped: {} completed, {} executed, {} cache hits, {} coalesced \
             across {shards} shards ({} misrouted)",
            metrics.completed,
            metrics.executed,
            metrics.cache.hits,
            metrics.coalesced,
            router.misrouted()
        );
        return Ok(());
    }
    let dataset = load_or_generate(&city)?;
    let (v, p, e) = dataset.stats();
    let name = dataset.name.clone();
    let ctx = Arc::new(ServiceContext::from_dataset(dataset));
    let service = Arc::new(Service::new(ctx, config));
    let mut server = Server::spawn(addr.as_str(), Arc::clone(&service), ServerConfig::default())
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    // The listening line goes to stdout so scripts (CI) can wait on it.
    println!("skysr-d listening on {} ({name}: |V|={v} |P|={p} |E|={e})", server.local_addr());
    server.join();
    let metrics = service.metrics();
    eprintln!(
        "skysr-d drained and stopped: {} completed, {} executed, {} cache hits, {} coalesced",
        metrics.completed, metrics.executed, metrics.cache.hits, metrics.coalesced
    );
    Ok(())
}
