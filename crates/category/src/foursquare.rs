//! Built-in Foursquare-style taxonomy.
//!
//! The Tokyo/NYC datasets in the paper use the Foursquare category tree
//! (§7.1, "the number of category trees in Foursquare is 10"). This module
//! ships a 10-tree forest modelled on the public Foursquare hierarchy —
//! enough breadth/depth to reproduce the semantic-similarity behaviour the
//! experiments rely on, including every category the paper's examples name
//! (cupcake shop, dessert shop, art museum, jazz club, beer garden, sushi
//! restaurant, sake bar, …).

use crate::tree::{CategoryForest, ForestBuilder};

/// Builds the 10-tree Foursquare-style forest.
pub fn foursquare_forest() -> CategoryForest {
    let mut b = ForestBuilder::new();

    // 1. Food
    let food = b.add_root("Food");
    let asian = b.add_child(food, "Asian Restaurant");
    let japanese = b.add_child(asian, "Japanese Restaurant");
    b.add_child(japanese, "Sushi Restaurant");
    b.add_child(japanese, "Ramen Restaurant");
    b.add_child(asian, "Chinese Restaurant");
    b.add_child(asian, "Thai Restaurant");
    let italian = b.add_child(food, "Italian Restaurant");
    b.add_child(italian, "Pizza Place");
    b.add_child(food, "American Restaurant");
    b.add_child(food, "Mexican Restaurant");
    let bakery = b.add_child(food, "Bakery");
    b.add_child(bakery, "Bagel Shop");
    let dessert = b.add_child(food, "Dessert Shop");
    b.add_child(dessert, "Cupcake Shop");
    b.add_child(dessert, "Ice Cream Shop");
    b.add_child(dessert, "Frozen Yogurt Shop");
    let cafe = b.add_child(food, "Cafe");
    b.add_child(cafe, "Coffee Shop");
    b.add_child(cafe, "Tea Room");

    // 2. Shop & Service
    let shop = b.add_root("Shop & Service");
    b.add_child(shop, "Gift Shop");
    b.add_child(shop, "Hobby Shop");
    let clothing = b.add_child(shop, "Clothing Store");
    b.add_child(clothing, "Men's Store");
    b.add_child(clothing, "Women's Store");
    b.add_child(clothing, "Shoe Store");
    b.add_child(shop, "Bookstore");
    b.add_child(shop, "Electronics Store");
    let grocery = b.add_child(shop, "Food & Drink Shop");
    b.add_child(grocery, "Grocery Store");
    b.add_child(grocery, "Wine Shop");
    b.add_child(grocery, "Liquor Store");
    b.add_child(shop, "Department Store");
    b.add_child(shop, "Pharmacy");
    b.add_child(shop, "Flower Shop");

    // 3. Arts & Entertainment
    let arts = b.add_root("Arts & Entertainment");
    let museum = b.add_child(arts, "Museum");
    b.add_child(museum, "Art Museum");
    b.add_child(museum, "History Museum");
    b.add_child(museum, "Science Museum");
    let music = b.add_child(arts, "Music Venue");
    b.add_child(music, "Jazz Club");
    b.add_child(music, "Rock Club");
    b.add_child(arts, "Movie Theater");
    b.add_child(arts, "Theater");
    b.add_child(arts, "Art Gallery");
    b.add_child(arts, "Aquarium");
    b.add_child(arts, "Zoo");
    b.add_child(arts, "Casino");

    // 4. Nightlife Spot
    let night = b.add_root("Nightlife Spot");
    let bar = b.add_child(night, "Bar");
    b.add_child(bar, "Beer Garden");
    b.add_child(bar, "Sake Bar");
    b.add_child(bar, "Wine Bar");
    b.add_child(bar, "Cocktail Bar");
    b.add_child(bar, "Pub");
    b.add_child(night, "Nightclub");
    b.add_child(night, "Lounge");
    b.add_child(night, "Karaoke Box");

    // 5. Outdoors & Recreation
    let outdoors = b.add_root("Outdoors & Recreation");
    let park = b.add_child(outdoors, "Park");
    b.add_child(park, "Dog Run");
    b.add_child(park, "Playground");
    b.add_child(outdoors, "Garden");
    b.add_child(outdoors, "Beach");
    let gym = b.add_child(outdoors, "Gym / Fitness Center");
    b.add_child(gym, "Yoga Studio");
    b.add_child(gym, "Climbing Gym");
    b.add_child(outdoors, "Scenic Lookout");
    b.add_child(outdoors, "Stadium");

    // 6. Travel & Transport
    let travel = b.add_root("Travel & Transport");
    let station = b.add_child(travel, "Train Station");
    b.add_child(station, "Metro Station");
    b.add_child(station, "Platform");
    b.add_child(travel, "Bus Station");
    b.add_child(travel, "Airport");
    let hotel = b.add_child(travel, "Hotel");
    b.add_child(hotel, "Hostel");
    b.add_child(hotel, "Resort");
    b.add_child(travel, "Taxi Stand");
    b.add_child(travel, "Rental Car Location");

    // 7. College & University
    let college = b.add_root("College & University");
    b.add_child(college, "College Academic Building");
    b.add_child(college, "University");
    b.add_child(college, "Community College");
    b.add_child(college, "College Library");
    b.add_child(college, "College Cafeteria");

    // 8. Professional & Other Places
    let prof = b.add_root("Professional & Other Places");
    b.add_child(prof, "Office");
    let medical = b.add_child(prof, "Medical Center");
    b.add_child(medical, "Hospital");
    b.add_child(medical, "Dentist's Office");
    b.add_child(prof, "Convention Center");
    b.add_child(prof, "Library");
    b.add_child(prof, "Post Office");
    b.add_child(prof, "School");
    b.add_child(prof, "Government Building");

    // 9. Residence
    let residence = b.add_root("Residence");
    b.add_child(residence, "Apartment Building");
    b.add_child(residence, "Housing Development");
    b.add_child(residence, "Residential Building");

    // 10. Event
    let event = b.add_root("Event");
    b.add_child(event, "Festival");
    b.add_child(event, "Street Fair");
    b.add_child(event, "Concert");
    b.add_child(event, "Market");

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::{Similarity, WuPalmer};

    #[test]
    fn has_ten_trees() {
        let f = foursquare_forest();
        assert_eq!(f.num_trees(), 10);
    }

    #[test]
    fn paper_example_categories_exist() {
        let f = foursquare_forest();
        for name in [
            "Cupcake Shop",
            "Dessert Shop",
            "Art Museum",
            "Museum",
            "Jazz Club",
            "Music Venue",
            "Beer Garden",
            "Sushi Restaurant",
            "Sake Bar",
            "Bar",
            "Gift Shop",
            "Hobby Shop",
            "Asian Restaurant",
            "Italian Restaurant",
        ] {
            assert!(f.by_name(name).is_some(), "missing category {name}");
        }
    }

    #[test]
    fn table1_semantic_relationships_hold() {
        // Table 1 depends on: Cupcake Shop ~ Dessert Shop (same tree),
        // Art Museum ~ Museum (ancestor), Jazz Club ~ Music Venue
        // (ancestor).
        let f = foursquare_forest();
        let wp = WuPalmer;
        let cup = f.by_name("Cupcake Shop").unwrap();
        let des = f.by_name("Dessert Shop").unwrap();
        let artm = f.by_name("Art Museum").unwrap();
        let mus = f.by_name("Museum").unwrap();
        let jazz = f.by_name("Jazz Club").unwrap();
        let mv = f.by_name("Music Venue").unwrap();
        assert!(wp.sim(&f, cup, des) > 0.0 && wp.sim(&f, cup, des) < 1.0);
        assert_eq!(f.parent(artm), Some(mus));
        assert_eq!(f.parent(jazz), Some(mv));
    }

    #[test]
    fn table9_relationships_hold() {
        // §7.5: "Bar includes Beer Garden and Sake bar; Japanese restaurant
        // includes Sushi restaurant".
        let f = foursquare_forest();
        let bar = f.by_name("Bar").unwrap();
        let beer = f.by_name("Beer Garden").unwrap();
        let sake = f.by_name("Sake Bar").unwrap();
        let jp = f.by_name("Japanese Restaurant").unwrap();
        let sushi = f.by_name("Sushi Restaurant").unwrap();
        assert!(f.is_ancestor_or_self(bar, beer));
        assert!(f.is_ancestor_or_self(bar, sake));
        assert!(f.is_ancestor_or_self(jp, sushi));
    }

    #[test]
    fn forest_has_reasonable_size_and_depth() {
        let f = foursquare_forest();
        assert!(f.num_categories() > 100);
        assert!(f.max_depth() >= 4);
        assert!(f.leaves().count() > 60);
    }

    #[test]
    fn cross_tree_similarity_zero() {
        let f = foursquare_forest();
        let sushi = f.by_name("Sushi Restaurant").unwrap();
        let gift = f.by_name("Gift Shop").unwrap();
        assert_eq!(WuPalmer.sim(&f, sushi, gift), 0.0);
    }
}
