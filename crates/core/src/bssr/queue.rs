//! The route priority queue `Q_b` (Algorithm 1) and its ordering policies.
//!
//! Optimisation 2 (§5.3.2): to tighten the upper bound quickly, BSSR
//! dequeues the route with the **largest size** first, breaking ties by
//! **smallest semantic score**, then **smallest length score**. The
//! conventional *distance-based* ordering (smallest length first) is kept
//! for the Table 8 ablation.

use std::collections::BinaryHeap;

use skysr_graph::Cost;

use crate::route::PartialRoute;

/// Which ordering `Q_b` uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum QueuePolicy {
    /// §5.3.2: (|R| desc, s(R) asc, l(R) asc).
    #[default]
    Proposed,
    /// Conventional: l(R) asc.
    DistanceBased,
}

struct ProposedEntry(PartialRoute);

impl PartialEq for ProposedEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for ProposedEntry {}
impl PartialOrd for ProposedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ProposedEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: "greater" pops first.
        self.0
            .len()
            .cmp(&other.0.len()) // larger size first
            .then_with(|| {
                Cost::new(other.0.semantic()).cmp(&Cost::new(self.0.semantic()))
                // smaller semantic first
            })
            .then_with(|| other.0.length().cmp(&self.0.length())) // smaller length first
    }
}

struct DistanceEntry(PartialRoute);

impl PartialEq for DistanceEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.length() == other.0.length()
    }
}
impl Eq for DistanceEntry {}
impl PartialOrd for DistanceEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DistanceEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.length().cmp(&self.0.length()) // smaller length first
    }
}

/// The route queue `Q_b`.
pub struct RouteQueue {
    proposed: BinaryHeap<ProposedEntry>,
    distance: BinaryHeap<DistanceEntry>,
    policy: QueuePolicy,
}

impl RouteQueue {
    /// Empty queue with the given policy.
    pub fn new(policy: QueuePolicy) -> RouteQueue {
        RouteQueue { proposed: BinaryHeap::new(), distance: BinaryHeap::new(), policy }
    }

    /// Enqueues a partial route.
    pub fn push(&mut self, route: PartialRoute) {
        match self.policy {
            QueuePolicy::Proposed => self.proposed.push(ProposedEntry(route)),
            QueuePolicy::DistanceBased => self.distance.push(DistanceEntry(route)),
        }
    }

    /// Dequeues the highest-priority route.
    pub fn pop(&mut self) -> Option<PartialRoute> {
        match self.policy {
            QueuePolicy::Proposed => self.proposed.pop().map(|e| e.0),
            QueuePolicy::DistanceBased => self.distance.pop().map(|e| e.0),
        }
    }

    /// Number of queued routes.
    pub fn len(&self) -> usize {
        match self.policy {
            QueuePolicy::Proposed => self.proposed.len(),
            QueuePolicy::DistanceBased => self.distance.len(),
        }
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysr_graph::VertexId;

    fn route(pois: &[(u32, f64, f64)]) -> PartialRoute {
        // (vertex, hop cost, sim) triples.
        let mut r = PartialRoute::empty();
        for &(v, c, s) in pois {
            r = r.extend(VertexId(v), Cost::new(c), s);
        }
        r
    }

    #[test]
    fn proposed_prefers_longer_routes() {
        let mut q = RouteQueue::new(QueuePolicy::Proposed);
        q.push(route(&[(1, 1.0, 1.0)]));
        q.push(route(&[(2, 50.0, 1.0), (3, 50.0, 1.0)]));
        assert_eq!(q.pop().unwrap().len(), 2);
        assert_eq!(q.pop().unwrap().len(), 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn proposed_ties_break_by_semantic_then_length() {
        let mut q = RouteQueue::new(QueuePolicy::Proposed);
        q.push(route(&[(1, 5.0, 0.5)])); // sem 0.5
        q.push(route(&[(2, 9.0, 1.0)])); // sem 0.0, longer
        q.push(route(&[(3, 4.0, 1.0)])); // sem 0.0, shorter
        assert_eq!(q.pop().unwrap().pois(), vec![VertexId(3)]);
        assert_eq!(q.pop().unwrap().pois(), vec![VertexId(2)]);
        assert_eq!(q.pop().unwrap().pois(), vec![VertexId(1)]);
    }

    #[test]
    fn distance_based_orders_by_length_only() {
        let mut q = RouteQueue::new(QueuePolicy::DistanceBased);
        q.push(route(&[(1, 10.0, 1.0), (2, 10.0, 1.0)]));
        q.push(route(&[(3, 5.0, 0.2)]));
        assert_eq!(q.pop().unwrap().pois(), vec![VertexId(3)]);
        assert_eq!(q.pop().unwrap().len(), 2);
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = RouteQueue::new(QueuePolicy::Proposed);
        assert!(q.is_empty());
        q.push(route(&[(1, 1.0, 1.0)]));
        q.push(route(&[(2, 2.0, 1.0)]));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
