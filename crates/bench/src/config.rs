//! Environment-driven experiment configuration.

use skysr_data::dataset::{Dataset, DatasetSpec, Preset};

/// Harness configuration (all overridable via environment variables).
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Queries per (dataset, |S_q|) cell — `SKYSR_QUERIES` (default 12;
    /// the paper uses 100, set `SKYSR_QUERIES=100` to match).
    pub queries: usize,
    /// Queries per cell for the exponential baselines —
    /// `SKYSR_BASELINE_QUERIES` (default 4).
    pub baseline_queries: usize,
    /// Largest |S_q| — `SKYSR_SEQ_MAX` (default 5).
    pub seq_max: usize,
    /// OSR-combination cap for baselines — `SKYSR_BASELINE_MAX_COMBOS`
    /// (default 3000). Cells needing more are reported as capped, the
    /// harness's analogue of the paper's "not finished after a month".
    pub baseline_max_combos: u64,
    /// Scale multiplier on the `*Small` presets — `SKYSR_SCALE`
    /// (default 1.0).
    pub scale: f64,
    /// Use the paper's full-size presets — `SKYSR_FULL=1` (default off).
    pub full: bool,
    /// Workload seed — `SKYSR_SEED` (default 7).
    pub seed: u64,
}

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig::from_env()
    }
}

impl ExpConfig {
    /// Reads the configuration from the environment.
    pub fn from_env() -> ExpConfig {
        ExpConfig {
            queries: env_parse("SKYSR_QUERIES", 12),
            baseline_queries: env_parse("SKYSR_BASELINE_QUERIES", 4),
            seq_max: env_parse("SKYSR_SEQ_MAX", 5usize).clamp(2, 7),
            baseline_max_combos: env_parse("SKYSR_BASELINE_MAX_COMBOS", 3000),
            scale: env_parse("SKYSR_SCALE", 1.0f64),
            full: env_parse("SKYSR_FULL", 0u8) == 1,
            seed: env_parse("SKYSR_SEED", 7),
        }
    }

    /// Generates the three experiment datasets (Table 5 analogues).
    pub fn datasets(&self) -> Vec<Dataset> {
        let presets = if self.full {
            [Preset::Tokyo, Preset::Nyc, Preset::Cal]
        } else {
            [Preset::TokyoSmall, Preset::NycSmall, Preset::CalSmall]
        };
        let specs: Vec<DatasetSpec> = presets
            .into_iter()
            .map(|p| {
                let mut spec = DatasetSpec::preset(p);
                if !self.full && (self.scale - 1.0).abs() > 1e-9 {
                    spec = spec.scale(self.scale);
                }
                spec
            })
            .collect();
        // The three cities are independent: generate them in parallel.
        std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .iter()
                .map(|spec| {
                    scope.spawn(move || {
                        eprintln!("generating {} ...", spec.name);
                        spec.generate()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("generation panicked")).collect()
        })
    }

    /// Prints the Table 5-style header for `datasets`.
    pub fn print_dataset_table(datasets: &[Dataset]) {
        let mut t = crate::table::Table::new(vec!["Dataset", "|V|", "|P|", "|E|"]);
        for d in datasets {
            let (v, p, e) = d.stats();
            t.row(vec![d.name.clone(), v.to_string(), p.to_string(), e.to_string()]);
        }
        println!("{t}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ExpConfig::from_env();
        assert!(c.queries >= 1);
        assert!((2..=7).contains(&c.seq_max));
    }

    #[test]
    fn env_parse_falls_back() {
        assert_eq!(env_parse("SKYSR_DOES_NOT_EXIST", 5u32), 5);
    }
}
