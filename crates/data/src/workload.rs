//! Query workload generation (§7.1).
//!
//! "For each dataset, we generate 100 searches … The start points are
//! selected randomly from vertices in the maps. The categories of
//! sequences are selected randomly from the leaf nodes in the category
//! trees with the constraint that they have different category trees.
//! Since the number of PoI vertices associated with each category is
//! significantly biased, we select only categories that have a large
//! number of PoI vertices."

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use skysr_category::CategoryId;
use skysr_core::SkySrQuery;
use skysr_graph::VertexId;

use crate::dataset::Dataset;

/// Workload parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// |S_q| — the category sequence length.
    pub seq_len: usize,
    /// Number of queries (the paper uses 100).
    pub num_queries: usize,
    /// How many of the most popular leaf categories are eligible.
    pub popular_leaves: usize,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Spec with the paper's defaults (100 queries, top-30 leaves).
    pub fn new(seq_len: usize) -> WorkloadSpec {
        WorkloadSpec { seq_len, num_queries: 100, popular_leaves: 30, seed: 7 }
    }

    /// Overrides the query count.
    pub fn queries(mut self, n: usize) -> WorkloadSpec {
        self.num_queries = n;
        self
    }

    /// Overrides the seed.
    pub fn seed(mut self, seed: u64) -> WorkloadSpec {
        self.seed = seed;
        self
    }

    /// Generates the workload for `dataset`.
    ///
    /// # Panics
    /// If the dataset's populated leaf categories span fewer than
    /// `seq_len` distinct trees.
    pub fn generate(&self, dataset: &Dataset) -> Workload {
        assert!(self.seq_len >= 1);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x776f_726b); // "work"

        // Popular leaf categories: rank by PoI count, keep the top ones.
        let mut hist: Vec<(CategoryId, usize)> = dataset
            .pois
            .category_histogram()
            .into_iter()
            .filter(|&(c, n)| n > 0 && dataset.forest.is_leaf(c))
            .collect();
        hist.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hist.truncate(self.popular_leaves.max(self.seq_len));
        let popular: Vec<CategoryId> = hist.into_iter().map(|(c, _)| c).collect();
        let distinct_trees: std::collections::HashSet<u32> =
            popular.iter().map(|&c| dataset.forest.tree_of(c)).collect();
        assert!(
            distinct_trees.len() >= self.seq_len,
            "dataset has {} populated trees, need {}",
            distinct_trees.len(),
            self.seq_len
        );

        let n = dataset.graph.num_vertices() as u32;
        let queries = (0..self.num_queries)
            .map(|_| {
                let start = VertexId(rng.random_range(0..n));
                let mut pool = popular.clone();
                pool.shuffle(&mut rng);
                let mut cats = Vec::with_capacity(self.seq_len);
                let mut trees = Vec::with_capacity(self.seq_len);
                for c in pool {
                    let t = dataset.forest.tree_of(c);
                    if !trees.contains(&t) {
                        trees.push(t);
                        cats.push(c);
                        if cats.len() == self.seq_len {
                            break;
                        }
                    }
                }
                debug_assert_eq!(cats.len(), self.seq_len);
                SkySrQuery::new(start, cats)
            })
            .collect();
        Workload { queries, spec: self.clone() }
    }
}

/// A generated batch of queries.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The queries.
    pub queries: Vec<SkySrQuery>,
    /// Parameters used.
    pub spec: WorkloadSpec,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetSpec, Preset};

    fn tiny() -> Dataset {
        DatasetSpec::preset(Preset::CalSmall).scale(0.1).seed(2).generate()
    }

    #[test]
    fn generates_requested_count_and_length() {
        let d = tiny();
        let w = WorkloadSpec::new(3).queries(17).generate(&d);
        assert_eq!(w.queries.len(), 17);
        for q in &w.queries {
            assert_eq!(q.len(), 3);
            assert!(q.start.index() < d.graph.num_vertices());
        }
    }

    #[test]
    fn categories_are_popular_leaves_from_distinct_trees() {
        let d = tiny();
        let w = WorkloadSpec::new(3).queries(25).seed(5).generate(&d);
        for q in &w.queries {
            let mut trees = Vec::new();
            for spec in &q.sequence {
                let skysr_core::PositionSpec::Category(c) = spec else {
                    panic!("workloads use plain categories")
                };
                assert!(d.forest.is_leaf(*c));
                assert!(!d.pois.pois_with_exact_category(*c).is_empty());
                let t = d.forest.tree_of(*c);
                assert!(!trees.contains(&t), "duplicate tree in {q:?}");
                trees.push(t);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let d = tiny();
        let a = WorkloadSpec::new(2).queries(5).seed(9).generate(&d);
        let b = WorkloadSpec::new(2).queries(5).seed(9).generate(&d);
        assert_eq!(a.queries, b.queries);
        let c = WorkloadSpec::new(2).queries(5).seed(10).generate(&d);
        assert_ne!(a.queries, c.queries);
    }

    #[test]
    fn workload_queries_are_runnable() {
        let d = tiny();
        let ctx = d.context();
        let w = WorkloadSpec::new(2).queries(3).generate(&d);
        let mut bssr = skysr_core::bssr::Bssr::new(&ctx);
        for q in &w.queries {
            let result = bssr.run(q).unwrap();
            // Popular categories ⇒ a perfect route always exists.
            assert!(result.routes.iter().any(|r| r.semantic == 0.0), "query {q:?}");
        }
    }

    #[test]
    #[should_panic(expected = "populated trees")]
    fn too_long_sequence_panics() {
        let d = tiny();
        // Cal forest has 7 trees.
        WorkloadSpec::new(12).generate(&d);
    }
}
