//! Shared plumbing of the `skysr-cli` and `skysr-d` binaries: argument
//! parsing, dataset selection and the daemon serve loop.
//!
//! The two binaries are thin shells over this library — `skysr-d` is
//! exactly `skysr-cli serve` under its own name, so deployments that want
//! only the daemon need not carry the query/replay/bench tooling in their
//! entry point.

pub mod args;
pub mod city;
pub mod serve;
