//! Regenerates Table 7: the effect of the NNinit initial search.
fn main() {
    let cfg = skysr_bench::ExpConfig::from_env();
    let datasets = cfg.datasets();
    skysr_bench::experiments::table7(&cfg, &datasets);
}
