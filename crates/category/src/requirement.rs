//! Complex category requirements (paper §6, "Complex category
//! requirement").
//!
//! A query position may ask for more than one plain category: *"American
//! restaurant or Mexican restaurant (disjunction), but not Taco Place
//! (negation)"*; with multi-category PoIs, conjunctions like *"Cafe and
//! Bakery"* become possible. A [`Requirement`] is evaluated against a PoI's
//! category set and yields the position similarity `h_i` fed into the
//! semantic score — so, exactly as §6 observes, the search algorithms need
//! no changes: a requirement is just a richer similarity oracle.

use crate::similarity::Similarity;
use crate::tree::{CategoryForest, CategoryId};

/// A category requirement for one position of a sequence.
///
/// `Ord` and `Hash` exist so requirements can participate in canonical
/// cache keys (see [`Requirement::canonical`]); the ordering itself is
/// arbitrary but deterministic.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Requirement {
    /// A single category (Definition 3.1 behaviour).
    Category(CategoryId),
    /// Disjunction: the PoI may satisfy any branch; similarity is the best
    /// branch.
    AnyOf(Vec<Requirement>),
    /// Conjunction: the PoI must satisfy every branch; similarity is the
    /// worst branch (a PoI missing one branch entirely scores 0).
    AllOf(Vec<Requirement>),
    /// Negation: as `base`, but PoIs associated with `not` (or any of its
    /// descendants) are excluded outright.
    Exclude {
        /// The underlying requirement.
        base: Box<Requirement>,
        /// Excluded category subtree.
        not: CategoryId,
    },
}

impl Requirement {
    /// Single-category requirement.
    pub fn category(c: CategoryId) -> Requirement {
        Requirement::Category(c)
    }

    /// Disjunction of plain categories.
    pub fn any_of(cats: impl IntoIterator<Item = CategoryId>) -> Requirement {
        Requirement::AnyOf(cats.into_iter().map(Requirement::Category).collect())
    }

    /// Conjunction of plain categories.
    pub fn all_of(cats: impl IntoIterator<Item = CategoryId>) -> Requirement {
        Requirement::AllOf(cats.into_iter().map(Requirement::Category).collect())
    }

    /// Adds an exclusion to `self`.
    pub fn but_not(self, not: CategoryId) -> Requirement {
        Requirement::Exclude { base: Box::new(self), not }
    }

    /// Similarity of a PoI with category set `poi_cats` to this
    /// requirement. With multiple PoI categories, §6 allows "the highest or
    /// the average value"; we use the highest.
    pub fn similarity<S: Similarity>(
        &self,
        forest: &CategoryForest,
        sim: &S,
        poi_cats: &[CategoryId],
    ) -> f64 {
        match self {
            Requirement::Category(c) => {
                poi_cats.iter().map(|&pc| sim.sim(forest, *c, pc)).fold(0.0, f64::max)
            }
            Requirement::AnyOf(parts) => {
                parts.iter().map(|p| p.similarity(forest, sim, poi_cats)).fold(0.0, f64::max)
            }
            Requirement::AllOf(parts) => {
                parts.iter().map(|p| p.similarity(forest, sim, poi_cats)).fold(1.0, f64::min)
            }
            Requirement::Exclude { base, not } => {
                let excluded = poi_cats.iter().any(|&pc| forest.is_ancestor_or_self(*not, pc));
                if excluded {
                    0.0
                } else {
                    base.similarity(forest, sim, poi_cats)
                }
            }
        }
    }

    /// Whether a PoI perfectly matches this requirement (similarity 1).
    pub fn perfect<S: Similarity>(
        &self,
        forest: &CategoryForest,
        sim: &S,
        poi_cats: &[CategoryId],
    ) -> bool {
        self.similarity(forest, sim, poi_cats) >= 1.0
    }

    /// The structural canonical form of this requirement.
    ///
    /// Two requirements that are syntactically different but compute the
    /// same similarity function reduce to the same canonical form whenever
    /// the difference is one of:
    ///
    /// * **branch order** — `max` / `min` are commutative, so `AnyOf` /
    ///   `AllOf` branches are sorted;
    /// * **duplicate branches** — `max(x, x) = min(x, x) = x`, so branches
    ///   are deduplicated after canonicalization;
    /// * **nesting of the same connective** — `max(max(a, b), c) =
    ///   max(a, b, c)`, so `AnyOf` inside `AnyOf` (and `AllOf` inside
    ///   `AllOf`) is flattened;
    /// * **single-branch wrappers** — `AnyOf([x])` and `AllOf([x])` both
    ///   score exactly `x` (similarities are ≤ 1), so they collapse to `x`;
    /// * **exclusion order** — a chain of `Exclude` wrappers zeroes the
    ///   score when *any* listed subtree matches, so the chain is rebuilt
    ///   with its excluded categories sorted and deduplicated.
    ///
    /// The transformation is *similarity-preserving* (the canonical form
    /// scores every PoI category set identically — `max`/`min` over the
    /// same multiset of values, so even bitwise) and *idempotent*, which is
    /// what makes it usable as a cache key: `skysr-service` keys its result
    /// cache by canonical form, so structurally related spellings of one
    /// requirement share a single cache entry.
    pub fn canonical(&self) -> Requirement {
        match self {
            Requirement::Category(c) => Requirement::Category(*c),
            Requirement::AnyOf(parts) => {
                Requirement::canonical_connective(parts, true, Requirement::AnyOf)
            }
            Requirement::AllOf(parts) => {
                Requirement::canonical_connective(parts, false, Requirement::AllOf)
            }
            Requirement::Exclude { base, not } => {
                // Collapse the whole exclusion chain, canonicalize the
                // innermost base, then rebuild with the excluded subtrees
                // sorted (innermost = smallest id).
                let mut nots = vec![*not];
                let mut inner = base.canonical();
                while let Requirement::Exclude { base, not } = inner {
                    nots.push(not);
                    inner = *base;
                }
                nots.sort_unstable();
                nots.dedup();
                for n in nots {
                    inner = Requirement::Exclude { base: Box::new(inner), not: n };
                }
                inner
            }
        }
    }

    /// Shared canonicalization of `AnyOf` / `AllOf`: flatten same-kind
    /// children, sort, dedup, unwrap singletons.
    fn canonical_connective(
        parts: &[Requirement],
        any: bool,
        rebuild: fn(Vec<Requirement>) -> Requirement,
    ) -> Requirement {
        let mut flat = Vec::with_capacity(parts.len());
        for part in parts {
            match part.canonical() {
                Requirement::AnyOf(inner) if any => flat.extend(inner),
                Requirement::AllOf(inner) if !any => flat.extend(inner),
                other => flat.push(other),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        if flat.len() == 1 {
            flat.pop().expect("length checked")
        } else {
            rebuild(flat)
        }
    }

    /// All plain categories referenced by this requirement (used to derive
    /// candidate PoI sets).
    pub fn referenced_categories(&self) -> Vec<CategoryId> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect(&self, out: &mut Vec<CategoryId>) {
        match self {
            Requirement::Category(c) => out.push(*c),
            Requirement::AnyOf(parts) | Requirement::AllOf(parts) => {
                for p in parts {
                    p.collect(out);
                }
            }
            Requirement::Exclude { base, .. } => base.collect(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::WuPalmer;
    use crate::tree::ForestBuilder;

    fn forest() -> CategoryForest {
        let mut b = ForestBuilder::new();
        let food = b.add_root("Food");
        let mex = b.add_child(food, "Mexican");
        b.add_child(mex, "Taco Place");
        b.add_child(food, "American");
        b.add_child(food, "Cafe");
        b.add_child(food, "Bakery");
        let shop = b.add_root("Shop");
        b.add_child(shop, "Gift");
        b.build()
    }

    #[test]
    fn single_category_matches_definition() {
        let f = forest();
        let mex = f.by_name("Mexican").unwrap();
        let am = f.by_name("American").unwrap();
        let r = Requirement::category(mex);
        assert_eq!(r.similarity(&f, &WuPalmer, &[mex]), 1.0);
        assert!(r.similarity(&f, &WuPalmer, &[am]) > 0.0);
        let gift = f.by_name("Gift").unwrap();
        assert_eq!(r.similarity(&f, &WuPalmer, &[gift]), 0.0);
    }

    #[test]
    fn disjunction_takes_best_branch() {
        let f = forest();
        let mex = f.by_name("Mexican").unwrap();
        let am = f.by_name("American").unwrap();
        let r = Requirement::any_of([am, mex]);
        assert_eq!(r.similarity(&f, &WuPalmer, &[mex]), 1.0);
        assert_eq!(r.similarity(&f, &WuPalmer, &[am]), 1.0);
        assert!(r.perfect(&f, &WuPalmer, &[mex]));
    }

    #[test]
    fn negation_excludes_subtree() {
        let f = forest();
        let mex = f.by_name("Mexican").unwrap();
        let am = f.by_name("American").unwrap();
        let taco = f.by_name("Taco Place").unwrap();
        // §6's example: "American or Mexican, but not Taco Place".
        let r = Requirement::any_of([am, mex]).but_not(taco);
        assert_eq!(r.similarity(&f, &WuPalmer, &[taco]), 0.0);
        assert_eq!(r.similarity(&f, &WuPalmer, &[mex]), 1.0);
    }

    #[test]
    fn conjunction_requires_all() {
        let f = forest();
        let cafe = f.by_name("Cafe").unwrap();
        let bakery = f.by_name("Bakery").unwrap();
        let r = Requirement::all_of([cafe, bakery]);
        // A multi-category PoI tagged with both matches perfectly.
        assert!(r.perfect(&f, &WuPalmer, &[cafe, bakery]));
        // A cafe-only PoI gets the weaker of (1.0, sim(bakery, cafe)) < 1.
        let s = r.similarity(&f, &WuPalmer, &[cafe]);
        assert!(s > 0.0 && s < 1.0);
        // A shop PoI fails the conjunction entirely.
        let gift = f.by_name("Gift").unwrap();
        assert_eq!(r.similarity(&f, &WuPalmer, &[gift]), 0.0);
    }

    #[test]
    fn multi_category_poi_takes_highest() {
        let f = forest();
        let cafe = f.by_name("Cafe").unwrap();
        let gift = f.by_name("Gift").unwrap();
        let r = Requirement::category(cafe);
        assert_eq!(r.similarity(&f, &WuPalmer, &[gift, cafe]), 1.0);
    }

    #[test]
    fn referenced_categories_collects_all() {
        let f = forest();
        let mex = f.by_name("Mexican").unwrap();
        let am = f.by_name("American").unwrap();
        let taco = f.by_name("Taco Place").unwrap();
        let r = Requirement::any_of([am, mex]).but_not(taco);
        let refs = r.referenced_categories();
        assert!(refs.contains(&am) && refs.contains(&mex));
        assert!(!refs.contains(&taco));
    }

    #[test]
    fn empty_poi_category_list_scores_zero() {
        let f = forest();
        let mex = f.by_name("Mexican").unwrap();
        assert_eq!(Requirement::category(mex).similarity(&f, &WuPalmer, &[]), 0.0);
    }

    #[test]
    fn canonical_sorts_and_dedups_branches() {
        let f = forest();
        let mex = f.by_name("Mexican").unwrap();
        let am = f.by_name("American").unwrap();
        let a = Requirement::any_of([am, mex, am]);
        let b = Requirement::any_of([mex, am]);
        assert_ne!(a, b);
        assert_eq!(a.canonical(), b.canonical());
        let c = Requirement::all_of([mex, am, mex]);
        let d = Requirement::all_of([am, mex]);
        assert_eq!(c.canonical(), d.canonical());
        // AnyOf and AllOf over the same branches stay distinct.
        assert_ne!(a.canonical(), c.canonical());
    }

    #[test]
    fn canonical_flattens_same_connective_nesting() {
        let f = forest();
        let mex = f.by_name("Mexican").unwrap();
        let am = f.by_name("American").unwrap();
        let cafe = f.by_name("Cafe").unwrap();
        let nested = Requirement::AnyOf(vec![
            Requirement::AnyOf(vec![Requirement::Category(cafe), Requirement::Category(mex)]),
            Requirement::Category(am),
        ]);
        assert_eq!(nested.canonical(), Requirement::any_of([am, mex, cafe]).canonical());
        // Mixed connectives do not flatten.
        let mixed =
            Requirement::AnyOf(vec![Requirement::all_of([cafe, mex]), Requirement::Category(am)]);
        let canon = mixed.canonical();
        assert!(matches!(&canon, Requirement::AnyOf(parts) if parts.len() == 2));
    }

    #[test]
    fn canonical_unwraps_singletons() {
        let f = forest();
        let mex = f.by_name("Mexican").unwrap();
        assert_eq!(Requirement::any_of([mex]).canonical(), Requirement::Category(mex));
        assert_eq!(Requirement::all_of([mex]).canonical(), Requirement::Category(mex));
        // A requirement spelled as a wrapped single category shares the
        // canonical form of the plain category — the cache-key win.
        let wrapped =
            Requirement::AnyOf(vec![Requirement::AllOf(vec![Requirement::Category(mex)])]);
        assert_eq!(wrapped.canonical(), Requirement::Category(mex));
    }

    #[test]
    fn canonical_normalizes_exclusion_chains() {
        let f = forest();
        let mex = f.by_name("Mexican").unwrap();
        let taco = f.by_name("Taco Place").unwrap();
        let gift = f.by_name("Gift").unwrap();
        let a = Requirement::category(mex).but_not(taco).but_not(gift);
        let b = Requirement::category(mex).but_not(gift).but_not(taco);
        let c = Requirement::category(mex).but_not(taco).but_not(gift).but_not(taco);
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.canonical(), c.canonical());
    }

    #[test]
    fn canonical_is_idempotent_and_similarity_preserving() {
        let f = forest();
        let mex = f.by_name("Mexican").unwrap();
        let am = f.by_name("American").unwrap();
        let taco = f.by_name("Taco Place").unwrap();
        let cafe = f.by_name("Cafe").unwrap();
        let req = Requirement::AnyOf(vec![
            Requirement::any_of([am, mex]).but_not(taco),
            Requirement::all_of([cafe, cafe]),
            Requirement::AnyOf(vec![]),
        ]);
        let canon = req.canonical();
        assert_eq!(canon.canonical(), canon);
        for poi_cats in
            [vec![mex], vec![taco], vec![cafe], vec![am, cafe], vec![taco, cafe], vec![]]
        {
            assert_eq!(
                req.similarity(&f, &WuPalmer, &poi_cats),
                canon.similarity(&f, &WuPalmer, &poi_cats),
                "{poi_cats:?}"
            );
        }
    }
}
