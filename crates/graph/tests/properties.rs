//! Property-based tests for the graph substrate: Dijkstra family
//! invariants on arbitrary random graphs.

use proptest::prelude::*;
use skysr_graph::dijkstra::{dijkstra, shortest_distance, DijkstraWorkspace};
use skysr_graph::multi_source::min_set_distance;
use skysr_graph::path::path_cost;
use skysr_graph::{Cost, GraphBuilder, ResumableDijkstra, RoadNetwork, VertexId};

#[derive(Debug, Clone)]
struct RandomGraph {
    n: usize,
    path_weights: Vec<f64>,
    extra: Vec<(usize, usize, f64)>,
}

fn arb_graph() -> impl Strategy<Value = RandomGraph> {
    (3usize..14).prop_flat_map(|n| {
        (
            Just(n),
            prop::collection::vec(0.1f64..20.0, n - 1),
            prop::collection::vec((0..n, 0..n, 0.1f64..20.0), 0..16),
        )
            .prop_map(|(n, path_weights, extra)| RandomGraph { n, path_weights, extra })
    })
}

fn build(g: &RandomGraph) -> RoadNetwork {
    let mut b = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..g.n).map(|_| b.add_vertex()).collect();
    for (i, &w) in g.path_weights.iter().enumerate() {
        b.add_edge(vs[i], vs[i + 1], w);
    }
    for &(a, c, w) in &g.extra {
        b.add_edge(vs[a], vs[c], w);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dijkstra_satisfies_triangle_inequality_on_edges(g in arb_graph()) {
        // For every edge (u, v, w): d(s, v) ≤ d(s, u) + w.
        let net = build(&g);
        let mut ws = DijkstraWorkspace::new(net.num_vertices());
        dijkstra(&net, &mut ws, VertexId(0));
        for u in net.vertices() {
            let du = ws.distance(u).expect("connected by construction");
            for (v, w) in net.neighbors(u) {
                let dv = ws.distance(v).unwrap();
                prop_assert!(dv <= du + w + Cost::new(1e-9));
            }
        }
    }

    #[test]
    fn dijkstra_parent_path_realises_distance(g in arb_graph()) {
        let net = build(&g);
        let mut ws = DijkstraWorkspace::new(net.num_vertices());
        dijkstra(&net, &mut ws, VertexId(0));
        for v in net.vertices() {
            let path = ws.path_to(v).expect("reachable");
            prop_assert_eq!(path.first().copied(), Some(VertexId(0)));
            prop_assert_eq!(path.last().copied(), Some(v));
            let cost = path_cost(&net, &path).expect("path uses real edges");
            let d = ws.distance(v).unwrap();
            prop_assert!((cost.get() - d.get()).abs() <= 1e-9 * (1.0 + d.get()));
        }
    }

    #[test]
    fn point_to_point_matches_full_search(g in arb_graph()) {
        let net = build(&g);
        let mut ws = DijkstraWorkspace::new(net.num_vertices());
        let target = VertexId((g.n - 1) as u32);
        let early = shortest_distance(&net, &mut ws, VertexId(0), target);
        dijkstra(&net, &mut ws, VertexId(0));
        prop_assert_eq!(early, ws.distance(target));
    }

    #[test]
    fn resumable_settles_same_distances(g in arb_graph()) {
        let net = build(&g);
        let mut ws = DijkstraWorkspace::new(net.num_vertices());
        dijkstra(&net, &mut ws, VertexId(0));
        let mut rd = ResumableDijkstra::new(&net, VertexId(0));
        let mut settled = 0usize;
        let mut last = Cost::ZERO;
        while let Some((v, d)) = rd.next_settled() {
            prop_assert!(d >= last, "settle order must be non-decreasing");
            last = d;
            prop_assert_eq!(Some(d), ws.distance(v));
            settled += 1;
        }
        prop_assert_eq!(settled, net.num_vertices());
    }

    #[test]
    fn multi_source_equals_min_over_sources(g in arb_graph()) {
        let net = build(&g);
        let mut ws = DijkstraWorkspace::new(net.num_vertices());
        let sources = [VertexId(0), VertexId((g.n / 2) as u32)];
        let dest = VertexId((g.n - 1) as u32);
        let got = min_set_distance(&net, &mut ws, &sources, |v| v == dest, Cost::INFINITY)
            .hit
            .map(|(_, d)| d);
        let mut expect: Option<Cost> = None;
        for s in sources {
            dijkstra(&net, &mut ws, s);
            if let Some(d) = ws.distance(dest) {
                expect = Some(expect.map_or(d, |e| e.min(d)));
            }
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn distances_are_symmetric_on_undirected_graphs(g in arb_graph()) {
        let net = build(&g);
        let mut ws = DijkstraWorkspace::new(net.num_vertices());
        let a = VertexId(0);
        let b = VertexId((g.n - 1) as u32);
        let ab = shortest_distance(&net, &mut ws, a, b).unwrap();
        let ba = shortest_distance(&net, &mut ws, b, a).unwrap();
        prop_assert!((ab.get() - ba.get()).abs() <= 1e-9 * (1.0 + ab.get()));
    }
}

// ---------------------------------------------------------------------------
// Dynamic weights: epoch-versioned overlays must be indistinguishable from a
// graph rebuilt with the updated weights, and pins must be immutable.
// ---------------------------------------------------------------------------

use skysr_graph::epoch::{EpochId, WeightDelta, WeightEpoch};

/// A random graph plus a sequence of weight-update batches, each naming
/// input edges by index with a fresh weight.
#[derive(Debug, Clone)]
struct RandomUpdates {
    graph: RandomGraph,
    /// Per batch: (edge index, new weight). Indexes cover both the path
    /// edges and the extras.
    batches: Vec<Vec<(usize, f64)>>,
}

fn arb_updates() -> impl Strategy<Value = RandomUpdates> {
    arb_graph().prop_flat_map(|graph| {
        let edges = graph.path_weights.len() + graph.extra.len();
        (
            Just(graph),
            prop::collection::vec(prop::collection::vec((0..edges, 0.1f64..20.0), 1..6), 1..5),
        )
            .prop_map(|(graph, batches)| RandomUpdates { graph, batches })
    })
}

/// The input edges of a [`RandomGraph`] in builder insertion order.
fn input_edges(g: &RandomGraph) -> Vec<(usize, usize, f64)> {
    let mut edges: Vec<(usize, usize, f64)> =
        g.path_weights.iter().enumerate().map(|(i, &w)| (i, i + 1, w)).collect();
    edges.extend(g.extra.iter().copied());
    edges
}

/// Reference model: rebuilds the network from scratch with every update
/// applied the way `WeightEpoch::publish` defines it — a delta on edge
/// (u, v) retargets *all* parallel edges between u and v.
fn rebuild_with_updates(g: &RandomGraph, batches: &[Vec<(usize, f64)>]) -> RoadNetwork {
    let mut edges = input_edges(g);
    for batch in batches {
        for &(i, w) in batch {
            let (u, v, _) = edges[i];
            let pair = |a: usize, b: usize| (a.min(b), a.max(b));
            let key = pair(u, v);
            for e in edges.iter_mut() {
                if pair(e.0, e.1) == key {
                    e.2 = w;
                }
            }
        }
    }
    let mut b = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..g.n).map(|_| b.add_vertex()).collect();
    for (u, v, w) in edges {
        b.add_edge(vs[u], vs[v], w);
    }
    b.build()
}

fn publish_all(epochs: &WeightEpoch, g: &RandomGraph, batches: &[Vec<(usize, f64)>]) {
    let edges = input_edges(g);
    for batch in batches {
        let deltas: Vec<WeightDelta> = batch
            .iter()
            .map(|&(i, w)| {
                let (u, v, _) = edges[i];
                WeightDelta::new(VertexId(u as u32), VertexId(v as u32), w)
            })
            .collect();
        epochs.publish(&deltas);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn pinned_overlay_equals_rebuilt_graph(u in arb_updates()) {
        let net = build(&u.graph);
        let epochs = WeightEpoch::new(net);
        publish_all(&epochs, &u.graph, &u.batches);
        let pinned = epochs.pin();
        let rebuilt = rebuild_with_updates(&u.graph, &u.batches);
        prop_assert_eq!(pinned.epoch(), EpochId(u.batches.len() as u64));
        // Arc-by-arc identical weights (same CSR layout by construction).
        prop_assert_eq!(pinned.num_arcs(), rebuilt.num_arcs());
        for v in pinned.vertices() {
            let a: Vec<_> = pinned.neighbors(v).collect();
            let b: Vec<_> = rebuilt.neighbors(v).collect();
            prop_assert_eq!(a, b, "vertex {} adjacency differs", v);
        }
        // And therefore identical shortest-path structure.
        let mut wa = DijkstraWorkspace::new(pinned.num_vertices());
        let mut wb = DijkstraWorkspace::new(rebuilt.num_vertices());
        dijkstra(&pinned, &mut wa, VertexId(0));
        dijkstra(&rebuilt, &mut wb, VertexId(0));
        for v in pinned.vertices() {
            prop_assert_eq!(wa.distance(v), wb.distance(v));
        }
    }

    #[test]
    fn pins_are_immutable_across_later_publishes(u in arb_updates()) {
        let net = build(&u.graph);
        let epochs = WeightEpoch::new(net.clone());
        // Pin every intermediate epoch while publishing.
        let edges = input_edges(&u.graph);
        let mut pins = vec![epochs.pin()];
        for batch in &u.batches {
            let deltas: Vec<WeightDelta> = batch
                .iter()
                .map(|&(i, w)| {
                    let (a, b, _) = edges[i];
                    WeightDelta::new(VertexId(a as u32), VertexId(b as u32), w)
                })
                .collect();
            epochs.publish(&deltas);
            pins.push(epochs.pin());
        }
        // Each pin still renders exactly its prefix of the update history.
        for (k, pin) in pins.iter().enumerate() {
            prop_assert_eq!(pin.epoch(), EpochId(k as u64));
            let expect = rebuild_with_updates(&u.graph, &u.batches[..k]);
            for v in pin.vertices() {
                let a: Vec<_> = pin.neighbors(v).collect();
                let b: Vec<_> = expect.neighbors(v).collect();
                prop_assert_eq!(a, b, "epoch {} vertex {}", k, v);
            }
            // pin_at reproduces the same historical view.
            let again = epochs.pin_at(EpochId(k as u64)).expect("published epoch");
            for v in pin.vertices() {
                let a: Vec<_> = pin.neighbors(v).collect();
                let b: Vec<_> = again.neighbors(v).collect();
                prop_assert_eq!(a, b);
            }
        }
    }
}
