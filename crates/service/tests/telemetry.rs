//! Telemetry integration: the trace-completeness invariant (every
//! response has exactly one span whose rung matches its `Served`
//! outcome), per-rung histogram/counter agreement, the queue-wait vs.
//! service-time split, and sampled/disabled retention modes — all
//! exercised through full concurrent service runs.

use std::sync::Arc;
use std::time::Duration;

use skysr_data::dataset::{Dataset, DatasetSpec, Preset};
use skysr_data::workload::WorkloadSpec;
use skysr_service::replay::{
    build_pool, replay_on, replay_sharded, ReplaySpec, StreamPattern, TelemetryMode,
};
use skysr_service::telemetry::export::prometheus;
use skysr_service::{QueryService, Rung, Service, ServiceConfig, ServiceContext, TelemetryConfig};

fn dataset(seed: u64) -> Dataset {
    DatasetSpec::preset(Preset::CalSmall).scale(0.08).seed(seed).generate()
}

/// Full tracing over an update-heavy duplicate stream with repair on:
/// the stream crosses epochs, so the spans cover exact hits, coalesced
/// followers, repairs and searches — and the completeness audit must
/// hold across all of them.
#[test]
fn full_tracing_yields_one_span_per_response_across_every_rung() {
    let d = dataset(21);
    let spec = ReplaySpec {
        total: 400,
        distinct: 8,
        seq_len: 2,
        pattern: StreamPattern::DuplicateBursts,
        burst: 16,
        workers: 4,
        repair: true,
        update_every: 40,
        update_burst: 8,
        telemetry: TelemetryMode::Full,
        ..ReplaySpec::default()
    };
    let pool = build_pool(&d, &spec);
    let ctx = Arc::new(ServiceContext::from_dataset(d));
    let report = replay_on(ctx, &pool, &spec);

    assert_eq!(report.trace_violations, Some(0), "trace-completeness invariant broke");
    let m = &report.metrics;
    assert_eq!(report.spans.len() as u64, m.completed, "one span per completed response");

    // The always-on histograms cover every response; the engine histogram
    // covers exactly the requests that ran a search or repair.
    assert_eq!(m.latency_hist.count(), m.completed);
    assert_eq!(m.queue_wait_hist.count(), m.completed);
    assert_eq!(m.engine_hist.count(), m.executed);

    // Per-rung span counts agree with the per-rung histograms and with
    // the aggregate counters.
    let count = |r: Rung| report.spans.iter().filter(|s| s.rung == r).count() as u64;
    for rs in &m.rungs {
        assert_eq!(count(rs.rung), rs.hist.count(), "rung {:?}", rs.rung);
    }
    assert_eq!(count(Rung::Coalesced), m.coalesced);
    assert_eq!(count(Rung::Repaired), m.repairs + m.repair_fallbacks);
    let rung_total: u64 = Rung::ALL.iter().map(|&r| count(r)).sum();
    assert_eq!(rung_total, m.completed, "the rungs tile the completed responses");

    // The update waves must actually have driven the repair rung — a
    // static run would leave most rungs untested.
    assert!(m.repairs + m.repair_fallbacks > 0, "repair never fired: {m:?}");
    assert!(count(Rung::ExactHit) > 0, "no exact hits in a duplicate stream");
    assert!(m.executed > 0);

    // Spans are internally consistent: stages fit inside the total, every
    // span records its probe trail, and engine time is reserved for the
    // rungs that ran the engine.
    for s in &report.spans {
        assert!(!s.attempts.is_empty(), "span {} has no attempts", s.request_id);
        let stages = s.queue_wait + s.plan + s.engine;
        assert!(
            stages <= s.total + Duration::from_millis(1),
            "span {}: stages {stages:?} exceed total {:?}",
            s.request_id,
            s.total
        );
        match s.rung {
            Rung::ExactHit | Rung::Coalesced => {
                assert_eq!(s.engine, Duration::ZERO, "a reuse answer ran the engine");
                assert_eq!(s.profile.settled, 0);
            }
            Rung::Repaired => {
                assert!(s.repair_tier.is_some(), "a repaired span must report its tier");
                assert!(s.delta_index.is_some(), "a repair span records its delta index");
            }
            _ => {}
        }
    }
}

/// The same invariant through the raw service API: distinct request ids,
/// queue wait below latency, and span/response agreement span-by-span.
#[test]
fn service_responses_and_drained_spans_agree() {
    let d = dataset(5);
    let queries = WorkloadSpec::new(2).queries(12).seed(3).generate(&d).queries;
    let ctx = Arc::new(ServiceContext::from_dataset(d));
    let service = Service::new(
        Arc::clone(&ctx),
        ServiceConfig {
            workers: 3,
            telemetry: TelemetryConfig::trace_all(1024),
            ..ServiceConfig::default()
        },
    );
    // Two passes: the second is answered from the cache.
    let mut outcomes = service.run_batch(queries.iter().cloned());
    outcomes.extend(service.run_batch(queries.iter().cloned()));
    let spans = service.traces().drain();
    let responses: Vec<_> = outcomes.into_iter().map(|o| o.expect("valid queries")).collect();

    let mut ids: Vec<u64> = responses.iter().map(|r| r.request_id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), responses.len(), "request ids must be unique");

    assert_eq!(spans.len(), responses.len());
    for r in &responses {
        assert!(r.queue_wait <= r.latency, "queue wait cannot exceed end-to-end latency");
        let span =
            spans.iter().find(|s| s.request_id == r.request_id).expect("every response has a span");
        assert_eq!(span.rung, Rung::of(r.served));
        assert_eq!(span.epoch, r.epoch);
        assert_eq!(span.queue_wait, r.queue_wait);
        assert_eq!(span.skyline, r.routes.len());
    }

    // Draining leaves the buffer empty; the metrics histograms are
    // unaffected by span retention.
    assert!(service.traces().drain().is_empty());
    let m = service.metrics();
    assert_eq!(m.latency_hist.count(), m.completed);
}

/// The Prometheus exposition carries a consistent `shard` label, and the
/// per-rung series it exports reconcile exactly with the span audit —
/// the `--metrics-out` contract the CI telemetry-verify job greps.
#[test]
fn prometheus_shard_labels_reconcile_with_span_audits() {
    let spec = ReplaySpec {
        total: 200,
        distinct: 8,
        seq_len: 2,
        pattern: StreamPattern::DuplicateBursts,
        burst: 16,
        workers: 2,
        update_every: 50,
        update_burst: 8,
        verify: true,
        telemetry: TelemetryMode::Full,
        ..ReplaySpec::default()
    };
    let datasets = vec![("north".to_owned(), dataset(21)), ("south".to_owned(), dataset(22))];
    let fleet = replay_sharded(datasets, &spec);
    assert!(fleet.all_ok());

    // Export exactly the way `replay --shards N --metrics-out` does: one
    // labelled entry per shard, ids as the `shard` label values.
    let ids: Vec<String> = fleet.shards.iter().map(|s| s.region.to_string()).collect();
    let label_sets: Vec<[(&str, &str); 2]> =
        ids.iter().map(|id| [("pattern", "duplicate"), ("shard", id.as_str())]).collect();
    let entries: Vec<(&[(&str, &str)], _)> = label_sets
        .iter()
        .zip(&fleet.shards)
        .map(|(labels, s)| (labels.as_slice(), &s.report.metrics))
        .collect();
    let page = prometheus(&entries);

    for (shard, id) in fleet.shards.iter().zip(&ids) {
        let m = &shard.report.metrics;
        // Counters carry the shard label with label keys in sorted order
        // (`pattern` < `shard`) — the exact shape CI greps for.
        let completed = format!(
            "skysr_completed_total{{pattern=\"duplicate\",shard=\"{id}\"}} {}",
            m.completed
        );
        assert!(page.lines().any(|l| l == completed), "missing series: {completed}");
        // Per-rung histogram counts reconcile with this shard's spans:
        // the invariant audited span-side re-proven on the export side.
        let count = |r: Rung| shard.report.spans.iter().filter(|s| s.rung == r).count() as u64;
        for rs in &m.rungs {
            if rs.hist.is_empty() {
                continue;
            }
            let series = format!(
                "skysr_rung_latency_seconds_count{{pattern=\"duplicate\",rung=\"{}\",shard=\"{id}\"}} {}",
                rs.rung.label(),
                rs.hist.count()
            );
            assert!(page.lines().any(|l| l == series), "missing series: {series}");
            assert_eq!(
                rs.hist.count(),
                count(rs.rung),
                "shard {id}: exported rung {:?} diverges from the span audit",
                rs.rung
            );
        }
        // The exported rung series tile the shard's completed counter.
        let rung_total: u64 = m.rungs.iter().map(|rs| rs.hist.count()).sum();
        assert_eq!(rung_total, m.completed);
    }
    // Distinct shards never collapse into one series.
    assert!(page.contains("shard=\"0\"") && page.contains("shard=\"1\""));
}

/// Sampled mode keeps a bounded subset; disabled mode keeps nothing.
/// Histograms record either way.
#[test]
fn sampled_and_disabled_retention_modes() {
    let d = dataset(9);
    for (mode, expect_spans) in [(TelemetryMode::Sampled, true), (TelemetryMode::Off, false)] {
        let spec = ReplaySpec {
            total: 300,
            distinct: 6,
            seq_len: 2,
            pattern: StreamPattern::DuplicateBursts,
            burst: 12,
            workers: 4,
            telemetry: mode,
            ..ReplaySpec::default()
        };
        let pool = build_pool(&d, &spec);
        let ctx = Arc::new(ServiceContext::from_dataset(dataset(9)));
        let report = replay_on(ctx, &pool, &spec);
        assert_eq!(report.trace_violations, None, "only full tracing audits completeness");
        if expect_spans {
            // 1/64 sampling plus the slowest: some spans, not all of them.
            assert!(!report.spans.is_empty(), "sampling retained nothing");
            assert!(report.spans.len() < 300, "sampling retained all {} spans", report.spans.len());
        } else {
            assert!(report.spans.is_empty(), "disabled tracing retained spans");
        }
        let m = &report.metrics;
        assert_eq!(m.latency_hist.count(), m.completed, "histograms are unconditional");
        assert!(m.rungs.iter().map(|rs| rs.hist.count()).sum::<u64>() == m.completed);
    }
}
