//! # skysr — Skyline Sequenced Route queries with semantic hierarchy
//!
//! Umbrella crate re-exporting the full public API of the SkySR workspace,
//! a from-scratch Rust reproduction of
//! *“Sequenced Route Query with Semantic Hierarchy”* (Sasaki, Ishikawa,
//! Fujiwara, Onizuka — EDBT 2018).
//!
//! A SkySR query takes a start point on a road network and an ordered list
//! of Point-of-Interest categories, and returns the set of *skyline*
//! sequenced routes: routes whose (length, semantic-similarity) score pairs
//! are not dominated by any other sequenced route. Semantic similarity is
//! computed over a category forest (e.g. the Foursquare taxonomy), so a
//! route through an *Italian* restaurant can flexibly answer a query that
//! asked for an *Asian* restaurant — at a semantic cost the skyline makes
//! explicit.
//!
//! Beyond this API reference, two prose documents at the repository root
//! cover the system as a whole: `docs/ARCHITECTURE.md` (crate map, the
//! serving rung ladder, deadline scheduling, the weight-epoch lifecycle,
//! the `skysr-d` wire protocol) and `docs/OPERATIONS.md` (running the
//! daemon, every tuning knob, the counter taxonomy, capacity planning).
//!
//! ## Quickstart
//!
//! ```
//! use skysr::prelude::*;
//!
//! // A tiny synthetic city with PoIs and the built-in Foursquare-style taxonomy.
//! let dataset = DatasetSpec::preset(Preset::CalSmall).scale(0.05).seed(7).generate();
//! let ctx = dataset.context();
//!
//! // Ask for <restaurant-ish, shop-ish> starting from vertex 0.
//! let workload = WorkloadSpec::new(2).queries(1).seed(11).generate(&dataset);
//! let query = &workload.queries[0];
//!
//! let result = Bssr::new(&ctx).run(query).unwrap();
//! assert!(!result.routes.is_empty());
//! for route in &result.routes {
//!     println!("{:>9.1} m  s={:.3}  {:?}", route.length.get(), route.semantic, route.pois);
//! }
//! ```

pub use skysr_category as category;
pub use skysr_core as core;
pub use skysr_data as data;
pub use skysr_graph as graph;
pub use skysr_service as service;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use skysr_category::{
        CategoryForest, CategoryId, ForestBuilder, PathLength, ProductAggregate, SemanticAggregate,
        Similarity, WuPalmer,
    };
    pub use skysr_core::{
        baseline::{DijBaseline, PneBaseline},
        bssr::{Bssr, BssrConfig, LowerBoundMode, QueuePolicy},
        dominance::SkylineSet,
        query::SkySrQuery,
        route::SkylineRoute,
        variants::destination::DestinationQuery,
        variants::rated::{RatedQuery, RatingTable},
        variants::skyband::SkybandQuery,
        variants::unordered::UnorderedQuery,
        PoiTable, QueryContext,
    };
    pub use skysr_data::{
        dataset::{Dataset, DatasetSpec, Preset},
        workload::{Workload, WorkloadSpec},
    };
    pub use skysr_graph::{
        Cost, EpochId, Landmarks, RoadNetwork, VertexId, WeightDelta, WeightEpoch,
    };
    pub use skysr_service::{
        replay::{replay, ReplayReport, ReplaySpec},
        MetricsSnapshot, QueryRequest, QueryResponse, QueryService, RemoteService, Server,
        ServerConfig, Service, ServiceConfig, ServiceContext,
    };
}
