//! Regenerates Figure 3: response time vs |S_q| per dataset and algorithm.
fn main() {
    let cfg = skysr_bench::ExpConfig::from_env();
    let datasets = cfg.datasets();
    skysr_bench::ExpConfig::print_dataset_table(&datasets);
    skysr_bench::experiments::fig3(&cfg, &datasets);
}
