//! The modified Dijkstra algorithm (Algorithm 2) — one expansion step of
//! BSSR.
//!
//! Given a fetched route `R_d` ending at `p_d`, the step searches outwards
//! from `p_d` for PoIs semantically matching the next position, applying:
//!
//! * the **threshold break** (Lemma 5.3): once the settled distance pushes
//!   `l(R_t)` past `l̄(R_d)`, nothing further can survive — stop;
//! * the **path-similarity skip** (Lemma 5.5(i)): a match that lies behind
//!   an equally-or-more similar PoI is dominated — don't generate it;
//! * the **perfect-match cut** (Lemma 5.5(ii)): graph traversal never
//!   continues through a perfectly matching PoI.
//!
//! The two Lemma 5.5 rules assume that the replacement PoI they argue with
//! cannot already be part of the route. That holds whenever the position's
//! category trees are disjoint from every other position's (always true for
//! the paper's workloads, which draw positions from distinct trees); the
//! caller passes a per-position `lemma55` flag and the rules are disabled
//! where they would be unsound, preserving exactness for arbitrary
//! sequences.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use skysr_graph::{Cost, SearchStats, VersionedArray, VertexId};

use crate::bssr::bounds::MinDistBounds;
use crate::bssr::cache::{CachedMatch, SearchCache};
use crate::bssr::queue::RouteQueue;
use crate::context::QueryContext;
use crate::dominance::SkylineSet;
use crate::prepared::PreparedQuery;
use crate::route::PartialRoute;
use crate::stats::QueryStats;

/// Reusable scratch buffers for modified-Dijkstra runs.
pub(crate) struct Scratch {
    dist: VersionedArray<f64>,
    psim: VersionedArray<f64>,
    visited: VersionedArray<bool>,
    heap: BinaryHeap<Reverse<(Cost, VertexId)>>,
}

impl Scratch {
    pub(crate) fn new(n: usize) -> Scratch {
        Scratch {
            dist: VersionedArray::new(n),
            psim: VersionedArray::new(n),
            visited: VersionedArray::new(n),
            heap: BinaryHeap::new(),
        }
    }

    /// Ensures capacity for `n` vertices (recycled scratch may come from a
    /// smaller graph).
    pub(crate) fn ensure(&mut self, n: usize) {
        self.dist.resize(n);
        self.psim.resize(n);
        self.visited.resize(n);
    }

    fn reset(&mut self) {
        self.dist.clear();
        self.psim.clear();
        self.visited.clear();
        self.heap.clear();
    }
}

/// Immutable per-query configuration shared by all steps.
pub(crate) struct StepEnv<'a, 'g> {
    pub ctx: &'a QueryContext<'g>,
    pub pq: &'a PreparedQuery,
    pub bounds: &'a MinDistBounds,
    /// Per-position: whether the Lemma 5.5 rules are sound (tree-disjoint).
    pub lemma55: &'a [bool],
    /// `sigma_suffix[i]`: best similarity product positions `i..k` can
    /// still contribute (`[k] = 1`). Threshold probes use the *achievable*
    /// minimum completion semantic `1 − sim_acc · sigma_suffix[i]` instead
    /// of the optimistic `s(R)` — identical when every remaining position
    /// has a perfect match, strictly tighter otherwise.
    pub sigma_suffix: &'a [f64],
    pub use_cache: bool,
}

impl StepEnv<'_, '_> {
    /// The minimum semantic score any valid completion of `r` can reach.
    #[inline]
    pub(crate) fn min_semantic(&self, r: &PartialRoute) -> f64 {
        1.0 - r.sim_acc() * self.sigma_suffix[r.len()]
    }
}

/// One `mDijkstra(R_d, c_d, p_d, Q_b, S)` invocation. `is_first` tags the
/// very first step for Table 7's search-space metric.
#[allow(clippy::too_many_arguments)]
pub(crate) fn mdijkstra_step(
    env: &StepEnv<'_, '_>,
    scratch: &mut Scratch,
    cache: &mut SearchCache,
    rd: &PartialRoute,
    source: VertexId,
    queue: &mut RouteQueue,
    skyline: &mut SkylineSet,
    stats: &mut QueryStats,
    is_first: bool,
) {
    let pos = rd.len();
    debug_assert!(pos < env.pq.len());
    let base = rd.length();
    let threshold_rd = skyline.threshold(env.min_semantic(rd));
    let radius = if threshold_rd.is_finite() { threshold_rd - base } else { Cost::INFINITY };
    if radius <= Cost::ZERO {
        stats.threshold_prunes += 1;
        return;
    }

    if env.use_cache {
        if let Some(entry) = cache.lookup(source, pos, radius) {
            stats.cache_hits += 1;
            // Matches are distance-sorted; everything < radius is complete.
            let matches: Vec<CachedMatch> =
                entry.matches.iter().take_while(|m| m.dist < radius).copied().collect();
            for m in matches {
                process_candidate(env, rd, m.vertex, m.dist, m.sim, queue, skyline, stats);
            }
            return;
        }
    }

    stats.mdijkstra_runs += 1;
    let position = &env.pq.positions[pos];
    let lemma55 = env.lemma55[pos];
    let graph = env.ctx.graph;
    scratch.reset();
    scratch.dist.set(source.index(), 0.0);
    scratch.heap.push(Reverse((Cost::ZERO, source)));

    let mut local = SearchStats::default();
    local.pushed += 1;
    let mut collected: Vec<CachedMatch> = Vec::new();
    // The threshold may tighten while we search (completions found by this
    // very step update S); track the skyline version to refresh lazily.
    let mut threshold_rd = threshold_rd;
    let mut sky_version = skyline.version();

    while let Some(Reverse((d, u))) = scratch.heap.pop() {
        if scratch.visited.get(u.index()).unwrap_or(false) {
            continue;
        }
        if scratch.dist.get(u.index()).is_some_and(|best| best < d.get()) {
            continue;
        }
        scratch.visited.set(u.index(), true);
        local.settled += 1;

        if sky_version != skyline.version() {
            sky_version = skyline.version();
            threshold_rd = skyline.threshold(env.min_semantic(rd));
        }
        if base + d >= threshold_rd {
            break; // Lemma 5.3: no surviving extension beyond this radius.
        }

        let psim = scratch.psim.get(u.index()).unwrap_or(0.0);
        let usim = position.sim_of(env.ctx, u);
        if usim > 0.0 && (!lemma55 || usim > psim) {
            if env.use_cache {
                collected.push(CachedMatch { vertex: u, dist: d, sim: usim });
            }
            process_candidate(env, rd, u, d, usim, queue, skyline, stats);
        }

        // Lemma 5.5(ii): perfect matches absorb the traversal.
        if lemma55 && usim >= 1.0 {
            continue;
        }
        let child_psim = if lemma55 { psim.max(usim) } else { 0.0 };
        for (v, w) in graph.neighbors(u) {
            local.relaxed += 1;
            local.weight_sum += w.get();
            if scratch.visited.get(v.index()).unwrap_or(false) {
                continue;
            }
            let nd = d + w;
            let slot = scratch.dist.get_or_insert(v.index(), f64::INFINITY);
            if nd.get() < *slot {
                *slot = nd.get();
                scratch.psim.set(v.index(), child_psim);
                scratch.heap.push(Reverse((nd, v)));
                local.pushed += 1;
            }
        }
    }

    if is_first {
        stats.first_mdijkstra_weight_sum = local.weight_sum;
    }
    stats.search.merge(&local);

    if env.use_cache {
        // Completeness radius: everything below the final threshold-derived
        // radius was settled before the break (settles are distance-ordered).
        let explored = if scratch.heap.is_empty() && !threshold_rd.is_finite() {
            Cost::INFINITY
        } else if threshold_rd.is_finite() {
            threshold_rd - base
        } else {
            Cost::INFINITY
        };
        cache.insert(source, pos, collected, explored);
    }
}

/// Handles one discovered next-PoI candidate: distinctness, thresholds,
/// lower bounds, then either completes into `S` or enqueues into `Q_b`.
#[allow(clippy::too_many_arguments)]
fn process_candidate(
    env: &StepEnv<'_, '_>,
    rd: &PartialRoute,
    v: VertexId,
    d: Cost,
    sim: f64,
    queue: &mut RouteQueue,
    skyline: &mut SkylineSet,
    stats: &mut QueryStats,
) {
    let position = &env.pq.positions[rd.len()];
    if !position.allow_revisit && rd.contains(v) {
        return; // Definition 3.4(iii): PoIs must be distinct.
    }
    let rt = rd.extend(v, d, sim);
    if rt.length() >= skyline.threshold(env.min_semantic(&rt)) {
        stats.threshold_prunes += 1;
        return;
    }
    if rt.len() == env.pq.len() {
        skyline.update(rt.into_skyline_route());
    } else {
        if env.bounds.should_prune(&rt, skyline) {
            stats.lower_bound_prunes += 1;
            return;
        }
        queue.push(rt);
        stats.routes_enqueued += 1;
        stats.queue_peak = stats.queue_peak.max(queue.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bssr::queue::QueuePolicy;
    use crate::paper_example::PaperExample;

    struct Rig {
        ex: PaperExample,
    }

    impl Rig {
        fn run_step(
            &self,
            rd: &PartialRoute,
            source: VertexId,
            skyline: &mut SkylineSet,
            use_cache: bool,
            cache: &mut SearchCache,
        ) -> (Vec<PartialRoute>, QueryStats) {
            let ctx = self.ex.context();
            let pq = self.ex.prepared(&ctx);
            let bounds = MinDistBounds::disabled(pq.len());
            let lemma55 = vec![true; pq.len()];
            let sigma_suffix = vec![1.0; pq.len() + 1];
            let env = StepEnv {
                ctx: &ctx,
                pq: &pq,
                bounds: &bounds,
                lemma55: &lemma55,
                sigma_suffix: &sigma_suffix,
                use_cache,
            };
            let mut scratch = Scratch::new(ctx.graph.num_vertices());
            let mut queue = RouteQueue::new(QueuePolicy::Proposed);
            let mut stats = QueryStats::default();
            mdijkstra_step(
                &env,
                &mut scratch,
                cache,
                rd,
                source,
                &mut queue,
                skyline,
                &mut stats,
                true,
            );
            let mut out = Vec::new();
            while let Some(r) = queue.pop() {
                out.push(r);
            }
            (out, stats)
        }
    }

    #[test]
    fn first_step_finds_all_restaurants_within_threshold() {
        // With the NNinit threshold of 15 (perfect route ⟨p2,p5,p8⟩), the
        // first step from vq finds p1, p2, p6, p10, p11 — §5.5 step 1.
        let rig = Rig { ex: PaperExample::new() };
        let mut skyline = SkylineSet::new();
        skyline.update(crate::route::SkylineRoute {
            pois: vec![],
            length: Cost::new(15.0),
            semantic: 0.0,
        });
        skyline.update(crate::route::SkylineRoute {
            pois: vec![],
            length: Cost::new(12.0),
            semantic: 0.5,
        });
        let mut cache = SearchCache::new();
        let (routes, stats) =
            rig.run_step(&PartialRoute::empty(), rig.ex.vq, &mut skyline, false, &mut cache);
        let mut found: Vec<u32> = routes.iter().map(|r| r.last_poi().unwrap().0).collect();
        found.sort_unstable();
        assert_eq!(found, vec![1, 2, 6, 10, 11]);
        assert_eq!(stats.mdijkstra_runs, 1);
        assert!(stats.first_mdijkstra_weight_sum > 0.0);
    }

    #[test]
    fn threshold_break_limits_search() {
        // With a tight threshold of 7, only p2 (dist 6) survives.
        let rig = Rig { ex: PaperExample::new() };
        let mut skyline = SkylineSet::new();
        skyline.update(crate::route::SkylineRoute {
            pois: vec![],
            length: Cost::new(7.0),
            semantic: 0.0,
        });
        let mut cache = SearchCache::new();
        let (routes, _) =
            rig.run_step(&PartialRoute::empty(), rig.ex.vq, &mut skyline, false, &mut cache);
        let found: Vec<u32> = routes.iter().map(|r| r.last_poi().unwrap().0).collect();
        assert_eq!(found, vec![2]);
    }

    #[test]
    fn completion_updates_skyline() {
        // From ⟨p10, p12⟩ (length 10) the step finds gift shop p13 at 3 →
        // inserts the perfect route (13, 0), and it dominates (15, 0).
        let rig = Rig { ex: PaperExample::new() };
        let mut skyline = SkylineSet::new();
        skyline.update(crate::route::SkylineRoute {
            pois: vec![],
            length: Cost::new(15.0),
            semantic: 0.0,
        });
        let rd = PartialRoute::empty().extend(rig.ex.p(10), Cost::new(8.0), 1.0).extend(
            rig.ex.p(12),
            Cost::new(2.0),
            1.0,
        );
        let mut cache = SearchCache::new();
        let (_, _) = rig.run_step(&rd, rig.ex.p(12), &mut skyline, false, &mut cache);
        assert!(skyline.routes().iter().any(|r| r.length == Cost::new(13.0) && r.semantic == 0.0));
        assert!(!skyline.routes().iter().any(|r| r.length == Cost::new(15.0)));
    }

    #[test]
    fn cache_replays_matches() {
        let rig = Rig { ex: PaperExample::new() };
        let mut skyline = SkylineSet::new();
        skyline.update(crate::route::SkylineRoute {
            pois: vec![],
            length: Cost::new(15.0),
            semantic: 0.0,
        });
        let mut cache = SearchCache::new();
        let (routes1, stats1) =
            rig.run_step(&PartialRoute::empty(), rig.ex.vq, &mut skyline.clone(), true, &mut cache);
        assert_eq!(stats1.mdijkstra_runs, 1);
        assert_eq!(cache.len(), 1);
        // Second identical request must be served from cache.
        let (routes2, stats2) =
            rig.run_step(&PartialRoute::empty(), rig.ex.vq, &mut skyline, true, &mut cache);
        assert_eq!(stats2.mdijkstra_runs, 0);
        assert_eq!(stats2.cache_hits, 1);
        let ids = |rs: &[PartialRoute]| {
            let mut v: Vec<u32> = rs.iter().map(|r| r.last_poi().unwrap().0).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(ids(&routes1), ids(&routes2));
    }

    #[test]
    fn perfect_match_blocks_traversal() {
        // Searching A&E matches from p2: p5 (perfect, dist 4) absorbs the
        // traversal, so p9/p12 behind it are reached only via other paths;
        // p9 via p2→vq→p6→p9 = 15.5 ≥ threshold 15 → only p5 found.
        let rig = Rig { ex: PaperExample::new() };
        let mut skyline = SkylineSet::new();
        skyline.update(crate::route::SkylineRoute {
            pois: vec![],
            length: Cost::new(15.0),
            semantic: 0.0,
        });
        let rd = PartialRoute::empty().extend(rig.ex.p(2), Cost::new(6.0), 1.0);
        let mut cache = SearchCache::new();
        let (routes, _) = rig.run_step(&rd, rig.ex.p(2), &mut skyline, false, &mut cache);
        let found: Vec<u32> = routes.iter().map(|r| r.last_poi().unwrap().0).collect();
        assert_eq!(found, vec![5]);
    }

    #[test]
    fn duplicate_poi_rejected() {
        // A route already containing p5 must not extend with p5 again.
        let rig = Rig { ex: PaperExample::new() };
        // Query where two positions share the A&E tree: craft rd containing
        // p5 and search A&E from it with lemma55 disabled.
        let ctx = rig.ex.context();
        let arts = rig.ex.forest.by_name("Arts & Entertainment").unwrap();
        let q = crate::query::SkySrQuery::new(rig.ex.vq, [arts, arts]);
        let pq = crate::prepared::PreparedQuery::prepare(&ctx, &q).unwrap();
        let bounds = MinDistBounds::disabled(pq.len());
        let lemma55 = vec![false; pq.len()];
        let sigma_suffix = vec![1.0; pq.len() + 1];
        let env = StepEnv {
            ctx: &ctx,
            pq: &pq,
            bounds: &bounds,
            lemma55: &lemma55,
            sigma_suffix: &sigma_suffix,
            use_cache: false,
        };
        let mut scratch = Scratch::new(ctx.graph.num_vertices());
        let mut queue = RouteQueue::new(QueuePolicy::Proposed);
        let mut skyline = SkylineSet::new();
        let mut stats = QueryStats::default();
        let mut cache = SearchCache::new();
        let rd = PartialRoute::empty().extend(rig.ex.p(5), Cost::new(10.0), 1.0);
        mdijkstra_step(
            &env,
            &mut scratch,
            &mut cache,
            &rd,
            rig.ex.p(5),
            &mut queue,
            &mut skyline,
            &mut stats,
            false,
        );
        // Completions are A&E PoIs other than p5.
        for r in skyline.routes() {
            assert_ne!(r.pois[1], rig.ex.p(5));
            assert_eq!(r.pois[0], rig.ex.p(5));
        }
        assert!(!skyline.is_empty());
    }
}
