//! Regenerates Table 8: proposed vs distance-based route queue.
fn main() {
    let cfg = skysr_bench::ExpConfig::from_env();
    let datasets = cfg.datasets();
    skysr_bench::experiments::table8(&cfg, &datasets);
}
