//! Plain-text dataset persistence.
//!
//! Generated datasets can be saved and reloaded so expensive full-scale
//! generations are paid once. The format is a line-oriented, tab-separated
//! text file — deliberately dependency-free and diffable:
//!
//! ```text
//! skysr-dataset v1
//! name\t<display name>
//! forest\t<num categories>
//! c\t<parent id | -1>\t<name>          (one per category, id = order)
//! graph\t<num vertices>\t<num edges>
//! v\t<lat>\t<lon>                       (or "v\t-" without coordinates)
//! e\t<from>\t<to>\t<weight>
//! pois\t<num pois>
//! p\t<vertex>\t<cat>[\t<cat>...]
//! end
//! ```

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use skysr_category::{CategoryId, ForestBuilder};
use skysr_core::PoiTable;
use skysr_graph::{GeoPoint, GraphBuilder, VertexId};

use crate::dataset::Dataset;

/// Codec errors.
#[derive(Debug)]
pub enum CodecError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the input, with a line hint.
    Parse(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "i/o error: {e}"),
            CodecError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> CodecError {
    CodecError::Parse(msg.into())
}

/// Serialises `dataset` to a writer.
pub fn write_dataset<W: Write>(dataset: &Dataset, w: W) -> Result<(), CodecError> {
    let mut w = BufWriter::new(w);
    writeln!(w, "skysr-dataset v1")?;
    writeln!(w, "name\t{}", dataset.name)?;
    writeln!(w, "forest\t{}", dataset.forest.num_categories())?;
    for c in dataset.forest.categories() {
        let parent = dataset.forest.parent(c).map_or(-1i64, |p| p.0 as i64);
        writeln!(w, "c\t{parent}\t{}", dataset.forest.name(c))?;
    }
    writeln!(w, "graph\t{}\t{}", dataset.graph.num_vertices(), dataset.graph.num_edges())?;
    for v in dataset.graph.vertices() {
        match dataset.graph.coords_of(v) {
            Some(p) => writeln!(w, "v\t{}\t{}", p.lat, p.lon)?,
            None => writeln!(w, "v\t-")?,
        }
    }
    // Each undirected edge is stored once; enumerate arcs from the lower
    // endpoint. Parallel edges survive (each copy appears once); graphs
    // with self-loops or directed arcs are outside this codec's scope.
    let mut written = 0usize;
    for u in dataset.graph.vertices() {
        for (v, c) in dataset.graph.neighbors(u) {
            if u.0 < v.0 {
                writeln!(w, "e\t{}\t{}\t{}", u.0, v.0, c.get())?;
                written += 1;
            }
        }
    }
    if written != dataset.graph.num_edges() {
        return Err(parse_err("codec supports undirected graphs without self-loops"));
    }
    writeln!(w, "pois\t{}", dataset.poi_vertices.len())?;
    for &p in &dataset.poi_vertices {
        write!(w, "p\t{}", p.0)?;
        for c in dataset.pois.categories_of(p) {
            write!(w, "\t{}", c.0)?;
        }
        writeln!(w)?;
    }
    writeln!(w, "end")?;
    w.flush()?;
    Ok(())
}

/// Deserialises a dataset from a reader.
pub fn read_dataset<R: Read>(r: R) -> Result<Dataset, CodecError> {
    let mut lines = BufReader::new(r).lines();
    let mut next = || -> Result<String, CodecError> {
        lines.next().ok_or_else(|| parse_err("unexpected end of file"))?.map_err(CodecError::Io)
    };

    if next()? != "skysr-dataset v1" {
        return Err(parse_err("bad magic line"));
    }
    let name_line = next()?;
    let name =
        name_line.strip_prefix("name\t").ok_or_else(|| parse_err("expected name line"))?.to_owned();

    // Forest.
    let forest_line = next()?;
    let ncat: usize = forest_line
        .strip_prefix("forest\t")
        .ok_or_else(|| parse_err("expected forest line"))?
        .parse()
        .map_err(|_| parse_err("bad category count"))?;
    let mut fb = ForestBuilder::new();
    for i in 0..ncat {
        let line = next()?;
        let mut parts = line.splitn(3, '\t');
        if parts.next() != Some("c") {
            return Err(parse_err(format!("expected category line {i}")));
        }
        let parent: i64 = parts
            .next()
            .ok_or_else(|| parse_err("missing parent"))?
            .parse()
            .map_err(|_| parse_err("bad parent id"))?;
        let cname = parts.next().ok_or_else(|| parse_err("missing category name"))?;
        let id = if parent < 0 {
            fb.add_root(cname)
        } else {
            fb.add_child(CategoryId(parent as u32), cname)
        };
        if id.0 as usize != i {
            return Err(parse_err("categories out of order"));
        }
    }
    let forest = fb.build();

    // Graph.
    let graph_line = next()?;
    let rest =
        graph_line.strip_prefix("graph\t").ok_or_else(|| parse_err("expected graph line"))?;
    let mut parts = rest.split('\t');
    let nv: usize =
        parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| parse_err("bad vertex count"))?;
    let ne: usize =
        parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| parse_err("bad edge count"))?;
    let mut gb = GraphBuilder::new();
    for _ in 0..nv {
        let line = next()?;
        let rest = line.strip_prefix("v\t").ok_or_else(|| parse_err("expected vertex line"))?;
        if rest == "-" {
            gb.add_vertex();
        } else {
            let mut p = rest.split('\t');
            let lat: f64 =
                p.next().and_then(|s| s.parse().ok()).ok_or_else(|| parse_err("bad latitude"))?;
            let lon: f64 =
                p.next().and_then(|s| s.parse().ok()).ok_or_else(|| parse_err("bad longitude"))?;
            gb.add_vertex_at(GeoPoint::new(lat, lon));
        }
    }
    for _ in 0..ne {
        let line = next()?;
        let rest = line.strip_prefix("e\t").ok_or_else(|| parse_err("expected edge line"))?;
        let mut p = rest.split('\t');
        let from: u32 =
            p.next().and_then(|s| s.parse().ok()).ok_or_else(|| parse_err("bad edge tail"))?;
        let to: u32 =
            p.next().and_then(|s| s.parse().ok()).ok_or_else(|| parse_err("bad edge head"))?;
        let weight: f64 =
            p.next().and_then(|s| s.parse().ok()).ok_or_else(|| parse_err("bad edge weight"))?;
        gb.add_edge(VertexId(from), VertexId(to), weight);
    }
    let graph = gb.build();

    // PoIs.
    let pois_line = next()?;
    let np: usize = pois_line
        .strip_prefix("pois\t")
        .ok_or_else(|| parse_err("expected pois line"))?
        .parse()
        .map_err(|_| parse_err("bad poi count"))?;
    let mut pois = PoiTable::new(graph.num_vertices());
    let mut poi_vertices = Vec::with_capacity(np);
    for _ in 0..np {
        let line = next()?;
        let rest = line.strip_prefix("p\t").ok_or_else(|| parse_err("expected poi line"))?;
        let mut p = rest.split('\t');
        let v: u32 =
            p.next().and_then(|s| s.parse().ok()).ok_or_else(|| parse_err("bad poi vertex"))?;
        poi_vertices.push(VertexId(v));
        for cat in p {
            let c: u32 = cat.parse().map_err(|_| parse_err("bad poi category"))?;
            if c as usize >= forest.num_categories() {
                return Err(parse_err("poi category out of range"));
            }
            pois.add_poi(VertexId(v), CategoryId(c));
        }
    }
    pois.finalize(&forest);
    if next()? != "end" {
        return Err(parse_err("missing end marker"));
    }
    Ok(Dataset { name, graph, forest, pois, poi_vertices, spec: None })
}

/// Saves to a file path.
pub fn save_dataset(dataset: &Dataset, path: impl AsRef<Path>) -> Result<(), CodecError> {
    write_dataset(dataset, std::fs::File::create(path)?)
}

/// Loads from a file path.
pub fn load_dataset(path: impl AsRef<Path>) -> Result<Dataset, CodecError> {
    read_dataset(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetSpec, Preset};

    #[test]
    fn roundtrip_preserves_structure() {
        let d = DatasetSpec::preset(Preset::CalSmall).scale(0.05).seed(4).generate();
        let mut buf = Vec::new();
        write_dataset(&d, &mut buf).unwrap();
        let d2 = read_dataset(&buf[..]).unwrap();
        assert_eq!(d.name, d2.name);
        assert_eq!(d.graph.num_vertices(), d2.graph.num_vertices());
        assert_eq!(d.graph.num_edges(), d2.graph.num_edges());
        assert_eq!(d.forest.num_categories(), d2.forest.num_categories());
        assert_eq!(d.poi_vertices, d2.poi_vertices);
        for &p in &d.poi_vertices {
            assert_eq!(d.pois.categories_of(p), d2.pois.categories_of(p));
        }
    }

    #[test]
    fn roundtrip_preserves_query_results() {
        let d = DatasetSpec::preset(Preset::CalSmall).scale(0.05).seed(4).generate();
        let mut buf = Vec::new();
        write_dataset(&d, &mut buf).unwrap();
        let d2 = read_dataset(&buf[..]).unwrap();
        let w = crate::workload::WorkloadSpec::new(2).queries(3).generate(&d);
        let ctx1 = d.context();
        let ctx2 = d2.context();
        let mut b1 = skysr_core::bssr::Bssr::new(&ctx1);
        let mut b2 = skysr_core::bssr::Bssr::new(&ctx2);
        for q in &w.queries {
            let r1 = b1.run(q).unwrap();
            let r2 = b2.run(q).unwrap();
            assert_eq!(r1.routes, r2.routes);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_dataset(&b"nope\n"[..]).unwrap_err();
        assert!(matches!(err, CodecError::Parse(_)));
    }

    #[test]
    fn truncated_input_rejected() {
        let d = DatasetSpec::preset(Preset::CalSmall).scale(0.05).generate();
        let mut buf = Vec::new();
        write_dataset(&d, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_dataset(&buf[..]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let d = DatasetSpec::preset(Preset::CalSmall).scale(0.05).generate();
        let path = std::env::temp_dir().join("skysr_codec_test.txt");
        save_dataset(&d, &path).unwrap();
        let d2 = load_dataset(&path).unwrap();
        assert_eq!(d.stats(), d2.stats());
        std::fs::remove_file(&path).ok();
    }
}
