//! Spatial index for closest-edge queries — the PoI embedding substrate.
//!
//! The paper embeds each PoI "on the closest edge in the same way as \[10\]"
//! (§7.1). Scanning every edge per PoI is O(|P|·|E|); this uniform-grid
//! index buckets edges by the cells their bounding box touches and answers
//! closest-edge queries by ring search, which is linear in practice for
//! city-scale extents.

use skysr_graph::geometry::{project_onto_segment, GeoPoint, Projection};
use skysr_graph::GraphBuilder;

/// A uniform-grid index over a builder's current edges.
pub struct EdgeIndex {
    cells: Vec<Vec<u32>>,
    nx: usize,
    ny: usize,
    min_lat: f64,
    min_lon: f64,
    cell_lat: f64,
    cell_lon: f64,
}

impl EdgeIndex {
    /// Indexes all edges of `builder` (which must have coordinates on
    /// every vertex). `cells_per_axis` trades memory for probe speed.
    pub fn build(builder: &GraphBuilder, cells_per_axis: usize) -> EdgeIndex {
        assert!(cells_per_axis >= 1);
        let (mut min_lat, mut max_lat) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_lon, mut max_lon) = (f64::INFINITY, f64::NEG_INFINITY);
        let coords: Vec<GeoPoint> = (0..builder.num_vertices())
            .map(|i| {
                builder
                    .coords_of(skysr_graph::VertexId(i as u32))
                    .expect("EdgeIndex requires coordinates on every vertex")
            })
            .collect();
        for p in &coords {
            min_lat = min_lat.min(p.lat);
            max_lat = max_lat.max(p.lat);
            min_lon = min_lon.min(p.lon);
            max_lon = max_lon.max(p.lon);
        }
        let nx = cells_per_axis;
        let ny = cells_per_axis;
        let cell_lat = ((max_lat - min_lat) / ny as f64).max(1e-9);
        let cell_lon = ((max_lon - min_lon) / nx as f64).max(1e-9);
        let mut idx = EdgeIndex {
            cells: vec![Vec::new(); nx * ny],
            nx,
            ny,
            min_lat,
            min_lon,
            cell_lat,
            cell_lon,
        };
        for (e, edge) in builder.edges().iter().enumerate() {
            let a = coords[edge.from.index()];
            let b = coords[edge.to.index()];
            let (r0, c0) = idx.cell_of(a);
            let (r1, c1) = idx.cell_of(b);
            for r in r0.min(r1)..=r0.max(r1) {
                for c in c0.min(c1)..=c0.max(c1) {
                    idx.cells[r * nx + c].push(e as u32);
                }
            }
        }
        idx
    }

    fn cell_of(&self, p: GeoPoint) -> (usize, usize) {
        let r = (((p.lat - self.min_lat) / self.cell_lat) as usize).min(self.ny - 1);
        let c = (((p.lon - self.min_lon) / self.cell_lon) as usize).min(self.nx - 1);
        (r, c)
    }

    /// Closest edge to `p` (by projected distance) among the indexed
    /// edges, with its projection. Searches outward ring by ring until a
    /// hit is found and one extra ring confirms it.
    pub fn closest_edge(&self, builder: &GraphBuilder, p: GeoPoint) -> Option<(usize, Projection)> {
        let (r0, c0) = self.cell_of(p);
        let max_ring = self.nx.max(self.ny);
        let mut best: Option<(usize, Projection)> = None;
        let mut confirm_rings = 0;
        for ring in 0..=max_ring {
            let mut any_cell = false;
            for (r, c) in ring_cells(r0, c0, ring, self.ny, self.nx) {
                any_cell = true;
                for &e in &self.cells[r * self.nx + c] {
                    let edge = builder.edges()[e as usize];
                    let a = builder.coords_of(edge.from).unwrap();
                    let b = builder.coords_of(edge.to).unwrap();
                    let proj = project_onto_segment(p, a, b);
                    if best.is_none_or(|(_, bp)| proj.dist2 < bp.dist2) {
                        best = Some((e as usize, proj));
                    }
                }
            }
            if best.is_some() {
                // One extra ring guards against a closer edge whose cell is
                // adjacent (projection distance vs. cell distance skew).
                confirm_rings += 1;
                if confirm_rings >= 2 {
                    break;
                }
            }
            if !any_cell && ring > 0 {
                break;
            }
        }
        best
    }
}

fn ring_cells(
    r0: usize,
    c0: usize,
    ring: usize,
    rows: usize,
    cols: usize,
) -> impl Iterator<Item = (usize, usize)> {
    let r_lo = r0 as isize - ring as isize;
    let r_hi = r0 as isize + ring as isize;
    let c_lo = c0 as isize - ring as isize;
    let c_hi = c0 as isize + ring as isize;
    (r_lo..=r_hi)
        .flat_map(move |r| (c_lo..=c_hi).map(move |c| (r, c)))
        .filter(move |&(r, c)| {
            (r == r_lo || r == r_hi || c == c_lo || c == c_hi)
                && r >= 0
                && c >= 0
                && (r as usize) < rows
                && (c as usize) < cols
        })
        .map(|(r, c)| (r as usize, c as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysr_graph::VertexId;

    fn two_street_builder() -> GraphBuilder {
        let mut b = GraphBuilder::new();
        // Horizontal street at lat 0, vertical at lon 1.
        let a = b.add_vertex_at(GeoPoint::new(0.0, 0.0));
        let c = b.add_vertex_at(GeoPoint::new(0.0, 1.0));
        let d = b.add_vertex_at(GeoPoint::new(1.0, 1.0));
        b.add_geo_edge(a, c); // edge 0
        b.add_geo_edge(c, d); // edge 1
        b
    }

    #[test]
    fn finds_closest_of_two_edges() {
        let b = two_street_builder();
        let idx = EdgeIndex::build(&b, 8);
        // Near the horizontal street's midpoint.
        let (e, proj) = idx.closest_edge(&b, GeoPoint::new(0.05, 0.5)).unwrap();
        assert_eq!(e, 0);
        assert!((proj.t - 0.5).abs() < 0.01);
        // Near the vertical street.
        let (e, _) = idx.closest_edge(&b, GeoPoint::new(0.7, 1.05)).unwrap();
        assert_eq!(e, 1);
    }

    #[test]
    fn matches_exhaustive_scan() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let (b, _, _) = crate::netgen::generate_network(&crate::netgen::NetGenSpec {
            target_vertices: 400,
            ..Default::default()
        });
        let idx = EdgeIndex::build(&b, 16);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let p = GeoPoint::new(
                35.68 + (rng.random::<f64>() - 0.5) * 0.2,
                139.77 + (rng.random::<f64>() - 0.5) * 0.2,
            );
            let (_, got) = idx.closest_edge(&b, p).unwrap();
            // Exhaustive reference.
            let best = b
                .edges()
                .iter()
                .map(|e| {
                    let a = b.coords_of(e.from).unwrap();
                    let c = b.coords_of(e.to).unwrap();
                    project_onto_segment(p, a, c).dist2
                })
                .fold(f64::INFINITY, f64::min);
            assert!(
                got.dist2 <= best * 1.0001 + 1e-18,
                "index missed a closer edge: {} vs {}",
                got.dist2,
                best
            );
        }
    }

    #[test]
    fn empty_builder_returns_none() {
        let mut b = GraphBuilder::new();
        b.add_vertex_at(GeoPoint::new(0.0, 0.0));
        let idx = EdgeIndex::build(&b, 4);
        assert!(idx.closest_edge(&b, GeoPoint::new(0.0, 0.0)).is_none());
    }

    #[test]
    fn ring_cells_cover_square() {
        let cells: Vec<_> = ring_cells(2, 2, 1, 5, 5).collect();
        assert_eq!(cells.len(), 8);
        let inner: Vec<_> = ring_cells(2, 2, 0, 5, 5).collect();
        assert_eq!(inner, vec![(2, 2)]);
    }

    #[test]
    fn split_point_from_projection() {
        // End-to-end: project, then split the edge there.
        let mut b = two_street_builder();
        let idx = EdgeIndex::build(&b, 8);
        let (e, proj) = idx.closest_edge(&b, GeoPoint::new(0.02, 0.25)).unwrap();
        let before = b.num_vertices();
        let mid = b.split_edge(e, proj.t);
        assert_eq!(b.num_vertices(), before + 1);
        let at = b.coords_of(mid).unwrap();
        assert!((at.lon - 0.25).abs() < 0.01);
        let _ = VertexId(0);
    }
}
