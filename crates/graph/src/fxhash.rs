//! A small FxHash-style hasher for integer keys.
//!
//! The modified-Dijkstra cache, resumable searches and PoI indexes key maps
//! by `u32`/`u64`; SipHash (std's default) is measurably slow there. This is
//! the well-known Firefox/rustc multiply-rotate hash, implemented locally so
//! the workspace stays within its approved dependency set.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher (FxHash).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn distinct_keys_usually_hash_differently() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let h = |x: u64| b.hash_one(x);
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(h(i));
        }
        // FxHash is not cryptographic but must not collapse small integers.
        assert!(seen.len() > 9_990);
    }

    #[test]
    fn byte_stream_matches_word_writes_for_padding() {
        // Writing 4 bytes must not panic and must be deterministic.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4]);
        assert_eq!(a.finish(), b.finish());
    }
}
