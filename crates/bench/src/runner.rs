//! Batch query execution across the four compared algorithms.

use std::time::{Duration, Instant};

use skysr_core::baseline::{level_combo_count, DijBaseline, PneBaseline};
use skysr_core::bssr::{Bssr, BssrConfig};
use skysr_core::{PreparedQuery, QueryContext, QueryStats, SkySrQuery};

/// The algorithms compared in §7 (Figure 3, Table 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algo {
    /// BSSR with all four optimisations.
    Bssr,
    /// BSSR without optimisation techniques.
    BssrNoOpt,
    /// Iterated OSR with the Dijkstra-based solution.
    Dij,
    /// Iterated OSR with progressive neighbour exploration.
    Pne,
}

impl Algo {
    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            Algo::Bssr => "BSSR",
            Algo::BssrNoOpt => "BSSR w/o Opt",
            Algo::Dij => "Dij",
            Algo::Pne => "PNE",
        }
    }

    /// All four, in the paper's legend order.
    pub fn all() -> [Algo; 4] {
        [Algo::Bssr, Algo::BssrNoOpt, Algo::Pne, Algo::Dij]
    }
}

/// Options for a batch run.
#[derive(Clone, Copy, Debug)]
pub struct RunOpts {
    /// Baselines skip queries needing more OSR combinations than this.
    pub baseline_max_combos: u64,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts { baseline_max_combos: u64::MAX }
    }
}

/// Aggregate outcome of running one algorithm over a query batch.
#[derive(Clone, Debug, Default)]
pub struct BatchResult {
    /// Successfully executed queries.
    pub executed: usize,
    /// Queries skipped because the baseline would exceed the combo cap.
    pub skipped: usize,
    /// Mean response time over executed queries (ms).
    pub mean_ms: f64,
    /// Total wall time (ms).
    pub total_ms: f64,
    /// Mean number of skyline routes returned.
    pub mean_routes: f64,
    /// Per-query BSSR stats (empty for baselines).
    pub stats: Vec<QueryStats>,
    /// Mean OSR combinations per query (baselines only).
    pub mean_combos: f64,
}

/// Runs `algo` over `queries`, timing each query.
pub fn run_batch(
    ctx: &QueryContext<'_>,
    queries: &[SkySrQuery],
    algo: Algo,
    opts: RunOpts,
) -> BatchResult {
    let mut out = BatchResult::default();
    let mut times: Vec<Duration> = Vec::with_capacity(queries.len());
    let mut routes_total = 0usize;
    let mut combos_total = 0u64;
    match algo {
        Algo::Bssr | Algo::BssrNoOpt => {
            let cfg =
                if algo == Algo::Bssr { BssrConfig::default() } else { BssrConfig::unoptimized() };
            let mut engine = Bssr::with_config(ctx, cfg);
            for q in queries {
                let t0 = Instant::now();
                let result = engine.run(q).expect("workload queries are valid");
                times.push(t0.elapsed());
                routes_total += result.routes.len();
                out.stats.push(result.stats);
                out.executed += 1;
            }
        }
        Algo::Dij => {
            let mut engine = DijBaseline::new(ctx);
            engine.max_combos = u64::MAX;
            for q in queries {
                let pq = PreparedQuery::prepare(ctx, q).expect("workload queries are valid");
                let combos = level_combo_count(ctx, &pq);
                if combos > opts.baseline_max_combos {
                    out.skipped += 1;
                    continue;
                }
                let t0 = Instant::now();
                let result = engine.run_prepared(&pq).expect("valid");
                times.push(t0.elapsed());
                routes_total += result.routes.len();
                combos_total += result.combos;
                out.executed += 1;
            }
        }
        Algo::Pne => {
            for q in queries {
                let pq = PreparedQuery::prepare(ctx, q).expect("workload queries are valid");
                let combos = level_combo_count(ctx, &pq);
                if combos > opts.baseline_max_combos {
                    out.skipped += 1;
                    continue;
                }
                let mut engine = PneBaseline::new(ctx);
                engine.max_combos = u64::MAX;
                let t0 = Instant::now();
                let result = engine.run_prepared(&pq).expect("valid");
                times.push(t0.elapsed());
                routes_total += result.routes.len();
                combos_total += result.combos;
                out.executed += 1;
            }
        }
    }
    out.total_ms = times.iter().map(|d| d.as_secs_f64() * 1e3).sum();
    if out.executed > 0 {
        out.mean_ms = out.total_ms / out.executed as f64;
        out.mean_routes = routes_total as f64 / out.executed as f64;
        out.mean_combos = combos_total as f64 / out.executed as f64;
    }
    out
}

/// Mean of a per-query statistic.
pub fn mean_of(stats: &[QueryStats], f: impl Fn(&QueryStats) -> f64) -> f64 {
    if stats.is_empty() {
        return 0.0;
    }
    stats.iter().map(f).sum::<f64>() / stats.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysr_data::dataset::{DatasetSpec, Preset};
    use skysr_data::workload::WorkloadSpec;

    #[test]
    fn all_algorithms_agree_on_small_batch() {
        let d = DatasetSpec::preset(Preset::CalSmall).scale(0.08).seed(21).generate();
        let ctx = d.context();
        let w = WorkloadSpec::new(2).queries(3).seed(5).generate(&d);
        let opts = RunOpts::default();
        let bssr = run_batch(&ctx, &w.queries, Algo::Bssr, opts);
        let noopt = run_batch(&ctx, &w.queries, Algo::BssrNoOpt, opts);
        let dij = run_batch(&ctx, &w.queries, Algo::Dij, opts);
        let pne = run_batch(&ctx, &w.queries, Algo::Pne, opts);
        assert_eq!(bssr.executed, 3);
        assert_eq!(bssr.mean_routes, noopt.mean_routes);
        assert_eq!(bssr.mean_routes, dij.mean_routes);
        assert_eq!(bssr.mean_routes, pne.mean_routes);
        assert!(bssr.mean_ms > 0.0);
    }

    #[test]
    fn combo_cap_skips() {
        let d = DatasetSpec::preset(Preset::CalSmall).scale(0.08).seed(21).generate();
        let ctx = d.context();
        let w = WorkloadSpec::new(3).queries(2).seed(6).generate(&d);
        let r = run_batch(&ctx, &w.queries, Algo::Dij, RunOpts { baseline_max_combos: 1 });
        assert_eq!(r.skipped, 2);
        assert_eq!(r.executed, 0);
    }
}
