//! Variations and extensions of the SkySR query (paper §6).
//!
//! * [`destination`] — SkySR with a fixed destination: the route's length
//!   additionally covers the leg from the last PoI to the destination.
//! * [`unordered`] — skyline trip planning without category order: visit
//!   one PoI per category, any order.
//! * [`rated`] — the §9 multi-attribute extension: a third skyline axis
//!   scoring PoI ratings.
//! * [`skyband`] — the k-skyband relaxation: routes dominated by fewer
//!   than k others (k = 1 ⇔ the SkySR query).
//!
//! The other §6 variations need no dedicated module: directed graphs work
//! by building the [`skysr_graph::GraphBuilder`] with `directed()`, PoIs
//! with multiple categories are native to [`crate::PoiTable`], and complex
//! category requirements are [`crate::query::PositionSpec::Requirement`].

pub mod destination;
pub mod rated;
pub mod skyband;
pub mod unordered;
