//! The §6 variations stay exact: destination-constrained SkySR, unordered
//! skyline trip planning, multi-category PoIs, complex requirements and
//! directed graphs — each checked against an oracle or a structural
//! invariant.

use skysr::category::{CategoryId, ForestBuilder, Requirement};
use skysr::core::bssr::{Bssr, BssrConfig};
use skysr::core::naive::naive_skysr;
use skysr::core::prepared::Position;
use skysr::core::query::PositionSpec;
use skysr::core::variants::destination::DestinationQuery;
use skysr::core::variants::unordered::{naive_unordered, UnorderedQuery};
use skysr::core::{PoiTable, PreparedQuery, QueryContext, SkySrQuery};
use skysr::graph::{GraphBuilder, VertexId};

/// Small two-tree world reused by several tests.
struct World {
    graph: skysr::graph::RoadNetwork,
    forest: skysr::category::CategoryForest,
    pois: PoiTable,
    cats: Vec<CategoryId>,
}

fn world(directed: bool) -> World {
    let mut fb = ForestBuilder::new();
    let food = fb.add_root("Food");
    let asian = fb.add_child(food, "Asian");
    let italian = fb.add_child(food, "Italian");
    let shop = fb.add_root("Shop");
    let gift = fb.add_child(shop, "Gift");
    let hobby = fb.add_child(shop, "Hobby");
    let forest = fb.build();

    let mut g = if directed { GraphBuilder::directed() } else { GraphBuilder::new() };
    let vs: Vec<VertexId> = (0..8).map(|_| g.add_vertex()).collect();
    // A ring so directed graphs stay strongly connected.
    for i in 0..8 {
        g.add_edge(vs[i], vs[(i + 1) % 8], 1.0 + i as f64 * 0.5);
        if directed {
            g.add_edge(vs[(i + 1) % 8], vs[i], 2.0 + i as f64 * 0.25);
        }
    }
    let mut pois = PoiTable::new(8);
    pois.add_poi(vs[1], asian);
    pois.add_poi(vs[2], italian);
    pois.add_poi(vs[4], gift);
    pois.add_poi(vs[5], hobby);
    pois.add_poi(vs[6], asian);
    pois.finalize(&forest);
    World { graph: g.build(), forest, pois, cats: vec![asian, italian, gift, hobby] }
}

#[test]
fn destination_variant_matches_oracle() {
    let w = world(false);
    let ctx = QueryContext::new(&w.graph, &w.forest, &w.pois);
    let [asian, _, gift, _] = w.cats[..] else { unreachable!() };
    for dest in [0u32, 3, 5] {
        let q = SkySrQuery::new(VertexId(0), [asian, gift]);
        let got = DestinationQuery::new(q.clone(), VertexId(dest))
            .run(&ctx, BssrConfig::default())
            .unwrap();
        let mut pq = PreparedQuery::prepare(&ctx, &q).unwrap();
        pq.positions.push(Position::destination(VertexId(dest)));
        let mut want = naive_skysr(&ctx, &pq, 1_000_000);
        for r in &mut want {
            r.pois.pop();
        }
        assert_eq!(got.routes.len(), want.len(), "dest {dest}");
        for (g, wnt) in got.routes.iter().zip(&want) {
            assert!((g.length.get() - wnt.length.get()).abs() < 1e-9);
            assert!((g.semantic - wnt.semantic).abs() < 1e-12);
        }
    }
}

#[test]
fn unordered_matches_permutation_oracle() {
    let w = world(false);
    let ctx = QueryContext::new(&w.graph, &w.forest, &w.pois);
    let [asian, _, gift, hobby] = w.cats[..] else { unreachable!() };
    for cats in [vec![asian, gift], vec![gift, asian, hobby]] {
        let q = UnorderedQuery::new(VertexId(0), cats);
        let got = q.run(&ctx).unwrap();
        let want = naive_unordered(&ctx, &q, 1_000_000).unwrap();
        assert_eq!(got.routes.len(), want.len(), "{q:?}");
        for (g, wnt) in got.routes.iter().zip(&want) {
            assert!((g.length.get() - wnt.length.get()).abs() < 1e-9);
            assert!((g.semantic - wnt.semantic).abs() < 1e-12);
        }
    }
}

#[test]
fn directed_graph_queries_work() {
    let w = world(true);
    assert!(w.graph.is_directed());
    let ctx = QueryContext::new(&w.graph, &w.forest, &w.pois);
    let [asian, _, gift, _] = w.cats[..] else { unreachable!() };
    let q = SkySrQuery::new(VertexId(0), [asian, gift]);
    let pq = PreparedQuery::prepare(&ctx, &q).unwrap();
    let got = Bssr::new(&ctx).run_prepared(&pq);
    let want = naive_skysr(&ctx, &pq, 1_000_000);
    assert_eq!(got.routes.len(), want.len());
    for (g, wnt) in got.routes.iter().zip(&want) {
        assert!((g.length.get() - wnt.length.get()).abs() < 1e-9);
    }
    assert!(!got.routes.is_empty());
}

#[test]
fn multi_category_pois_take_best_similarity() {
    // One PoI tagged both Asian and Gift satisfies either position — but
    // not both at once (Definition 3.4(iii)).
    let mut fb = ForestBuilder::new();
    let food = fb.add_root("Food");
    let asian = fb.add_child(food, "Asian");
    let shop = fb.add_root("Shop");
    let gift = fb.add_child(shop, "Gift");
    let forest = fb.build();
    let mut g = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..4).map(|_| g.add_vertex()).collect();
    g.add_edge(vs[0], vs[1], 1.0);
    g.add_edge(vs[1], vs[2], 1.0);
    g.add_edge(vs[2], vs[3], 1.0);
    let graph = g.build();
    let mut pois = PoiTable::new(4);
    pois.add_poi(vs[1], asian);
    pois.add_poi(vs[1], gift); // multi-category
    pois.add_poi(vs[3], gift);
    pois.finalize(&forest);
    let ctx = QueryContext::new(&graph, &forest, &pois);
    let q = SkySrQuery::new(vs[0], [asian, gift]);
    let result = Bssr::new(&ctx).run(&q).unwrap();
    // Only one valid assignment: v1 as Asian, v3 as Gift (v1 cannot serve
    // both positions).
    assert_eq!(result.routes.len(), 1);
    assert_eq!(result.routes[0].pois, vec![vs[1], vs[3]]);
    assert_eq!(result.routes[0].length.get(), 3.0);
    let pq = PreparedQuery::prepare(&ctx, &q).unwrap();
    assert_eq!(naive_skysr(&ctx, &pq, 1000), result.routes);
}

#[test]
fn requirement_positions_match_oracle() {
    let w = world(false);
    let ctx = QueryContext::new(&w.graph, &w.forest, &w.pois);
    let [asian, italian, gift, hobby] = w.cats[..] else { unreachable!() };
    let req = Requirement::any_of([asian, italian]);
    let shop_req = Requirement::category(gift).but_not(hobby);
    let q = SkySrQuery::with_positions(
        VertexId(3),
        [PositionSpec::Requirement(req), PositionSpec::Requirement(shop_req)],
    );
    let pq = PreparedQuery::prepare(&ctx, &q).unwrap();
    let got = Bssr::new(&ctx).run_prepared(&pq);
    let want = naive_skysr(&ctx, &pq, 1_000_000);
    assert_eq!(got.routes.len(), want.len());
    // The negation bans the hobby shop: vertex 5 never appears.
    for r in &got.routes {
        assert!(!r.pois.contains(&VertexId(5)));
    }
}

#[test]
fn destination_variant_on_generated_dataset() {
    use skysr::prelude::*;
    let d = DatasetSpec::preset(Preset::CalSmall).scale(0.05).seed(77).generate();
    let ctx = d.context();
    let w = WorkloadSpec::new(2).queries(3).seed(6).generate(&d);
    for q in &w.queries {
        let plain = Bssr::new(&ctx).run(q).unwrap();
        let dest =
            DestinationQuery::new(q.clone(), q.start).run(&ctx, BssrConfig::default()).unwrap();
        // Round trips are at least as long as one-way trips.
        let best_plain = plain.routes.iter().map(|r| r.length).min().unwrap();
        let best_dest = dest.routes.iter().map(|r| r.length).min().unwrap();
        assert!(best_dest >= best_plain);
    }
}
