//! Per-query preprocessing: dense similarity tables and candidate PoI sets.
//!
//! Before any search runs, each position of the category sequence is
//! compiled into a [`Position`]: an O(1) similarity oracle for vertices
//! plus the materialised candidate sets `P_c` (perfect matches) and `P_t`
//! (semantic matches) that NNinit, the minimum-distance bounds and the OSR
//! baselines consume. Plain-category positions resolve through a dense
//! per-category table; complex requirements (§6) precompute a per-vertex
//! map by scanning the PoI list once.

use skysr_category::similarity::SimilarityTable;
use skysr_graph::fxhash::FxHashMap;
use skysr_graph::{EpochId, VertexId};

use crate::context::QueryContext;
use crate::error::QueryError;
use crate::query::{PositionSpec, SkySrQuery};

#[derive(Debug)]
enum PositionKind {
    /// Dense `sim(query category, c)` per category id.
    ByCategory(SimilarityTable),
    /// Per-vertex similarity for complex requirements.
    PerVertex(FxHashMap<u32, f64>),
}

/// One compiled position of the sequence.
#[derive(Debug)]
pub struct Position {
    kind: PositionKind,
    /// PoIs that perfectly match this position (the paper's `P_c`).
    pub perfect: Vec<VertexId>,
    /// PoIs that semantically match this position (the paper's `P_t`).
    pub semantic: Vec<VertexId>,
    /// σ\*: the best non-perfect similarity reachable at this position
    /// (drives the minimum semantic increment δ of Lemma 5.8).
    pub sigma_star: Option<f64>,
    /// Category trees this position can match (used to decide whether the
    /// Lemma 5.5 path-similarity pruning is sound for it — see
    /// `bssr::Bssr`).
    pub trees: Vec<u32>,
    /// Whether this position may revisit a vertex already in the route
    /// (used by the destination variant's pseudo-position; always `false`
    /// for real PoI positions per Definition 3.4(iii)).
    pub allow_revisit: bool,
}

impl Position {
    /// Similarity of vertex `v` to this position (0 for non-matching
    /// vertices and non-PoIs).
    #[inline]
    pub fn sim_of(&self, ctx: &QueryContext<'_>, v: VertexId) -> f64 {
        match &self.kind {
            PositionKind::ByCategory(table) => {
                let mut best = 0.0f64;
                for &c in ctx.pois.categories_of(v) {
                    let s = table.sim(c);
                    if s > best {
                        best = s;
                    }
                }
                best
            }
            PositionKind::PerVertex(map) => map.get(&v.0).copied().unwrap_or(0.0),
        }
    }

    /// Whether `v` perfectly matches this position.
    #[inline]
    pub fn is_perfect(&self, ctx: &QueryContext<'_>, v: VertexId) -> bool {
        self.sim_of(ctx, v) >= 1.0
    }

    /// The best similarity any PoI can achieve at this position: 1 when a
    /// perfect match exists, otherwise σ\* (0 only for unmatchable
    /// positions, which short-circuit before any search). Products of
    /// this over remaining positions bound the minimum semantic score any
    /// completion can reach — positions without perfect matches (e.g.
    /// non-leaf ancestor categories when PoIs carry leaves) then yield
    /// finite pruning thresholds instead of an unbounded hunt for
    /// impossible semantic-0 routes.
    #[inline]
    pub fn best_sim(&self) -> f64 {
        if self.perfect.is_empty() {
            self.sigma_star.unwrap_or(0.0)
        } else {
            1.0
        }
    }

    /// Builds the destination pseudo-position: exactly one "PoI" (`dest`)
    /// with similarity 1, revisits allowed.
    pub fn destination(dest: VertexId) -> Position {
        let mut map = FxHashMap::default();
        map.insert(dest.0, 1.0);
        Position {
            kind: PositionKind::PerVertex(map),
            perfect: vec![dest],
            semantic: vec![dest],
            sigma_star: None,
            trees: Vec::new(),
            allow_revisit: true,
        }
    }
}

/// A fully compiled query, ready for any of the search algorithms.
#[derive(Debug)]
pub struct PreparedQuery {
    /// Start vertex.
    pub start: VertexId,
    /// Compiled positions, in sequence order.
    pub positions: Vec<Position>,
    /// The weight epoch of the graph view this query was compiled against:
    /// any search running this prepared query observes exactly that epoch's
    /// edge weights, so its result is attributable to (and only valid for)
    /// this epoch.
    pub epoch: EpochId,
}

impl PreparedQuery {
    /// Compiles `query` against `ctx`, validating ids.
    pub fn prepare(
        ctx: &QueryContext<'_>,
        query: &SkySrQuery,
    ) -> Result<PreparedQuery, QueryError> {
        if query.is_empty() {
            return Err(QueryError::EmptySequence);
        }
        if query.start.index() >= ctx.graph.num_vertices() {
            return Err(QueryError::UnknownStart(query.start));
        }
        let positions = query
            .sequence
            .iter()
            .map(|spec| Self::compile_position(ctx, spec))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PreparedQuery { start: query.start, positions, epoch: ctx.graph.epoch() })
    }

    fn compile_position(
        ctx: &QueryContext<'_>,
        spec: &PositionSpec,
    ) -> Result<Position, QueryError> {
        match spec {
            PositionSpec::Category(c) => {
                if c.index() >= ctx.forest.num_categories() {
                    return Err(QueryError::UnknownCategory(*c));
                }
                let table = SimilarityTable::build(ctx.forest, &DynSim(ctx.similarity), *c);
                let mut perfect = Vec::new();
                let mut semantic = Vec::new();
                let mut sigma_star: Option<f64> = None;
                for &p in ctx.pois.pois_in_tree_of(ctx.forest, *c) {
                    let mut best = 0.0f64;
                    for &pc in ctx.pois.categories_of(p) {
                        let s = table.sim(pc);
                        if s > best {
                            best = s;
                        }
                    }
                    if best <= 0.0 {
                        continue;
                    }
                    semantic.push(p);
                    if best >= 1.0 {
                        perfect.push(p);
                    } else if sigma_star.is_none_or(|b| best > b) {
                        sigma_star = Some(best);
                    }
                }
                Ok(Position {
                    kind: PositionKind::ByCategory(table),
                    perfect,
                    semantic,
                    sigma_star,
                    trees: vec![ctx.forest.tree_of(*c)],
                    allow_revisit: false,
                })
            }
            PositionSpec::Requirement(req) => {
                for c in req.referenced_categories() {
                    if c.index() >= ctx.forest.num_categories() {
                        return Err(QueryError::UnknownCategory(c));
                    }
                }
                let mut map = FxHashMap::default();
                let mut perfect = Vec::new();
                let mut semantic = Vec::new();
                let mut sigma_star: Option<f64> = None;
                for &p in ctx.pois.pois() {
                    let s = req.similarity(
                        ctx.forest,
                        &DynSim(ctx.similarity),
                        ctx.pois.categories_of(p),
                    );
                    if s <= 0.0 {
                        continue;
                    }
                    map.insert(p.0, s);
                    semantic.push(p);
                    if s >= 1.0 {
                        perfect.push(p);
                    } else if sigma_star.is_none_or(|b| s > b) {
                        sigma_star = Some(s);
                    }
                }
                let mut trees: Vec<u32> =
                    req.referenced_categories().iter().map(|&c| ctx.forest.tree_of(c)).collect();
                trees.sort_unstable();
                trees.dedup();
                Ok(Position {
                    kind: PositionKind::PerVertex(map),
                    perfect,
                    semantic,
                    sigma_star,
                    trees,
                    allow_revisit: false,
                })
            }
        }
    }

    /// |S_q|.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Always false: `prepare` rejects empty sequences.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Index of the first position with no semantically matching PoI, if
    /// any — such queries have an empty answer and searches short-circuit.
    pub fn unmatchable_position(&self) -> Option<usize> {
        self.positions.iter().position(|p| p.semantic.is_empty())
    }
}

/// Adapter: `&dyn Similarity` as a `Similarity`.
struct DynSim<'a>(&'a dyn skysr_category::Similarity);

impl skysr_category::Similarity for DynSim<'_> {
    fn sim(
        &self,
        forest: &skysr_category::CategoryForest,
        a: skysr_category::CategoryId,
        b: skysr_category::CategoryId,
    ) -> f64 {
        self.0.sim(forest, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poi::PoiTable;
    use skysr_category::{ForestBuilder, Requirement};
    use skysr_graph::GraphBuilder;

    struct Fixture {
        graph: skysr_graph::RoadNetwork,
        forest: skysr_category::CategoryForest,
        pois: PoiTable,
    }

    fn fixture() -> Fixture {
        // Vertices 0..5; PoIs: 1 = Asian, 2 = Italian, 3 = Gift, 4 = Asian.
        let mut gb = GraphBuilder::new();
        let vs: Vec<_> = (0..5).map(|_| gb.add_vertex()).collect();
        for w in vs.windows(2) {
            gb.add_edge(w[0], w[1], 1.0);
        }
        let graph = gb.build();
        let mut fb = ForestBuilder::new();
        let food = fb.add_root("Food");
        let asian = fb.add_child(food, "Asian");
        let italian = fb.add_child(food, "Italian");
        let shop = fb.add_root("Shop");
        let gift = fb.add_child(shop, "Gift");
        let forest = fb.build();
        let mut pois = PoiTable::new(graph.num_vertices());
        pois.add_poi(VertexId(1), asian);
        pois.add_poi(VertexId(2), italian);
        pois.add_poi(VertexId(3), gift);
        pois.add_poi(VertexId(4), asian);
        pois.finalize(&forest);
        Fixture { graph, forest, pois }
    }

    #[test]
    fn category_position_sets_and_sims() {
        let fx = fixture();
        let ctx = QueryContext::new(&fx.graph, &fx.forest, &fx.pois);
        let asian = fx.forest.by_name("Asian").unwrap();
        let q = SkySrQuery::new(VertexId(0), [asian]);
        let pq = PreparedQuery::prepare(&ctx, &q).unwrap();
        let pos = &pq.positions[0];
        assert_eq!(pos.perfect, vec![VertexId(1), VertexId(4)]);
        assert_eq!(pos.semantic, vec![VertexId(1), VertexId(2), VertexId(4)]);
        assert_eq!(pos.sim_of(&ctx, VertexId(1)), 1.0);
        assert_eq!(pos.sim_of(&ctx, VertexId(2)), 0.5); // Wu–Palmer siblings
        assert_eq!(pos.sim_of(&ctx, VertexId(3)), 0.0); // other tree
        assert_eq!(pos.sim_of(&ctx, VertexId(0)), 0.0); // not a PoI

        // σ*: best non-perfect similarity with actual PoIs = 0.5 (Italian).
        assert_eq!(pos.sigma_star, Some(0.5));
        assert!(pos.is_perfect(&ctx, VertexId(4)));
        assert!(!pos.allow_revisit);
    }

    #[test]
    fn requirement_position() {
        let fx = fixture();
        let ctx = QueryContext::new(&fx.graph, &fx.forest, &fx.pois);
        let asian = fx.forest.by_name("Asian").unwrap();
        let italian = fx.forest.by_name("Italian").unwrap();
        let req = Requirement::any_of([asian, italian]);
        let q = SkySrQuery::with_positions(VertexId(0), [PositionSpec::Requirement(req)]);
        let pq = PreparedQuery::prepare(&ctx, &q).unwrap();
        let pos = &pq.positions[0];
        // Both Asian and Italian PoIs now match perfectly.
        assert_eq!(pos.perfect, vec![VertexId(1), VertexId(2), VertexId(4)]);
        assert_eq!(pos.sim_of(&ctx, VertexId(2)), 1.0);
    }

    #[test]
    fn validation_errors() {
        let fx = fixture();
        let ctx = QueryContext::new(&fx.graph, &fx.forest, &fx.pois);
        let asian = fx.forest.by_name("Asian").unwrap();
        assert_eq!(
            PreparedQuery::prepare(&ctx, &SkySrQuery::new(VertexId(99), [asian])).unwrap_err(),
            QueryError::UnknownStart(VertexId(99))
        );
        assert_eq!(
            PreparedQuery::prepare(&ctx, &SkySrQuery::new(VertexId(0), [])).unwrap_err(),
            QueryError::EmptySequence
        );
        assert_eq!(
            PreparedQuery::prepare(
                &ctx,
                &SkySrQuery::new(VertexId(0), [skysr_category::CategoryId(999)])
            )
            .unwrap_err(),
            QueryError::UnknownCategory(skysr_category::CategoryId(999))
        );
    }

    #[test]
    fn unmatchable_position_detected() {
        let fx = fixture();
        let ctx = QueryContext::new(&fx.graph, &fx.forest, &fx.pois);
        let shop_root = fx.forest.by_name("Shop").unwrap();
        let asian = fx.forest.by_name("Asian").unwrap();
        // Shop tree has a Gift PoI → matchable; Food tree fine too.
        let q = SkySrQuery::new(VertexId(0), [asian, shop_root]);
        let pq = PreparedQuery::prepare(&ctx, &q).unwrap();
        assert_eq!(pq.unmatchable_position(), None);
        // A forest category with no PoIs anywhere in its tree:
        let mut fb = ForestBuilder::new();
        let lonely = fb.add_root("Lonely");
        let forest2 = fb.build();
        let mut pois2 = PoiTable::new(fx.graph.num_vertices());
        pois2.finalize(&forest2);
        let ctx2 = QueryContext::new(&fx.graph, &forest2, &pois2);
        let q2 = SkySrQuery::new(VertexId(0), [lonely]);
        let pq2 = PreparedQuery::prepare(&ctx2, &q2).unwrap();
        assert_eq!(pq2.unmatchable_position(), Some(0));
    }

    #[test]
    fn prepared_query_pins_the_graph_epoch() {
        use skysr_graph::{EpochId, WeightDelta, WeightEpoch};
        let fx = fixture();
        let asian = fx.forest.by_name("Asian").unwrap();
        let q = SkySrQuery::new(VertexId(0), [asian]);
        let ctx = QueryContext::new(&fx.graph, &fx.forest, &fx.pois);
        assert_eq!(PreparedQuery::prepare(&ctx, &q).unwrap().epoch, EpochId::BASE);
        assert_eq!(ctx.epoch(), EpochId::BASE);
        // Preparing against a later-epoch pin records that epoch.
        let epochs = WeightEpoch::new(fx.graph.clone());
        epochs.publish(&[WeightDelta::new(VertexId(0), VertexId(1), 2.0)]);
        let pinned = epochs.pin();
        let ctx2 = QueryContext::new(&pinned, &fx.forest, &fx.pois);
        assert_eq!(ctx2.epoch(), EpochId(1));
        assert_eq!(PreparedQuery::prepare(&ctx2, &q).unwrap().epoch, EpochId(1));
    }

    #[test]
    fn destination_pseudo_position() {
        let fx = fixture();
        let ctx = QueryContext::new(&fx.graph, &fx.forest, &fx.pois);
        let pos = Position::destination(VertexId(2));
        assert_eq!(pos.sim_of(&ctx, VertexId(2)), 1.0);
        assert_eq!(pos.sim_of(&ctx, VertexId(1)), 0.0);
        assert!(pos.allow_revisit);
        assert_eq!(pos.perfect, vec![VertexId(2)]);
    }
}
