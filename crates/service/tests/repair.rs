//! Incremental skyline repair + epoch-history GC: the end-to-end serving
//! guarantees.
//!
//! * repaired answers are oracle-exact at their pinned epochs under an
//!   update-heavy open-loop replay (the CI `repair-verify` job in
//!   miniature), with most attempts resolving in place;
//! * a bounded epoch ring stays bounded under churn: after the service
//!   drains, at most K epochs are retained, and the mid-run high-water
//!   mark never exceeds K plus one leased epoch per worker;
//! * a prefix skyline cached one epoch behind still seeds a warm start
//!   when the delta provably does not touch it — and never when it might
//!   (the `ResultCache::peek` stale-prefix fix), with exact answers either
//!   way.

use std::sync::Arc;

use skysr_category::{CategoryForest, CategoryId, ForestBuilder};
use skysr_core::bssr::{Bssr, BssrConfig};
use skysr_core::route::equivalent_skylines;
use skysr_core::{PoiTable, SkySrQuery};
use skysr_data::dataset::{DatasetSpec, Preset};
use skysr_graph::{GraphBuilder, RoadNetwork, VertexId, WeightDelta};
use skysr_service::replay::{build_pool, replay_on, ReplaySpec};
use skysr_service::{QueryService, Service, ServiceConfig, ServiceContext};

#[test]
fn update_heavy_repair_replay_verifies_and_repairs_in_place() {
    let dataset = DatasetSpec::preset(Preset::CalSmall).scale(0.08).seed(21).generate();
    let spec = ReplaySpec {
        total: 240,
        distinct: 16,
        workers: 4,
        seq_len: 2,
        qps: 2000.0,
        update_rate: 250.0,
        update_burst: 8,
        update_magnitude: 2.0,
        repair: true,
        verify: true,
        ..ReplaySpec::default()
    };
    let pool = build_pool(&dataset, &spec);
    let ctx = Arc::new(ServiceContext::from_dataset(dataset));
    let report = replay_on(ctx, &pool, &spec);
    assert_eq!(report.metrics.completed, 240);
    assert_eq!(report.verify_mismatches, Some(0), "repair must be oracle-exact");
    assert_eq!(report.stale_served(), 0);
    assert!(report.epochs_published > 0, "updates must interleave with the stream");
    let m = &report.metrics;
    assert!(m.repairs > 0, "epoch churn over a warm cache must trigger repairs: {m:?}");
    assert!(
        m.repair_fallbacks < m.repairs,
        "most repairs resolve in place ({} fallbacks vs {} repairs)",
        m.repair_fallbacks,
        m.repairs
    );
    assert_eq!(m.cache.invalidations, 0, "repair replaces lazy invalidation entirely");
}

#[test]
fn bounded_retention_soak_keeps_history_within_the_ring() {
    let dataset = DatasetSpec::preset(Preset::CalSmall).scale(0.08).seed(33).generate();
    const K: usize = 6;
    let workers = 4;
    let spec = ReplaySpec {
        total: 400,
        distinct: 16,
        workers,
        seq_len: 2,
        qps: 3000.0,
        update_rate: 400.0,
        update_burst: 8,
        repair: true,
        retention: K,
        ..ReplaySpec::default()
    };
    let pool = build_pool(&dataset, &spec);
    let ctx = Arc::new(ServiceContext::from_dataset(dataset));
    let report = replay_on(Arc::clone(&ctx), &pool, &spec);
    assert!(report.epochs_published as usize > 2 * K, "the soak must overflow the ring");
    let gc = report.epoch_gc;
    assert_eq!(gc.retention, K);
    assert!(gc.retained <= K, "after drain the ring holds at most K epochs: {gc:?}");
    assert!(gc.compacted > 0, "overflowing the ring must compact overlays: {gc:?}");
    // Mid-run, each worker can lease at most one older epoch beyond the
    // ring (it re-pins per job), so the high-water mark is hard-bounded.
    assert!(gc.retained_max <= K + workers, "history exceeded the ring plus worker leases: {gc:?}");
    assert_eq!(report.stale_served(), 0);
}

/// A 40-vertex line city: PoIs near the start, nothing else for miles.
/// Weight updates at the far end provably cannot touch short skylines.
struct LineCity {
    graph: RoadNetwork,
    forest: CategoryForest,
    pois: PoiTable,
    asian: CategoryId,
    gift: CategoryId,
}

fn line_city() -> LineCity {
    let mut fb = ForestBuilder::new();
    let food = fb.add_root("Food");
    let asian = fb.add_child(food, "Asian");
    let shop = fb.add_root("Shop");
    let gift = fb.add_child(shop, "Gift");
    let forest = fb.build();
    let mut gb = GraphBuilder::new();
    let vs: Vec<VertexId> = (0..40).map(|_| gb.add_vertex()).collect();
    for w in vs.windows(2) {
        gb.add_edge(w[0], w[1], 1.0);
    }
    let graph = gb.build();
    let mut pois = PoiTable::new(graph.num_vertices());
    pois.add_poi(vs[1], asian);
    pois.add_poi(vs[2], gift);
    pois.finalize(&forest);
    LineCity { graph, forest, pois, asian, gift }
}

fn exact(ctx: &ServiceContext, q: &SkySrQuery) -> Vec<skysr_core::SkylineRoute> {
    let pinned = ctx.pin();
    let qctx = pinned.query_context();
    Bssr::new(&qctx).run(q).unwrap().routes
}

#[test]
fn untouched_prefix_entries_seed_warm_starts_across_epochs() {
    // Regression for the `ResultCache::peek` stale-prefix fix: before it,
    // a prefix skyline one epoch behind was useless even when the delta
    // could not possibly affect it.
    let city = line_city();
    let ctx = Arc::new(ServiceContext::new(city.graph, city.forest, city.pois));
    // NNinit would independently rediscover this tiny city's routes and
    // mask the seed (only seeds that *survive* into the skyline count),
    // so run the ablated engine: exactness is independent of NNinit.
    let engine = BssrConfig { use_init_search: false, ..BssrConfig::default() };
    let service = Service::new(
        Arc::clone(&ctx),
        ServiceConfig { workers: 1, repair: true, engine, ..ServiceConfig::default() },
    );
    let prefix_q = SkySrQuery::new(VertexId(0), [city.asian]);
    let full_q = SkySrQuery::new(VertexId(0), [city.asian, city.gift]);

    // Cache the prefix skyline at epoch 0 (length 1, nowhere near v38).
    service.submit_query(prefix_q.clone()).wait().unwrap();
    // Reweight the far end of the line: provably untouchable by any route
    // of the prefix skyline's radius.
    ctx.publish_weights(&[WeightDelta::new(VertexId(38), VertexId(39), 5.0)]);

    let full = service.submit_query(full_q.clone()).wait().unwrap();
    assert!(equivalent_skylines(&full.routes, &exact(&ctx, &full_q)), "rescued seed stays exact");
    let m = service.metrics();
    assert_eq!(
        m.seeded_prefix, 1,
        "the one-epoch-stale prefix skyline must seed the warm start: {m:?}"
    );
    assert_eq!(m.stale_served, 0);
}

#[test]
fn touched_prefix_entries_are_not_rescued() {
    // Negative control: a delta adjacent to the prefix skyline must veto
    // the rescue (the untouched check is conservative), and the answer is
    // still exact via a cold search.
    let city = line_city();
    let ctx = Arc::new(ServiceContext::new(city.graph, city.forest, city.pois));
    // NNinit would independently rediscover this tiny city's routes and
    // mask the seed (only seeds that *survive* into the skyline count),
    // so run the ablated engine: exactness is independent of NNinit.
    let engine = BssrConfig { use_init_search: false, ..BssrConfig::default() };
    let service = Service::new(
        Arc::clone(&ctx),
        ServiceConfig { workers: 1, repair: true, engine, ..ServiceConfig::default() },
    );
    let prefix_q = SkySrQuery::new(VertexId(0), [city.asian]);
    let full_q = SkySrQuery::new(VertexId(0), [city.asian, city.gift]);

    service.submit_query(prefix_q.clone()).wait().unwrap();
    // Reweight the very first edge: the prefix route runs over it.
    ctx.publish_weights(&[WeightDelta::new(VertexId(0), VertexId(1), 3.0)]);

    let full = service.submit_query(full_q.clone()).wait().unwrap();
    assert!(equivalent_skylines(&full.routes, &exact(&ctx, &full_q)));
    let m = service.metrics();
    assert_eq!(m.seeded_prefix, 0, "a possibly-touched prefix must not seed: {m:?}");
    assert_eq!(m.stale_served, 0);
}
