//! Path helpers: validation and cost computation over explicit vertex
//! sequences.

use crate::csr::RoadNetwork;
use crate::weight::Cost;
use crate::VertexId;

/// Cost of walking `path` edge by edge, taking the cheapest parallel arc at
/// each hop. Returns `None` if some hop has no connecting arc.
pub fn path_cost(graph: &RoadNetwork, path: &[VertexId]) -> Option<Cost> {
    let mut total = Cost::ZERO;
    for hop in path.windows(2) {
        let w = graph.neighbors(hop[0]).filter(|(v, _)| *v == hop[1]).map(|(_, w)| w).min()?;
        total += w;
    }
    Some(total)
}

/// Whether `path` is a connected walk in `graph`.
pub fn is_walk(graph: &RoadNetwork, path: &[VertexId]) -> bool {
    path.windows(2).all(|hop| graph.neighbors(hop[0]).any(|(v, _)| v == hop[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn line3() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..3).map(|_| b.add_vertex()).collect();
        b.add_edge(v[0], v[1], 1.5);
        b.add_edge(v[1], v[2], 2.5);
        b.build()
    }

    #[test]
    fn cost_of_valid_walk() {
        let g = line3();
        let p = [VertexId(0), VertexId(1), VertexId(2)];
        assert_eq!(path_cost(&g, &p), Some(Cost::new(4.0)));
        assert!(is_walk(&g, &p));
    }

    #[test]
    fn broken_walk_rejected() {
        let g = line3();
        let p = [VertexId(0), VertexId(2)];
        assert_eq!(path_cost(&g, &p), None);
        assert!(!is_walk(&g, &p));
    }

    #[test]
    fn singleton_and_empty_paths_cost_zero() {
        let g = line3();
        assert_eq!(path_cost(&g, &[VertexId(1)]), Some(Cost::ZERO));
        assert_eq!(path_cost(&g, &[]), Some(Cost::ZERO));
        assert!(is_walk(&g, &[]));
    }

    #[test]
    fn parallel_edges_take_cheapest() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex();
        let v1 = b.add_vertex();
        b.add_edge(v0, v1, 9.0);
        b.add_edge(v0, v1, 2.0);
        let g = b.build();
        assert_eq!(path_cost(&g, &[v0, v1]), Some(Cost::new(2.0)));
    }
}
