//! The reuse planner: serving policy as data.
//!
//! Four PRs of reuse machinery (exact-hit cache, request coalescing,
//! prefix warm starts, incremental repair) used to live as one branch
//! ladder inside the worker loop, which made every new reuse source a
//! surgery on concurrent code. This module extracts the *policy* into an
//! explicit pipeline: for each dequeued job the [`ReusePlanner`] probes
//! the cache (through the unified, non-counting
//! [`probe`](crate::cache::ResultCache::probe)) and emits an ordered
//! [`ReusePlan`] over the rung ladder
//!
//! ```text
//! ExactHit → Coalesce → Repair → WarmSeed{prefix|ancestor|suffix} → ColdSearch
//! ```
//!
//! which the worker loop then executes *mechanically* — no reuse decision
//! is made at execution time. Plans resolve their raw material eagerly
//! (the hit's routes, the repair source plus its shared
//! [`DeltaIndex`], the seed skyline and its provenance), so plan
//! construction is unit-testable without spawning a worker pool, and the
//! executed [`Served`](crate::metrics::Served) outcome is the single
//! source of truth for both the response and the metrics.
//!
//! Three seed sources feed the `WarmSeed` rung, probed in decreasing
//! expected quality:
//!
//! * **Prefix** — a same-epoch skyline for ⟨c₁…c_{k−1}⟩ (PR 2), extended
//!   one Dijkstra leg. With repair enabled, a *stale* prefix entry is
//!   rescued when the epoch delta provably cannot touch it
//!   ([`wholesale_untouched`] over the shared per-epoch-pair index).
//! * **Ancestor** — a same-epoch skyline for the query with position `i`'s
//!   category replaced by one of its proper ancestors
//!   (`is_ancestor_or_self(c_anc, c_i)`). Its routes are full-length
//!   valid sequenced routes from the same start whose lengths are genuine
//!   at this epoch; the seeder revalidates every PoI against the *child*
//!   query's positions and rescores semantics — the same soundness
//!   argument as prefix reuse.
//! * **Suffix** — a same-epoch skyline for ⟨c₂…c_k⟩, prepended one
//!   shortest-path leg through a first-position match
//!   ([`seed_suffix_routes`](skysr_core::bssr::warm::seed_suffix_routes)).
//!
//! Cache accounting is part of planning (policy), not probing: exactly one
//! lookup is counted per cached request, and lazy invalidation of stale
//! entries happens here, deliberately, only when no repair path exists.

use std::sync::Arc;

use skysr_core::bssr::repair::wholesale_untouched;
use skysr_core::bssr::BssrConfig;
use skysr_core::query::SkySrQuery;
use skysr_core::route::SkylineRoute;
use skysr_graph::{DeltaIndex, EpochId};

use crate::cache::{QueryKey, ResultCache};
use crate::context::ServiceContext;
use crate::service::ServiceConfig;

/// The admission-time cost estimate for a request: which band of the rung
/// ladder its plan will land on, resolved *cheaply* (one non-counting
/// cache probe, no seed probes) before the request is queued.
///
/// The scheduler ([`ScheduledQueue`](crate::pool::ScheduledQueue)) maps
/// classes to bands so cheap rungs overtake expensive ones, and the
/// admission gate uses the class to pick a per-class service-time estimate
/// when deciding whether a deadline is still meetable. Classification is a
/// *prediction* — the authoritative plan is re-resolved at dequeue, and a
/// prediction gone stale (entry evicted, flight completed, epoch moved)
/// costs only scheduling precision, never correctness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CostClass {
    /// Expected to serve from cache or join an in-flight duplicate:
    /// microseconds of work.
    Hit,
    /// Expected to repair a stale entry against the epoch delta: bounded,
    /// far below a search.
    Repair,
    /// Expected to run the engine (warm-seeded or cold): the expensive
    /// band.
    Search,
}

impl CostClass {
    /// The scheduling band this class maps to (0 = cheapest).
    pub fn band(self) -> u8 {
        match self {
            CostClass::Hit => 0,
            CostClass::Repair => 1,
            CostClass::Search => 2,
        }
    }

    /// Every class, in band order — for iterating cost-model slots.
    pub const ALL: [CostClass; 3] = [CostClass::Hit, CostClass::Repair, CostClass::Search];

    /// Slot index into per-class arrays (same order as [`ALL`](Self::ALL)).
    pub fn index(self) -> usize {
        self.band() as usize
    }
}

/// Which cached skyline seeded a warm-started search.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SeedSource {
    /// The (k−1)-position prefix ⟨c₁…c_{k−1}⟩ of the query.
    Prefix,
    /// An ancestor-category variant: some position's category replaced by
    /// one of its proper ancestors.
    Ancestor,
    /// The (k−1)-position suffix ⟨c₂…c_k⟩ of the query.
    Suffix,
}

/// The reuse switches a service resolved at spawn time. Everything that
/// reads the cache is implied off without one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReuseStrategies {
    /// The result cache is consulted and filled.
    pub caching: bool,
    /// Concurrent duplicates coalesce onto one in-flight search.
    pub coalesce: bool,
    /// Prefix warm starts.
    pub prefix: bool,
    /// Ancestor-category warm starts.
    pub ancestor: bool,
    /// Suffix warm starts.
    pub suffix: bool,
    /// Incremental repair of stale entries across epochs.
    pub repair: bool,
}

impl ReuseStrategies {
    /// Resolves a [`ServiceConfig`]'s reuse switches: capacity 0 disables
    /// caching, and every cache-reading strategy with it.
    pub fn resolve(config: &ServiceConfig) -> ReuseStrategies {
        let caching = config.cache_capacity > 0;
        ReuseStrategies {
            caching,
            coalesce: config.coalesce,
            prefix: config.prefix_reuse && caching,
            ancestor: config.ancestor_reuse && caching,
            suffix: config.suffix_reuse && caching,
            repair: config.repair && caching,
        }
    }

    /// Everything off (the cold-search oracle configuration).
    pub fn none() -> ReuseStrategies {
        ReuseStrategies {
            caching: false,
            coalesce: false,
            prefix: false,
            ancestor: false,
            suffix: false,
            repair: false,
        }
    }

    /// The switch-wise AND of two strategy sets — how a per-request
    /// override mask ([`crate::RequestOptions::reuse`]) *restricts* the
    /// service-level strategies: a request can turn rungs off but never
    /// widen beyond what the service resolved. ANDing preserves the
    /// resolve-time implications (anything cache-reading stays off when
    /// caching is off) because AND can only clear switches.
    pub fn intersect(self, mask: ReuseStrategies) -> ReuseStrategies {
        ReuseStrategies {
            caching: self.caching && mask.caching,
            coalesce: self.coalesce && mask.coalesce,
            prefix: self.prefix && mask.prefix,
            ancestor: self.ancestor && mask.ancestor,
            suffix: self.suffix && mask.suffix,
            repair: self.repair && mask.repair,
        }
    }
}

/// One rung of a [`ReusePlan`], carrying its resolved raw material.
#[derive(Clone, Debug)]
pub enum PlanStep {
    /// A cache entry answers the request outright. Carries the entry's
    /// epoch stamp verbatim so the executor can independently re-check it
    /// against the request's pinned epoch — the stale-serve tripwire.
    ExactHit(EpochId, Arc<[SkylineRoute]>),
    /// Join (or lead) the in-flight computation for this (key, epoch).
    Coalesce,
    /// Repair this stale skyline against the epoch pair's shared
    /// touched-ball index and promote it in place. Terminal.
    Repair {
        /// The stale cached skyline (left resident in the cache).
        cached: Arc<[SkylineRoute]>,
        /// The per-epoch-pair index, shared across all stale keys of the
        /// pair.
        index: Arc<DeltaIndex>,
    },
    /// Run the search warm-started from `seeds`. Terminal.
    WarmSeed {
        /// Which cached skyline the seeds come from.
        source: SeedSource,
        /// The seed routes (validated and rescored by the seeder).
        seeds: Arc<[SkylineRoute]>,
    },
    /// Resolve the warm-seed rung *after* winning the flight (via
    /// [`ReusePlanner::seed_step`]) — emitted instead of an eager
    /// [`WarmSeed`](PlanStep::WarmSeed)/[`ColdSearch`](PlanStep::ColdSearch)
    /// whenever the plan passes through the coalescing rung, so duplicate
    /// followers never pay seed probes they would discard on joining.
    /// Terminal (resolves to one).
    ProbeSeeds,
    /// Run the search cold. Terminal.
    ColdSearch,
}

/// An ordered, fully resolved serving plan for one request: zero or one
/// `Coalesce` rung followed by exactly one terminal rung — or a lone
/// `ExactHit`.
#[derive(Clone, Debug)]
pub struct ReusePlan {
    /// The rungs, in execution order.
    pub steps: Vec<PlanStep>,
}

impl ReusePlan {
    /// The plan's terminal rung.
    pub fn terminal(&self) -> &PlanStep {
        self.steps.last().expect("plans are never empty")
    }

    /// Whether the plan serves straight from the cache.
    pub fn is_exact_hit(&self) -> bool {
        matches!(self.steps.first(), Some(PlanStep::ExactHit(..)))
    }

    /// Whether the plan passes through the coalescing rung.
    pub fn coalesces(&self) -> bool {
        self.steps.iter().any(|s| matches!(s, PlanStep::Coalesce))
    }
}

/// Builds [`ReusePlan`]s for dequeued jobs. Pure policy: owns no threads,
/// no queues — construction is directly unit-testable.
#[derive(Clone, Debug)]
pub struct ReusePlanner {
    strategies: ReuseStrategies,
    engine: BssrConfig,
}

impl ReusePlanner {
    /// Planner for the given strategy set and engine configuration (the
    /// engine configuration is part of every cache key).
    pub fn new(strategies: ReuseStrategies, engine: BssrConfig) -> ReusePlanner {
        ReusePlanner { strategies, engine }
    }

    /// The resolved strategy switches.
    pub fn strategies(&self) -> &ReuseStrategies {
        &self.strategies
    }

    /// The engine configuration every plan (and cache key) is built for —
    /// the single source of truth the worker's engines must share.
    pub fn engine(&self) -> BssrConfig {
        self.engine
    }

    /// This planner with its strategies restricted by a per-request mask
    /// (see [`ReuseStrategies::intersect`]); the engine configuration —
    /// and with it the cache-key space — is unchanged.
    pub fn masked(&self, mask: ReuseStrategies) -> ReusePlanner {
        ReusePlanner::new(self.strategies.intersect(mask), self.engine)
    }

    /// The canonical cache key for `query`, when any keyed machinery
    /// (caching or coalescing) is on.
    pub fn key_of(&self, query: &SkySrQuery) -> Option<QueryKey> {
        (self.strategies.caching || self.strategies.coalesce)
            .then(|| QueryKey::canonicalize(query, self.engine))
    }

    /// Plans the serving of `query` pinned to `epoch`.
    ///
    /// Probes the cache through the non-counting
    /// [`probe`](ResultCache::probe) and resolves every rung's raw
    /// material eagerly. Accounting happens here: exactly one counted
    /// lookup per cached request (hit iff the plan is an exact hit), and
    /// lazy invalidation of a stale entry when no repair path exists for
    /// it. `key` must be this planner's [`key_of`](Self::key_of) for the
    /// same query.
    pub fn plan(
        &self,
        query: &SkySrQuery,
        key: Option<&QueryKey>,
        epoch: EpochId,
        cache: &ResultCache,
        ctx: &ServiceContext,
    ) -> ReusePlan {
        let st = &self.strategies;
        let mut steps = Vec::with_capacity(2);

        // Rung 1: exact hit. One counted lookup per cached request.
        let mut stale: Option<(EpochId, Arc<[SkylineRoute]>)> = None;
        if st.caching {
            let key = key.expect("caching implies a key");
            match cache.probe(key, epoch) {
                Some((e, routes)) if e == epoch => {
                    cache.note_lookup(true);
                    steps.push(PlanStep::ExactHit(e, routes));
                    return ReusePlan { steps };
                }
                found => {
                    cache.note_lookup(false);
                    stale = found;
                }
            }
        }

        // Rung 2: coalescing (the executor joins or leads the flight).
        if st.coalesce {
            steps.push(PlanStep::Coalesce);
        }

        // Rung 3: repair. A stale same-key entry is carried into the plan
        // as repair raw material when the epoch pair's exact delta is
        // still derivable; otherwise it is lazily invalidated (repair
        // off) or left to be overwritten by the fresh insert (repair on,
        // delta compacted away).
        if let Some((entry_epoch, routes)) = stale {
            if st.repair {
                if let Some(index) = ctx.delta_index(entry_epoch, epoch) {
                    steps.push(PlanStep::Repair { cached: routes, index });
                    return ReusePlan { steps };
                }
            } else {
                cache.discard_older(key.expect("caching implies a key"), epoch);
            }
        }

        // Rung 4: warm-start seeds. With coalescing on, resolution is
        // deferred to the flight leader ([`Self::seed_step`]): most
        // requests planned here will park behind an in-flight duplicate,
        // and followers must not pay (and then discard) the seed probes.
        if st.caching {
            if st.coalesce {
                steps.push(PlanStep::ProbeSeeds);
                return ReusePlan { steps };
            }
            let key = key.expect("caching implies a key");
            if let Some((source, seeds)) = self.find_seeds(query, key, epoch, cache, ctx) {
                steps.push(PlanStep::WarmSeed { source, seeds });
                return ReusePlan { steps };
            }
        }

        // Rung 5: cold search.
        steps.push(PlanStep::ColdSearch);
        ReusePlan { steps }
    }

    /// Cheaply classifies `query`'s expected serving cost at admission
    /// time — the scheduler's cost model.
    ///
    /// Unlike [`plan`](Self::plan) this does **no accounting** (no counted
    /// lookup, no lazy invalidation) and **no seed probes**: it reads the
    /// cache through the non-counting [`probe`](ResultCache::probe) once
    /// and inspects the delta index. The later authoritative `plan` call
    /// repeats the probe; the only side effect of probing twice is an
    /// extra LRU recency promotion of the same entry, which is benign.
    /// Warm-seeded and cold searches are deliberately one class — telling
    /// them apart would cost the seed probes this path exists to avoid.
    pub fn classify(
        &self,
        key: Option<&QueryKey>,
        epoch: EpochId,
        cache: &ResultCache,
        ctx: &ServiceContext,
    ) -> CostClass {
        let st = &self.strategies;
        if st.caching {
            let key = key.expect("caching implies a key");
            match cache.probe(key, epoch) {
                Some((e, _)) if e == epoch => return CostClass::Hit,
                Some((e, _)) if st.repair && ctx.delta_index(e, epoch).is_some() => {
                    return CostClass::Repair;
                }
                _ => {}
            }
        }
        CostClass::Search
    }

    /// Resolves a deferred [`PlanStep::ProbeSeeds`] rung into its actual
    /// terminal — called by the executor only after it won the flight (a
    /// joined follower never pays these probes). Same policy as the eager
    /// path: best seed source wins, dry probes fall to a cold search.
    pub fn seed_step(
        &self,
        query: &SkySrQuery,
        key: Option<&QueryKey>,
        epoch: EpochId,
        cache: &ResultCache,
        ctx: &ServiceContext,
    ) -> PlanStep {
        debug_assert!(self.strategies.caching, "ProbeSeeds is only planned with caching on");
        let key = key.expect("caching implies a key");
        match self.find_seeds(query, key, epoch, cache, ctx) {
            Some((source, seeds)) => PlanStep::WarmSeed { source, seeds },
            None => PlanStep::ColdSearch,
        }
    }

    /// Probes the seed sources in priority order: prefix (strongest — one
    /// extension leg per route), then ancestor (full-length rescored
    /// seeds), then suffix (one prepended leg). All probes are same-epoch
    /// only, except the prefix *rescue*: with repair on, a stale prefix
    /// entry provably untouched by the epoch delta still seeds — its
    /// lengths are valid at the pinned epoch too.
    fn find_seeds(
        &self,
        query: &SkySrQuery,
        key: &QueryKey,
        epoch: EpochId,
        cache: &ResultCache,
        ctx: &ServiceContext,
    ) -> Option<(SeedSource, Arc<[SkylineRoute]>)> {
        let st = &self.strategies;
        if st.prefix {
            if let Some(pk) = key.prefix() {
                match cache.probe(&pk, epoch) {
                    Some((e, routes)) if e == epoch && !routes.is_empty() => {
                        return Some((SeedSource::Prefix, routes));
                    }
                    Some((e, routes)) if e < epoch && st.repair && !routes.is_empty() => {
                        // Cross-epoch rescue: sound iff the delta provably
                        // cannot touch any route of the prefix skyline.
                        let max_len = routes.iter().map(|r| r.length).max().expect("non-empty");
                        if let Some(index) = ctx.delta_index(e, epoch) {
                            if wholesale_untouched(&index, ctx.landmarks(), query.start, max_len) {
                                return Some((SeedSource::Prefix, routes));
                            }
                        }
                    }
                    Some((e, _)) if e < epoch && !st.repair => {
                        // Stale and unrescuable (repair off): seeds scored
                        // under other weights are useless — invalidate
                        // lazily, as the request path would.
                        cache.discard_older(&pk, epoch);
                    }
                    _ => {}
                }
            }
        }
        if st.ancestor {
            let forest = ctx.forest();
            for i in 0..key.len() {
                let Some(c) = key.position_category(i) else { continue };
                for anc in forest.proper_ancestors(c) {
                    let ak = key.with_position_category(i, anc);
                    if let Some((e, routes)) = cache.probe(&ak, epoch) {
                        if e == epoch && !routes.is_empty() {
                            return Some((SeedSource::Ancestor, routes));
                        }
                        if e < epoch && !st.repair {
                            // Unusable cross-epoch seed material: drop it
                            // instead of letting the probe's recency
                            // promotion keep a dead entry resident.
                            cache.discard_older(&ak, epoch);
                        }
                    }
                }
            }
        }
        if st.suffix {
            if let Some(sk) = key.suffix() {
                if let Some((e, routes)) = cache.probe(&sk, epoch) {
                    if e == epoch && !routes.is_empty() {
                        return Some((SeedSource::Suffix, routes));
                    }
                    if e < epoch && !st.repair {
                        cache.discard_older(&sk, epoch);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysr_core::bssr::Bssr;
    use skysr_core::paper_example::PaperExample;
    use skysr_graph::WeightDelta;

    fn harness() -> (PaperExample, Arc<ServiceContext>, ResultCache) {
        let ex = PaperExample::new();
        let ctx =
            Arc::new(ServiceContext::new(ex.graph.clone(), ex.forest.clone(), ex.pois.clone()));
        (ex, ctx, ResultCache::new(64))
    }

    fn all_on() -> ReuseStrategies {
        ReuseStrategies {
            caching: true,
            coalesce: true,
            prefix: true,
            ancestor: true,
            suffix: true,
            repair: false,
        }
    }

    /// Seed probing resolves eagerly only without the coalescing rung —
    /// the configuration the seed-priority tests use.
    fn seeds_eager() -> ReuseStrategies {
        ReuseStrategies { coalesce: false, ..all_on() }
    }

    /// Runs `query` cold and inserts its skyline under its key at `epoch`.
    fn fill(
        ctx: &ServiceContext,
        cache: &ResultCache,
        planner: &ReusePlanner,
        query: &SkySrQuery,
        epoch: EpochId,
    ) {
        let pinned = ctx.pin_at(epoch).expect("epoch is pinnable");
        let qctx = pinned.query_context();
        let routes = Bssr::new(&qctx).run(query).unwrap().routes;
        cache.insert(planner.key_of(query).unwrap(), epoch, routes.into());
    }

    #[test]
    fn cold_cache_plans_coalesce_then_deferred_seed_probe() {
        let (ex, ctx, cache) = harness();
        let planner = ReusePlanner::new(all_on(), BssrConfig::default());
        let q = ex.query();
        let key = planner.key_of(&q);
        let plan = planner.plan(&q, key.as_ref(), EpochId::BASE, &cache, &ctx);
        assert!(!plan.is_exact_hit());
        assert!(plan.coalesces());
        // With coalescing on, the seed rung is deferred: followers that
        // park under a flight must not have paid seed probes.
        assert!(matches!(plan.terminal(), PlanStep::ProbeSeeds), "{plan:?}");
        assert_eq!(plan.steps.len(), 2);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (0, 1), "planning counted exactly one lookup");
        // The leader-side resolution of an empty cache is a cold search.
        let step = planner.seed_step(&q, key.as_ref(), EpochId::BASE, &cache, &ctx);
        assert!(matches!(step, PlanStep::ColdSearch));
        // Seed probes are never counted as lookups.
        assert_eq!(cache.counters().misses, 1);
    }

    #[test]
    fn resident_entry_plans_an_exact_hit() {
        let (ex, ctx, cache) = harness();
        let planner = ReusePlanner::new(all_on(), BssrConfig::default());
        let q = ex.query();
        fill(&ctx, &cache, &planner, &q, EpochId::BASE);
        let key = planner.key_of(&q);
        let plan = planner.plan(&q, key.as_ref(), EpochId::BASE, &cache, &ctx);
        assert!(plan.is_exact_hit());
        assert!(!plan.coalesces(), "a hit never reaches the coalescing rung");
        assert_eq!(plan.steps.len(), 1);
        assert_eq!(cache.counters().hits, 1);
    }

    #[test]
    fn prefix_beats_ancestor_beats_suffix() {
        let (ex, ctx, cache) = harness();
        let planner = ReusePlanner::new(seeds_eager(), BssrConfig::default());
        let q = ex.query(); // ⟨c₁, c₂, c₃⟩
        let prefix_q = SkySrQuery::with_positions(q.start, q.sequence[..2].to_vec());
        let suffix_q = SkySrQuery::with_positions(q.start, q.sequence[1..].to_vec());
        let key = planner.key_of(&q);

        // Only the suffix cached → suffix seeds.
        fill(&ctx, &cache, &planner, &suffix_q, EpochId::BASE);
        let plan = planner.plan(&q, key.as_ref(), EpochId::BASE, &cache, &ctx);
        assert!(
            matches!(plan.terminal(), PlanStep::WarmSeed { source: SeedSource::Suffix, .. }),
            "{plan:?}"
        );

        // Prefix cached too → prefix wins.
        fill(&ctx, &cache, &planner, &prefix_q, EpochId::BASE);
        let plan = planner.plan(&q, key.as_ref(), EpochId::BASE, &cache, &ctx);
        assert!(
            matches!(plan.terminal(), PlanStep::WarmSeed { source: SeedSource::Prefix, .. }),
            "{plan:?}"
        );
    }

    #[test]
    fn ancestor_variant_seeds_the_child_query() {
        let (ex, ctx, cache) = harness();
        let planner = ReusePlanner::new(seeds_eager(), BssrConfig::default());
        // The paper query's first position is a leaf with a parent chain;
        // cache the parent variant and plan the child.
        let q = ex.query();
        let key = planner.key_of(&q).unwrap();
        let c0 = key.position_category(0).expect("paper query uses plain categories");
        let parent = ctx.forest().parent(c0).expect("paper categories are not roots");
        let anc_q = {
            let mut seq = q.sequence.clone();
            seq[0] = parent.into();
            SkySrQuery::with_positions(q.start, seq)
        };
        fill(&ctx, &cache, &planner, &anc_q, EpochId::BASE);
        let plan = planner.plan(&q, Some(&key), EpochId::BASE, &cache, &ctx);
        assert!(
            matches!(plan.terminal(), PlanStep::WarmSeed { source: SeedSource::Ancestor, .. }),
            "{plan:?}"
        );

        // The child's entry never seeds the parent variant — ancestor
        // probes walk *up* the tree only.
        let (_, ctx2, cache2) = harness();
        fill(&ctx2, &cache2, &planner, &q, EpochId::BASE);
        let anc_key = planner.key_of(&anc_q);
        let plan = planner.plan(&anc_q, anc_key.as_ref(), EpochId::BASE, &cache2, &ctx2);
        assert!(matches!(plan.terminal(), PlanStep::ColdSearch), "{plan:?}");
    }

    #[test]
    fn toggled_off_strategies_never_appear_in_plans() {
        let (ex, ctx, cache) = harness();
        let q = ex.query();
        let prefix_q = SkySrQuery::with_positions(q.start, q.sequence[..2].to_vec());
        let suffix_q = SkySrQuery::with_positions(q.start, q.sequence[1..].to_vec());
        let engine = BssrConfig::default();
        let seed_all = ReusePlanner::new(seeds_eager(), engine);
        fill(&ctx, &cache, &seed_all, &prefix_q, EpochId::BASE);
        fill(&ctx, &cache, &seed_all, &suffix_q, EpochId::BASE);

        let off = ReuseStrategies { prefix: false, suffix: false, ..seeds_eager() };
        let planner = ReusePlanner::new(off, engine);
        let key = planner.key_of(&q);
        let plan = planner.plan(&q, key.as_ref(), EpochId::BASE, &cache, &ctx);
        assert!(
            matches!(plan.terminal(), PlanStep::ColdSearch),
            "both seed sources are off: {plan:?}"
        );
        let no_coalesce =
            ReusePlanner::new(ReuseStrategies { coalesce: false, ..all_on() }, engine);
        let plan = no_coalesce.plan(&q, key.as_ref(), EpochId::BASE, &cache, &ctx);
        assert!(!plan.coalesces());
    }

    #[test]
    fn stale_entries_plan_repair_when_on_and_invalidate_when_off() {
        let (ex, ctx, cache) = harness();
        let engine = BssrConfig::default();
        let q = ex.query();
        let with_repair = ReusePlanner::new(ReuseStrategies { repair: true, ..all_on() }, engine);
        let key = with_repair.key_of(&q);
        fill(&ctx, &cache, &with_repair, &q, EpochId::BASE);
        let (from, to, w) = ctx.graph().arc(0);
        let e1 = ctx.publish_weights(&[WeightDelta::new(from, to, w.get() * 2.0)]);

        let plan = with_repair.plan(&q, key.as_ref(), e1, &cache, &ctx);
        assert!(plan.coalesces());
        let PlanStep::Repair { cached, index } = plan.terminal() else {
            panic!("stale entry with repair on must plan a repair: {plan:?}");
        };
        assert!(!cached.is_empty());
        assert_eq!(index.delta().from_epoch(), EpochId::BASE);
        assert_eq!(index.delta().to_epoch(), e1);
        assert_eq!(cache.counters().invalidations, 0, "the repair source stays resident");
        assert_eq!(cache.counters().len, 1);

        // Repair off: the same stale entry is lazily invalidated instead,
        // and the (deferred) seed rung is all that remains.
        let without = ReusePlanner::new(all_on(), engine);
        let plan = without.plan(&q, key.as_ref(), e1, &cache, &ctx);
        assert!(matches!(plan.terminal(), PlanStep::ProbeSeeds), "{plan:?}");
        assert_eq!(cache.counters().invalidations, 1);
        assert_eq!(cache.counters().len, 0);
    }

    #[test]
    fn classification_tracks_the_rung_ladder_without_accounting() {
        let (ex, ctx, cache) = harness();
        let engine = BssrConfig::default();
        let planner = ReusePlanner::new(ReuseStrategies { repair: true, ..all_on() }, engine);
        let q = ex.query();
        let key = planner.key_of(&q);

        // Empty cache → Search; classification counts no lookup.
        assert_eq!(planner.classify(key.as_ref(), EpochId::BASE, &cache, &ctx), CostClass::Search);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (0, 0), "classification is non-counting");

        // Resident fresh entry → Hit.
        fill(&ctx, &cache, &planner, &q, EpochId::BASE);
        assert_eq!(planner.classify(key.as_ref(), EpochId::BASE, &cache, &ctx), CostClass::Hit);

        // Stale entry with a derivable delta → Repair (with repair on),
        // Search otherwise — and the stale entry is left untouched either
        // way: invalidation is plan()'s job, not classification's.
        let (from, to, w) = ctx.graph().arc(0);
        let e1 = ctx.publish_weights(&[WeightDelta::new(from, to, w.get() * 2.0)]);
        assert_eq!(planner.classify(key.as_ref(), e1, &cache, &ctx), CostClass::Repair);
        let no_repair = ReusePlanner::new(all_on(), engine);
        assert_eq!(no_repair.classify(key.as_ref(), e1, &cache, &ctx), CostClass::Search);
        assert_eq!(cache.counters().invalidations, 0);
        assert_eq!(cache.counters().len, 1);

        // Caching off → always Search, no key needed.
        let off = ReusePlanner::new(ReuseStrategies::none(), engine);
        assert_eq!(off.classify(None, EpochId::BASE, &cache, &ctx), CostClass::Search);

        // Band order is the scheduling contract.
        assert!(CostClass::Hit.band() < CostClass::Repair.band());
        assert!(CostClass::Repair.band() < CostClass::Search.band());
    }

    #[test]
    fn caching_disabled_plans_probe_nothing() {
        let (ex, ctx, cache) = harness();
        let engine = BssrConfig::default();
        let planner = ReusePlanner::new(ReuseStrategies::none(), engine);
        let q = ex.query();
        assert!(planner.key_of(&q).is_none(), "no keyed machinery, no key");
        let plan = planner.plan(&q, None, EpochId::BASE, &cache, &ctx);
        assert!(matches!(plan.terminal(), PlanStep::ColdSearch));
        assert_eq!(plan.steps.len(), 1);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (0, 0), "disabled cache sees no lookups");
        // Coalesce-only (cache off): a key exists, no cache rungs.
        let co = ReusePlanner::new(
            ReuseStrategies { coalesce: true, ..ReuseStrategies::none() },
            engine,
        );
        let key = co.key_of(&q);
        assert!(key.is_some());
        let plan = co.plan(&q, key.as_ref(), EpochId::BASE, &cache, &ctx);
        assert!(plan.coalesces());
        assert!(matches!(plan.terminal(), PlanStep::ColdSearch));
        assert_eq!((cache.counters().hits, cache.counters().misses), (0, 0));
    }
}
