//! Category forest: a set of rooted trees over PoI categories.
//!
//! Matches the paper's §3: every category `c` belongs to exactly one
//! category tree `t_c`; a PoI associated with `c` is implicitly associated
//! with every ancestor of `c`. Depth is 1 at the roots so the Wu–Palmer
//! similarity of a root with itself is well-defined (2·1 / (1+1) = 1).

use std::collections::HashMap;

/// Identifier of a category inside a [`CategoryForest`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CategoryId(pub u32);

impl CategoryId {
    /// Index form for slice access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for CategoryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

const NO_PARENT: u32 = u32::MAX;

/// An immutable forest of category trees.
#[derive(Clone, Debug)]
pub struct CategoryForest {
    names: Vec<String>,
    parent: Vec<u32>,
    depth: Vec<u32>,
    tree: Vec<u32>,
    children: Vec<Vec<CategoryId>>,
    roots: Vec<CategoryId>,
    by_name: HashMap<String, CategoryId>,
}

impl CategoryForest {
    /// Number of categories across all trees.
    pub fn num_categories(&self) -> usize {
        self.names.len()
    }

    /// Number of trees in the forest.
    pub fn num_trees(&self) -> usize {
        self.roots.len()
    }

    /// Roots of all trees.
    pub fn roots(&self) -> &[CategoryId] {
        &self.roots
    }

    /// Human-readable category name.
    pub fn name(&self, c: CategoryId) -> &str {
        &self.names[c.index()]
    }

    /// Looks a category up by name.
    pub fn by_name(&self, name: &str) -> Option<CategoryId> {
        self.by_name.get(name).copied()
    }

    /// Parent category, or `None` for roots.
    pub fn parent(&self, c: CategoryId) -> Option<CategoryId> {
        let p = self.parent[c.index()];
        (p != NO_PARENT).then_some(CategoryId(p))
    }

    /// Depth of `c`; roots have depth 1 (paper Eq. 6 convention).
    pub fn depth(&self, c: CategoryId) -> u32 {
        self.depth[c.index()]
    }

    /// Id of the tree containing `c`.
    pub fn tree_of(&self, c: CategoryId) -> u32 {
        self.tree[c.index()]
    }

    /// Whether `a` and `b` live in the same category tree.
    pub fn same_tree(&self, a: CategoryId, b: CategoryId) -> bool {
        self.tree[a.index()] == self.tree[b.index()]
    }

    /// Direct children of `c`.
    pub fn children(&self, c: CategoryId) -> &[CategoryId] {
        &self.children[c.index()]
    }

    /// Whether `c` is a leaf.
    pub fn is_leaf(&self, c: CategoryId) -> bool {
        self.children[c.index()].is_empty()
    }

    /// All category ids.
    pub fn categories(&self) -> impl Iterator<Item = CategoryId> {
        (0..self.num_categories() as u32).map(CategoryId)
    }

    /// All leaf categories.
    pub fn leaves(&self) -> impl Iterator<Item = CategoryId> + '_ {
        self.categories().filter(|&c| self.is_leaf(c))
    }

    /// All categories of the tree rooted at tree id `t`.
    pub fn tree_members(&self, t: u32) -> impl Iterator<Item = CategoryId> + '_ {
        self.categories().filter(move |&c| self.tree[c.index()] == t)
    }

    /// Ancestors of `c` from itself up to (and including) its root — the
    /// paper's `a(c)`.
    pub fn ancestors(&self, c: CategoryId) -> impl Iterator<Item = CategoryId> + '_ {
        let mut cur = Some(c);
        std::iter::from_fn(move || {
            let here = cur?;
            cur = self.parent(here);
            Some(here)
        })
    }

    /// Proper ancestors of `c` from its parent up to the root — `a(c)`
    /// without `c` itself, nearest-first. The probe order for
    /// ancestor-category reuse: a cached skyline for the *parent* category
    /// is semantically closest to `c`'s own, so its seeds survive
    /// rescoring most often.
    pub fn proper_ancestors(&self, c: CategoryId) -> impl Iterator<Item = CategoryId> + '_ {
        self.ancestors(c).skip(1)
    }

    /// Whether `anc` is an ancestor of `c` (or equal to it).
    pub fn is_ancestor_or_self(&self, anc: CategoryId, c: CategoryId) -> bool {
        if !self.same_tree(anc, c) || self.depth(anc) > self.depth(c) {
            return false;
        }
        self.ancestors(c).any(|a| a == anc)
    }

    /// Deepest common ancestor (LCA) of two categories in the same tree;
    /// `None` for categories of different trees.
    pub fn lca(&self, a: CategoryId, b: CategoryId) -> Option<CategoryId> {
        if !self.same_tree(a, b) {
            return None;
        }
        let (mut x, mut y) = (a, b);
        while self.depth(x) > self.depth(y) {
            x = self.parent(x)?;
        }
        while self.depth(y) > self.depth(x) {
            y = self.parent(y)?;
        }
        while x != y {
            x = self.parent(x)?;
            y = self.parent(y)?;
        }
        Some(x)
    }

    /// Descendants of `c` including itself (preorder).
    pub fn descendants_or_self(&self, c: CategoryId) -> Vec<CategoryId> {
        let mut out = vec![c];
        let mut i = 0;
        while i < out.len() {
            let cur = out[i];
            out.extend_from_slice(self.children(cur));
            i += 1;
        }
        out
    }

    /// Maximum depth over the forest.
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }
}

/// Incremental builder for [`CategoryForest`].
#[derive(Clone, Debug, Default)]
pub struct ForestBuilder {
    names: Vec<String>,
    parent: Vec<u32>,
}

impl ForestBuilder {
    /// New empty builder.
    pub fn new() -> ForestBuilder {
        ForestBuilder::default()
    }

    /// Adds a new tree root.
    pub fn add_root(&mut self, name: &str) -> CategoryId {
        self.names.push(name.to_owned());
        self.parent.push(NO_PARENT);
        CategoryId((self.names.len() - 1) as u32)
    }

    /// Adds a child of an existing category.
    ///
    /// # Panics
    /// If `parent` is unknown or not yet added.
    pub fn add_child(&mut self, parent: CategoryId, name: &str) -> CategoryId {
        assert!(parent.index() < self.names.len(), "unknown parent {parent:?}");
        self.names.push(name.to_owned());
        self.parent.push(parent.0);
        CategoryId((self.names.len() - 1) as u32)
    }

    /// Finalises the forest, computing depths, tree ids and child lists.
    ///
    /// # Panics
    /// If duplicate names exist (names must be unique for `by_name`).
    pub fn build(self) -> CategoryForest {
        let n = self.names.len();
        let mut depth = vec![0u32; n];
        let mut tree = vec![0u32; n];
        let mut children: Vec<Vec<CategoryId>> = vec![Vec::new(); n];
        let mut roots = Vec::new();
        // Parents always precede children (builder invariant), so one pass
        // suffices.
        let mut tree_count = 0u32;
        for i in 0..n {
            let p = self.parent[i];
            if p == NO_PARENT {
                depth[i] = 1;
                tree[i] = tree_count;
                tree_count += 1;
                roots.push(CategoryId(i as u32));
            } else {
                let pi = p as usize;
                assert!(pi < i, "parent must be added before child");
                depth[i] = depth[pi] + 1;
                tree[i] = tree[pi];
                children[pi].push(CategoryId(i as u32));
            }
        }
        let mut by_name = HashMap::with_capacity(n);
        for (i, name) in self.names.iter().enumerate() {
            let prev = by_name.insert(name.clone(), CategoryId(i as u32));
            assert!(prev.is_none(), "duplicate category name {name:?}");
        }
        CategoryForest {
            names: self.names,
            parent: self.parent,
            depth,
            tree,
            children,
            roots,
            by_name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 2's two trees: Food{Asian{Japanese{Sushi}}, Italian, Bakery}
    /// and Shop&Service{Gift shop, Hobby shop, Clothing{Men's store}}.
    pub(crate) fn figure2() -> CategoryForest {
        let mut b = ForestBuilder::new();
        let food = b.add_root("Food");
        let asian = b.add_child(food, "Asian");
        b.add_child(asian, "Japanese");
        b.add_child(food, "Italian");
        b.add_child(food, "Bakery");
        let shop = b.add_root("Shop & Service");
        b.add_child(shop, "Gift shop");
        b.add_child(shop, "Hobby shop");
        let clothing = b.add_child(shop, "Clothing store");
        b.add_child(clothing, "Men's store");
        let jp = b.by_name_pending("Japanese");
        let mut f = b;
        f.add_child(jp, "Sushi");
        f.build()
    }

    impl ForestBuilder {
        fn by_name_pending(&self, name: &str) -> CategoryId {
            CategoryId(self.names.iter().position(|n| n == name).unwrap() as u32)
        }
    }

    #[test]
    fn depths_and_trees() {
        let f = figure2();
        let food = f.by_name("Food").unwrap();
        let sushi = f.by_name("Sushi").unwrap();
        let gift = f.by_name("Gift shop").unwrap();
        assert_eq!(f.depth(food), 1);
        assert_eq!(f.depth(sushi), 4);
        assert_eq!(f.depth(gift), 2);
        assert!(f.same_tree(food, sushi));
        assert!(!f.same_tree(food, gift));
        assert_eq!(f.num_trees(), 2);
    }

    #[test]
    fn ancestors_walk_to_root() {
        let f = figure2();
        let sushi = f.by_name("Sushi").unwrap();
        let names: Vec<_> = f.ancestors(sushi).map(|c| f.name(c).to_owned()).collect();
        assert_eq!(names, vec!["Sushi", "Japanese", "Asian", "Food"]);
    }

    #[test]
    fn lca_various() {
        let f = figure2();
        let sushi = f.by_name("Sushi").unwrap();
        let italian = f.by_name("Italian").unwrap();
        let japanese = f.by_name("Japanese").unwrap();
        let food = f.by_name("Food").unwrap();
        let gift = f.by_name("Gift shop").unwrap();
        assert_eq!(f.lca(sushi, italian), Some(food));
        assert_eq!(f.lca(sushi, japanese), Some(japanese));
        assert_eq!(f.lca(sushi, sushi), Some(sushi));
        assert_eq!(f.lca(sushi, gift), None);
    }

    #[test]
    fn leaves_and_is_leaf() {
        let f = figure2();
        let sushi = f.by_name("Sushi").unwrap();
        let japanese = f.by_name("Japanese").unwrap();
        assert!(f.is_leaf(sushi));
        assert!(!f.is_leaf(japanese));
        let leaves: Vec<_> = f.leaves().collect();
        assert!(leaves.contains(&sushi));
        assert!(!leaves.contains(&japanese));
    }

    #[test]
    fn proper_ancestors_walk_parent_chain_nearest_first() {
        let f = figure2();
        let sushi = f.by_name("Sushi").unwrap();
        let names: Vec<_> = f.proper_ancestors(sushi).map(|c| f.name(c).to_owned()).collect();
        assert_eq!(names, vec!["Japanese", "Asian", "Food"]);
        let food = f.by_name("Food").unwrap();
        assert_eq!(f.proper_ancestors(food).count(), 0, "roots have no proper ancestors");
        for a in f.proper_ancestors(sushi) {
            assert!(f.is_ancestor_or_self(a, sushi));
            assert_ne!(a, sushi);
        }
    }

    #[test]
    fn is_ancestor_or_self() {
        let f = figure2();
        let sushi = f.by_name("Sushi").unwrap();
        let food = f.by_name("Food").unwrap();
        let gift = f.by_name("Gift shop").unwrap();
        assert!(f.is_ancestor_or_self(food, sushi));
        assert!(f.is_ancestor_or_self(sushi, sushi));
        assert!(!f.is_ancestor_or_self(sushi, food));
        assert!(!f.is_ancestor_or_self(food, gift));
    }

    #[test]
    fn descendants_or_self_covers_subtree() {
        let f = figure2();
        let asian = f.by_name("Asian").unwrap();
        let ds = f.descendants_or_self(asian);
        let names: Vec<_> = ds.iter().map(|&c| f.name(c)).collect();
        assert!(names.contains(&"Asian"));
        assert!(names.contains(&"Japanese"));
        assert!(names.contains(&"Sushi"));
        assert!(!names.contains(&"Italian"));
    }

    #[test]
    fn by_name_roundtrip() {
        let f = figure2();
        for c in f.categories() {
            assert_eq!(f.by_name(f.name(c)), Some(c));
        }
    }

    #[test]
    fn tree_members_partition_categories() {
        let f = figure2();
        let total: usize = (0..f.num_trees() as u32).map(|t| f.tree_members(t).count()).sum();
        assert_eq!(total, f.num_categories());
    }

    #[test]
    #[should_panic(expected = "duplicate category name")]
    fn duplicate_names_rejected() {
        let mut b = ForestBuilder::new();
        b.add_root("X");
        b.add_root("X");
        b.build();
    }

    #[test]
    fn max_depth() {
        let f = figure2();
        assert_eq!(f.max_depth(), 4);
    }
}
