//! Warm start from a cached prefix skyline (semantic cache reuse).
//!
//! A skyline route for the prefix sequence ⟨c₁, …, c_{k−1}⟩ is, by
//! Definition 3.4, a valid partial route for the full query
//! ⟨c₁, …, c_{k−1}, c_k⟩: every completion of it with a PoI matching the
//! last position is a valid sequenced route. Seeding those completions into
//! the skyline set *before* the branch-and-bound search starts tightens the
//! pruning thresholds of Definition 5.4 — the exact mechanism NNinit
//! (§5.3.1) uses, but starting from the *Pareto-optimal* prefix trade-offs
//! instead of one greedy chain, so the seeded upper bounds are usually
//! tighter and more varied in semantic score.
//!
//! Correctness is inherited from the NNinit argument (Lemma 5.1/5.3): the
//! threshold only ever prunes routes that some inserted *valid* route
//! dominates, so any set of valid seed routes keeps the search exact. The
//! seeds here are valid by construction — prefix PoIs come from a prefix
//! skyline over the same start vertex, the appended PoI semantically
//! matches the last position and is not already on the route.

use skysr_graph::dijkstra::shortest_distance;
use skysr_graph::fxhash::FxHashMap;
use skysr_graph::{dijkstra_with, Cost, DijkstraWorkspace, Settle, VertexId};

use crate::context::QueryContext;
use crate::dominance::SkylineSet;
use crate::prepared::PreparedQuery;
use crate::route::SkylineRoute;
use crate::stats::QueryStats;

/// Extends every route of a (k−1)-position prefix skyline with reachable
/// matches for the last position of `pq`, inserting the completed routes
/// into `skyline`. Returns the number of seed routes inserted (also
/// recorded as [`QueryStats::warm_seed_routes`]).
///
/// Seeds of *full* length k are also accepted (since the incremental
/// repair work): they are validated against the query's positions,
/// rescored semantically, and inserted directly — no extension leg runs.
/// This is how repair's rescored survivors and epoch-crossing prefix
/// entries re-enter a search as thresholds.
///
/// Each seed's semantic score is recomputed from `pq`'s own positions (not
/// taken from the seed route), so any same-start skyline whose PoIs match
/// the corresponding positions produces a correctly scored seed; routes
/// whose shape does not fit (wrong length, a PoI that does not match its
/// position, duplicated PoIs) are skipped, so a stale or foreign skyline
/// degrades to a cold start.
///
/// **Precondition:** every seed route's `length` must be a genuine
/// accumulated shortest-path length from `pq.start` through its PoIs *at
/// this context's weight epoch* — the invariant of any skyline computed
/// for the same start vertex and epoch. An understated length would
/// over-tighten the pruning threshold and break exactness; this cannot be
/// validated cheaply here, and the cache-keyed caller (`skysr-service`)
/// guarantees it structurally (same-epoch entries, or entries proven
/// untouched by the epoch delta).
pub fn seed_prefix_routes(
    ctx: &QueryContext<'_>,
    pq: &PreparedQuery,
    prefix: &[SkylineRoute],
    ws: &mut DijkstraWorkspace,
    skyline: &mut SkylineSet,
    stats: &mut QueryStats,
) -> usize {
    let k = pq.len();
    let last = match pq.positions.last() {
        Some(p) => p,
        None => return 0,
    };
    let mut seeded = 0;
    for route in prefix {
        if route.pois.len() == k {
            // Full-length seed: validate and insert as-is.
            if valid_full_seed(ctx, pq, route) {
                let sim_acc: f64 = route
                    .pois
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| pq.positions[i].sim_of(ctx, p))
                    .product();
                if skyline.update(SkylineRoute {
                    pois: route.pois.clone(),
                    length: route.length,
                    semantic: 1.0 - sim_acc,
                }) {
                    seeded += 1;
                }
            }
            continue;
        }
        if route.pois.len() + 1 != k || route.pois.is_empty() {
            continue;
        }
        // Recompute the similarity accumulator Π h_i under *this* query's
        // positions (multiplied in position order, exactly as the engine
        // accumulates it). A PoI that does not match disqualifies the
        // route.
        let mut sim_acc = 1.0;
        let mut valid = true;
        for (i, &p) in route.pois.iter().enumerate() {
            let s = pq.positions[i].sim_of(ctx, p);
            if s <= 0.0 {
                valid = false;
                break;
            }
            sim_acc *= s;
        }
        if !valid {
            continue;
        }
        let source = *route.pois.last().expect("non-empty checked");
        let search_stats = dijkstra_with(ctx.graph, ws, &[(source, Cost::ZERO)], |u, d| {
            if route.pois.contains(&u) {
                // Definition 3.4(iii): PoI vertices must be distinct.
                return Settle::Continue;
            }
            let sim = last.sim_of(ctx, u);
            if sim > 0.0 {
                let mut pois = Vec::with_capacity(k);
                pois.extend_from_slice(&route.pois);
                pois.push(u);
                // Only completions that actually enter the set count as
                // seeds — dominated candidates contributed nothing, and
                // the warm/cold classification downstream relies on that.
                if skyline.update(SkylineRoute {
                    pois,
                    length: route.length + d,
                    semantic: 1.0 - sim_acc * sim,
                }) {
                    seeded += 1;
                }
                if sim >= 1.0 {
                    // Anything settling later is longer AND at best equally
                    // similar — dominated, so stop this leg (as NNinit's
                    // final leg does).
                    return Settle::Stop;
                }
            }
            Settle::Continue
        });
        stats.search.merge(&search_stats);
    }
    stats.warm_seed_routes = seeded;
    seeded
}

/// How many distinct first-position PoIs a suffix seed run prepends — the
/// nearest few matches give the tightest thresholds; beyond that the
/// point-to-point legs cost more than the pruning they buy.
const SUFFIX_PREPEND_SOURCES: usize = 4;

/// Hard settle budget for the seed run's source/head Dijkstra. The walk
/// normally stops far earlier (quota of nearby sources + settled heads),
/// but a sparse first position (fewer matches in the whole graph than the
/// quota) or an unreachable suffix head would otherwise degrade it to a
/// graph-wide scan — seeding is a heuristic, so past this budget it gives
/// up whatever it has rather than keep paying.
const SUFFIX_SCAN_SETTLE_BUDGET: u64 = 16_384;

/// Seeds the skyline for a k-position query from a cached skyline of its
/// *suffix* ⟨c₂, …, c_k⟩ over the same start vertex, by prepending one
/// shortest-path leg through a first-position match. Returns (and records
/// as [`QueryStats::warm_seed_routes`]) the number of seeds inserted.
///
/// A suffix route `R = (q₂, …, q_k)` from start `s` decomposes as
/// `l(R) = d(s, q₂) + T` where `T` is the sum of `R`'s inter-PoI legs —
/// all of which reappear verbatim in the candidate route
/// `(p₁, q₂, …, q_k)` for the full query. So the candidate's genuine
/// length is `d(s, p₁) + d(p₁, q₂) + (l(R) − d(s, q₂))`, every term a real
/// shortest-path leg at this context's epoch:
///
/// 1. one Dijkstra from `s` settles `d(s, q₂)` for every suffix head and
///    the nearest few (`SUFFIX_PREPEND_SOURCES`) first-position matches `p₁`
///    (walking on until a perfect match is found, capped at twice that);
/// 2. per (route, `p₁`) pair, one early-terminating point-to-point leg
///    gives `d(p₁, q₂)`.
///
/// Soundness is the full-length-seed precondition of
/// [`seed_prefix_routes`]: every seed is a valid sequenced route (PoIs
/// validated against *this* query's positions, semantics recomputed from
/// them, distinctness enforced) whose length is a genuine accumulated
/// shortest-path length — so it only tightens the pruning thresholds, and
/// a foreign or malformed suffix skyline degrades to a cold start.
///
/// **Precondition** (inherited): the suffix routes' lengths must be
/// genuine accumulated shortest-path lengths from `pq.start` *at this
/// context's weight epoch* — guaranteed by the cache-keyed caller handing
/// over same-start, same-epoch entries only.
pub fn seed_suffix_routes(
    ctx: &QueryContext<'_>,
    pq: &PreparedQuery,
    suffix: &[SkylineRoute],
    ws: &mut DijkstraWorkspace,
    skyline: &mut SkylineSet,
    stats: &mut QueryStats,
) -> usize {
    let k = pq.len();
    if k < 2 {
        return 0;
    }
    let first = &pq.positions[0];

    // Validate the suffix routes against positions 2..k and accumulate
    // each route's tail similarity product under *this* query's positions.
    struct Tail<'r> {
        route: &'r SkylineRoute,
        head: VertexId,
        tail_sim: f64,
    }
    let mut tails: Vec<Tail<'_>> = Vec::with_capacity(suffix.len());
    'routes: for route in suffix {
        if route.pois.len() + 1 != k || route.pois.is_empty() {
            continue;
        }
        let mut tail_sim = 1.0;
        for (j, &p) in route.pois.iter().enumerate() {
            let s = pq.positions[j + 1].sim_of(ctx, p);
            // Definition 3.4(iii): PoI vertices must be distinct — a
            // malformed route with duplicates must degrade to a cold
            // start, not become an understated-length seed.
            if s <= 0.0 || route.pois[..j].contains(&p) {
                continue 'routes;
            }
            tail_sim *= s;
        }
        tails.push(Tail { route, head: route.pois[0], tail_sim });
    }
    if tails.is_empty() {
        return 0;
    }

    // Pass 1: one Dijkstra from the start settles every suffix head (for
    // d(s, q₂)) and the nearest first-position matches (the prepend
    // sources).
    let mut head_dist: FxHashMap<u32, f64> = FxHashMap::default();
    let mut heads_left = 0usize;
    for t in &tails {
        if head_dist.insert(t.head.0, f64::INFINITY).is_none() {
            heads_left += 1;
        }
    }
    // Nothing settled beyond the semantic-0 threshold can contribute a
    // useful seed (any seed through it is at least that long, and the
    // semantic-0 member already dominates it), so the walk is capped at
    // the same radius the engine's own bound computation uses. Infinite
    // when the skyline has no perfect route yet — the source/head stop
    // below still keeps the walk local.
    let cap = skyline.threshold_zero();
    let mut sources: Vec<(VertexId, Cost, f64)> = Vec::new();
    let mut have_perfect = false;
    let mut settled = 0u64;
    let search_stats = dijkstra_with(ctx.graph, ws, &[(pq.start, Cost::ZERO)], |u, d| {
        settled += 1;
        if d > cap || settled > SUFFIX_SCAN_SETTLE_BUDGET {
            return Settle::Stop;
        }
        if let Some(slot) = head_dist.get_mut(&u.0) {
            if slot.is_infinite() {
                *slot = d.get();
                heads_left -= 1;
            }
        }
        // Always collect the nearest few; keep walking past them only
        // while hunting for a perfect match (a perfect match settled
        // early must not stall the collection below the stop quota).
        if sources.len() < 2 * SUFFIX_PREPEND_SOURCES
            && (sources.len() < SUFFIX_PREPEND_SOURCES || !have_perfect)
        {
            let sim = first.sim_of(ctx, u);
            if sim > 0.0 {
                sources.push((u, d, sim));
                have_perfect |= sim >= 1.0;
            }
        }
        // Enough prepend sources once the nearest few are in hand and
        // either one is perfect or the hunt for a perfect match has been
        // given one extra batch — a position with no perfect match at all
        // must not turn this into a graph-wide walk.
        let sources_done = sources.len() >= SUFFIX_PREPEND_SOURCES
            && (have_perfect || sources.len() >= 2 * SUFFIX_PREPEND_SOURCES);
        if heads_left == 0 && sources_done {
            Settle::Stop
        } else {
            Settle::Continue
        }
    });
    stats.search.merge(&search_stats);
    // Keep the nearest few, plus — if it only arrived in the extra batch —
    // the first perfect match (the semantically strongest prepend).
    if sources.len() > SUFFIX_PREPEND_SOURCES {
        let late_perfect =
            sources[SUFFIX_PREPEND_SOURCES..].iter().find(|&&(_, _, sim)| sim >= 1.0).copied();
        sources.truncate(SUFFIX_PREPEND_SOURCES);
        sources.extend(late_perfect);
    }

    // Pass 2: prepend each source to each suffix route via one
    // early-terminating point-to-point leg.
    let mut seeded = 0usize;
    for t in &tails {
        let d_head = head_dist[&t.head.0];
        if d_head.is_infinite() {
            continue; // head unreachable from the start
        }
        // The route's first leg *is* d(s, q₂), so the tail sum is exact.
        let tail_len = (t.route.length.get() - d_head).max(0.0);
        for &(p1, d_p1, sim1) in &sources {
            if t.route.pois.contains(&p1) {
                // Definition 3.4(iii): PoI vertices must be distinct.
                continue;
            }
            // `d(s,p1) + tail` already lower-bounds the seed's length
            // (the leg is non-negative): a seed the skyline provably
            // rejects is not worth its point-to-point Dijkstra.
            let sim_acc = sim1 * t.tail_sim;
            if skyline.dominated_or_equal(d_p1 + Cost::new(tail_len), 1.0 - sim_acc) {
                continue;
            }
            let Some(leg) = shortest_distance(ctx.graph, ws, p1, t.head) else {
                continue;
            };
            stats.search.settled += 1; // settled target, at minimum
            let mut pois = Vec::with_capacity(k);
            pois.push(p1);
            pois.extend_from_slice(&t.route.pois);
            if skyline.update(SkylineRoute {
                pois,
                length: d_p1 + leg + Cost::new(tail_len),
                semantic: 1.0 - sim_acc,
            }) {
                seeded += 1;
            }
        }
    }
    stats.warm_seed_routes = seeded;
    seeded
}

/// Whether `route` is a structurally valid full-length (k PoIs, distinct,
/// every PoI matching its position) sequenced route for `pq`.
fn valid_full_seed(ctx: &QueryContext<'_>, pq: &PreparedQuery, route: &SkylineRoute) -> bool {
    if route.pois.len() != pq.len() {
        return false;
    }
    for (i, &p) in route.pois.iter().enumerate() {
        if pq.positions[i].sim_of(ctx, p) <= 0.0 {
            return false;
        }
        // Definition 3.4(iii): PoI vertices must be distinct.
        if route.pois[..i].contains(&p) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bssr::Bssr;
    use crate::paper_example::PaperExample;
    use crate::query::SkySrQuery;
    use skysr_graph::VertexId;

    fn fixture() -> (PaperExample, SkySrQuery) {
        let ex = PaperExample::new();
        let q = ex.query();
        (ex, q)
    }

    #[test]
    fn seeds_complete_valid_routes_from_a_prefix_skyline() {
        let (ex, full) = fixture();
        let ctx = ex.context();
        // Cold skyline of the 2-position prefix.
        let prefix_query = SkySrQuery::with_positions(
            full.start,
            full.sequence[..full.sequence.len() - 1].to_vec(),
        );
        let prefix = Bssr::new(&ctx).run(&prefix_query).unwrap().routes;
        assert!(!prefix.is_empty());

        let pq = crate::prepared::PreparedQuery::prepare(&ctx, &full).unwrap();
        let mut ws = DijkstraWorkspace::new(ctx.graph.num_vertices());
        let mut skyline = SkylineSet::new();
        let mut stats = QueryStats::default();
        let n = seed_prefix_routes(&ctx, &pq, &prefix, &mut ws, &mut skyline, &mut stats);
        assert!(n > 0);
        assert_eq!(stats.warm_seed_routes, n);
        // Every seeded member is a full-length route with distinct PoIs and
        // scores no better than the true skyline permits.
        let truth = Bssr::new(&ctx).run(&full).unwrap().routes;
        for r in skyline.routes() {
            assert_eq!(r.pois.len(), full.len());
            let mut pois = r.pois.clone();
            pois.sort_unstable();
            pois.dedup();
            assert_eq!(pois.len(), full.len(), "distinct PoIs");
            assert!(
                truth.iter().any(|t| !r.dominates(t)),
                "a seed cannot dominate the exact skyline"
            );
        }
    }

    #[test]
    fn suffix_seeds_are_valid_genuine_length_routes() {
        let (ex, full) = fixture();
        let ctx = ex.context();
        // Cold skyline of the ⟨c₂, …, c_k⟩ suffix from the same start.
        let suffix_query = SkySrQuery::with_positions(full.start, full.sequence[1..].to_vec());
        let suffix = Bssr::new(&ctx).run(&suffix_query).unwrap().routes;
        assert!(!suffix.is_empty());

        let pq = crate::prepared::PreparedQuery::prepare(&ctx, &full).unwrap();
        let mut ws = DijkstraWorkspace::new(ctx.graph.num_vertices());
        let mut skyline = SkylineSet::new();
        let mut stats = QueryStats::default();
        let n = seed_suffix_routes(&ctx, &pq, &suffix, &mut ws, &mut skyline, &mut stats);
        assert!(n > 0, "the paper example's suffix skyline must produce seeds");
        assert_eq!(stats.warm_seed_routes, n);
        let truth = Bssr::new(&ctx).run(&full).unwrap().routes;
        for r in skyline.routes() {
            assert_eq!(r.pois.len(), full.len());
            let mut pois = r.pois.clone();
            pois.sort_unstable();
            pois.dedup();
            assert_eq!(pois.len(), full.len(), "distinct PoIs");
            // Genuine length: recompute the legs and compare.
            let mut at = full.start;
            let mut len = Cost::ZERO;
            for &p in &r.pois {
                len += shortest_distance(ctx.graph, &mut ws, at, p).unwrap();
                at = p;
            }
            assert!(
                (len.get() - r.length.get()).abs() < 1e-9,
                "seed length {} is not the accumulated shortest-path length {}",
                r.length.get(),
                len.get()
            );
            assert!(
                truth.iter().any(|t| !r.dominates(t)),
                "a seed cannot dominate the exact skyline"
            );
        }
    }

    #[test]
    fn malformed_suffixes_are_skipped() {
        let (ex, full) = fixture();
        let ctx = ex.context();
        let pq = crate::prepared::PreparedQuery::prepare(&ctx, &full).unwrap();
        let mut ws = DijkstraWorkspace::new(ctx.graph.num_vertices());
        let mut skyline = SkylineSet::new();
        let mut stats = QueryStats::default();
        let bad = vec![
            // Wrong length for a (k−1)-suffix.
            SkylineRoute { pois: vec![ex.p(2)], length: Cost::new(1.0), semantic: 0.0 },
            // Right length but a non-PoI vertex cannot match position 2.
            SkylineRoute {
                pois: vec![VertexId(0), ex.p(5)],
                length: Cost::new(1.0),
                semantic: 0.0,
            },
        ];
        let n = seed_suffix_routes(&ctx, &pq, &bad, &mut ws, &mut skyline, &mut stats);
        assert_eq!(n, 0);
        assert!(skyline.is_empty());
        // Single-position queries have no suffix to seed from.
        let single = SkySrQuery::with_positions(full.start, full.sequence[..1].to_vec());
        let spq = crate::prepared::PreparedQuery::prepare(&ctx, &single).unwrap();
        assert_eq!(seed_suffix_routes(&ctx, &spq, &bad, &mut ws, &mut skyline, &mut stats), 0);
    }

    #[test]
    fn malformed_prefixes_are_skipped() {
        let (ex, full) = fixture();
        let ctx = ex.context();
        let pq = crate::prepared::PreparedQuery::prepare(&ctx, &full).unwrap();
        let mut ws = DijkstraWorkspace::new(ctx.graph.num_vertices());
        let mut skyline = SkylineSet::new();
        let mut stats = QueryStats::default();
        let bad = vec![
            // Wrong length for a (k−1)-prefix.
            SkylineRoute { pois: vec![ex.p(2)], length: Cost::new(1.0), semantic: 0.0 },
            // Right length but a PoI that cannot match position 0
            // (vertex 0 is not a PoI at all).
            SkylineRoute {
                pois: vec![VertexId(0), ex.p(5)],
                length: Cost::new(1.0),
                semantic: 0.0,
            },
        ];
        let n = seed_prefix_routes(&ctx, &pq, &bad, &mut ws, &mut skyline, &mut stats);
        assert_eq!(n, 0);
        assert!(skyline.is_empty());
    }
}
