//! Category similarity measures (Definition 3.3, Eq. 6).
//!
//! The paper requires any `sim : C × C → [0, 1]` with three properties:
//! different trees ⇒ 0; same tree ⇒ (0, 1]; same category ⇒ 1. The default
//! measure is Wu–Palmer (Eq. 6); a path-length measure is provided as an
//! alternative (both are cited in Definition 3.3).

use crate::tree::{CategoryForest, CategoryId};

/// A category-to-category similarity in `[0, 1]`.
///
/// `Send + Sync` are supertraits so similarity measures (and the query
/// contexts holding `&dyn Similarity` / `Arc<dyn Similarity>`) can be
/// shared across the worker threads of `skysr-service`. Measures are pure
/// functions of the forest, so implementations are naturally thread-safe.
pub trait Similarity: Send + Sync {
    /// Similarity of `a` and `b` over `forest`.
    fn sim(&self, forest: &CategoryForest, a: CategoryId, b: CategoryId) -> f64;
}

/// Wu–Palmer similarity: `2·d(lca) / (d(a) + d(b))`, 0 across trees
/// (paper Eq. 6, with root depth 1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WuPalmer;

impl Similarity for WuPalmer {
    fn sim(&self, forest: &CategoryForest, a: CategoryId, b: CategoryId) -> f64 {
        match forest.lca(a, b) {
            None => 0.0,
            Some(m) => 2.0 * forest.depth(m) as f64 / (forest.depth(a) + forest.depth(b)) as f64,
        }
    }
}

/// Path-length similarity: `1 / (1 + hops(a, b))` within a tree, 0 across
/// trees.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathLength;

impl Similarity for PathLength {
    fn sim(&self, forest: &CategoryForest, a: CategoryId, b: CategoryId) -> f64 {
        match forest.lca(a, b) {
            None => 0.0,
            Some(m) => {
                let hops =
                    (forest.depth(a) - forest.depth(m)) + (forest.depth(b) - forest.depth(m));
                1.0 / (1.0 + hops as f64)
            }
        }
    }
}

/// Dense per-query similarity table: `sim(query_cat, c)` for every category
/// `c`, plus derived quantities the BSSR optimisations need.
///
/// Built once per query position; lookups during search are O(1) slice
/// reads.
#[derive(Clone, Debug)]
pub struct SimilarityTable {
    query_cat: CategoryId,
    values: Vec<f64>,
    /// Largest similarity strictly below 1 over the whole tree of the query
    /// category — the σ\* used for the minimum semantic increment δ
    /// (Lemma 5.8, footnote 2). `None` if the query tree has a single
    /// category.
    best_non_perfect: Option<f64>,
}

impl SimilarityTable {
    /// Precomputes the table for one query category.
    pub fn build<S: Similarity>(
        forest: &CategoryForest,
        sim: &S,
        query_cat: CategoryId,
    ) -> SimilarityTable {
        let mut values = vec![0.0f64; forest.num_categories()];
        let mut best_non_perfect: Option<f64> = None;
        let qt = forest.tree_of(query_cat);
        for c in forest.categories() {
            if forest.tree_of(c) != qt {
                continue;
            }
            let s = sim.sim(forest, query_cat, c);
            debug_assert!((0.0..=1.0).contains(&s));
            values[c.index()] = s;
            if s < 1.0 {
                best_non_perfect =
                    Some(best_non_perfect.map_or(s, |b: f64| if s > b { s } else { b }));
            }
        }
        SimilarityTable { query_cat, values, best_non_perfect }
    }

    /// The query category this table was built for.
    pub fn query_cat(&self) -> CategoryId {
        self.query_cat
    }

    /// Similarity of `c` to the query category.
    #[inline]
    pub fn sim(&self, c: CategoryId) -> f64 {
        self.values[c.index()]
    }

    /// Whether `c` semantically matches the query category (same tree).
    #[inline]
    pub fn matches(&self, c: CategoryId) -> bool {
        self.values[c.index()] > 0.0
    }

    /// Whether `c` perfectly matches the query category.
    #[inline]
    pub fn perfect(&self, c: CategoryId) -> bool {
        self.values[c.index()] >= 1.0
    }

    /// σ\*: best achievable non-perfect similarity at this position.
    pub fn best_non_perfect(&self) -> Option<f64> {
        self.best_non_perfect
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::ForestBuilder;

    fn forest() -> (CategoryForest, CategoryId, CategoryId, CategoryId, CategoryId, CategoryId) {
        // Food(1) -> Asian(2) -> Sushi(3); Food -> Italian(2); Shop(1) -> Gift(2)
        let mut b = ForestBuilder::new();
        let food = b.add_root("Food");
        let asian = b.add_child(food, "Asian");
        let sushi = b.add_child(asian, "Sushi");
        let italian = b.add_child(food, "Italian");
        let shop = b.add_root("Shop");
        let gift = b.add_child(shop, "Gift");
        let f = b.build();
        let _ = shop;
        (f, food, asian, sushi, italian, gift)
    }

    #[test]
    fn wu_palmer_identity_is_one() {
        let (f, food, asian, sushi, ..) = forest();
        let wp = WuPalmer;
        for c in [food, asian, sushi] {
            assert_eq!(wp.sim(&f, c, c), 1.0);
        }
    }

    #[test]
    fn wu_palmer_cross_tree_is_zero() {
        let (f, _, asian, ..) = forest();
        let gift = f.by_name("Gift").unwrap();
        assert_eq!(WuPalmer.sim(&f, asian, gift), 0.0);
        assert_eq!(WuPalmer.sim(&f, gift, asian), 0.0);
    }

    #[test]
    fn wu_palmer_known_values() {
        let (f, food, asian, sushi, italian, _) = forest();
        let wp = WuPalmer;
        // lca(Asian, Italian) = Food (depth 1): 2*1/(2+2) = 0.5
        assert_eq!(wp.sim(&f, asian, italian), 0.5);
        // lca(Sushi, Italian) = Food: 2*1/(3+2) = 0.4
        assert_eq!(wp.sim(&f, sushi, italian), 0.4);
        // lca(Asian, Sushi) = Asian (depth 2): 2*2/(2+3) = 0.8
        assert_eq!(wp.sim(&f, asian, sushi), 0.8);
        // lca(Food, Sushi) = Food: 2*1/(1+3) = 0.5
        assert_eq!(wp.sim(&f, food, sushi), 0.5);
    }

    #[test]
    fn wu_palmer_is_symmetric_and_bounded() {
        let (f, ..) = forest();
        let wp = WuPalmer;
        for a in f.categories() {
            for b in f.categories() {
                let s = wp.sim(&f, a, b);
                assert!((0.0..=1.0).contains(&s));
                assert_eq!(s, wp.sim(&f, b, a));
            }
        }
    }

    #[test]
    fn same_tree_similarity_is_positive() {
        // Definition 3.3: semantic match ⇒ sim > 0.
        let (f, ..) = forest();
        let wp = WuPalmer;
        for a in f.categories() {
            for b in f.categories() {
                if f.same_tree(a, b) {
                    assert!(wp.sim(&f, a, b) > 0.0, "{a:?} {b:?}");
                }
            }
        }
    }

    #[test]
    fn path_length_values() {
        let (f, food, asian, sushi, italian, _) = forest();
        let pl = PathLength;
        assert_eq!(pl.sim(&f, sushi, sushi), 1.0);
        assert_eq!(pl.sim(&f, asian, sushi), 0.5); // one hop
        assert_eq!(pl.sim(&f, asian, italian), 1.0 / 3.0); // two hops via Food
        assert_eq!(pl.sim(&f, food, sushi), 1.0 / 3.0);
        let gift = f.by_name("Gift").unwrap();
        assert_eq!(pl.sim(&f, sushi, gift), 0.0);
    }

    #[test]
    fn similarity_table_matches_direct_computation() {
        let (f, _, asian, ..) = forest();
        let t = SimilarityTable::build(&f, &WuPalmer, asian);
        for c in f.categories() {
            assert_eq!(t.sim(c), WuPalmer.sim(&f, asian, c));
            assert_eq!(t.matches(c), f.same_tree(asian, c));
        }
        assert!(t.perfect(asian));
        assert_eq!(t.query_cat(), asian);
    }

    #[test]
    fn best_non_perfect_is_second_best() {
        let (f, _, asian, sushi, italian, _) = forest();
        let t = SimilarityTable::build(&f, &WuPalmer, asian);
        // Candidates for σ*: sim(asian, sushi)=0.8, sim(asian, food)=2/3,
        // sim(asian, italian)=0.5 → max non-perfect = 0.8.
        assert_eq!(t.best_non_perfect(), Some(0.8));
        let _ = (sushi, italian);
    }

    #[test]
    fn best_non_perfect_none_for_singleton_tree() {
        let mut b = ForestBuilder::new();
        let solo = b.add_root("Solo");
        let f = b.build();
        let t = SimilarityTable::build(&f, &WuPalmer, solo);
        assert_eq!(t.best_non_perfect(), None);
    }
}
