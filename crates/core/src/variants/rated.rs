//! Multi-attribute SkySR: length × semantics × PoI **ratings** — the
//! extension the paper sketches in §9 ("the SkySR query … could be
//! extended to consider many attributes of a PoI (e.g., text, keywords,
//! and ratings)"), with the rating treatment of the *personalized
//! sequenced route* work it cites \[4\].
//!
//! Each PoI carries a quality rating in `[0, 1]`. A route's **rating
//! score** is the mean rating *deficit* `(Σ (1 − rating(p_i))) / |S_q|` —
//! 0 when every stop is top-rated, approaching 1 for all-bottom routes —
//! so all three scores share the "smaller is better" orientation and the
//! skyline generalises to 3-way dominance.
//!
//! The search is BSSR's branch-and-bound with a 3-D skyline set: a partial
//! route's scores are lower bounds for any completion (length grows,
//! semantic product shrinks, rating deficit only accumulates), so the
//! threshold prune of Lemma 5.3 carries over with
//! `l̄(s, r) = min { l(R') | s(R') ≤ s, r(R') ≤ r }`. The Lemma 5.5
//! path-similarity shortcuts do *not* carry over (a lower-similarity PoI
//! on the path may have a better rating) and stay off; exactness is
//! property-tested against an exhaustive oracle.

use std::collections::BinaryHeap;
use std::time::Instant;

use skysr_graph::{dijkstra_with, Cost, DijkstraWorkspace, Settle, VertexId};

use crate::context::QueryContext;
use crate::error::QueryError;
use crate::prepared::PreparedQuery;
use crate::query::SkySrQuery;
use crate::route::{approx_le, PartialRoute};
use crate::stats::QueryStats;

/// Per-vertex PoI ratings in `[0, 1]` (1 = best). Non-PoI entries are
/// ignored.
#[derive(Clone, Debug)]
pub struct RatingTable {
    ratings: Vec<f64>,
}

impl RatingTable {
    /// Builds a table for `num_vertices` vertices, all rated `default`.
    pub fn new(num_vertices: usize, default: f64) -> RatingTable {
        assert!((0.0..=1.0).contains(&default));
        RatingTable { ratings: vec![default; num_vertices] }
    }

    /// Sets the rating of vertex `v`.
    pub fn set(&mut self, v: VertexId, rating: f64) {
        assert!((0.0..=1.0).contains(&rating), "rating {rating} out of range");
        self.ratings[v.index()] = rating;
    }

    /// Rating of vertex `v`.
    #[inline]
    pub fn get(&self, v: VertexId) -> f64 {
        self.ratings[v.index()]
    }
}

/// A route scored on all three axes.
#[derive(Clone, Debug, PartialEq)]
pub struct RatedRoute {
    /// PoIs in visiting order.
    pub pois: Vec<VertexId>,
    /// Length score.
    pub length: Cost,
    /// Semantic score.
    pub semantic: f64,
    /// Rating-deficit score (0 = all stops top-rated).
    pub rating: f64,
}

impl RatedRoute {
    /// 3-way dominance: at least as good everywhere, strictly better
    /// somewhere (epsilon-aware like the 2-D case).
    pub fn dominates(&self, other: &RatedRoute) -> bool {
        let le = approx_le(self.length.get(), other.length.get())
            && approx_le(self.semantic, other.semantic)
            && approx_le(self.rating, other.rating);
        let ge = approx_le(other.length.get(), self.length.get())
            && approx_le(other.semantic, self.semantic)
            && approx_le(other.rating, self.rating);
        le && !ge
    }
}

/// Minimal 3-D skyline set.
#[derive(Clone, Debug, Default)]
struct RatedSkyline {
    routes: Vec<RatedRoute>,
}

impl RatedSkyline {
    fn dominated_or_equal(&self, l: Cost, s: f64, r: f64) -> bool {
        self.routes.iter().any(|x| {
            approx_le(x.length.get(), l.get()) && approx_le(x.semantic, s) && approx_le(x.rating, r)
        })
    }

    fn update(&mut self, route: RatedRoute) -> bool {
        if self.dominated_or_equal(route.length, route.semantic, route.rating) {
            return false;
        }
        self.routes.retain(|x| {
            !(approx_le(route.length.get(), x.length.get())
                && approx_le(route.semantic, x.semantic)
                && approx_le(route.rating, x.rating))
        });
        self.routes.push(route);
        true
    }

    /// `l̄(s, r)`: Lemma 5.3 threshold generalised to three criteria.
    fn threshold(&self, s: f64, r: f64) -> Cost {
        self.routes
            .iter()
            .filter(|x| x.semantic <= s && x.rating <= r)
            .map(|x| x.length)
            .min()
            .unwrap_or(Cost::INFINITY)
    }
}

/// A SkySR query additionally scored on PoI ratings.
#[derive(Clone, Debug)]
pub struct RatedQuery {
    /// The underlying start + category sequence.
    pub query: SkySrQuery,
}

/// Result of a rated query.
#[derive(Clone, Debug)]
pub struct RatedResult {
    /// The 3-D skyline, sorted by ascending length.
    pub routes: Vec<RatedRoute>,
    /// Instrumentation.
    pub stats: QueryStats,
}

/// A queue entry: partial route + accumulated rating deficit.
struct Entry {
    route: PartialRoute,
    deficit: f64,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // §5.3.2's arrangement, extended: size desc, semantic asc,
        // deficit asc, length asc.
        self.route
            .len()
            .cmp(&other.route.len())
            .then_with(|| Cost::new(other.route.semantic()).cmp(&Cost::new(self.route.semantic())))
            .then_with(|| Cost::new(other.deficit).cmp(&Cost::new(self.deficit)))
            .then_with(|| other.route.length().cmp(&self.route.length()))
    }
}

impl RatedQuery {
    /// Convenience constructor.
    pub fn new(query: SkySrQuery) -> RatedQuery {
        RatedQuery { query }
    }

    /// Runs the three-criteria skyline search.
    pub fn run(
        &self,
        ctx: &QueryContext<'_>,
        ratings: &RatingTable,
    ) -> Result<RatedResult, QueryError> {
        let t0 = Instant::now();
        let pq = PreparedQuery::prepare(ctx, &self.query)?;
        let k = pq.len();
        let mut stats = QueryStats::default();
        if pq.unmatchable_position().is_some() {
            return Ok(RatedResult { routes: Vec::new(), stats });
        }
        let mut skyline = RatedSkyline::default();
        let mut ws = DijkstraWorkspace::new(ctx.graph.num_vertices());

        // Initial bound: the greedy perfect chain (NNinit's first thread),
        // which yields one (length, 0, r) member.
        self.greedy_init(ctx, &pq, &mut ws, ratings, &mut skyline, &mut stats);

        let mut queue: BinaryHeap<Entry> = BinaryHeap::new();
        self.expand(
            ctx,
            &pq,
            ratings,
            &PartialRoute::empty(),
            0.0,
            &mut ws,
            &mut queue,
            &mut skyline,
            &mut stats,
        );
        while let Some(Entry { route, deficit }) = queue.pop() {
            let rating_min = deficit / k as f64;
            if route.length() >= skyline.threshold(route.semantic(), rating_min) {
                stats.threshold_prunes += 1;
                continue;
            }
            self.expand(
                ctx,
                &pq,
                ratings,
                &route,
                deficit,
                &mut ws,
                &mut queue,
                &mut skyline,
                &mut stats,
            );
        }

        let mut routes = skyline.routes;
        routes.sort_by_key(|r| r.length);
        stats.total_time = t0.elapsed();
        Ok(RatedResult { routes, stats })
    }

    #[allow(clippy::too_many_arguments)]
    fn greedy_init(
        &self,
        ctx: &QueryContext<'_>,
        pq: &PreparedQuery,
        ws: &mut DijkstraWorkspace,
        ratings: &RatingTable,
        skyline: &mut RatedSkyline,
        stats: &mut QueryStats,
    ) {
        let k = pq.len();
        let mut route = PartialRoute::empty();
        let mut deficit = 0.0;
        let mut source = pq.start;
        for i in 0..k {
            let position = &pq.positions[i];
            let mut hit = None;
            let s = dijkstra_with(ctx.graph, ws, &[(source, Cost::ZERO)], |u, d| {
                if !route.contains(u) && position.is_perfect(ctx, u) {
                    hit = Some((u, d));
                    Settle::Stop
                } else {
                    Settle::Continue
                }
            });
            stats.search.merge(&s);
            match hit {
                Some((u, d)) => {
                    route = route.extend(u, d, 1.0);
                    deficit += 1.0 - ratings.get(u);
                    source = u;
                }
                None => return,
            }
        }
        skyline.update(RatedRoute {
            pois: route.pois(),
            length: route.length(),
            semantic: 0.0,
            rating: deficit / k as f64,
        });
        stats.init_routes = 1;
    }

    #[allow(clippy::too_many_arguments)]
    fn expand(
        &self,
        ctx: &QueryContext<'_>,
        pq: &PreparedQuery,
        ratings: &RatingTable,
        route: &PartialRoute,
        deficit: f64,
        ws: &mut DijkstraWorkspace,
        queue: &mut BinaryHeap<Entry>,
        skyline: &mut RatedSkyline,
        stats: &mut QueryStats,
    ) {
        let k = pq.len();
        let pos = route.len();
        let position = &pq.positions[pos];
        let source = route.last_poi().unwrap_or(pq.start);
        let base = route.length();
        let rating_min = deficit / k as f64;
        stats.mdijkstra_runs += 1;
        let threshold = skyline.threshold(route.semantic(), rating_min);
        let mut found: Vec<(VertexId, Cost, f64)> = Vec::new();
        let s = dijkstra_with(ctx.graph, ws, &[(source, Cost::ZERO)], |u, d| {
            if base + d >= threshold {
                return Settle::Stop;
            }
            let sim = position.sim_of(ctx, u);
            if sim > 0.0 && !route.contains(u) {
                found.push((u, d, sim));
            }
            Settle::Continue
        });
        stats.search.merge(&s);
        for (u, d, sim) in found {
            let rt = route.extend(u, d, sim);
            let new_deficit = deficit + (1.0 - ratings.get(u));
            let new_rating_min = new_deficit / k as f64;
            if rt.length() >= skyline.threshold(rt.semantic(), new_rating_min) {
                stats.threshold_prunes += 1;
                continue;
            }
            if rt.len() == k {
                skyline.update(RatedRoute {
                    pois: rt.pois(),
                    length: rt.length(),
                    semantic: rt.semantic(),
                    rating: new_rating_min,
                });
            } else {
                queue.push(Entry { route: rt, deficit: new_deficit });
                stats.routes_enqueued += 1;
                stats.queue_peak = stats.queue_peak.max(queue.len());
            }
        }
    }
}

/// Exhaustive 3-D oracle for testing (same enumeration as
/// [`crate::naive::naive_skysr`], rating-aware).
pub fn naive_rated(
    ctx: &QueryContext<'_>,
    ratings: &RatingTable,
    query: &SkySrQuery,
    limit: u64,
) -> Result<Vec<RatedRoute>, QueryError> {
    let pq = PreparedQuery::prepare(ctx, query)?;
    let base = crate::naive::naive_all_routes(ctx, &pq, limit);
    let k = pq.len() as f64;
    let mut skyline = RatedSkyline::default();
    for r in base {
        let deficit: f64 = r.pois.iter().map(|&p| 1.0 - ratings.get(p)).sum();
        skyline.update(RatedRoute {
            pois: r.pois,
            length: r.length,
            semantic: r.semantic,
            rating: deficit / k,
        });
    }
    let mut routes = skyline.routes;
    routes.sort_by_key(|r| r.length);
    Ok(routes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::PaperExample;

    fn ratings_for(ex: &PaperExample) -> RatingTable {
        let mut t = RatingTable::new(ex.graph.num_vertices(), 0.5);
        // Make the hobby shop p7 outstanding and the gift shop p8 poor:
        // rating now differentiates routes the 2-D skyline collapsed.
        t.set(ex.p(7), 1.0);
        t.set(ex.p(8), 0.1);
        t.set(ex.p(13), 0.9);
        t
    }

    #[test]
    fn matches_oracle_on_fixture() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let ratings = ratings_for(&ex);
        let q = RatedQuery::new(ex.query());
        let got = q.run(&ctx, &ratings).unwrap();
        let want = naive_rated(&ctx, &ratings, &ex.query(), 1_000_000).unwrap();
        assert_eq!(got.routes.len(), want.len(), "{:?}\nvs\n{:?}", got.routes, want);
        for (g, w) in got.routes.iter().zip(&want) {
            assert!((g.length.get() - w.length.get()).abs() < 1e-9);
            assert!((g.semantic - w.semantic).abs() < 1e-12);
            assert!((g.rating - w.rating).abs() < 1e-12);
        }
    }

    #[test]
    fn third_criterion_grows_the_skyline() {
        // With ratings, routes dominated in 2-D can survive by quality:
        // the 3-D skyline is a superset of the 2-D one score-wise.
        let ex = PaperExample::new();
        let ctx = ex.context();
        let ratings = ratings_for(&ex);
        let two_d = crate::bssr::Bssr::new(&ctx).run(&ex.query()).unwrap();
        let three_d = RatedQuery::new(ex.query()).run(&ctx, &ratings).unwrap();
        assert!(three_d.routes.len() >= two_d.routes.len());
        // The high-rated hobby-shop route ⟨p2, p5, p7⟩ (dominated in 2-D
        // by ⟨p6, p9, p8⟩) reappears thanks to p7's perfect rating.
        assert!(three_d.routes.iter().any(|r| r.pois == vec![ex.p(2), ex.p(5), ex.p(7)]));
    }

    #[test]
    fn uniform_ratings_collapse_to_2d_skyline() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let ratings = RatingTable::new(ex.graph.num_vertices(), 0.7);
        let two_d = crate::bssr::Bssr::new(&ctx).run(&ex.query()).unwrap();
        let three_d = RatedQuery::new(ex.query()).run(&ctx, &ratings).unwrap();
        // Every route has the same rating score → the third axis is inert.
        assert_eq!(three_d.routes.len(), two_d.routes.len());
        for (g, w) in three_d.routes.iter().zip(&two_d.routes) {
            assert_eq!(g.length, w.length);
            assert_eq!(g.pois, w.pois);
        }
    }

    #[test]
    fn rated_routes_are_pairwise_nondominated() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let ratings = ratings_for(&ex);
        let result = RatedQuery::new(ex.query()).run(&ctx, &ratings).unwrap();
        for (i, a) in result.routes.iter().enumerate() {
            for (j, b) in result.routes.iter().enumerate() {
                if i != j {
                    assert!(!a.dominates(b), "{a:?} dominates {b:?}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_rating_rejected() {
        let mut t = RatingTable::new(3, 0.5);
        t.set(VertexId(0), 1.5);
    }
}
