//! Road-network graph substrate for the SkySR workspace.
//!
//! This crate implements everything the paper's §3 and §5 assume about the
//! underlying road network:
//!
//! * a compact CSR adjacency representation ([`RoadNetwork`]) supporting
//!   undirected and directed graphs with non-negative `f64` edge weights,
//! * a totally ordered, NaN-free cost type ([`Cost`]) usable in binary heaps,
//! * the Dijkstra family the algorithms need: plain/bounded single-source
//!   search ([`dijkstra`]), the multi-source multi-destination variant of
//!   Lemma 5.9 ([`multi_source`]), and a resumable incremental
//!   nearest-neighbour search ([`resumable`]) used by the PNE baseline,
//! * versioned scratch arrays ([`versioned`]) so repeated searches avoid
//!   O(|V|) reinitialisation,
//! * dynamic edge weights ([`epoch`]): batched weight deltas published as
//!   epoch-versioned copy-on-write overlays, so searches pin a consistent
//!   snapshot while traffic updates proceed concurrently,
//! * geographic helpers ([`geometry`]) for haversine edge weights and
//!   point-to-segment projection (PoI embedding on the closest edge),
//! * connectivity utilities ([`connectivity`]) used by the dataset
//!   generators to guarantee connected graphs.

pub mod builder;
pub mod connectivity;
pub mod csr;
pub mod dijkstra;
pub mod epoch;
pub mod fxhash;
pub mod geometry;
pub mod landmarks;
pub mod multi_source;
pub mod path;
pub mod resumable;
pub mod stats;
pub mod versioned;
pub mod weight;

pub use builder::GraphBuilder;
pub use csr::RoadNetwork;
pub use dijkstra::{dijkstra_with, DijkstraWorkspace, Settle};
pub use epoch::{
    DeltaIndex, DeltaSet, EpochGcStats, EpochId, WeightDelta, WeightEpoch, WeightTouch,
};
pub use geometry::GeoPoint;
pub use landmarks::Landmarks;
pub use resumable::ResumableDijkstra;
pub use stats::SearchStats;
pub use versioned::VersionedArray;
pub use weight::Cost;

/// Identifier of a vertex in a [`RoadNetwork`].
///
/// Both plain road vertices and PoI vertices (the paper's `V` and `P`) share
/// one id space; the PoI/category association lives in `skysr-core`'s
/// `PoiTable`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Index form for slice access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId(42);
        assert_eq!(v.index(), 42);
        assert_eq!(VertexId::from(42u32), v);
        assert_eq!(format!("{v:?}"), "v42");
        assert_eq!(v.to_string(), "42");
    }

    #[test]
    fn vertex_id_ordering_follows_raw() {
        assert!(VertexId(1) < VertexId(2));
        assert_eq!(VertexId(7), VertexId(7));
    }
}
