//! Minimal skyline sets and the pruning threshold (Definition 4.2,
//! Definition 5.4).
//!
//! A [`SkylineSet`] maintains the *minimal set of sequenced routes* `S`
//! while BSSR searches: inserting a route removes everything it dominates
//! and is rejected if some member dominates it or ties its scores
//! (equivalent routes are excluded so the set stays minimal). Membership is
//! always small in practice (Figure 6: ≲ 8 routes), so linear scans beat
//! any fancier structure.

use skysr_graph::Cost;

use crate::route::SkylineRoute;

/// The evolving minimal set `S` of sequenced routes.
#[derive(Clone, Debug, Default)]
pub struct SkylineSet {
    routes: Vec<SkylineRoute>,
    /// Monotonically increasing counter: bumps whenever the set changes, so
    /// searches can cheaply detect that cached thresholds are stale.
    version: u64,
}

impl SkylineSet {
    /// Empty set.
    pub fn new() -> SkylineSet {
        SkylineSet::default()
    }

    /// Number of routes currently in `S`.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether `S` is empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Current members.
    pub fn routes(&self) -> &[SkylineRoute] {
        &self.routes
    }

    /// Change counter (bumps on every successful insert).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Consumes the set, returning members sorted by ascending length.
    pub fn into_routes(mut self) -> Vec<SkylineRoute> {
        self.routes.sort_by_key(|a| a.length);
        self.routes
    }

    /// Whether a candidate with scores (`length`, `semantic`) is dominated
    /// by or equivalent to a member (the rejection test of Lemma 5.1).
    /// Comparisons are epsilon-aware (see [`crate::route::SCORE_EPS`]).
    pub fn dominated_or_equal(&self, length: Cost, semantic: f64) -> bool {
        use crate::route::approx_le;
        self.routes
            .iter()
            .any(|r| approx_le(r.length.get(), length.get()) && approx_le(r.semantic, semantic))
    }

    /// `S.update(R)` from Algorithm 2: inserts `route` unless dominated or
    /// equivalent; evicts members it dominates. Returns whether the set
    /// changed.
    pub fn update(&mut self, route: SkylineRoute) -> bool {
        use crate::route::approx_le;
        if self.dominated_or_equal(route.length, route.semantic) {
            return false;
        }
        // The new route is not dominated; evict everything it dominates
        // (equivalents were handled above — anything with both scores ≥ and
        // not equal on both is dominated).
        self.routes.retain(|r| {
            !(approx_le(route.length.get(), r.length.get())
                && approx_le(route.semantic, r.semantic))
        });
        self.routes.push(route);
        self.version += 1;
        true
    }

    /// The length-score threshold `l̄` of Definition 5.4 for a route with
    /// semantic score `semantic`:
    /// `min { l(R') | R' ∈ S, s(R') ≤ semantic }`, or `+∞` if no member
    /// qualifies. A route is prunable iff its length score reaches the
    /// threshold.
    pub fn threshold(&self, semantic: f64) -> Cost {
        self.routes
            .iter()
            .filter(|r| r.semantic <= semantic)
            .map(|r| r.length)
            .min()
            .unwrap_or(Cost::INFINITY)
    }

    /// `l̄(ϕ)`: the threshold for a perfectly matching route (semantic 0) —
    /// the search radius used by Algorithm 4's endpoint restriction.
    pub fn threshold_zero(&self) -> Cost {
        self.threshold(0.0)
    }

    /// Invariant check (used by tests and debug assertions): no member
    /// dominates or ties another.
    pub fn is_minimal(&self) -> bool {
        for (i, a) in self.routes.iter().enumerate() {
            for (j, b) in self.routes.iter().enumerate() {
                if i != j && (a.dominates(b) || a.equivalent(b)) {
                    return false;
                }
            }
        }
        true
    }
}

/// Computes the skyline of an arbitrary candidate list (used by the
/// baselines and the oracle). Equivalent duplicates collapse to the first
/// occurrence.
pub fn skyline_of(candidates: impl IntoIterator<Item = SkylineRoute>) -> Vec<SkylineRoute> {
    let mut set = SkylineSet::new();
    for c in candidates {
        set.update(c);
    }
    set.into_routes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysr_graph::VertexId;

    fn r(l: f64, s: f64) -> SkylineRoute {
        SkylineRoute { pois: vec![VertexId(0)], length: Cost::new(l), semantic: s }
    }

    #[test]
    fn insert_keeps_incomparable_routes() {
        let mut set = SkylineSet::new();
        assert!(set.update(r(10.0, 0.0)));
        assert!(set.update(r(5.0, 0.5)));
        assert!(set.update(r(2.0, 0.8)));
        assert_eq!(set.len(), 3);
        assert!(set.is_minimal());
    }

    #[test]
    fn dominated_insert_rejected() {
        let mut set = SkylineSet::new();
        set.update(r(5.0, 0.5));
        assert!(!set.update(r(6.0, 0.5)));
        assert!(!set.update(r(5.0, 0.6)));
        assert!(!set.update(r(7.0, 0.7)));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn equivalent_insert_rejected() {
        let mut set = SkylineSet::new();
        set.update(r(5.0, 0.5));
        assert!(!set.update(r(5.0, 0.5)));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn dominating_insert_evicts() {
        let mut set = SkylineSet::new();
        set.update(r(10.0, 0.5));
        set.update(r(12.0, 0.2));
        // Dominates the first, not the second.
        assert!(set.update(r(8.0, 0.5)));
        assert_eq!(set.len(), 2);
        assert!(set.is_minimal());
        assert!(set.routes().iter().any(|x| x.length == Cost::new(8.0)));
        assert!(set.routes().iter().all(|x| x.length != Cost::new(10.0)));
    }

    #[test]
    fn one_insert_can_evict_many() {
        let mut set = SkylineSet::new();
        set.update(r(10.0, 0.5));
        set.update(r(9.0, 0.6));
        set.update(r(8.0, 0.7));
        assert!(set.update(r(7.0, 0.4)));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn threshold_matches_definition_5_4() {
        let mut set = SkylineSet::new();
        set.update(r(13.0, 0.0));
        set.update(r(11.0, 0.5));
        // Route with semantic 0: only the s=0 member qualifies.
        assert_eq!(set.threshold(0.0), Cost::new(13.0));
        // Route with semantic 0.5: both qualify → min length 11.
        assert_eq!(set.threshold(0.5), Cost::new(11.0));
        // Route with semantic 0.3: only s=0 qualifies.
        assert_eq!(set.threshold(0.3), Cost::new(13.0));
        // Threshold is +∞ when nothing qualifies.
        let empty = SkylineSet::new();
        assert_eq!(empty.threshold(1.0), Cost::INFINITY);
        assert_eq!(set.threshold_zero(), Cost::new(13.0));
    }

    #[test]
    fn threshold_is_nonincreasing_in_semantic() {
        let mut set = SkylineSet::new();
        set.update(r(13.0, 0.0));
        set.update(r(11.0, 0.4));
        set.update(r(9.0, 0.7));
        let mut last = Cost::INFINITY;
        for s in [0.0, 0.2, 0.4, 0.5, 0.7, 0.9, 1.0] {
            let t = set.threshold(s);
            assert!(t <= last);
            last = t;
        }
    }

    #[test]
    fn version_bumps_only_on_change() {
        let mut set = SkylineSet::new();
        let v0 = set.version();
        set.update(r(5.0, 0.5));
        let v1 = set.version();
        assert!(v1 > v0);
        set.update(r(6.0, 0.6)); // rejected
        assert_eq!(set.version(), v1);
    }

    #[test]
    fn skyline_of_list() {
        let out = skyline_of(vec![r(10.0, 0.0), r(12.0, 0.0), r(5.0, 0.5), r(5.0, 0.5)]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].length, Cost::new(5.0));
        assert_eq!(out[1].length, Cost::new(10.0));
    }

    #[test]
    fn into_routes_sorted_by_length() {
        let mut set = SkylineSet::new();
        set.update(r(10.0, 0.0));
        set.update(r(2.0, 0.8));
        set.update(r(5.0, 0.5));
        let out = set.into_routes();
        let lens: Vec<f64> = out.iter().map(|x| x.length.get()).collect();
        assert_eq!(lens, vec![2.0, 5.0, 10.0]);
    }
}
