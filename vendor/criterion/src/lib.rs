//! Offline stand-in for the `criterion` crate.
//!
//! A small fixed-budget timing harness exposing the API surface the
//! workspace's benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. No statistics, plots or baselines — each
//! benchmark is timed for a short adaptive run and its mean iteration time
//! printed, which is enough to compare configurations by eye.
//!
//! The measurement budget is `CRITERION_BUDGET_MS` per benchmark
//! (default 300).

use std::time::{Duration, Instant};

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_BUDGET_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(300);
    Duration::from_millis(ms)
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly within the measurement budget, recording the
    /// mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and single-call estimate.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        let budget = budget();
        let batch = (budget.as_nanos() / 10 / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget {
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            iters += batch;
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

/// Identifier for one parameterised benchmark instance.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { name: format!("{}/{parameter}", name.into()) }
    }
}

fn report(label: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{label:<50} (no iterations)");
        return;
    }
    let per = b.total.as_nanos() as f64 / b.iters as f64;
    let (value, unit) = if per >= 1e9 {
        (per / 1e9, "s")
    } else if per >= 1e6 {
        (per / 1e6, "ms")
    } else if per >= 1e3 {
        (per / 1e3, "µs")
    } else {
        (per, "ns")
    };
    println!("{label:<50} {value:>10.2} {unit}/iter  ({} iters)", b.iters);
}

/// Top-level benchmark driver, passed to every target function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { total: Duration::ZERO, iters: 0 };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_owned() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterised benchmark of the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { total: Duration::ZERO, iters: 0 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.name), &b);
        self
    }

    /// Runs one named benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { total: Duration::ZERO, iters: 0 };
        f(&mut b);
        report(&format!("{}/{name}", self.name), &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher { total: Duration::ZERO, iters: 0 };
        let mut calls = 0u64;
        b.iter(|| {
            calls += 1;
        });
        assert!(calls > 0);
        assert_eq!(calls, b.iters + 1, "warm-up call plus measured iterations");
        assert!(b.total > Duration::ZERO);
    }

    #[test]
    fn benchmark_id_renders_name_and_parameter() {
        let id = BenchmarkId::new("search", 42);
        assert_eq!(id.name, "search/42");
    }
}
