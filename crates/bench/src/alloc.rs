//! Counting global allocator — the harness's stand-in for the paper's
//! "maximum resident set size" (Table 6).
//!
//! Tracks live heap bytes and the high-water mark. Binaries opt in with
//! `#[global_allocator] static A: CountingAlloc = CountingAlloc;` and
//! bracket a measured phase with [`reset_peak`] / [`peak_bytes`]. Peak
//! *live heap* is what RSS tracked for the paper's algorithms (their
//! working sets are heap-resident graph copies and priority queues), minus
//! the OS noise.

// The explicit `unsafe {}` blocks inside the unsafe trait methods are the
// edition-2024 style; opt into it so they stay meaningful on 2021.
#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A [`System`]-backed allocator that counts live bytes and their peak.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let cur = CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(cur, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            if new_size >= layout.size() {
                let cur = CURRENT.fetch_add(new_size - layout.size(), Ordering::Relaxed) + new_size
                    - layout.size();
                PEAK.fetch_max(cur, Ordering::Relaxed);
            } else {
                CURRENT.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

/// Live heap bytes right now.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak live heap bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak to the current live size (start of a measured phase).
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Pretty-prints a byte count.
pub fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 30 {
        format!("{:.1} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(12), "12 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.0 GiB");
    }

    #[test]
    fn counters_accessible() {
        // Without installing the allocator the counters just read zero;
        // this exercises the accessors.
        reset_peak();
        assert!(peak_bytes() >= current_bytes() || peak_bytes() == 0);
    }
}
