//! Std-only worker-pool plumbing: a bounded MPMC queue with blocking
//! producers (backpressure) and a singleflight in-flight table for
//! request coalescing.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::{Condvar, Mutex};

/// A bounded multi-producer multi-consumer queue.
///
/// `push` blocks while the queue is full — submission pressure propagates
/// back to callers instead of growing an unbounded backlog. `pop` blocks
/// while the queue is empty and returns `None` once the queue is closed
/// *and* drained, which is the workers' shutdown signal.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

struct Inner<T> {
    buf: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// Queue admitting at most `capacity` pending items.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner {
                buf: VecDeque::with_capacity(capacity),
                capacity,
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueues `item`, blocking while the queue is full. Returns the item
    /// back as `Err` if the queue was closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if inner.closed {
                return Err(item);
            }
            if inner.buf.len() < inner.capacity {
                inner.buf.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).expect("queue poisoned");
        }
    }

    /// Non-blocking [`BoundedQueue::push`]: enqueues `item` if there is
    /// room right now, otherwise hands it straight back. `Err(item)` means
    /// "full or closed" — the caller decides whether to retry later (the
    /// network server parks the request and keeps its event loop turning
    /// instead of stalling every connection behind one slow producer).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed || inner.buf.len() >= inner.capacity {
            return Err(item);
        }
        inner.buf.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.buf.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
    }

    /// Like [`BoundedQueue::pop`], but also reports how many items remain
    /// queued *behind* the dequeued one, read under the same lock — the
    /// queue-depth figure a trace span records without a second lock
    /// round-trip.
    pub fn pop_with_depth(&self) -> Option<(T, usize)> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.buf.pop_front() {
                let depth = inner.buf.len();
                self.not_full.notify_one();
                return Some((item, depth));
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// blocked consumers wake up.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").buf.len()
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A singleflight-style in-flight table: the first caller to `begin` a key
/// becomes its *leader* (and runs the computation); every later caller
/// becomes a *follower* whose waiter is parked under the key until the
/// leader calls [`InflightTable::complete`] and answers them all with the
/// shared result.
///
/// The begin decision and the waiter parking are one atomic step under the
/// table lock — there is no window in which a follower can park under a
/// key whose leader has already completed. The converse race (a leader
/// completes, *then* a new request begins the same key) is handled by the
/// caller checking the result cache before `begin`, and by inserting into
/// the cache *before* completing (see `worker_loop` in `service.rs`); with
/// caching disabled such a latecomer simply leads a fresh computation.
pub struct InflightTable<K, W> {
    inner: Mutex<HashMap<K, Vec<W>>>,
}

/// Outcome of [`InflightTable::begin`].
pub enum Begin<W> {
    /// No one is computing this key: the caller leads, and gets its waiter
    /// back to answer directly when done.
    Leader(W),
    /// Someone else is computing this key; the waiter was parked.
    Joined,
}

impl<K: Eq + Hash, W> InflightTable<K, W> {
    /// Empty table.
    pub fn new() -> InflightTable<K, W> {
        InflightTable { inner: Mutex::new(HashMap::new()) }
    }

    /// Atomically claims `key` (becoming its leader) or parks `waiter`
    /// under the existing leader.
    pub fn begin(&self, key: K, waiter: W) -> Begin<W> {
        use std::collections::hash_map::Entry;
        match self.inner.lock().expect("inflight table poisoned").entry(key) {
            Entry::Occupied(mut e) => {
                e.get_mut().push(waiter);
                Begin::Joined
            }
            Entry::Vacant(e) => {
                e.insert(Vec::new());
                Begin::Leader(waiter)
            }
        }
    }

    /// Ends the flight for `key`, returning every parked waiter (empty if
    /// none joined). The leader must call this exactly once, even on
    /// failure — parked waiters would otherwise never be answered.
    pub fn complete(&self, key: &K) -> Vec<W> {
        self.inner.lock().expect("inflight table poisoned").remove(key).unwrap_or_default()
    }

    /// Number of keys currently in flight.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("inflight table poisoned").len()
    }

    /// Whether no key is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash, W> Default for InflightTable<K, W> {
    fn default() -> InflightTable<K, W> {
        InflightTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn try_push_rejects_when_full_or_closed_without_blocking() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(3), "full queue hands the item back");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()), "room reopened after a pop");
        q.close();
        assert_eq!(q.try_push(4), Err(4), "closed queue rejects");
        // Pending items still drain after close.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn singleflight_one_leader_many_followers() {
        let t: InflightTable<u32, &'static str> = InflightTable::new();
        let Begin::Leader(w) = t.begin(7, "leader") else {
            panic!("first begin must lead");
        };
        assert_eq!(w, "leader");
        assert!(matches!(t.begin(7, "f1"), Begin::Joined));
        assert!(matches!(t.begin(7, "f2"), Begin::Joined));
        // A different key gets its own leader.
        assert!(matches!(t.begin(8, "other"), Begin::Leader("other")));
        assert_eq!(t.len(), 2);
        let waiters = t.complete(&7);
        assert_eq!(waiters, vec!["f1", "f2"]);
        // The key is free again: the next begin leads.
        assert!(matches!(t.begin(7, "again"), Begin::Leader("again")));
        assert_eq!(t.complete(&7), Vec::<&str>::new());
        assert_eq!(t.complete(&8), Vec::<&str>::new());
        assert!(t.is_empty());
    }

    #[test]
    fn concurrent_begins_elect_exactly_one_leader() {
        let t: Arc<InflightTable<u32, usize>> = Arc::new(InflightTable::new());
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || matches!(t.begin(1, i), Begin::Leader(_)))
            })
            .collect();
        let leaders = handles.into_iter().map(|h| h.join().unwrap()).filter(|&led| led).count();
        assert_eq!(leaders, 1);
        assert_eq!(t.complete(&1).len(), 15);
    }

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.push(2), Err(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_queue_blocks_until_a_consumer_drains() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1).is_ok())
        };
        // Give the producer time to hit the full queue.
        std::thread::sleep(Duration::from_millis(30));
        assert!(!producer.is_finished(), "push must block while full");
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything() {
        let q = Arc::new(BoundedQueue::new(8));
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        q.push(p * 1_000 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let mut expect: Vec<u64> =
            (0..4u64).flat_map(|p| (0..250u64).map(move |i| p * 1_000 + i)).collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
