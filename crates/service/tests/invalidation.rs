//! Epoch-versioned cache invalidation: staleness must never leak.
//!
//! Dynamic edge weights make every cached skyline valid only for the
//! weight epoch it was computed under. These tests pin down the serving
//! guarantees end-to-end:
//!
//! * answers always track a *fresh* search at the epoch the request was
//!   pinned to (oracle-verified), before and after updates;
//! * epoch-stale cache entries are lazily invalidated, never served
//!   (`stale_served == 0` always);
//! * coalescing flights are per-(query, epoch): an in-flight leader that
//!   started on epoch N cannot answer — or poison the cache of — traffic
//!   pinned to epoch N+1, even when its insert lands *after* the
//!   post-update result's;
//! * with the cache disabled, weight updates change answers without the
//!   cache seeing a single lookup (the PR-2 zero-lookup guarantee
//!   survives).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use skysr_category::{CategoryForest, CategoryId, Similarity, WuPalmer};
use skysr_core::bssr::{Bssr, BssrConfig};
use skysr_core::paper_example::PaperExample;
use skysr_core::route::equivalent_skylines;
use skysr_data::dataset::{DatasetSpec, Preset};
use skysr_graph::EpochId;
use skysr_service::replay::{build_pool, random_traffic_deltas, replay_on, ReplaySpec};
use skysr_service::{QueryService, Service, ServiceConfig, ServiceContext};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn city_context() -> Arc<ServiceContext> {
    let dataset = DatasetSpec::preset(Preset::CalSmall).scale(0.08).seed(33).generate();
    Arc::new(ServiceContext::from_dataset(dataset))
}

#[test]
fn answers_track_the_fresh_oracle_across_updates() {
    let ctx = city_context();
    let spec = ReplaySpec { distinct: 12, seq_len: 2, seed: 5, ..ReplaySpec::default() };
    let dataset_pool = {
        // build_pool needs a Dataset; regenerate the same city for queries.
        let dataset = DatasetSpec::preset(Preset::CalSmall).scale(0.08).seed(33).generate();
        build_pool(&dataset, &spec)
    };
    let service =
        Service::new(Arc::clone(&ctx), ServiceConfig { workers: 4, ..ServiceConfig::default() });

    let mut rng = StdRng::seed_from_u64(99);
    let mut epochs_seen = Vec::new();
    for round in 0..4 {
        if round > 0 {
            let deltas = random_traffic_deltas(ctx.graph(), 64, 3.0, &mut rng);
            ctx.publish_weights(&deltas);
        }
        let expected_epoch = ctx.current_epoch();
        epochs_seen.push(expected_epoch);
        // Two passes per round: the first searches (or invalidates stale
        // entries), the second must be served entirely from the refreshed
        // cache — both verified against the oracle.
        let mut responses = service.run_batch(dataset_pool.iter().cloned());
        responses.extend(service.run_batch(dataset_pool.iter().cloned()));
        // Oracle: a cold sequential engine over the snapshot pinned at each
        // response's reported epoch.
        for (q, outcome) in dataset_pool.iter().cycle().zip(responses) {
            let r = outcome.expect("generated queries are valid");
            assert_eq!(r.epoch, expected_epoch, "no stragglers: updates precede submission");
            let pinned = ctx.pin_at(r.epoch).expect("epoch was published here");
            let qctx = pinned.query_context();
            let fresh = Bssr::with_config(&qctx, BssrConfig::default()).run(q).unwrap().routes;
            assert!(
                equivalent_skylines(&r.routes, &fresh),
                "round {round}: served skyline diverged from fresh search at its epoch"
            );
        }
    }
    assert_eq!(epochs_seen, vec![EpochId(0), EpochId(1), EpochId(2), EpochId(3)]);

    let m = service.shutdown();
    assert_eq!(m.stale_served, 0, "staleness gate");
    assert!(
        m.cache.invalidations > 0,
        "post-update lookups must lazily drop pre-update entries ({:?})",
        m.cache
    );
    // Every round re-searched every distinct query despite a warm cache
    // (the epoch changed), and every second pass was served from it.
    assert_eq!(m.executed, dataset_pool.len() as u64 * 4, "one search per query per epoch");
    assert!(m.cache.hits >= dataset_pool.len() as u64 * 4, "same-epoch passes hit");
}

/// Wu–Palmer with a per-call delay: makes query preparation slow (it
/// happens inside the engine run, i.e. inside the coalescing flight), so a
/// weight update provably lands while a leader is mid-search.
#[derive(Debug)]
struct ThrottledSim {
    delay: Duration,
    calls: AtomicU64,
}

impl Similarity for ThrottledSim {
    fn sim(&self, forest: &CategoryForest, a: CategoryId, b: CategoryId) -> f64 {
        self.calls.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(self.delay);
        WuPalmer.sim(forest, a, b)
    }
}

#[test]
fn leader_started_on_epoch_n_cannot_serve_or_poison_epoch_n_plus_1() {
    let ex = PaperExample::new();
    let sim = Arc::new(ThrottledSim { delay: Duration::from_millis(1), calls: AtomicU64::new(0) });
    let ctx = Arc::new(ServiceContext::with_similarity(
        ex.graph.clone(),
        ex.forest.clone(),
        ex.pois.clone(),
        Arc::clone(&sim) as Arc<dyn Similarity>,
    ));
    let service =
        Service::new(Arc::clone(&ctx), ServiceConfig { workers: 2, ..ServiceConfig::default() });

    // Leader takes the query at epoch 0 and is guaranteed to still be
    // searching (every similarity call sleeps 1 ms) when the update
    // publishes.
    let slow = service.submit_query(ex.query());
    std::thread::sleep(Duration::from_millis(10));
    let (from, to, w) = ctx.graph().arc(0);
    let e1 = ctx.publish_weights(&[skysr_graph::WeightDelta::new(from, to, w.get() * 4.0)]);
    assert_eq!(e1, EpochId(1));

    // A duplicate submitted after the publish pins epoch 1: it must not
    // join the epoch-0 flight, and must run its own search.
    let fresh = service.submit_query(ex.query());

    let slow = slow.wait().unwrap();
    let fresh = fresh.wait().unwrap();
    assert_eq!(slow.epoch, EpochId(0), "leader stays pinned to its epoch");
    assert_eq!(fresh.epoch, EpochId(1));
    assert!(!fresh.coalesced(), "cross-epoch duplicates never share a flight");
    assert!(!fresh.cache_hit(), "the epoch-0 result must not answer epoch-1 traffic");

    // Whatever order the two inserts landed in, the cache now serves
    // epoch-1 traffic the epoch-1 answer.
    let again = service.submit_query(ex.query()).wait().unwrap();
    assert_eq!(again.epoch, EpochId(1));
    assert!(again.cache_hit(), "epoch-1 entry must be resident");
    assert_eq!(again.routes, fresh.routes);

    let m = service.shutdown();
    assert_eq!(m.executed, 2, "one search per (query, epoch)");
    assert_eq!(m.coalesced, 0);
    assert_eq!(m.stale_served, 0);

    // And the epoch-1 answer is exact: equivalent to a cold run on the
    // pinned post-update snapshot.
    let pinned = ctx.pin_at(EpochId(1)).unwrap();
    let qctx = pinned.query_context();
    let oracle = Bssr::new(&qctx).run(&ex.query()).unwrap().routes;
    assert!(equivalent_skylines(&fresh.routes, &oracle));
}

#[test]
fn epoch_crossing_duplicate_storm_stays_exact() {
    // Waves of identical queries race a publisher that reweights edges
    // between (and during) waves; every answer must match the oracle at
    // its own reported epoch and nothing may be served stale.
    let ex = PaperExample::new();
    let sim =
        Arc::new(ThrottledSim { delay: Duration::from_micros(200), calls: AtomicU64::new(0) });
    let ctx = Arc::new(ServiceContext::with_similarity(
        ex.graph.clone(),
        ex.forest.clone(),
        ex.pois.clone(),
        Arc::clone(&sim) as Arc<dyn Similarity>,
    ));
    let service =
        Service::new(Arc::clone(&ctx), ServiceConfig { workers: 8, ..ServiceConfig::default() });
    let mut rng = StdRng::seed_from_u64(4242);
    let mut responses = Vec::new();
    for _wave in 0..6 {
        let tickets: Vec<_> = (0..24).map(|_| service.submit_query(ex.query())).collect();
        // Publish while the wave is in flight.
        let deltas = random_traffic_deltas(ctx.graph(), 8, 2.0, &mut rng);
        ctx.publish_weights(&deltas);
        responses.extend(tickets.into_iter().map(|t| t.wait().unwrap()));
    }
    let m = service.shutdown();
    assert_eq!(m.completed, 144);
    assert_eq!(m.stale_served, 0, "staleness gate under epoch-crossing storms");

    // Oracle check at each distinct epoch observed.
    let mut by_epoch: std::collections::BTreeMap<EpochId, Vec<&skysr_service::QueryResponse>> =
        Default::default();
    for r in &responses {
        by_epoch.entry(r.epoch).or_default().push(r);
    }
    assert!(by_epoch.len() >= 2, "waves must actually straddle epochs ({:?})", by_epoch.keys());
    for (&epoch, rs) in &by_epoch {
        let pinned = ctx.pin_at(epoch).expect("served epochs were published");
        let qctx = pinned.query_context();
        let oracle = Bssr::new(&qctx).run(&ex.query()).unwrap().routes;
        for r in rs {
            assert!(
                equivalent_skylines(&r.routes, &oracle),
                "epoch {epoch}: answer diverged from its pinned-epoch oracle"
            );
        }
    }
}

#[test]
fn disabled_cache_sees_no_lookups_even_under_updates() {
    let ex = PaperExample::new();
    let ctx = Arc::new(ServiceContext::new(ex.graph.clone(), ex.forest.clone(), ex.pois.clone()));
    let service = Service::new(
        Arc::clone(&ctx),
        ServiceConfig { workers: 2, cache_capacity: 0, ..ServiceConfig::default() },
    );
    let a = service.submit_query(ex.query()).wait().unwrap();
    let (from, to, w) = ctx.graph().arc(0);
    ctx.publish_weights(&[skysr_graph::WeightDelta::new(from, to, w.get() * 2.0)]);
    let b = service.submit_query(ex.query()).wait().unwrap();
    assert_eq!((a.epoch, b.epoch), (EpochId(0), EpochId(1)));
    let m = service.shutdown();
    assert_eq!(m.executed, 2);
    let c = m.cache;
    assert_eq!(
        (c.hits, c.misses, c.insertions, c.evictions, c.invalidations),
        (0, 0, 0, 0, 0),
        "a disabled cache performs zero lookups, updates or not"
    );
}

#[test]
fn update_heavy_replay_verifies_at_pinned_epochs() {
    // The replay driver's own gate: open-loop stream, updates racing it,
    // epoch-aware oracle verification, zero stale serves.
    let dataset = DatasetSpec::preset(Preset::CalSmall).scale(0.08).seed(21).generate();
    let spec = ReplaySpec {
        total: 240,
        distinct: 20,
        workers: 4,
        seq_len: 2,
        qps: 2500.0,
        update_rate: 250.0,
        update_burst: 16,
        update_magnitude: 2.5,
        verify: true,
        ..ReplaySpec::default()
    };
    let pool = build_pool(&dataset, &spec);
    let ctx = Arc::new(ServiceContext::from_dataset(dataset));
    let report = replay_on(ctx, &pool, &spec);
    assert_eq!(report.metrics.completed, 240);
    assert_eq!(report.verify_mismatches, Some(0), "every answer exact at its pinned epoch");
    assert_eq!(report.stale_served(), 0);
    assert!(
        report.epochs_published > 0,
        "a ~100 ms open-loop window at 250 bursts/s must publish epochs"
    );
    assert!(report.qps > 0.0);
}
