//! Serving-pipeline observability: per-request trace spans, per-rung
//! latency histograms, and exporters.
//!
//! Three layers, cheapest first:
//!
//! 1. **Histograms** ([`histogram`]) — always on. Every response lands in
//!    log-bucketed atomic histograms (end-to-end, queue-wait, engine time,
//!    and one per serving [`Rung`]), a handful of relaxed `fetch_add`s per
//!    request. Snapshots ride inside
//!    [`MetricsSnapshot`](crate::MetricsSnapshot) and are mergeable across
//!    workers.
//! 2. **Trace spans** ([`trace`]) — sampled. Each request's full story
//!    (queue wait, plan time, rung probes and outcomes, engine profile,
//!    repair tier, delta-index epochs) becomes a [`TraceSpan`] offered to a
//!    sharded bounded [`TraceBuffer`] that keeps every `1/N`-th span plus
//!    the slowest ones. `sample_every = 1` retains everything — the mode
//!    `replay --trace-out` uses to check the trace-completeness invariant.
//! 3. **Exporters** ([`export`]) — pull-based. JSON-lines span dumps
//!    (`--trace-out`) and Prometheus-style text exposition
//!    (`--metrics-out`).

pub mod export;
pub mod histogram;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot};
pub use trace::{TraceBuffer, TraceSpan};

use crate::metrics::Served;
use crate::plan::SeedSource;

/// The serving rung that answered a request — the telemetry-facing
/// flattening of [`Served`] (every enum payload folded away) used to key
/// per-rung histograms and trace spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// Answered from the result cache at the pinned epoch.
    ExactHit,
    /// Answered by joining another request's in-flight computation.
    Coalesced,
    /// Answered by repairing a cached skyline across epochs (any tier,
    /// including the re-search fallback).
    Repaired,
    /// A search warm-started by a cached prefix skyline.
    WarmPrefix,
    /// A search warm-started by an ancestor-category variant's skyline.
    WarmAncestor,
    /// A search warm-started by a cached suffix skyline.
    WarmSuffix,
    /// A cold search (including dry seed probes).
    Cold,
    /// A search whose deadline expired mid-engine: the response is the
    /// mutually non-dominated partial skyline proven so far, flagged
    /// approximate (degraded mode), plus any requests coalesced onto that
    /// truncated flight.
    Approximate,
}

impl Rung {
    /// Every rung, ladder order.
    pub const ALL: [Rung; 8] = [
        Rung::ExactHit,
        Rung::Coalesced,
        Rung::Repaired,
        Rung::WarmPrefix,
        Rung::WarmAncestor,
        Rung::WarmSuffix,
        Rung::Cold,
        Rung::Approximate,
    ];

    /// The rung that produced a [`Served`] outcome.
    pub fn of(served: Served) -> Rung {
        match served {
            Served::CacheHit => Rung::ExactHit,
            Served::Coalesced => Rung::Coalesced,
            Served::Repaired { .. } => Rung::Repaired,
            Served::Search { seeded: Some(SeedSource::Prefix) } => Rung::WarmPrefix,
            Served::Search { seeded: Some(SeedSource::Ancestor) } => Rung::WarmAncestor,
            Served::Search { seeded: Some(SeedSource::Suffix) } => Rung::WarmSuffix,
            Served::Search { seeded: None } => Rung::Cold,
            Served::Approximate => Rung::Approximate,
        }
    }

    /// Stable lowercase name (JSON fields, Prometheus labels, report
    /// tables).
    pub fn label(self) -> &'static str {
        match self {
            Rung::ExactHit => "exact_hit",
            Rung::Coalesced => "coalesced",
            Rung::Repaired => "repaired",
            Rung::WarmPrefix => "warm_prefix",
            Rung::WarmAncestor => "warm_ancestor",
            Rung::WarmSuffix => "warm_suffix",
            Rung::Cold => "cold",
            Rung::Approximate => "approximate",
        }
    }

    /// Dense index into per-rung arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One rung's latency summary inside a
/// [`MetricsSnapshot`](crate::MetricsSnapshot).
#[derive(Clone, Debug)]
pub struct RungSummary {
    /// Which rung.
    pub rung: Rung,
    /// End-to-end latency histogram of the responses it served.
    pub hist: HistogramSnapshot,
}

/// Trace-retention policy of a [`QueryService`](crate::QueryService).
///
/// Histograms are unconditional (they are metrics, not traces, and cost a
/// few atomic adds); this config governs only span retention.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Whether spans are retained at all. Off ⇒ `offer` is a branch and a
    /// return.
    pub tracing: bool,
    /// Keep every `N`-th span per shard (1 = keep all).
    pub sample_every: u64,
    /// Total sampled-span capacity across all shards.
    pub capacity: usize,
    /// Always-retained slowest spans across all shards (the tail uniform
    /// sampling would miss).
    pub slowest: usize,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig { tracing: true, sample_every: 64, capacity: 2_048, slowest: 32 }
    }
}

impl TelemetryConfig {
    /// Retain every span, up to `capacity` — the mode `--trace-out` uses so
    /// the completeness invariant can be checked over *all* responses.
    pub fn trace_all(capacity: usize) -> TelemetryConfig {
        TelemetryConfig { tracing: true, sample_every: 1, capacity: capacity.max(1), slowest: 32 }
    }

    /// No span retention (histograms still record).
    pub fn disabled() -> TelemetryConfig {
        TelemetryConfig { tracing: false, ..TelemetryConfig::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rung_covers_every_served_variant() {
        assert_eq!(Rung::of(Served::CacheHit), Rung::ExactHit);
        assert_eq!(Rung::of(Served::Coalesced), Rung::Coalesced);
        assert_eq!(
            Rung::of(Served::Repaired { fallback: true, routes_untouched: 0, routes_rescored: 1 }),
            Rung::Repaired
        );
        assert_eq!(Rung::of(Served::Search { seeded: None }), Rung::Cold);
        assert_eq!(Rung::of(Served::Search { seeded: Some(SeedSource::Prefix) }), Rung::WarmPrefix);
        assert_eq!(
            Rung::of(Served::Search { seeded: Some(SeedSource::Ancestor) }),
            Rung::WarmAncestor
        );
        assert_eq!(Rung::of(Served::Search { seeded: Some(SeedSource::Suffix) }), Rung::WarmSuffix);
        assert_eq!(Rung::of(Served::Approximate), Rung::Approximate);
        // Labels are unique and the dense index matches ladder order.
        let labels: std::collections::BTreeSet<&str> =
            Rung::ALL.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), Rung::ALL.len());
        for (i, r) in Rung::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn config_constructors() {
        assert!(TelemetryConfig::default().tracing);
        let full = TelemetryConfig::trace_all(10);
        assert_eq!(full.sample_every, 1);
        assert_eq!(full.capacity, 10);
        assert!(!TelemetryConfig::disabled().tracing);
    }
}
