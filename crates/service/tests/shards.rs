//! Multi-tenant shard isolation: regions behind one [`Router`] share
//! nothing, and the router's addressing is deterministic.
//!
//! The headline property: a weight-delta storm on shard A must leave
//! shard B *bit-for-bit undisturbed* — epoch ring unmoved, zero cache
//! invalidations, zero stale serves, every answer still oracle-exact at
//! B's own pinned epoch, and B's cache-hit latency profile within noise.
//! Plus: region-less routing is a pure function of the start vertex
//! (property-tested), and mis-addressed requests die at the front door
//! without touching any shard's counters.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use skysr_core::bssr::Bssr;
use skysr_core::error::QueryError;
use skysr_core::route::equivalent_skylines;
use skysr_data::dataset::{Dataset, DatasetSpec, Preset};
use skysr_graph::{EpochId, VertexId};
use skysr_service::replay::{build_pool, random_traffic_deltas, replay_sharded, ReplaySpec};
use skysr_service::{
    QueryRequest, QueryService, RegionId, Router, ServiceConfig, ServiceContext, ShardRegistry,
};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn city(seed: u64) -> Dataset {
    DatasetSpec::preset(Preset::CalSmall).scale(0.08).seed(seed).generate()
}

/// A router over `seeds.len()` regions, one CalSmall city per seed.
fn router_over(seeds: &[u64], workers: usize) -> Router {
    let mut registry = ShardRegistry::new();
    for (i, &seed) in seeds.iter().enumerate() {
        let ctx = Arc::new(ServiceContext::from_dataset(city(seed)));
        registry.add(
            format!("region-{i}"),
            ctx,
            ServiceConfig { workers, ..ServiceConfig::default() },
        );
    }
    registry.into_router()
}

#[test]
fn weight_storm_on_shard_a_leaves_shard_b_untouched() {
    let router = router_over(&[21, 22], 2);
    let (a, b) = (RegionId(0), RegionId(1));
    let spec = ReplaySpec { distinct: 12, seq_len: 2, seed: 7, ..ReplaySpec::default() };
    let pool_a = {
        let d = city(21);
        build_pool(&d, &spec)
    };
    let pool_b = {
        let d = city(22);
        build_pool(&d, &spec)
    };
    let shard_b_ctx = Arc::clone(router.context(b).expect("region 1 is registered"));

    // Warm shard B, then record its quiet-time cache-hit latency profile.
    let b_service = router.region_service(b).expect("region 1 is registered");
    let warm: Vec<_> =
        pool_b.iter().map(|q| b_service.submit(QueryRequest::new(q.clone()))).collect();
    for t in warm {
        t.wait().expect("warm-up queries are valid");
    }
    let quiet: Vec<_> =
        pool_b.iter().map(|q| b_service.submit(QueryRequest::new(q.clone()))).collect();
    for t in quiet {
        let r = t.wait().expect("valid");
        assert!(r.cache_hit(), "second pass on a quiet shard must hit");
    }
    let quiet_p99 = {
        let m = router.shard_metrics(b).unwrap();
        m.latency_hist.quantile(0.99)
    };

    // The storm: 40 weight-update waves land on shard A, interleaved with
    // shard-A traffic that crosses the epochs, while shard B keeps serving
    // its (already-cached) pool through the same front door.
    let mut rng = StdRng::seed_from_u64(4242);
    let shard_a_ctx = Arc::clone(router.context(a).expect("region 0 is registered"));
    let a_service = router.region_service(a).expect("region 0 is registered");
    let mut b_responses = Vec::new();
    for _wave in 0..40 {
        let deltas = random_traffic_deltas(shard_a_ctx.graph(), 16, 3.0, &mut rng);
        router.publish_weights_to(a, &deltas).expect("region 0 is registered");
        let a_tickets: Vec<_> =
            pool_a.iter().take(4).map(|q| a_service.submit(QueryRequest::new(q.clone()))).collect();
        let b_tickets: Vec<_> =
            pool_b.iter().map(|q| b_service.submit(QueryRequest::new(q.clone()))).collect();
        for t in a_tickets {
            t.wait().expect("shard-A queries stay valid under updates");
        }
        b_responses.extend(b_tickets.into_iter().map(|t| t.wait().expect("valid")));
    }

    // Shard A took every epoch; shard B's epoch ring never moved.
    assert_eq!(shard_a_ctx.current_epoch(), EpochId(40));
    assert_eq!(shard_b_ctx.current_epoch(), EpochId(0), "the storm leaked into shard B's epochs");

    // Every storm-time shard-B answer is pinned to epoch 0 and
    // oracle-exact against a fresh sequential search there.
    let pinned = shard_b_ctx.pin_at(EpochId(0)).expect("epoch 0 exists");
    let qctx = pinned.query_context();
    for (q, r) in pool_b.iter().cycle().zip(&b_responses) {
        assert_eq!(r.epoch, EpochId(0), "shard B must never observe shard A's epochs");
        let fresh = Bssr::new(&qctx).run(q).unwrap().routes;
        assert!(
            equivalent_skylines(&r.routes, &fresh),
            "shard B diverged from its own oracle during the storm"
        );
    }

    let mb = router.shard_metrics(b).unwrap();
    assert_eq!(mb.stale_served, 0, "staleness gate on the bystander shard");
    assert_eq!(
        mb.cache.invalidations, 0,
        "shard A's epochs must not invalidate shard B's cache entries"
    );
    assert_eq!(mb.failed, 0);
    // Storm-time hits stay within noise of the quiet-time profile. The
    // bound is deliberately generous (shared cores make absolute latency
    // noisy) — the isolation claim it backs is that B's hits stayed
    // *hits*, never re-searches forced by foreign invalidations.
    let storm_hit_count =
        mb.rungs.iter().find(|rs| rs.rung.label() == "exact_hit").map_or(0, |rs| rs.hist.count());
    assert!(
        storm_hit_count >= 40 * pool_b.len() as u64,
        "every storm-time shard-B answer must still be a cache hit"
    );
    let storm_p99 = mb.latency_hist.quantile(0.99);
    let bound = (quiet_p99 * 100).max(Duration::from_millis(250));
    assert!(
        storm_p99 <= bound,
        "shard B hit p99 {storm_p99:?} blew past noise bound {bound:?} (quiet p99 {quiet_p99:?})"
    );

    // Shard A itself stayed exact under its own storm.
    let ma = router.shard_metrics(a).unwrap();
    assert_eq!(ma.stale_served, 0);
    assert_eq!(router.misrouted(), 0);
    let _ = router.shutdown();
}

#[test]
fn misaddressed_requests_fail_at_the_front_door() {
    let router = router_over(&[21, 22], 1);
    let spec = ReplaySpec { distinct: 2, seq_len: 2, ..ReplaySpec::default() };
    let pool = {
        let d = city(21);
        build_pool(&d, &spec)
    };

    // An unregistered region is answered UnknownRegion by the router; no
    // shard's queue, cache or failure counter moves.
    let err = router
        .submit(QueryRequest::new(pool[0].clone()).region(RegionId(7)))
        .wait()
        .expect_err("region 7 is not registered");
    assert_eq!(err, QueryError::UnknownRegion(7));
    assert_eq!(router.misrouted(), 1);
    for region in [RegionId(0), RegionId(1)] {
        let m = router.shard_metrics(region).unwrap();
        assert_eq!((m.completed, m.failed), (0, 0), "misroutes must not touch shard {region}");
    }

    // A shard handed a foreign request directly rejects it itself — the
    // registry stamped its identity, so router and shard cannot disagree.
    let err = router
        .shard(RegionId(0))
        .unwrap()
        .submit(QueryRequest::new(pool[0].clone()).region(RegionId(1)))
        .wait()
        .expect_err("shard 0 must refuse a region-1 request");
    assert_eq!(err, QueryError::UnknownRegion(1));

    // Correctly addressed traffic still flows to both shards.
    for region in [RegionId(0), RegionId(1)] {
        let q = if region == RegionId(0) { pool[0].clone() } else { pool[1].clone() };
        router
            .submit(QueryRequest::new(q).region(region))
            .wait()
            .expect("addressed requests are served");
    }
    let _ = router.shutdown();
}

#[test]
fn sharded_replay_verifies_every_shard_with_zero_misroutes() {
    // The driver the CI shard-verify job runs: per-shard streams and
    // update storms through one router, each shard verified against its
    // own sequential oracle at its own pinned epochs.
    let spec = ReplaySpec {
        total: 160,
        distinct: 16,
        seq_len: 2,
        workers: 2,
        update_every: 40,
        update_burst: 8,
        verify: true,
        ..ReplaySpec::default()
    };
    let datasets = vec![("north".to_owned(), city(21)), ("south".to_owned(), city(22))];
    let report = replay_sharded(datasets, &spec);
    assert_eq!(report.shards.len(), 2);
    assert_eq!(report.misrouted, 0);
    assert!(report.all_ok(), "every shard must verify clean");
    for shard in &report.shards {
        assert_eq!(shard.report.metrics.completed, 160);
        assert_eq!(shard.report.verify_mismatches, Some(0), "shard {} oracle", shard.name);
        assert_eq!(shard.report.stale_served(), 0);
        assert!(shard.report.epochs_published > 0, "updates must land on shard {}", shard.name);
    }
    assert_eq!(report.total(), 320);
    assert_eq!(report.merged_metrics().completed, 320);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Region-less routing is a pure function of the start vertex and the
    // registry shape: two identically built routers agree on every
    // start, repeated calls agree with themselves, and the answer is
    // always a registered region.
    #[test]
    fn region_less_routing_is_deterministic(starts in prop::collection::vec(0u32..200_000, 1..32)) {
        // Differently sized graphs make eligibility non-trivial: small
        // starts fit every shard, large ones only some (or none).
        let build = || {
            let mut registry = ShardRegistry::new();
            for (i, (seed, scale)) in [(21u64, 0.05), (22, 0.08), (23, 0.12)].iter().enumerate() {
                let d = DatasetSpec::preset(Preset::CalSmall).scale(*scale).seed(*seed).generate();
                let ctx = Arc::new(ServiceContext::from_dataset(d));
                registry.add(
                    format!("region-{i}"),
                    ctx,
                    ServiceConfig { workers: 1, ..ServiceConfig::default() },
                );
            }
            registry.into_router()
        };
        let first = build();
        let second = build();
        for &start in &starts {
            let chosen = first.route_start(VertexId(start));
            prop_assert!((chosen.0 as usize) < first.len(), "routed outside the registry");
            prop_assert_eq!(chosen, first.route_start(VertexId(start)), "unstable across calls");
            prop_assert_eq!(chosen, second.route_start(VertexId(start)), "unstable across builds");
        }
        let _ = first.shutdown();
        let _ = second.shutdown();
    }
}
