//! Multi-source multi-destination Dijkstra (paper §5.3.3, Lemma 5.9).
//!
//! Used to compute the semantic-match and perfect-match minimum distances
//! `ls[i]` / `lp[i]`: all PoIs matching position *i* are inserted as sources
//! at distance 0, and the search stops the moment any destination PoI for
//! position *i + 1* is settled — that settle distance is the minimum
//! source-set-to-destination-set distance.

use crate::csr::RoadNetwork;
use crate::dijkstra::{dijkstra_with, DijkstraWorkspace, Settle};
use crate::stats::SearchStats;
use crate::weight::Cost;
use crate::VertexId;

/// Outcome of a multi-source multi-destination search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MsmdResult {
    /// First destination reached and its distance, if any destination is
    /// reachable from any source.
    pub hit: Option<(VertexId, Cost)>,
    /// Search statistics.
    pub stats: SearchStats,
}

/// Minimum distance from *any* source to *any* destination.
///
/// `is_destination` is a predicate so callers can avoid materialising the
/// destination set; `radius` optionally bounds the search (the paper bounds
/// both endpoint sets by the initial threshold `l̄(ϕ)` in Algorithm 4 —
/// bounding the traversal radius is the conservative equivalent for the
/// search itself).
pub fn min_set_distance<F>(
    graph: &RoadNetwork,
    ws: &mut DijkstraWorkspace,
    sources: &[VertexId],
    mut is_destination: F,
    radius: Cost,
) -> MsmdResult
where
    F: FnMut(VertexId) -> bool,
{
    let seeded: Vec<(VertexId, Cost)> = sources.iter().map(|&s| (s, Cost::ZERO)).collect();
    let mut hit = None;
    let stats = dijkstra_with(graph, ws, &seeded, |v, d| {
        if d > radius {
            return Settle::Stop;
        }
        if is_destination(v) {
            hit = Some((v, d));
            Settle::Stop
        } else {
            Settle::Continue
        }
    });
    MsmdResult { hit, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// Path graph 0-1-2-3-4 with unit weights.
    fn path5() -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..5).map(|_| b.add_vertex()).collect();
        for w in v.windows(2) {
            b.add_edge(w[0], w[1], 1.0);
        }
        b.build()
    }

    #[test]
    fn closest_pair_across_sets() {
        let g = path5();
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        // Sources {0, 4}, destinations {2}: min distance is 2 from either.
        let r = min_set_distance(
            &g,
            &mut ws,
            &[VertexId(0), VertexId(4)],
            |v| v == VertexId(2),
            Cost::INFINITY,
        );
        assert_eq!(r.hit.unwrap().1, Cost::new(2.0));
    }

    #[test]
    fn source_in_destination_set_gives_zero() {
        let g = path5();
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        let r = min_set_distance(&g, &mut ws, &[VertexId(1)], |v| v == VertexId(1), Cost::INFINITY);
        assert_eq!(r.hit.unwrap(), (VertexId(1), Cost::ZERO));
    }

    #[test]
    fn radius_bound_prevents_hit() {
        let g = path5();
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        let r = min_set_distance(&g, &mut ws, &[VertexId(0)], |v| v == VertexId(4), Cost::new(2.0));
        assert!(r.hit.is_none());
    }

    #[test]
    fn no_destination_returns_none() {
        let g = path5();
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        let r = min_set_distance(&g, &mut ws, &[VertexId(0)], |_| false, Cost::INFINITY);
        assert!(r.hit.is_none());
        assert_eq!(r.stats.settled, 5);
    }

    #[test]
    fn matches_min_over_single_source_runs() {
        // Randomised cross-check: msmd == min over per-source Dijkstra.
        use crate::dijkstra::dijkstra;
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..8).map(|_| b.add_vertex()).collect();
        let edges = [
            (0, 1, 3.0),
            (1, 2, 1.0),
            (2, 3, 2.0),
            (3, 4, 1.0),
            (4, 5, 2.5),
            (5, 0, 4.0),
            (1, 6, 0.5),
            (6, 7, 0.5),
            (7, 3, 0.5),
        ];
        for (a, c, w) in edges {
            b.add_edge(v[a], v[c], w);
        }
        let g = b.build();
        let sources = [VertexId(0), VertexId(5)];
        let dests = [VertexId(3), VertexId(7)];
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        let got = min_set_distance(&g, &mut ws, &sources, |x| dests.contains(&x), Cost::INFINITY)
            .hit
            .unwrap()
            .1;
        let mut expect = Cost::INFINITY;
        for s in sources {
            dijkstra(&g, &mut ws, s);
            for d in dests {
                if let Some(c) = ws.distance(d) {
                    expect = expect.min(c);
                }
            }
        }
        assert_eq!(got, expect);
    }
}
