//! Progressive Neighbor Exploration (PNE) — the second OSR algorithm of
//! Sharifzadeh et al. \[16\], used as the paper's `PNE` competitor.
//!
//! PNE builds sequenced routes by repeated incremental nearest-neighbour
//! queries: the cheapest partial route is popped from a priority queue and
//! spawns (a) a *child* — the route extended with the first NN of the next
//! set from its end — and (b) a *sibling* — the same prefix with the next
//! NN of the same set. The first complete route popped is optimal, since
//! every enqueued cost is the exact length of a real partial route and
//! both successors cost at least as much as their parent.
//!
//! NN streams (resumable Dijkstra instances) are memoised per
//! `(source, set)` pair and shared across the whole skyline enumeration,
//! mirroring how the published PNE amortises its k-NN searches.

use std::collections::BinaryHeap;

use skysr_graph::fxhash::{FxHashMap, FxHashSet};
use skysr_graph::{Cost, ResumableDijkstra, RoadNetwork, SearchStats, VertexId};

use crate::osr::OsrRoute;

struct NnStream<'g> {
    search: ResumableDijkstra<'g>,
    found: Vec<(VertexId, Cost)>,
    exhausted: bool,
}

impl<'g> NnStream<'g> {
    fn new(graph: &'g RoadNetwork, source: VertexId) -> NnStream<'g> {
        NnStream {
            search: ResumableDijkstra::new(graph, source),
            found: Vec::new(),
            exhausted: false,
        }
    }

    /// Ensures at least `rank + 1` matches are materialised; returns the
    /// match at `rank` if it exists.
    fn nth(&mut self, set: &FxHashSet<u32>, rank: usize) -> Option<(VertexId, Cost)> {
        while self.found.len() <= rank && !self.exhausted {
            match self.search.next_matching(|v| set.contains(&v.0)) {
                Some(hit) => self.found.push(hit),
                None => self.exhausted = true,
            }
        }
        self.found.get(rank).copied()
    }
}

#[derive(Clone)]
struct Entry {
    length: Cost,
    route: Vec<VertexId>,
    /// NN rank (within its stream) of the route's last PoI.
    rank: usize,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.length == other.length
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.length.cmp(&self.length) // min-heap by length
    }
}

/// PNE-based OSR solver with shared NN streams.
pub struct PneSolver<'g> {
    graph: &'g RoadNetwork,
    /// Streams keyed by (source vertex, caller-chosen set key).
    streams: FxHashMap<(u32, u64), NnStream<'g>>,
}

impl<'g> PneSolver<'g> {
    /// New solver over `graph`.
    pub fn new(graph: &'g RoadNetwork) -> PneSolver<'g> {
        PneSolver { graph, streams: FxHashMap::default() }
    }

    /// Aggregated search statistics over all streams.
    pub fn stats(&self) -> SearchStats {
        let mut s = SearchStats::default();
        for stream in self.streams.values() {
            s.merge(&stream.search.stats());
        }
        s
    }

    /// Number of live NN streams (memory diagnostic).
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Shortest sequenced route from `start` through one member of each
    /// `(key, set)` in order. Keys identify sets across `solve` calls so
    /// streams can be reused; two different sets must use different keys.
    pub fn solve(&mut self, start: VertexId, sets: &[(u64, &FxHashSet<u32>)]) -> Option<OsrRoute> {
        let k = sets.len();
        assert!(k >= 1, "PNE needs at least one candidate set");
        if sets.iter().any(|(_, s)| s.is_empty()) {
            return None;
        }
        let mut queue: BinaryHeap<Entry> = BinaryHeap::new();
        if let Some(first) = self.nth_valid(start, sets[0], 0, &[]) {
            let (rank, v, d) = first;
            queue.push(Entry { length: d, route: vec![v], rank });
        }
        while let Some(e) = queue.pop() {
            let stage = e.route.len();
            if stage == k {
                return Some(OsrRoute { pois: e.route, length: e.length });
            }
            // Sibling: same prefix, next NN of the same set.
            let prefix_end = if e.route.len() >= 2 { e.route[e.route.len() - 2] } else { start };
            let last = *e.route.last().expect("routes in the queue are non-empty");
            let last_stream_dist = self
                .nth_valid(prefix_end, sets[stage - 1], e.rank, &e.route[..stage - 1])
                .map(|(_, _, d)| d)
                .unwrap_or(Cost::ZERO);
            if let Some((rank, v, d)) =
                self.nth_valid(prefix_end, sets[stage - 1], e.rank + 1, &e.route[..stage - 1])
            {
                let mut route = e.route.clone();
                *route.last_mut().unwrap() = v;
                queue.push(Entry { length: e.length - last_stream_dist + d, route, rank });
            }
            // Child: extend with the first NN of the next set.
            if let Some((rank, v, d)) = self.nth_valid(last, sets[stage], 0, &e.route) {
                let mut route = e.route.clone();
                route.push(v);
                queue.push(Entry { length: e.length + d, route, rank });
            }
        }
        None
    }

    /// `rank`-th NN of `set` from `source`, skipping PoIs already in
    /// `exclude`. Returns (effective rank, vertex, distance).
    fn nth_valid(
        &mut self,
        source: VertexId,
        (key, set): (u64, &FxHashSet<u32>),
        start_rank: usize,
        exclude: &[VertexId],
    ) -> Option<(usize, VertexId, Cost)> {
        let stream = self
            .streams
            .entry((source.0, key))
            .or_insert_with(|| NnStream::new(self.graph, source));
        let mut rank = start_rank;
        loop {
            let (v, d) = stream.nth(set, rank)?;
            if !exclude.contains(&v) {
                return Some((rank, v, d));
            }
            rank += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::osr::OsrSolver;
    use crate::paper_example::PaperExample;

    fn set(ids: &[u32]) -> FxHashSet<u32> {
        ids.iter().copied().collect()
    }

    #[test]
    fn agrees_with_osr_on_fixture_perfect_sets() {
        let ex = PaperExample::new();
        let asian = set(&[2, 10]);
        let arts = set(&[5, 9, 12]);
        let gift = set(&[8, 13]);
        let mut pne = PneSolver::new(&ex.graph);
        let got = pne.solve(ex.vq, &[(0, &asian), (1, &arts), (2, &gift)]).unwrap();
        let mut osr = OsrSolver::new(ex.graph.num_vertices());
        let want = osr.solve(&ex.graph, ex.vq, &[asian, arts, gift]).unwrap();
        assert_eq!(got.length, want.length);
        assert_eq!(got.pois, want.pois);
    }

    #[test]
    fn streams_are_reused_across_solves() {
        let ex = PaperExample::new();
        let asian = set(&[2, 10]);
        let arts = set(&[5, 9, 12]);
        let mut pne = PneSolver::new(&ex.graph);
        pne.solve(ex.vq, &[(0, &asian), (1, &arts)]).unwrap();
        let n1 = pne.num_streams();
        // Same sets again: no new streams.
        pne.solve(ex.vq, &[(0, &asian), (1, &arts)]).unwrap();
        assert_eq!(pne.num_streams(), n1);
    }

    #[test]
    fn empty_set_is_none() {
        let ex = PaperExample::new();
        let empty = FxHashSet::default();
        let mut pne = PneSolver::new(&ex.graph);
        assert!(pne.solve(ex.vq, &[(0, &empty)]).is_none());
    }

    #[test]
    fn distinctness_respected() {
        use skysr_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..3).map(|_| b.add_vertex()).collect();
        b.add_edge(v[0], v[1], 1.0);
        b.add_edge(v[1], v[2], 1.0);
        let g = b.build();
        let both = set(&[1, 2]);
        let mut pne = PneSolver::new(&g);
        let route = pne.solve(v[0], &[(0, &both), (0, &both)]).unwrap();
        assert_ne!(route.pois[0], route.pois[1]);
        assert_eq!(route.length, Cost::new(2.0));
    }

    #[test]
    fn exhausts_to_none_when_all_candidates_used() {
        use skysr_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..2).map(|_| b.add_vertex()).collect();
        b.add_edge(v[0], v[1], 1.0);
        let g = b.build();
        let only = set(&[1]);
        let mut pne = PneSolver::new(&g);
        assert!(pne.solve(v[0], &[(0, &only), (0, &only)]).is_none());
    }
}
