//! The query service: shared context + worker pool + cache + in-flight
//! coalescing + metrics, epoch-consistent under dynamic edge weights.
//!
//! Two layers live here:
//!
//! * [`Service`] — the concrete in-process engine (worker pool over a
//!   shared [`ServiceContext`]);
//! * [`QueryService`] — the transport-agnostic trait [`Service`] and the
//!   network client ([`crate::net::RemoteService`]) both implement, so
//!   replay/bench/verify drive either through `&dyn QueryService`.
//!
//! Requests travel as a [`QueryRequest`] envelope (query + per-request
//! options); answers come back through a [`Ticket`], or a
//! [`StreamTicket`] for *anytime* responses that surface provisional
//! Pareto points while the search runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use skysr_core::bssr::{Bssr, BssrConfig, BssrScratch};
use skysr_core::dominance::SkylineSet;
use skysr_core::error::QueryError;
use skysr_core::query::SkySrQuery;
use skysr_core::route::SkylineRoute;
use skysr_core::stats::EngineProfile;
use skysr_graph::{EpochId, WeightDelta};

use crate::cache::{QueryKey, ResultCache};
use crate::context::ServiceContext;
use crate::metrics::{LatencyBreakdown, MetricsRecorder, MetricsSnapshot, Served};
use crate::net::DatasetFingerprint;
use crate::plan::{CostClass, PlanStep, ReusePlan, ReusePlanner, ReuseStrategies, SeedSource};
use crate::pool::{Begin, InflightTable, SchedKey, ScheduledQueue};
use crate::shard::{RegionId, RegionInfo};
use crate::telemetry::{Rung, TelemetryConfig, TraceBuffer, TraceSpan};

/// Sizing and engine configuration of a [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads. `0` means "one per available CPU".
    pub workers: usize,
    /// Bounded submission-queue capacity; full ⇒ `submit` blocks.
    pub queue_capacity: usize,
    /// Result-cache entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Request coalescing: concurrent duplicate queries block on one
    /// computation and all receive the shared result.
    pub coalesce: bool,
    /// Semantic prefix reuse: a cached skyline for ⟨c₁,…,c_{k−1}⟩
    /// warm-starts the search for ⟨c₁,…,c_k⟩. Requires caching.
    pub prefix_reuse: bool,
    /// Ancestor-category reuse: a cached skyline for the query with some
    /// position's category replaced by one of its ancestors warm-starts
    /// the child query (seeds revalidated and rescored under the child's
    /// own positions). Requires caching.
    pub ancestor_reuse: bool,
    /// Suffix reuse: a cached skyline for ⟨c₂,…,c_k⟩ warm-starts
    /// ⟨c₁,c₂,…,c_k⟩ by prepending one shortest-path leg. Requires
    /// caching.
    pub suffix_reuse: bool,
    /// Incremental skyline repair: a cache hit at an *older* weight epoch
    /// is repaired against the exact epoch delta (and promoted in place)
    /// instead of being lazily invalidated and recomputed. Also lets
    /// one-epoch-stale prefix entries seed warm starts when the delta
    /// provably does not touch them. Requires caching; answers remain
    /// oracle-exact at the pinned epoch.
    pub repair: bool,
    /// Admission control: when on, a request carrying a deadline that the
    /// gate estimates cannot be met — queue wait plus its cost class's
    /// observed service time already exceed the budget — is refused at
    /// submission with [`QueryError::Overloaded`] instead of being queued
    /// to fail. Estimates come from a per-class EWMA of observed service
    /// times, so an untrained gate admits everything. Deadline-less
    /// requests are always admitted.
    pub admission: bool,
    /// Anti-starvation bound for the deadline scheduler: a queued request
    /// that has waited this long is served ahead of cheaper cost bands,
    /// so a stream of cache hits can never starve a cold search forever.
    pub age_limit: Duration,
    /// Engine configuration every worker runs with.
    pub engine: BssrConfig,
    /// Trace-span retention policy (histograms are always on; see
    /// [`crate::telemetry`]).
    pub telemetry: TelemetryConfig,
    /// The region this service serves. A request carrying a different
    /// explicit [`RequestOptions::region`] is answered with
    /// [`QueryError::UnknownRegion`] at submission; region-less requests
    /// are always accepted (the single-shard legacy path). A
    /// [`crate::shard::ShardRegistry`] stamps this when it builds the
    /// shard, so shard-local metrics and routing agree by construction.
    pub region: RegionId,
    /// Human-readable region/dataset name advertised by
    /// [`QueryService::regions`] and the v2 handshake registry.
    pub region_name: String,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 0,
            queue_capacity: 256,
            cache_capacity: 1024,
            coalesce: true,
            prefix_reuse: true,
            ancestor_reuse: true,
            suffix_reuse: true,
            repair: false,
            admission: false,
            age_limit: Duration::from_millis(500),
            engine: BssrConfig::default(),
            telemetry: TelemetryConfig::default(),
            region: RegionId::default(),
            region_name: String::from("default"),
        }
    }
}

/// A successfully answered query.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The skyline routes, shared with the cache (and other waiters).
    pub routes: Arc<[SkylineRoute]>,
    /// The weight epoch the request was pinned to — the routes are exact
    /// for precisely this epoch's edge weights.
    pub epoch: EpochId,
    /// How the answer was produced — the single source of truth the
    /// metrics recorder consumed for this response, so responses and
    /// counters cannot disagree.
    pub served: Served,
    /// Submission-to-completion latency (queueing included).
    pub latency: Duration,
    /// Service-assigned request id — joins this response to its
    /// [`TraceSpan`] (the trace-completeness invariant matches on it).
    pub request_id: u64,
    /// The queueing share of `latency` (submission → dequeue), split out
    /// so saturation is visible per response, not just in aggregate.
    pub queue_wait: Duration,
}

impl QueryResponse {
    /// Whether the answer came from the result cache.
    pub fn cache_hit(&self) -> bool {
        self.served == Served::CacheHit
    }

    /// Whether the answer was computed by another request's in-flight
    /// search this one coalesced onto.
    pub fn coalesced(&self) -> bool {
        self.served == Served::Coalesced
    }

    /// Whether the answer came from incrementally repairing a cached
    /// skyline of an older epoch (in place or via the seeded fallback).
    pub fn repaired(&self) -> bool {
        matches!(self.served, Served::Repaired { .. })
    }
}

/// Per-request serving options, carried in the [`QueryRequest`] envelope.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RequestOptions {
    /// Serving deadline, measured from submission and enforced
    /// **server-side**:
    ///
    /// * the scheduler orders deadline-carrying requests ahead of
    ///   deadline-less ones within a cost band, earliest first;
    /// * a request whose deadline lapses while it waits in the queue is
    ///   shed at dequeue ([`QueryError::Overloaded`]), never executed;
    /// * a search (warm or cold) whose deadline expires mid-engine stops
    ///   and returns the mutually non-dominated partial skyline found so
    ///   far, served as [`Served::Approximate`] — degraded, never stale
    ///   or bogus (every partial route is a genuine valid route,
    ///   dominated-or-equal by the exact skyline);
    /// * with [`ServiceConfig::admission`] on, a deadline the gate
    ///   estimates as unmeetable is refused at submission.
    ///
    /// Clients can still cut off earlier on their side (see
    /// [`StreamTicket::wait_deadline`]); `None` means "take as long as it
    /// takes".
    pub deadline: Option<Duration>,
    /// Force this request's [`TraceSpan`] to be retained, bypassing both
    /// the tracing enable flag and sampling (debugging one request in a
    /// sampled production service).
    pub trace: bool,
    /// Reuse-strategy override *mask*: ANDed with the service-level
    /// strategies, so a request can opt out of rungs (e.g. force a cold
    /// search with [`ReuseStrategies::none`]) but never widen beyond what
    /// the service allows.
    pub reuse: Option<ReuseStrategies>,
    /// The region (dataset/shard) this request addresses. `None` keeps
    /// the legacy single-shard path: a [`Service`] accepts it outright and
    /// a [`crate::shard::Router`] maps the start vertex against each
    /// shard's vertex-id space. `Some` pins the request: the owning shard
    /// serves it, any other endpoint answers
    /// [`QueryError::UnknownRegion`].
    pub region: Option<RegionId>,
}

/// One query plus its per-request options — the envelope every
/// [`QueryService::submit`] takes. [`From<SkySrQuery>`] gives the
/// all-defaults envelope, and [`QueryService::submit_query`] is the
/// bare-query convenience wrapper.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRequest {
    /// The sequenced-route query itself.
    pub query: SkySrQuery,
    /// Serving options (default: no deadline, sampled tracing, full reuse).
    pub options: RequestOptions,
}

impl QueryRequest {
    /// Envelope with default options.
    pub fn new(query: SkySrQuery) -> QueryRequest {
        QueryRequest { query, options: RequestOptions::default() }
    }

    /// Sets the deadline hint.
    pub fn deadline(mut self, deadline: Duration) -> QueryRequest {
        self.options.deadline = Some(deadline);
        self
    }

    /// Opts this request into forced trace retention.
    pub fn traced(mut self) -> QueryRequest {
        self.options.trace = true;
        self
    }

    /// Restricts the reuse rungs available to this request.
    pub fn restrict(mut self, mask: ReuseStrategies) -> QueryRequest {
        self.options.reuse = Some(mask);
        self
    }

    /// Addresses this request to one region of a multi-tenant deployment.
    pub fn region(mut self, region: RegionId) -> QueryRequest {
        self.options.region = Some(region);
        self
    }
}

impl From<SkySrQuery> for QueryRequest {
    fn from(query: SkySrQuery) -> QueryRequest {
        QueryRequest::new(query)
    }
}

/// Waitable handle for one submitted query.
pub struct Ticket {
    rx: mpsc::Receiver<Result<QueryResponse, QueryError>>,
}

impl Ticket {
    /// Pairs a ticket with the sending half of its answer channel — how
    /// transports other than the in-process pool (the network client)
    /// mint tickets for their own demultiplexers.
    pub(crate) fn channel() -> (mpsc::Sender<Result<QueryResponse, QueryError>>, Ticket) {
        let (tx, rx) = mpsc::channel();
        (tx, Ticket { rx })
    }

    /// Blocks until the worker finishes this query.
    pub fn wait(self) -> Result<QueryResponse, QueryError> {
        self.rx.recv().expect("worker dropped a job without responding")
    }

    /// Non-blocking poll: `Some` once the answer is in. The network
    /// server pumps tickets this way so one slow query never stalls its
    /// event loop.
    pub fn try_wait(&self) -> Option<Result<QueryResponse, QueryError>> {
        match self.rx.try_recv() {
            Ok(outcome) => Some(outcome),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => {
                panic!("worker dropped a job without responding")
            }
        }
    }
}

/// Handle for a streaming (anytime) submission: provisional Pareto points
/// arrive on the progress channel as the search proves them, and the
/// final exact answer arrives like any [`Ticket`]'s.
pub struct StreamTicket {
    progress: mpsc::Receiver<SkylineRoute>,
    ticket: Ticket,
}

/// What [`StreamTicket::wait_deadline`] returns: either the exact answer
/// or the provisional skyline accumulated by the deadline, flagged
/// [`approximate`](AnytimeResponse::approximate).
#[derive(Clone, Debug)]
pub struct AnytimeResponse {
    /// The routes — exact when `approximate` is false; otherwise the
    /// mutually non-dominated provisional points received so far, each a
    /// genuine valid route dominated-or-equal by the final exact skyline.
    pub routes: Vec<SkylineRoute>,
    /// True iff the deadline cut the stream off before the final frame.
    pub approximate: bool,
    /// The full response (`Served` classification, epoch, latency) when
    /// the exact answer arrived in time.
    pub response: Option<QueryResponse>,
}

impl StreamTicket {
    pub(crate) fn new(progress: mpsc::Receiver<SkylineRoute>, ticket: Ticket) -> StreamTicket {
        StreamTicket { progress, ticket }
    }

    /// Next provisional point, if one is ready (non-blocking). `None`
    /// means "none right now" — the stream ends when the final answer
    /// arrives, not when this returns `None`.
    pub fn try_progress(&self) -> Option<SkylineRoute> {
        self.progress.try_recv().ok()
    }

    /// Ignores the stream and blocks for the exact answer.
    pub fn wait(self) -> Result<QueryResponse, QueryError> {
        self.ticket.wait()
    }

    /// Blocks for the exact answer and returns it together with every
    /// provisional point streamed on the way. Nothing is lost: both the
    /// in-process worker and the daemon deliver all progress before the
    /// final answer, so the channel is fully drainable afterwards.
    pub fn wait_with_progress(self) -> Result<(QueryResponse, Vec<SkylineRoute>), QueryError> {
        let response = self.ticket.wait()?;
        let mut provisional = Vec::new();
        while let Ok(route) = self.progress.try_recv() {
            provisional.push(route);
        }
        Ok((response, provisional))
    }

    /// Blocks until the exact answer or `deadline`, whichever first. On
    /// cutoff the provisional points received so far are folded into a
    /// valid partial skyline and returned with `approximate = true`.
    pub fn wait_deadline(self, deadline: Duration) -> Result<AnytimeResponse, QueryError> {
        match self.ticket.rx.recv_timeout(deadline) {
            Ok(Ok(response)) => Ok(AnytimeResponse {
                routes: response.routes.to_vec(),
                approximate: false,
                response: Some(response),
            }),
            Ok(Err(e)) => Err(e),
            Err(RecvTimeoutError::Timeout) => {
                // Later provisional points can dominate earlier ones, so
                // fold the stream through a SkylineSet to hand back a
                // minimal, mutually non-dominated partial answer.
                let mut partial = SkylineSet::new();
                while let Ok(route) = self.progress.try_recv() {
                    partial.update(route);
                }
                Ok(AnytimeResponse {
                    routes: partial.into_routes(),
                    approximate: true,
                    response: None,
                })
            }
            Err(RecvTimeoutError::Disconnected) => {
                panic!("worker dropped a job without responding")
            }
        }
    }
}

/// The transport-agnostic query-service interface.
///
/// Implemented by the in-process [`Service`] and by the network client
/// [`crate::net::RemoteService`]; the replay/bench/verify drivers take
/// `&dyn QueryService`, so the same workload runs in-process or across a
/// socket without changing a line. The contract every implementation
/// upholds:
///
/// * `submit` returns immediately with a [`Ticket`] (it may block briefly
///   for backpressure, never for the answer);
/// * answers are **oracle-exact at their pinned epoch** — `response.epoch`
///   names the weight epoch the routes are exact for;
/// * `submit_streaming` additionally surfaces provisional Pareto points,
///   each dominated-or-equal by the final exact skyline;
/// * `publish_weights` applies a delta batch atomically and returns the
///   new epoch; subsequently dequeued requests pin it;
/// * `shutdown` is idempotent and drains in-flight work before returning
///   final metrics.
pub trait QueryService: Send + Sync {
    /// Enqueues one request (backpressure may block briefly).
    fn submit(&self, request: QueryRequest) -> Ticket;

    /// Enqueues one request with anytime streaming: provisional Pareto
    /// points flow on the [`StreamTicket`]'s progress channel while the
    /// search runs. Requests answered without a search (cache hits,
    /// coalesced followers, repairs) stream nothing — the final frame is
    /// the whole story.
    fn submit_streaming(&self, request: QueryRequest) -> StreamTicket;

    /// Metrics snapshot over the service's lifetime so far.
    fn metrics(&self) -> MetricsSnapshot;

    /// Publishes a weight-update batch as one new epoch.
    fn publish_weights(&self, deltas: &[WeightDelta]) -> EpochId;

    /// Drains in-flight work, stops serving and returns final metrics.
    /// Idempotent; submissions after shutdown panic.
    fn shutdown(&self) -> MetricsSnapshot;

    /// The regions this endpoint serves, one [`RegionInfo`] per resident
    /// dataset. A single-shard [`Service`] advertises exactly its own
    /// region; a [`crate::shard::Router`] advertises every registered
    /// shard; [`crate::net::RemoteService`] relays the registry the
    /// daemon's handshake carried. The default (an empty vector) means
    /// "this endpoint predates multi-tenancy and does not advertise" —
    /// callers must treat it as "address-less single shard", not as
    /// "serves nothing".
    fn regions(&self) -> Vec<RegionInfo> {
        Vec::new()
    }

    /// [`QueryService::submit`] with default options — the bare-query
    /// convenience wrapper.
    fn submit_query(&self, query: SkySrQuery) -> Ticket {
        self.submit(QueryRequest::new(query))
    }

    /// Submits every query and waits for all answers, preserving order.
    ///
    /// A batch larger than the queue capacity cannot deadlock the caller:
    /// the bounded queue holds only unstarted work and each ticket buffers
    /// its answer, so an oversized batch merely throttles submission to
    /// the workers' pace.
    fn run_queries(&self, queries: &[SkySrQuery]) -> Vec<Result<QueryResponse, QueryError>> {
        let tickets: Vec<Ticket> = queries.iter().map(|q| self.submit_query(q.clone())).collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }
}

struct Job {
    id: u64,
    query: SkySrQuery,
    options: RequestOptions,
    submitted: Instant,
    reply: mpsc::Sender<Result<QueryResponse, QueryError>>,
    progress: Option<mpsc::Sender<SkylineRoute>>,
}

/// The trace-span material known *before* a request is answered: identity,
/// timing marks, plan duration and the rung probes so far. Completed into
/// a [`TraceSpan`] by [`respond`].
struct PendingSpan {
    id: u64,
    submitted: Instant,
    dequeued: Instant,
    queue_depth: usize,
    plan: Duration,
    attempts: Vec<&'static str>,
    /// Per-request trace opt-in ([`RequestOptions::trace`]): retain the
    /// span even when tracing is disabled or sampling would drop it.
    trace: bool,
}

/// What an in-flight leader owes a parked duplicate request: its reply
/// channel and its pending span (which carries the follower's own
/// submission instant, so coalesced answers report their true latency and
/// their own trace story).
struct Waiter {
    reply: mpsc::Sender<Result<QueryResponse, QueryError>>,
    pending: PendingSpan,
}

/// What the executed terminal rung contributes to a span: engine time,
/// the engine-work profile, and — for repairs — the tier reached plus the
/// delta-index epoch pair. Followers and cache hits use the default
/// (no engine ran).
#[derive(Clone, Copy, Debug, Default)]
struct ExecTrace {
    engine: Option<Duration>,
    profile: EngineProfile,
    repair_tier: Option<&'static str>,
    delta_index: Option<(EpochId, EpochId)>,
}

/// Coalescing key: one flight per canonical query *per weight epoch*. A
/// request pinned to epoch N+1 must never join (and be answered by) a
/// leader that is searching epoch-N weights, so the epoch is part of the
/// flight identity.
type FlightKey = (QueryKey, EpochId);

/// Per-[`CostClass`] EWMA of observed dequeue-to-response times, in
/// nanoseconds — the admission gate's service-time estimates. Workers feed
/// it after every response; a slot that has never observed reads as zero,
/// so an untrained gate estimates optimistically and admits (the gate must
/// never shed before it has evidence). Updates are racy-by-design
/// (load/store, no CAS loop): a lost sample moves an *estimate*, nothing
/// more.
pub(crate) struct CostModel {
    nanos: [AtomicU64; 3],
}

/// EWMA weight denominator: each new sample contributes 1/8.
const EWMA_WEIGHT: u64 = 8;

impl CostModel {
    fn new() -> CostModel {
        CostModel { nanos: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)] }
    }

    fn observe(&self, class: CostClass, service: Duration) {
        let sample = u64::try_from(service.as_nanos()).unwrap_or(u64::MAX);
        let slot = &self.nanos[class.index()];
        let prev = slot.load(Ordering::Relaxed);
        let next =
            if prev == 0 { sample } else { prev - prev / EWMA_WEIGHT + sample / EWMA_WEIGHT };
        slot.store(next, Ordering::Relaxed);
    }

    fn estimate(&self, class: CostClass) -> Duration {
        Duration::from_nanos(self.nanos[class.index()].load(Ordering::Relaxed))
    }
}

/// The class a [`Served`] outcome retro-classifies as — which cost-model
/// slot its observed service time trains. Mirrors the bands of
/// [`CostClass::band`]: answered-from-memory outcomes train `Hit`,
/// repairs train `Repair`, engine runs (exact or truncated) train
/// `Search`.
fn cost_class_of(served: Served) -> CostClass {
    match served {
        Served::CacheHit | Served::Coalesced => CostClass::Hit,
        Served::Repaired { .. } => CostClass::Repair,
        Served::Search { .. } | Served::Approximate => CostClass::Search,
    }
}

/// A multi-threaded in-process SkySR query engine.
///
/// Construction spawns the worker pool; each worker owns a [`Bssr`] engine
/// (reusing its Dijkstra workspace and scratch state across queries) over
/// the shared [`ServiceContext`]. Before each job the worker re-pins the
/// context's current weight epoch, so published weight updates take effect
/// on the next dequeued query while in-progress searches finish on their
/// own consistent snapshot. Dropping the service closes the submission
/// queue, drains in-flight work and joins every worker.
pub struct Service {
    ctx: Arc<ServiceContext>,
    queue: Arc<ScheduledQueue<Job>>,
    cache: Arc<ResultCache>,
    // The submission path shares the workers' planner and in-flight table
    // to classify each request's expected cost *before* queueing it: the
    // plan rung is the scheduler's cost model (and the admission gate's).
    planner: ReusePlanner,
    inflight: Arc<InflightTable<FlightKey, Waiter>>,
    cost: Arc<CostModel>,
    metrics: Arc<MetricsRecorder>,
    traces: Arc<TraceBuffer>,
    next_id: AtomicU64,
    // Drained by the (idempotent, `&self`) shutdown path; `worker_count`
    // remembers the resolved pool size afterwards.
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_count: usize,
    started: Instant,
    config: ServiceConfig,
}

impl Service {
    /// Spawns a service over `ctx` with `config`.
    pub fn new(ctx: Arc<ServiceContext>, config: ServiceConfig) -> Service {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            config.workers
        };
        let queue = Arc::new(ScheduledQueue::new(config.queue_capacity.max(1), config.age_limit));
        // Capacity 0 disables caching: keep a 1-entry cache object for
        // uniform counters but never consult it. Every cache-reading
        // strategy is implied off without one (see
        // `ReuseStrategies::resolve`).
        let planner = ReusePlanner::new(ReuseStrategies::resolve(&config), config.engine);
        let cache = Arc::new(ResultCache::new(config.cache_capacity.max(1)));
        let inflight: Arc<InflightTable<FlightKey, Waiter>> = Arc::new(InflightTable::new());
        let metrics = Arc::new(MetricsRecorder::default());
        let traces = Arc::new(TraceBuffer::new(&config.telemetry, workers));
        let cost = Arc::new(CostModel::new());

        let handles = (0..workers)
            .map(|i| {
                let ctx = Arc::clone(&ctx);
                let queue = Arc::clone(&queue);
                let cache = Arc::clone(&cache);
                let inflight = Arc::clone(&inflight);
                let metrics = Arc::clone(&metrics);
                let traces = Arc::clone(&traces);
                let cost = Arc::clone(&cost);
                let planner = planner.clone();
                std::thread::Builder::new()
                    .name(format!("skysr-worker-{i}"))
                    .spawn(move || {
                        worker_loop(
                            &ctx, &queue, &cache, &inflight, &metrics, &traces, &cost, &planner,
                        )
                    })
                    .expect("spawning a worker thread")
            })
            .collect();

        Service {
            ctx,
            queue,
            cache,
            planner,
            inflight,
            cost,
            metrics,
            traces,
            next_id: AtomicU64::new(1),
            workers: Mutex::new(handles),
            worker_count: workers,
            started: Instant::now(),
            config,
        }
    }

    /// Service with the default configuration.
    pub fn with_defaults(ctx: Arc<ServiceContext>) -> Service {
        Service::new(ctx, ServiceConfig::default())
    }

    /// Resolves a request's scheduling key at admission time: its cost
    /// class (resolved cheaply from the planner's rung ladder — see
    /// [`ReusePlanner::classify`] — or `Hit` when the request will join an
    /// already-in-flight duplicate) plus its absolute deadline.
    fn sched_key(&self, request: &QueryRequest, submitted: Instant) -> (SchedKey, CostClass) {
        let masked;
        let planner = match request.options.reuse {
            Some(mask) => {
                masked = self.planner.masked(mask);
                &masked
            }
            None => &self.planner,
        };
        let epoch = self.ctx.current_epoch();
        let key = planner.key_of(&request.query);
        let class = match &key {
            // A duplicate of an in-flight search parks instantly at
            // dequeue: schedule it with the hits however expensive the
            // search it joins is.
            Some(k)
                if planner.strategies().coalesce && self.inflight.contains(&(k.clone(), epoch)) =>
            {
                CostClass::Hit
            }
            _ => planner.classify(key.as_ref(), epoch, &self.cache, &self.ctx),
        };
        let deadline = request.options.deadline.map(|d| submitted + d);
        (SchedKey { class: class.band(), deadline, submitted }, class)
    }

    /// The admission gate: `false` means the request's deadline provably
    /// (up to the cost model's estimates) cannot be met, so queueing it
    /// would only waste a worker on an answer nobody is waiting for.
    ///
    /// Estimate: the backlog in this request's band and every cheaper one
    /// drains ahead of it at the pool's pace, then its own class's
    /// service time must still fit. Conservatively ignores aged expensive
    /// work jumping ahead; an untrained model estimates zero and admits.
    fn admit(&self, key: &SchedKey, class: CostClass) -> bool {
        if !self.config.admission {
            return true;
        }
        let Some(deadline) = key.deadline else {
            return true;
        };
        let budget = deadline.saturating_duration_since(Instant::now());
        let lens = self.queue.band_lens();
        let mut needed = self.cost.estimate(class);
        let mut ahead = Duration::ZERO;
        for (band, len) in lens.iter().enumerate().take(class.band() as usize + 1) {
            let per_item = self.cost.estimate(CostClass::ALL[band.min(CostClass::ALL.len() - 1)]);
            ahead =
                ahead.saturating_add(per_item.checked_mul(*len as u32).unwrap_or(Duration::MAX));
        }
        needed = needed.saturating_add(ahead / self.worker_count.max(1) as u32);
        needed <= budget
    }

    /// A ticket already resolved to [`QueryError::Overloaded`] — what a
    /// shed submission hands back, so every caller (blocking submitter,
    /// network event loop) observes shedding as a normal typed failure.
    fn shed_ticket(&self) -> Ticket {
        self.metrics.record_rejected();
        let (tx, ticket) = Ticket::channel();
        let _ = tx.send(Err(QueryError::Overloaded));
        ticket
    }

    /// `Some(region)` when the request explicitly addresses a region this
    /// service does not serve. Region-less requests always pass — that is
    /// the legacy single-shard path every pre-v2 caller takes.
    fn region_mismatch(&self, request: &QueryRequest) -> Option<RegionId> {
        match request.options.region {
            Some(region) if region != self.config.region => Some(region),
            _ => None,
        }
    }

    /// A ticket already resolved to [`QueryError::UnknownRegion`] — the
    /// typed failure a mis-addressed request gets at submission, counted
    /// as a failed query (it was never queued, so it is not a shed).
    fn unknown_region_ticket(&self, region: RegionId) -> Ticket {
        self.metrics.record_failure();
        let (tx, ticket) = Ticket::channel();
        let _ = tx.send(Err(QueryError::UnknownRegion(region.0)));
        ticket
    }

    /// Enqueues one request, optionally with a progress channel for
    /// anytime streaming. Blocks while the submission queue is full
    /// (backpressure). With admission control on, a request whose deadline
    /// the gate judges unmeetable is not queued: its ticket resolves to
    /// [`QueryError::Overloaded`] immediately.
    ///
    /// # Panics
    /// If called after [`Service::shutdown`] closed the queue.
    fn enqueue(
        &self,
        request: QueryRequest,
        progress: Option<mpsc::Sender<SkylineRoute>>,
    ) -> Ticket {
        if let Some(region) = self.region_mismatch(&request) {
            return self.unknown_region_ticket(region);
        }
        let submitted = Instant::now();
        let (key, class) = self.sched_key(&request, submitted);
        if !self.admit(&key, class) {
            return self.shed_ticket();
        }
        let (tx, ticket) = Ticket::channel();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let QueryRequest { query, options } = request;
        let job = Job { id, query, options, submitted, reply: tx, progress };
        if self.queue.push(job, key).is_err() {
            panic!("submit after shutdown: the submission queue is closed");
        }
        ticket
    }

    /// Non-blocking submit for event-loop callers (the network server):
    /// `Err` hands the request back when the queue is full right now, so
    /// the caller can park it and keep its loop turning. `submitted` is
    /// the instant the request *first* arrived — a parked-and-retried
    /// request keeps its original deadline clock instead of resetting it.
    /// An admission-gate shed is an `Ok` ticket already resolved to
    /// [`QueryError::Overloaded`]: the caller's normal answer pump turns
    /// it into the typed failure frame.
    pub(crate) fn try_submit(
        &self,
        request: QueryRequest,
        progress: Option<mpsc::Sender<SkylineRoute>>,
        submitted: Instant,
    ) -> Result<Ticket, QueryRequest> {
        if let Some(region) = self.region_mismatch(&request) {
            return Ok(self.unknown_region_ticket(region));
        }
        let (key, class) = self.sched_key(&request, submitted);
        if !self.admit(&key, class) {
            return Ok(self.shed_ticket());
        }
        let (tx, ticket) = Ticket::channel();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let QueryRequest { query, options } = request;
        let job = Job { id, query, options, submitted, reply: tx, progress };
        match self.queue.try_push(job, key) {
            Ok(()) => Ok(ticket),
            Err(job) => Err(QueryRequest { query: job.query, options: job.options }),
        }
    }

    /// Submits every query and waits for all answers, preserving order.
    /// (The borrowing twin of [`QueryService::run_queries`], kept generic
    /// over any query iterator.)
    pub fn run_batch(
        &self,
        queries: impl IntoIterator<Item = SkySrQuery>,
    ) -> Vec<Result<QueryResponse, QueryError>> {
        let tickets: Vec<Ticket> =
            queries.into_iter().map(|q| self.enqueue(QueryRequest::new(q), None)).collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// Counts a request the network server shed while it sat *parked*
    /// (queue full) past its deadline — the same "expired before
    /// execution" bucket as a queue-expired shed, it just never made it
    /// into the queue.
    pub(crate) fn note_shed_parked(&self) {
        self.metrics.record_shed_deadline();
    }

    /// The shared context.
    pub fn context(&self) -> &Arc<ServiceContext> {
        &self.ctx
    }

    /// The configuration the service was built with (with `workers`
    /// resolved to the actual pool size).
    pub fn config(&self) -> ServiceConfig {
        ServiceConfig { workers: self.worker_count, ..self.config.clone() }
    }

    /// The sampled trace-span buffer. Clone the `Arc` before shutdown to
    /// drain spans after every worker has responded (how `replay
    /// --trace-out` collects a complete set).
    pub fn traces(&self) -> &Arc<TraceBuffer> {
        &self.traces
    }

    fn shutdown_in_place(&self) {
        self.queue.close();
        let handles: Vec<JoinHandle<()>> =
            self.workers.lock().expect("worker registry poisoned").drain(..).collect();
        for handle in handles {
            // Propagate worker panics loudly — except while already
            // unwinding, where a second panic would abort the process and
            // destroy the original diagnostic.
            if handle.join().is_err() && !std::thread::panicking() {
                panic!("worker panicked");
            }
        }
    }
}

impl QueryService for Service {
    fn submit(&self, request: QueryRequest) -> Ticket {
        self.enqueue(request, None)
    }

    fn submit_streaming(&self, request: QueryRequest) -> StreamTicket {
        let (tx, rx) = mpsc::channel();
        let ticket = self.enqueue(request, Some(tx));
        StreamTicket::new(rx, ticket)
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot(
            self.started.elapsed(),
            self.cache.counters(),
            self.ctx.epoch_gc_stats(),
        )
    }

    fn publish_weights(&self, deltas: &[WeightDelta]) -> EpochId {
        self.ctx.publish_weights(deltas)
    }

    /// Closes the queue, drains in-flight work and joins the workers.
    /// Idempotent — later calls (and the eventual drop) are no-ops.
    fn shutdown(&self) -> MetricsSnapshot {
        self.shutdown_in_place();
        self.metrics()
    }

    fn regions(&self) -> Vec<RegionInfo> {
        vec![RegionInfo {
            id: self.config.region,
            name: self.config.region_name.clone(),
            fingerprint: DatasetFingerprint::of(&self.ctx),
        }]
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Answers one waiter with the shared routes, recording its metrics and
/// completing its trace span. The one choke point every successful
/// response passes through — which is what makes the trace-completeness
/// invariant (exactly one span per response, rung = `Served`) structural
/// rather than aspirational.
#[allow(clippy::too_many_arguments)]
fn respond(
    metrics: &MetricsRecorder,
    traces: &TraceBuffer,
    reply: &mpsc::Sender<Result<QueryResponse, QueryError>>,
    pending: PendingSpan,
    exec: ExecTrace,
    routes: Arc<[SkylineRoute]>,
    epoch: EpochId,
    served: Served,
) {
    let latency = pending.submitted.elapsed();
    let queue_wait = pending.dequeued.saturating_duration_since(pending.submitted);
    let service = latency.saturating_sub(queue_wait);
    metrics.record(
        LatencyBreakdown { queue_wait, service, engine: exec.engine },
        routes.len(),
        served,
    );
    if traces.enabled() || pending.trace {
        let span = TraceSpan {
            request_id: pending.id,
            epoch,
            rung: Rung::of(served),
            attempts: pending.attempts,
            queue_wait,
            plan: pending.plan,
            engine: exec.engine.unwrap_or(Duration::ZERO),
            total: latency,
            queue_depth: pending.queue_depth,
            delta_index: exec.delta_index,
            repair_tier: exec.repair_tier,
            profile: exec.profile,
            skyline: routes.len(),
        };
        if pending.trace {
            traces.force(span);
        } else {
            traces.offer(span);
        }
    }
    let _ = reply.send(Ok(QueryResponse {
        routes,
        epoch,
        served,
        latency,
        request_id: pending.id,
        queue_wait,
    }));
}

/// The per-worker serving loop: **plan, then execute** — all reuse
/// policy lives in [`ReusePlanner::plan`]; this loop only walks the
/// resulting rungs. For every job, in order:
///
/// 0. **Shed.** A request whose deadline lapsed in the queue is answered
///    [`QueryError::Overloaded`] and dropped before any work runs
///    (counted `shed_deadline`, no trace span — there is no response to
///    describe).
/// 1. **Pin.** The worker refreshes its [`PinnedContext`] snapshot if the
///    context's weight epoch advanced since the previous job. The whole
///    request — planning, coalescing, search, cache fill — runs against
///    that one pinned epoch.
/// 2. **Plan.** The planner probes the cache (unified, non-counting
///    [`ResultCache::probe`]) and emits the ordered rung ladder
///    `ExactHit → Coalesce → Repair → WarmSeed → ColdSearch` with every
///    rung's raw material resolved (hit routes, repair source + shared
///    [`DeltaIndex`](skysr_graph::DeltaIndex), seed skyline +
///    provenance). Accounting (one counted lookup, lazy invalidation) is
///    part of planning.
/// 3. **ExactHit** answers immediately; the plan is complete.
/// 4. **Coalesce.** `InflightTable::begin` on the (key, epoch) pair
///    atomically either parks this request under an in-flight duplicate of
///    the same epoch (the worker moves on — the leader will answer it) or
///    elects this worker the flight's leader. Requests pinned to different
///    epochs never share a flight. A fresh leader re-probes the cache:
///    its planning probe may have raced a previous leader of the same
///    flight, which filled the cache and completed between the miss and
///    the `begin` — this re-probe is flight *mechanism*, not reuse
///    policy, so it stays here. On a hit the request's already-counted
///    miss is reclassified so the exact-counter invariants survive the
///    race. (`probe` never invalidates, so a stale repair source is
///    safe.)
/// 5. **Terminal rung.** The leader runs the planned terminal — repair
///    against the shared epoch-pair index, a warm-seeded search from the
///    planned source, or a cold search — and the executed [`Served`]
///    outcome becomes the single source of truth for the response and the
///    metrics. Search terminals run with the request's deadline armed as
///    the engine's anytime cutoff: on expiry the partial skyline comes
///    back `truncated` and is served [`Served::Approximate`] (degraded
///    mode) — never cached, and shared with coalesced followers under the
///    same Approximate label.
/// 6. **Completion.** The leader inserts the epoch-stamped result into the
///    cache *before* ending the flight — any same-epoch duplicate arriving
///    in between hits the cache, so with caching enabled a (key, epoch) can
///    never be searched twice concurrently nor re-searched after a
///    coalesced flight completes. The insert refuses to overwrite a
///    newer-epoch entry, so a flight that straddled an update cannot
///    poison the cache for post-update traffic. Then it answers itself and
///    every parked waiter with the same `Arc`'d skyline. Failures
///    propagate to all waiters (they asked the same invalid query) and are
///    never cached.
///
/// [`PinnedContext`]: crate::context::PinnedContext
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    ctx: &ServiceContext,
    queue: &ScheduledQueue<Job>,
    cache: &ResultCache,
    inflight: &InflightTable<FlightKey, Waiter>,
    metrics: &MetricsRecorder,
    traces: &TraceBuffer,
    cost: &CostModel,
    base_planner: &ReusePlanner,
) {
    let mut pinned = ctx.pin();
    // One engine scratch per worker for its whole lifetime: re-pinning an
    // epoch rebuilds the engine view but recycles the (large, already
    // paged-in) workspaces.
    let mut scratch = Some(BssrScratch::new(pinned.graph().num_vertices()));
    while let Some((job, queue_depth)) = queue.pop_with_depth() {
        let dequeued = Instant::now();
        if pinned.epoch() != ctx.current_epoch() {
            pinned = ctx.pin();
        }
        let epoch = pinned.epoch();
        let Job { id, query, options, submitted, reply, progress } = job;

        // A deadline that lapsed while the request sat in the queue is
        // shed here, *before* any work runs: executing it would burn a
        // worker on an answer nobody is waiting for, starving requests
        // that can still make theirs. Shed requests are answered with the
        // typed overload error and counted in neither `completed` nor
        // `failed` — and they get no trace span, because they produce no
        // response for a span to describe.
        let deadline_at = options.deadline.map(|d| submitted + d);
        if deadline_at.is_some_and(|at| dequeued >= at) {
            metrics.record_shed_deadline();
            let _ = reply.send(Err(QueryError::Overloaded));
            continue;
        }

        // A per-request reuse mask restricts (never widens) the service
        // strategies; planners are two Copy structs, so the rebuild is
        // free compared to a search.
        let masked;
        let planner = match options.reuse {
            Some(mask) => {
                masked = base_planner.masked(mask);
                &masked
            }
            None => base_planner,
        };

        let key = planner.key_of(&query);
        let plan_t0 = Instant::now();
        let ReusePlan { steps } = planner.plan(&query, key.as_ref(), epoch, cache, ctx);
        let mut pending = PendingSpan {
            id,
            submitted,
            dequeued,
            queue_depth,
            plan: plan_t0.elapsed(),
            attempts: Vec::with_capacity(4),
            trace: options.trace,
        };
        let mut steps = steps.into_iter();
        let mut step = steps.next().expect("plans are never empty");

        // Rung: exact hit. The executor independently re-checks the
        // entry's epoch stamp against the pinned epoch: a mismatch is
        // unreachable unless the planner's epoch filter is broken, and
        // then the stale skyline is refused, the near-miss counted for
        // the staleness gate, and the request falls through to a fresh
        // search at the pinned epoch.
        if let PlanStep::ExactHit(stamp, routes) = step {
            if stamp == epoch {
                pending.attempts.push("exact:hit");
                cost.observe(CostClass::Hit, dequeued.elapsed());
                respond(
                    metrics,
                    traces,
                    &reply.clone(),
                    pending,
                    ExecTrace::default(),
                    routes,
                    epoch,
                    Served::CacheHit,
                );
                continue;
            }
            metrics.record_stale_serve();
            pending.attempts.push("exact:stale-refused");
            step = PlanStep::ColdSearch;
        } else if planner.strategies().caching {
            pending.attempts.push("exact:miss");
        }

        // Rung: coalescing.
        let mut leader = Waiter { reply, pending };
        let mut fkey: Option<FlightKey> = None;
        if matches!(step, PlanStep::Coalesce) {
            let fk = (key.clone().expect("coalescing implies a key"), epoch);
            leader.pending.attempts.push("coalesce:join");
            match inflight.begin(fk.clone(), leader) {
                Begin::Joined => continue,
                Begin::Leader(w) => leader = w,
            }
            let probes = &mut leader.pending.attempts;
            probes.pop();
            probes.push("coalesce:lead");
            // Close the miss-then-begin window: between this request's
            // planning probe and winning the flight, a previous leader for
            // the same (key, epoch) may have filled the cache and
            // completed. Re-probe so a flight completed moments ago is
            // never re-searched; on a hit, the request's already-counted
            // miss is reclassified so the exact-counter invariants survive
            // the race.
            if planner.strategies().caching {
                if let Some((e, routes)) = cache.probe(&fk.0, epoch) {
                    if e == epoch {
                        cache.reclassify_miss_as_hit();
                        let waiters = inflight.complete(&fk);
                        leader.pending.attempts.push("exact:hit-after-flight");
                        cost.observe(CostClass::Hit, dequeued.elapsed());
                        respond(
                            metrics,
                            traces,
                            &leader.reply,
                            leader.pending,
                            ExecTrace::default(),
                            Arc::clone(&routes),
                            epoch,
                            Served::CacheHit,
                        );
                        for w in waiters {
                            respond(
                                metrics,
                                traces,
                                &w.reply,
                                w.pending,
                                ExecTrace::default(),
                                Arc::clone(&routes),
                                epoch,
                                Served::Coalesced,
                            );
                        }
                        continue;
                    }
                }
            }
            step = steps.next().expect("a coalesce rung is followed by a terminal");
            fkey = Some(fk);
        }
        // A deferred seed rung is resolved only now — by the flight
        // leader (or an uncoalesced worker) — so parked followers never
        // paid its cache probes. Probe time is plan construction, not
        // engine time.
        if matches!(step, PlanStep::ProbeSeeds) {
            let probe_t0 = Instant::now();
            step = planner.seed_step(&query, key.as_ref(), epoch, cache, ctx);
            leader.pending.plan += probe_t0.elapsed();
        }
        leader.pending.attempts.push(match &step {
            PlanStep::Repair { .. } => "repair:attempt",
            PlanStep::WarmSeed { source: SeedSource::Prefix, .. } => "seed:prefix",
            PlanStep::WarmSeed { source: SeedSource::Ancestor, .. } => "seed:ancestor",
            PlanStep::WarmSeed { source: SeedSource::Suffix, .. } => "seed:suffix",
            PlanStep::ColdSearch => "cold",
            PlanStep::ExactHit(..) | PlanStep::Coalesce | PlanStep::ProbeSeeds => {
                unreachable!("ExactHit/Coalesce/ProbeSeeds resolve before the terminal runs")
            }
        });

        // Rung: the planned terminal.
        let qctx = pinned.query_context();
        let mut engine = Bssr::with_scratch(
            &qctx,
            planner.engine(),
            scratch.take().expect("scratch is recycled"),
        );
        // Degraded mode: arm the engine's anytime cutoff only for the
        // search terminals. A search that runs out of deadline returns its
        // partial skyline flagged `truncated` and is served Approximate —
        // degraded but honest. Repairs stay unarmed: they promise exact
        // score-equivalence, and their warm-re-search fallback disarms an
        // inherited deadline itself (see `bssr::repair`).
        if matches!(step, PlanStep::WarmSeed { .. } | PlanStep::ColdSearch) {
            engine.set_deadline(deadline_at);
        }
        let engine_t0 = Instant::now();
        let mut exec = ExecTrace::default();
        let outcome = match step {
            PlanStep::Repair { cached, index } => {
                exec.delta_index = Some((index.delta().from_epoch(), index.delta().to_epoch()));
                engine.repair(&query, &cached, &index, ctx.landmarks()).map(|r| {
                    let served = Served::Repaired {
                        fallback: !r.repair.repaired_in_place(),
                        routes_untouched: r.repair.routes_untouched,
                        routes_rescored: r.repair.routes_rescored,
                    };
                    exec.repair_tier = Some(r.repair.outcome.label());
                    exec.profile = r.stats.profile();
                    (r.routes, served)
                })
            }
            PlanStep::WarmSeed { source, seeds } => {
                // Anytime streaming: with a progress channel attached, run
                // the observed engine variant, which reports each
                // provisional Pareto point as the search proves it. A
                // receiver that hung up (deadline cutoff) just makes the
                // sends no-ops.
                let run = match (&progress, source) {
                    (Some(tx), SeedSource::Suffix) => {
                        let mut sink = |r: &SkylineRoute| {
                            let _ = tx.send(r.clone());
                        };
                        engine.run_with_suffix_seeds_observed(&query, &seeds, &mut sink)
                    }
                    (Some(tx), SeedSource::Prefix | SeedSource::Ancestor) => {
                        let mut sink = |r: &SkylineRoute| {
                            let _ = tx.send(r.clone());
                        };
                        engine.run_with_seeds_observed(&query, &seeds, &mut sink)
                    }
                    (None, SeedSource::Suffix) => engine.run_with_suffix_seeds(&query, &seeds),
                    (None, SeedSource::Prefix | SeedSource::Ancestor) => {
                        engine.run_with_seeds(&query, &seeds)
                    }
                };
                run.map(|result| {
                    // A seed probe only helps when it actually seeded
                    // routes (an unreachable position can leave it dry).
                    let seeded = (result.stats.warm_seed_routes > 0).then_some(source);
                    exec.profile = result.stats.profile();
                    let served = if result.truncated {
                        Served::Approximate
                    } else {
                        Served::Search { seeded }
                    };
                    (result.routes, served)
                })
            }
            PlanStep::ColdSearch => {
                let run = match &progress {
                    Some(tx) => {
                        let mut sink = |r: &SkylineRoute| {
                            let _ = tx.send(r.clone());
                        };
                        engine.run_observed(&query, &mut sink)
                    }
                    None => engine.run(&query),
                };
                run.map(|r| {
                    exec.profile = r.stats.profile();
                    let served = if r.truncated {
                        Served::Approximate
                    } else {
                        Served::Search { seeded: None }
                    };
                    (r.routes, served)
                })
            }
            PlanStep::ExactHit(..) | PlanStep::Coalesce | PlanStep::ProbeSeeds => {
                unreachable!("ExactHit/Coalesce/ProbeSeeds resolve before the terminal runs")
            }
        };
        exec.engine = Some(engine_t0.elapsed());
        scratch = Some(engine.into_scratch());
        match outcome {
            Ok((routes, served)) => {
                let routes: Arc<[SkylineRoute]> = routes.into();
                let truncated = served == Served::Approximate;
                // A truncated partial is NEVER cached: it is exact only
                // in the weak dominated-or-equal sense, and a later
                // deadline-less request must not inherit it as "the"
                // answer.
                if planner.strategies().caching && !truncated {
                    cache.insert(key.expect("caching implies a key"), epoch, Arc::clone(&routes));
                }
                let waiters = match &fkey {
                    Some(fk) => inflight.complete(fk),
                    None => Vec::new(),
                };
                cost.observe(cost_class_of(served), dequeued.elapsed());
                respond(
                    metrics,
                    traces,
                    &leader.reply,
                    leader.pending,
                    exec,
                    Arc::clone(&routes),
                    epoch,
                    served,
                );
                for w in waiters {
                    // Followers of a truncated flight share the partial
                    // answer, so they share its Approximate label too —
                    // coalescing must never launder the degraded flag
                    // into an "exact" Coalesced response.
                    let w_served = if truncated { Served::Approximate } else { Served::Coalesced };
                    respond(
                        metrics,
                        traces,
                        &w.reply,
                        w.pending,
                        ExecTrace::default(),
                        Arc::clone(&routes),
                        epoch,
                        w_served,
                    );
                }
            }
            Err(e) => {
                let waiters = match &fkey {
                    Some(fk) => inflight.complete(fk),
                    None => Vec::new(),
                };
                metrics.record_failure();
                let _ = leader.reply.send(Err(e.clone()));
                for w in waiters {
                    metrics.record_failure();
                    let _ = w.reply.send(Err(e.clone()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysr_core::paper_example::PaperExample;
    use skysr_graph::{VertexId, WeightDelta};

    fn service(workers: usize, cache: usize) -> (PaperExample, Service) {
        let ex = PaperExample::new();
        let ctx =
            Arc::new(ServiceContext::new(ex.graph.clone(), ex.forest.clone(), ex.pois.clone()));
        let cfg = ServiceConfig { workers, cache_capacity: cache, ..ServiceConfig::default() };
        (ex, Service::new(ctx, cfg))
    }

    #[test]
    fn answers_match_the_paper_example() {
        let (ex, service) = service(2, 16);
        let response = service.submit_query(ex.query()).wait().unwrap();
        assert_eq!(response.routes.len(), 2);
        assert!(!response.cache_hit());
        assert_eq!(response.epoch, EpochId::BASE);
        assert_eq!(response.routes[0].pois, vec![VertexId(6), VertexId(9), VertexId(8)]);
    }

    #[test]
    fn repeat_queries_hit_the_cache_with_identical_results() {
        let (ex, service) = service(1, 16);
        let cold = service.submit_query(ex.query()).wait().unwrap();
        let warm = service.submit_query(ex.query()).wait().unwrap();
        assert!(!cold.cache_hit());
        assert!(warm.cache_hit());
        assert_eq!(cold.routes, warm.routes);
        let m = service.metrics();
        assert_eq!(m.completed, 2);
        assert_eq!(m.executed, 1);
        assert_eq!(m.cache.hits, 1);
        assert_eq!(m.stale_served, 0);
    }

    #[test]
    fn cache_capacity_zero_disables_caching() {
        let (ex, service) = service(1, 0);
        service.submit_query(ex.query()).wait().unwrap();
        let again = service.submit_query(ex.query()).wait().unwrap();
        assert!(!again.cache_hit());
        assert_eq!(service.metrics().executed, 2);
    }

    #[test]
    fn invalid_queries_report_errors_not_hangs() {
        let (_ex, service) = service(2, 16);
        let bad = SkySrQuery::new(VertexId(9_999), [skysr_category::CategoryId(0)]);
        let err = service.submit_query(bad).wait().unwrap_err();
        assert_eq!(err, QueryError::UnknownStart(VertexId(9_999)));
        assert_eq!(service.metrics().failed, 1);
    }

    #[test]
    fn batches_larger_than_the_queue_complete() {
        let (ex, _) = service(1, 0);
        let ctx =
            Arc::new(ServiceContext::new(ex.graph.clone(), ex.forest.clone(), ex.pois.clone()));
        let svc = Service::new(
            ctx,
            ServiceConfig { workers: 2, queue_capacity: 2, ..ServiceConfig::default() },
        );
        let outcomes = svc.run_batch((0..64).map(|_| ex.query()));
        assert_eq!(outcomes.len(), 64);
        for o in outcomes {
            assert_eq!(o.unwrap().routes.len(), 2);
        }
        assert_eq!(svc.shutdown().completed, 64);
    }

    #[test]
    fn weight_update_invalidates_cached_answers() {
        // Cache the paper-example answer, triple the weight of the route's
        // first leg, and ask again: the service must re-search at the new
        // epoch (the old entry is lazily invalidated, never served) and the
        // two answers must carry their own epochs.
        let (ex, service) = service(1, 16);
        let before = service.submit_query(ex.query()).wait().unwrap();
        assert_eq!(before.epoch, EpochId::BASE);
        let (from, to, w) = service.context().graph().arc(0);
        let e1 = service.context().publish_weights(&[WeightDelta::new(from, to, w.get() * 3.0)]);
        let after = service.submit_query(ex.query()).wait().unwrap();
        assert_eq!(after.epoch, e1);
        assert!(!after.cache_hit(), "the pre-update entry must not answer");
        let m = service.metrics();
        assert_eq!(m.executed, 2, "the post-update request re-searched");
        assert_eq!(m.cache.invalidations, 1, "the stale entry was dropped on lookup");
        assert_eq!(m.stale_served, 0);
        // The post-update entry serves post-update traffic.
        let again = service.submit_query(ex.query()).wait().unwrap();
        assert!(again.cache_hit());
        assert_eq!(again.epoch, e1);
        assert_eq!(again.routes, after.routes);
    }

    #[test]
    fn repair_promotes_stale_entries_in_place_and_stays_exact() {
        // With repair on, an epoch bump does not invalidate the cached
        // skyline: the next request repairs it against the exact delta,
        // promotes it to the new epoch, and the answer still matches a
        // fresh search at that epoch.
        let ex = PaperExample::new();
        let ctx =
            Arc::new(ServiceContext::new(ex.graph.clone(), ex.forest.clone(), ex.pois.clone()));
        let service = Service::new(
            Arc::clone(&ctx),
            ServiceConfig { workers: 1, repair: true, ..ServiceConfig::default() },
        );
        let before = service.submit_query(ex.query()).wait().unwrap();
        assert!(!before.repaired());
        // Touch an edge *on* the paper skyline's first route: repair must
        // detect the change and re-derive an exact answer.
        let (from, to, w) = ctx.graph().arc(0);
        let e1 = ctx.publish_weights(&[WeightDelta::new(from, to, w.get() * 3.0)]);
        let after = service.submit_query(ex.query()).wait().unwrap();
        assert_eq!(after.epoch, e1);
        assert!(after.repaired(), "the stale entry was repaired, not recomputed blindly");
        assert!(!after.cache_hit());
        {
            use skysr_core::route::equivalent_skylines;
            let pinned = ctx.pin_at(e1).unwrap();
            let qctx = pinned.query_context();
            let oracle = skysr_core::bssr::Bssr::new(&qctx).run(&ex.query()).unwrap().routes;
            assert!(equivalent_skylines(&after.routes, &oracle), "repair is oracle-exact");
        }
        // The promoted entry now serves the new epoch from cache.
        let again = service.submit_query(ex.query()).wait().unwrap();
        assert!(again.cache_hit());
        assert_eq!(again.epoch, e1);
        let m = service.metrics();
        assert_eq!(m.repairs + m.repair_fallbacks, 1, "exactly one repair attempt ran");
        assert_eq!(m.cache.invalidations, 0, "repair replaces lazy invalidation");
        assert_eq!(m.stale_served, 0);
        assert_eq!(m.executed, 2, "initial search + the repair attempt");
    }

    #[test]
    fn repair_with_distant_updates_promotes_without_searching() {
        // An update far beyond the query's skyline radius must resolve as
        // an in-place repair (untouched tier) with byte-identical routes.
        let ex = PaperExample::new();
        let ctx =
            Arc::new(ServiceContext::new(ex.graph.clone(), ex.forest.clone(), ex.pois.clone()));
        let service = Service::new(
            Arc::clone(&ctx),
            ServiceConfig { workers: 1, repair: true, ..ServiceConfig::default() },
        );
        let before = service.submit_query(ex.query()).wait().unwrap();
        // Find an edge whose endpoints are farther from the start than the
        // longest skyline route could ever reach, by inflating weights of
        // an edge incident to no skyline route and far from vq... the
        // paper graph is small, so instead raise a far edge massively and
        // accept either outcome class — but the answer must stay exact and
        // the attempt must count.
        let (from, to, w) = ctx.graph().arc(ctx.graph().num_arcs() - 1);
        let e1 = ctx.publish_weights(&[WeightDelta::new(from, to, w.get() * 1.01)]);
        let after = service.submit_query(ex.query()).wait().unwrap();
        assert_eq!(after.epoch, e1);
        assert!(after.repaired());
        let pinned = ctx.pin_at(e1).unwrap();
        let qctx = pinned.query_context();
        let oracle = skysr_core::bssr::Bssr::new(&qctx).run(&ex.query()).unwrap().routes;
        use skysr_core::route::equivalent_skylines;
        assert!(equivalent_skylines(&after.routes, &oracle));
        assert_eq!(before.routes.len(), after.routes.len());
        let m = service.metrics();
        assert_eq!(m.repairs + m.repair_fallbacks, 1);
        assert_eq!(m.stale_served, 0);
    }
}
