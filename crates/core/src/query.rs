//! Query specification: start point + category sequence.

use skysr_category::{CategoryId, Requirement};
use skysr_graph::VertexId;

/// One position of the category sequence.
#[derive(Clone, Debug, PartialEq)]
pub enum PositionSpec {
    /// A plain category (Definition 3.1) — the fast path used by all
    /// experiments.
    Category(CategoryId),
    /// A complex requirement (§6): conjunction / disjunction / negation.
    Requirement(Requirement),
}

impl From<CategoryId> for PositionSpec {
    fn from(c: CategoryId) -> PositionSpec {
        PositionSpec::Category(c)
    }
}

impl From<Requirement> for PositionSpec {
    fn from(r: Requirement) -> PositionSpec {
        PositionSpec::Requirement(r)
    }
}

/// A SkySR query: "starting from `start`, visit something matching each
/// position of `sequence`, in order" (Definition 4.2).
#[derive(Clone, Debug, PartialEq)]
pub struct SkySrQuery {
    /// Start vertex `v_q`.
    pub start: VertexId,
    /// Category sequence `S_q`.
    pub sequence: Vec<PositionSpec>,
}

impl SkySrQuery {
    /// Query over plain categories.
    pub fn new(start: VertexId, categories: impl IntoIterator<Item = CategoryId>) -> SkySrQuery {
        SkySrQuery { start, sequence: categories.into_iter().map(PositionSpec::Category).collect() }
    }

    /// Query over arbitrary position specs.
    pub fn with_positions(
        start: VertexId,
        positions: impl IntoIterator<Item = PositionSpec>,
    ) -> SkySrQuery {
        SkySrQuery { start, sequence: positions.into_iter().collect() }
    }

    /// |S_q|.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// Whether the sequence is empty (an invalid query).
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let q = SkySrQuery::new(VertexId(3), [CategoryId(1), CategoryId(2)]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.start, VertexId(3));
        assert!(!q.is_empty());
        assert!(matches!(q.sequence[0], PositionSpec::Category(CategoryId(1))));
    }

    #[test]
    fn from_impls() {
        let p: PositionSpec = CategoryId(4).into();
        assert_eq!(p, PositionSpec::Category(CategoryId(4)));
        let r: PositionSpec = Requirement::category(CategoryId(4)).into();
        assert!(matches!(r, PositionSpec::Requirement(_)));
    }
}
