//! `skysr-service` — a concurrent in-process SkySR query engine.
//!
//! The algorithm crates answer one query on one thread against a borrowed
//! [`QueryContext`](skysr_core::QueryContext). This crate adds the serving
//! layer the ROADMAP's scaling work builds on: SkySR's inputs (road
//! network, category forest, PoI table, similarity measure) are immutable
//! after construction, so a single owned [`ServiceContext`] can be shared
//! by `Arc` across any number of worker threads, each running the
//! unchanged [`Bssr`](skysr_core::bssr::Bssr) engine with its own reusable
//! scratch state.
//!
//! Components:
//!
//! * [`context::ServiceContext`] — the owned, `Arc`-shared counterpart of
//!   the borrowed `QueryContext`;
//! * [`pool`] — a std-only worker pool fed by a bounded submission queue;
//!   when the queue is full, [`QueryService::submit`] blocks (backpressure)
//!   instead of letting work pile up unboundedly;
//! * [`cache`] — a cross-query LRU result cache keyed by the canonicalized
//!   query (start vertex + category sequence + engine configuration), with
//!   hit/miss/eviction counters;
//! * [`metrics`] — aggregate counters and recorded per-query latencies,
//!   snapshotted into throughput / percentile reports;
//! * [`replay`] — a workload-replay driver: a Zipf-skewed stream over a
//!   pool of distinct generated queries, executed across N workers and
//!   summarised in a [`replay::ReplayReport`]. The CLI's `replay`
//!   subcommand is a thin wrapper around it.
//!
//! ## Quickstart
//!
//! ```
//! use skysr_data::dataset::{DatasetSpec, Preset};
//! use skysr_data::workload::WorkloadSpec;
//! use skysr_service::{QueryService, ServiceConfig, ServiceContext};
//! use std::sync::Arc;
//!
//! let dataset = DatasetSpec::preset(Preset::CalSmall).scale(0.05).seed(7).generate();
//! let workload = WorkloadSpec::new(2).queries(8).seed(11).generate(&dataset);
//!
//! let ctx = Arc::new(ServiceContext::from_dataset(dataset));
//! let service = QueryService::new(ctx, ServiceConfig { workers: 4, ..Default::default() });
//!
//! for outcome in service.run_batch(workload.queries.iter().cloned()) {
//!     let response = outcome.expect("generated queries are valid");
//!     assert!(!response.routes.is_empty());
//! }
//! let m = service.metrics();
//! assert_eq!(m.completed, 8);
//! ```

pub mod cache;
pub mod context;
pub mod metrics;
pub mod pool;
pub mod replay;
mod service;

pub use cache::{QueryKey, ResultCache};
pub use context::ServiceContext;
pub use metrics::MetricsSnapshot;
pub use replay::{ReplayReport, ReplaySpec};
pub use service::{QueryResponse, QueryService, ServiceConfig, Ticket};
