//! `skysr-service` — a concurrent in-process SkySR query engine.
//!
//! The algorithm crates answer one query on one thread against a borrowed
//! [`QueryContext`](skysr_core::QueryContext). This crate adds the serving
//! layer the ROADMAP's scaling work builds on. Category forest, PoI table
//! and similarity measure are immutable after construction; the road
//! network's *edge weights* are dynamic (live traffic), managed as
//! epoch-versioned copy-on-write overlays
//! ([`skysr_graph::epoch`]). A single owned [`ServiceContext`] is shared
//! by `Arc` across any number of worker threads; each worker pins a
//! consistent snapshot ([`context::PinnedContext`]) per request and runs
//! the unchanged [`Bssr`](skysr_core::bssr::Bssr) engine on it with
//! recycled scratch state.
//!
//! Components:
//!
//! * [`context::ServiceContext`] — the owned, `Arc`-shared counterpart of
//!   the borrowed `QueryContext`, with
//!   [`publish_weights`](ServiceContext::publish_weights) /
//!   [`pin`](ServiceContext::pin) /
//!   [`pin_at`](ServiceContext::pin_at) for dynamic weights;
//! * [`pool`] — a std-only worker pool fed by a bounded submission queue
//!   (when the queue is full, [`QueryService::submit`] blocks —
//!   backpressure), plus the singleflight [`pool::InflightTable`] behind
//!   request coalescing (keyed per canonical query *and* weight epoch);
//! * [`cache`] — a cross-query LRU result cache keyed by the *canonical*
//!   query (start vertex + canonical form of every position + engine
//!   configuration; complex requirements canonicalize too), with entries
//!   stamped by weight epoch (lazy invalidation; stale entries are never
//!   served) and exact hit/miss/insertion/eviction/invalidation counters;
//! * [`metrics`] — aggregate counters (searches, coalesced hits,
//!   warm-started searches, stale serves) and recorded per-query
//!   latencies, snapshotted into throughput / percentile reports;
//! * [`replay`] — a workload-replay driver with three stream shapes
//!   (Zipf, duplicate bursts, prefix chains), optional open-loop arrivals
//!   and mid-stream weight-update bursts, and epoch-aware verification
//!   against sequential execution, summarised in a
//!   [`replay::ReplayReport`]. The CLI's `replay` subcommand is a thin
//!   wrapper around it;
//! * [`mod@bench`] — the bench-smoke harness comparing the reuse layer to
//!   the exact-match baseline (including a dynamic, update-heavy cell, a
//!   repair-vs-invalidate cell, a tracing-overhead cell and a
//!   2×-capacity overload cell) and
//!   serializing the `BENCH_pr.json` CI artifact;
//! * [`shard`] — multi-tenant scale-out: a [`ShardRegistry`] builds one
//!   complete share-nothing serving stack per region and seals into a
//!   [`Router`] implementing [`QueryService`] — explicit
//!   [`QueryRequest::region`] addressing with deterministic start-vertex
//!   fallback for legacy callers, per-shard metrics under the merged
//!   aggregate, and shard-local weight updates/invalidation/overload by
//!   construction;
//! * [`telemetry`] — per-request [`TraceSpan`]s (queue → plan → engine
//!   stage timings, rung-ladder probe trail, engine-work profile) retained
//!   in a sampled bounded [`TraceBuffer`], log-linear mergeable latency
//!   [`Histogram`]s recorded per rung and for the queue-wait/engine split,
//!   and the `--trace-out` (JSON lines) / `--metrics-out` (Prometheus
//!   text) exporters ([`telemetry::export`]). Full tracing enforces the
//!   trace-completeness invariant: exactly one span per response, with
//!   `span.rung` matching the response's `Served` classification.
//!
//! Between a request and a BSSR search sits the **reuse planner**
//! ([`plan`]): for each dequeued job it probes the cache once through the
//! unified non-counting [`ResultCache::probe`] and emits an ordered
//! [`plan::ReusePlan`] over the rung ladder `ExactHit → Coalesce →
//! Repair → WarmSeed{prefix|ancestor|suffix} → ColdSearch`, which the
//! worker loop executes mechanically. The rungs: the result cache,
//! request coalescing (concurrent duplicates park behind one in-flight
//! computation and share its `Arc`'d skyline — the leader fills the cache
//! *before* ending the flight, so a key is never searched twice
//! concurrently), and semantic reuse (a cached skyline for the query's
//! *prefix* ⟨c₁,…,c_{k−1}⟩, an *ancestor-category* variant, or its
//! *suffix* ⟨c₂,…,c_k⟩ warm-starts the search via
//! [`skysr_core::bssr::warm`], keeping results exact while tightening the
//! pruning thresholds). All of these are
//! epoch-exact: a cached skyline, an in-flight computation or a warm-start
//! seed is reused only by requests pinned to the same weight epoch —
//! except where *incremental repair* ([`ServiceConfig::repair`]) proves a
//! cross-epoch reuse sound: a cached skyline at an older epoch is
//! repaired against the exact weight delta
//! ([`skysr_core::bssr::repair`]) and promoted to the new epoch in place,
//! and a stale prefix skyline provably untouched by the delta still seeds
//! a warm start. The weight-epoch history itself can be bounded
//! ([`ServiceContext::set_epoch_retention`]): old overlays are compacted
//! once no reader leases them, so long-running services under churn hold
//! at most K epochs.
//!
//! ## Quickstart
//!
//! ```
//! use skysr_data::dataset::{DatasetSpec, Preset};
//! use skysr_data::workload::WorkloadSpec;
//! use skysr_service::{QueryService, Service, ServiceConfig, ServiceContext};
//! use std::sync::Arc;
//!
//! let dataset = DatasetSpec::preset(Preset::CalSmall).scale(0.05).seed(7).generate();
//! let workload = WorkloadSpec::new(2).queries(8).seed(11).generate(&dataset);
//!
//! let ctx = Arc::new(ServiceContext::from_dataset(dataset));
//! let service = Service::new(ctx, ServiceConfig { workers: 4, ..Default::default() });
//!
//! for outcome in service.run_batch(workload.queries.iter().cloned()) {
//!     let response = outcome.expect("generated queries are valid");
//!     assert!(!response.routes.is_empty());
//! }
//! let m = service.metrics();
//! assert_eq!(m.completed, 8);
//! ```
//!
//! The same engine serves over the network: [`net`] adds the `skysr-d`
//! daemon's event loop ([`net::Server`]), the length-prefixed wire
//! protocol ([`net::wire`]) and the [`RemoteService`] client — which
//! implements the same [`QueryService`] trait as [`Service`], so every
//! driver in this crate runs against either transport.
//!
//! Under overload the service degrades deliberately instead of
//! collapsing: requests may carry deadlines
//! ([`QueryRequest::deadline`]), the submission queue schedules by
//! planner cost band and deadline with an anti-starvation aging bound
//! ([`pool::ScheduledQueue`]), an admission gate
//! ([`ServiceConfig::admission`]) refuses provably-unmeetable deadlines
//! up front, expired-in-queue work is shed un-executed, and a search
//! that outlives its deadline serves a *valid* partial skyline flagged
//! approximate — never cached, never wrong.
//!
//! The prose companions to this API documentation live at the
//! repository root: `docs/ARCHITECTURE.md` (crate map, rung ladder,
//! scheduling, epoch lifecycle, wire protocol) and `docs/OPERATIONS.md`
//! (running `skysr-d`, tuning knobs, counter taxonomy, capacity
//! planning).

pub mod bench;
pub mod cache;
pub mod context;
pub mod metrics;
pub mod net;
pub mod plan;
pub mod pool;
pub mod replay;
mod service;
pub mod shard;
pub mod telemetry;

pub use bench::{BenchReport, BenchSpec};
pub use cache::{CacheCounters, QueryKey, ResultCache};
pub use context::ServiceContext;
pub use metrics::{LatencyBreakdown, MetricsSnapshot, Served};
pub use net::{ProtocolError, RemoteService, ServeBackend, Server, ServerConfig};
pub use plan::{PlanStep, ReusePlan, ReusePlanner, ReuseStrategies, SeedSource};
pub use replay::{ReplayReport, ReplaySpec, ShardReplay, ShardedReplayReport, StreamPattern};
pub use service::{
    AnytimeResponse, QueryRequest, QueryResponse, QueryService, RequestOptions, Service,
    ServiceConfig, StreamTicket, Ticket,
};
pub use shard::{RegionId, RegionInfo, RegionService, Router, ShardRegistry};
pub use telemetry::{
    Histogram, HistogramSnapshot, Rung, RungSummary, TelemetryConfig, TraceBuffer, TraceSpan,
};
