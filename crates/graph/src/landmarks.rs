//! Landmark (ALT) distance oracle — the preprocessing direction the paper
//! leaves as future work (§9: "we have not used any preprocessing
//! techniques such as indexing; we plan to propose a suitable
//! preprocessing method").
//!
//! A small set of landmarks is chosen by farthest-point sampling; each
//! stores its distance to every vertex. The triangle inequality then gives
//! an admissible, consistent lower bound
//! `h(u, t) = max_ℓ |d(ℓ, u) − d(ℓ, t)|`, usable both as a goal-directed
//! A\* potential for point-to-point queries (the destination variant's
//! final legs) and as a cheap feasibility filter ("can this PoI possibly
//! be within the threshold radius?").
//!
//! Restricted to undirected graphs (one distance array per landmark
//! suffices); `build` asserts this.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::csr::RoadNetwork;
use crate::dijkstra::{dijkstra, DijkstraWorkspace};
use crate::stats::SearchStats;
use crate::versioned::VersionedArray;
use crate::weight::Cost;
use crate::VertexId;

/// A landmark-based lower-bound oracle.
pub struct Landmarks {
    landmarks: Vec<VertexId>,
    /// `dist[l][v]` = shortest distance from landmark `l` to `v`
    /// (`f64::INFINITY` when unreachable).
    dist: Vec<Vec<f64>>,
}

impl Landmarks {
    /// Builds `count` landmarks by farthest-point sampling, seeded at
    /// `seed_vertex`. Costs one full Dijkstra per landmark.
    ///
    /// # Panics
    /// If the graph is directed or has no vertices, or `count == 0`.
    pub fn build(graph: &RoadNetwork, count: usize, seed_vertex: VertexId) -> Landmarks {
        assert!(!graph.is_directed(), "ALT oracle requires an undirected graph");
        assert!(graph.num_vertices() > 0, "empty graph");
        assert!(count >= 1, "need at least one landmark");
        let mut ws = DijkstraWorkspace::new(graph.num_vertices());
        let mut landmarks = Vec::with_capacity(count);
        let mut dist: Vec<Vec<f64>> = Vec::with_capacity(count);
        // min over chosen landmarks of d(l, v) — drives farthest sampling.
        let mut closest = vec![f64::INFINITY; graph.num_vertices()];
        let mut next = seed_vertex;
        for _ in 0..count {
            landmarks.push(next);
            dijkstra(graph, &mut ws, next);
            let row: Vec<f64> = (0..graph.num_vertices())
                .map(|i| ws.distance(VertexId(i as u32)).map_or(f64::INFINITY, |c| c.get()))
                .collect();
            for (c, &d) in closest.iter_mut().zip(&row) {
                if d < *c {
                    *c = d;
                }
            }
            dist.push(row);
            // Farthest reachable vertex from the chosen set becomes the
            // next landmark.
            let far = closest
                .iter()
                .enumerate()
                .filter(|(_, d)| d.is_finite())
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| VertexId(i as u32));
            match far {
                Some(v) if !landmarks.contains(&v) => next = v,
                _ => break, // graph smaller than requested landmark count
            }
        }
        Landmarks { landmarks, dist }
    }

    /// The chosen landmark vertices.
    pub fn landmarks(&self) -> &[VertexId] {
        &self.landmarks
    }

    /// Number of landmarks actually built (may be below the requested
    /// count on graphs smaller than it).
    pub fn num_landmarks(&self) -> usize {
        self.landmarks.len()
    }

    /// Distance from landmark `l` (an index into [`Self::landmarks`]) to
    /// `v` — `f64::INFINITY` when unreachable. The raw material for
    /// precomputed bound structures (e.g. the per-epoch-pair
    /// `DeltaIndex`), which fold many per-vertex probes into one interval
    /// per landmark.
    #[inline]
    pub fn distance(&self, l: usize, v: VertexId) -> f64 {
        self.dist[l][v.index()]
    }

    /// Triangle-inequality lower bound on `d(u, v)`.
    pub fn lower_bound(&self, u: VertexId, v: VertexId) -> Cost {
        let mut best = 0.0f64;
        for row in &self.dist {
            let (du, dv) = (row[u.index()], row[v.index()]);
            if du.is_finite() && dv.is_finite() {
                let b = (du - dv).abs();
                if b > best {
                    best = b;
                }
            }
        }
        Cost::new(best)
    }

    /// Goal-directed point-to-point shortest path (A\* with the landmark
    /// potential). Returns the exact distance, or `None` if unreachable.
    pub fn astar(
        &self,
        graph: &RoadNetwork,
        source: VertexId,
        target: VertexId,
    ) -> (Option<Cost>, SearchStats) {
        let n = graph.num_vertices();
        let mut g_score: VersionedArray<f64> = VersionedArray::new(n);
        let mut closed: VersionedArray<bool> = VersionedArray::new(n);
        let mut heap: BinaryHeap<Reverse<(Cost, VertexId)>> = BinaryHeap::new();
        let mut stats = SearchStats::default();
        g_score.set(source.index(), 0.0);
        heap.push(Reverse((self.lower_bound(source, target), source)));
        stats.pushed += 1;
        while let Some(Reverse((_, u))) = heap.pop() {
            if closed.get(u.index()).unwrap_or(false) {
                continue;
            }
            closed.set(u.index(), true);
            stats.settled += 1;
            let gu = g_score.get(u.index()).expect("queued vertices have g-scores");
            if u == target {
                return (Some(Cost::new(gu)), stats);
            }
            for (v, w) in graph.neighbors(u) {
                stats.relaxed += 1;
                stats.weight_sum += w.get();
                if closed.get(v.index()).unwrap_or(false) {
                    continue;
                }
                let ng = gu + w.get();
                let slot = g_score.get_or_insert(v.index(), f64::INFINITY);
                if ng < *slot {
                    *slot = ng;
                    let f = Cost::new(ng) + self.lower_bound(v, target);
                    heap.push(Reverse((f, v)));
                    stats.pushed += 1;
                }
            }
        }
        (None, stats)
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.dist.iter().map(|r| r.len() * std::mem::size_of::<f64>()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::dijkstra::shortest_distance;

    fn grid(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let vs: Vec<VertexId> = (0..n * n).map(|_| b.add_vertex()).collect();
        for r in 0..n {
            for c in 0..n {
                let i = r * n + c;
                if c + 1 < n {
                    b.add_edge(vs[i], vs[i + 1], 1.0 + ((i * 7) % 3) as f64);
                }
                if r + 1 < n {
                    b.add_edge(vs[i], vs[i + n], 1.0 + ((i * 13) % 5) as f64);
                }
            }
        }
        b.build()
    }

    #[test]
    fn lower_bound_is_admissible() {
        let g = grid(6);
        let lm = Landmarks::build(&g, 4, VertexId(0));
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        for u in [0u32, 5, 17, 35] {
            for v in [0u32, 3, 20, 30] {
                let exact = shortest_distance(&g, &mut ws, VertexId(u), VertexId(v)).unwrap();
                let lb = lm.lower_bound(VertexId(u), VertexId(v));
                assert!(lb <= exact + Cost::new(1e-9), "lb {lb:?} > exact {exact:?}");
            }
        }
    }

    #[test]
    fn lower_bound_exact_for_landmark_pairs() {
        let g = grid(5);
        let lm = Landmarks::build(&g, 3, VertexId(0));
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        // For u = landmark, the bound |d(l,l) - d(l,v)| = d(l,v) is exact.
        let l = lm.landmarks()[0];
        for v in g.vertices() {
            let exact = shortest_distance(&g, &mut ws, l, v).unwrap();
            assert_eq!(lm.lower_bound(l, v), exact);
        }
    }

    #[test]
    fn astar_matches_dijkstra() {
        let g = grid(7);
        let lm = Landmarks::build(&g, 5, VertexId(0));
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        for (s, t) in [(0u32, 48u32), (3, 44), (21, 27), (10, 10)] {
            let exact = shortest_distance(&g, &mut ws, VertexId(s), VertexId(t))
                .or(Some(Cost::ZERO).filter(|_| s == t));
            let (got, _) = lm.astar(&g, VertexId(s), VertexId(t));
            assert_eq!(got, exact, "{s} -> {t}");
        }
    }

    #[test]
    fn astar_settles_fewer_vertices_than_dijkstra() {
        let g = grid(12);
        let lm = Landmarks::build(&g, 6, VertexId(0));
        // Corner-to-adjacent query: goal direction should pay off.
        let (d, astar_stats) = lm.astar(&g, VertexId(0), VertexId(13));
        assert!(d.is_some());
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        let mut settled = 0u64;
        crate::dijkstra::dijkstra_with(&g, &mut ws, &[(VertexId(0), Cost::ZERO)], |v, _| {
            settled += 1;
            if v == VertexId(13) {
                crate::dijkstra::Settle::Stop
            } else {
                crate::dijkstra::Settle::Continue
            }
        });
        assert!(
            astar_stats.settled <= settled,
            "A* settled {} vs Dijkstra {}",
            astar_stats.settled,
            settled
        );
    }

    #[test]
    fn unreachable_target_returns_none() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex();
        let v1 = b.add_vertex();
        let _v2 = b.add_vertex(); // isolated
        b.add_edge(v0, v1, 1.0);
        let g = b.build();
        let lm = Landmarks::build(&g, 2, v0);
        let (d, _) = lm.astar(&g, v0, VertexId(2));
        assert_eq!(d, None);
        assert_eq!(lm.lower_bound(v0, VertexId(2)), Cost::ZERO);
    }

    #[test]
    fn landmarks_are_distinct_and_spread() {
        let g = grid(8);
        let lm = Landmarks::build(&g, 4, VertexId(0));
        let mut ls = lm.landmarks().to_vec();
        ls.sort_unstable();
        ls.dedup();
        assert_eq!(ls.len(), 4, "landmarks must be distinct");
        assert!(lm.heap_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "undirected")]
    fn directed_graph_rejected() {
        let mut b = GraphBuilder::directed();
        let v0 = b.add_vertex();
        let v1 = b.add_vertex();
        b.add_edge(v0, v1, 1.0);
        let g = b.build();
        Landmarks::build(&g, 1, v0);
    }
}
