//! Incremental construction of [`RoadNetwork`]s.
//!
//! The builder accepts vertices (optionally with coordinates) and weighted
//! edges, supports splitting an edge at an interior point (how PoIs get
//! embedded "on the closest edge", §7.1), and finalises into the immutable
//! CSR representation.

use crate::csr::RoadNetwork;
use crate::geometry::GeoPoint;
use crate::VertexId;

/// One input edge prior to CSR packing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InputEdge {
    /// Tail vertex.
    pub from: VertexId,
    /// Head vertex.
    pub to: VertexId,
    /// Non-negative weight.
    pub weight: f64,
}

/// Mutable builder for [`RoadNetwork`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    coords: Vec<Option<GeoPoint>>,
    edges: Vec<InputEdge>,
    directed: bool,
}

impl GraphBuilder {
    /// New empty undirected builder.
    pub fn new() -> GraphBuilder {
        GraphBuilder::default()
    }

    /// New builder producing a directed graph (§6 "Directed graphs").
    pub fn directed() -> GraphBuilder {
        GraphBuilder { directed: true, ..GraphBuilder::default() }
    }

    /// Whether the resulting graph is directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.coords.len()
    }

    /// Number of input edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a vertex without coordinates; returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        self.coords.push(None);
        VertexId((self.coords.len() - 1) as u32)
    }

    /// Adds a vertex with coordinates; returns its id.
    pub fn add_vertex_at(&mut self, p: GeoPoint) -> VertexId {
        self.coords.push(Some(p));
        VertexId((self.coords.len() - 1) as u32)
    }

    /// Coordinates of `v`, if any were supplied.
    pub fn coords_of(&self, v: VertexId) -> Option<GeoPoint> {
        self.coords.get(v.index()).copied().flatten()
    }

    /// Adds an edge. For undirected builders, the reverse arc is implied.
    ///
    /// # Panics
    /// If either endpoint is unknown or the weight is negative/NaN.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId, weight: f64) -> usize {
        assert!(from.index() < self.coords.len(), "unknown tail vertex {from:?}");
        assert!(to.index() < self.coords.len(), "unknown head vertex {to:?}");
        assert!(weight >= 0.0, "edge weight must be non-negative, got {weight}");
        self.edges.push(InputEdge { from, to, weight });
        self.edges.len() - 1
    }

    /// Adds an edge whose weight is the haversine distance between the
    /// endpoints' coordinates.
    ///
    /// # Panics
    /// If either endpoint lacks coordinates.
    pub fn add_geo_edge(&mut self, from: VertexId, to: VertexId) -> usize {
        let a = self.coords_of(from).expect("tail vertex has no coordinates");
        let b = self.coords_of(to).expect("head vertex has no coordinates");
        self.add_edge(from, to, a.haversine_m(&b))
    }

    /// Raw access to the accumulated edges (used by the PoI embedder to
    /// find the closest edge before splitting it).
    pub fn edges(&self) -> &[InputEdge] {
        &self.edges
    }

    /// Splits input edge `edge_idx` at parameter `t ∈ [0, 1]`, inserting a
    /// new vertex there and replacing the edge by two sub-edges whose
    /// weights sum to the original weight. Returns the new vertex.
    ///
    /// This is how PoIs are embedded on the closest edge: the PoI becomes a
    /// graph vertex that any route must actually drive through.
    pub fn split_edge(&mut self, edge_idx: usize, t: f64) -> VertexId {
        assert!((0.0..=1.0).contains(&t), "split parameter {t} out of range");
        let e = self.edges[edge_idx];
        let coords = match (self.coords_of(e.from), self.coords_of(e.to)) {
            (Some(a), Some(b)) => Some(a.lerp(&b, t)),
            _ => None,
        };
        let mid = match coords {
            Some(p) => self.add_vertex_at(p),
            None => self.add_vertex(),
        };
        let w1 = e.weight * t;
        let w2 = e.weight - w1;
        self.edges[edge_idx] = InputEdge { from: e.from, to: mid, weight: w1 };
        self.edges.push(InputEdge { from: mid, to: e.to, weight: w2 });
        mid
    }

    /// Finalises into the immutable CSR [`RoadNetwork`].
    pub fn build(self) -> RoadNetwork {
        RoadNetwork::from_edges(self.coords, &self.edges, self.directed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> GraphBuilder {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex();
        let v1 = b.add_vertex();
        let v2 = b.add_vertex();
        b.add_edge(v0, v1, 1.0);
        b.add_edge(v1, v2, 2.0);
        b.add_edge(v2, v0, 4.0);
        b
    }

    #[test]
    fn undirected_build_has_reverse_arcs() {
        let g = triangle().build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        let nbrs: Vec<_> = g.neighbors(VertexId(1)).map(|(v, w)| (v.0, w.get())).collect();
        assert!(nbrs.contains(&(0, 1.0)));
        assert!(nbrs.contains(&(2, 2.0)));
    }

    #[test]
    fn directed_build_has_no_reverse_arcs() {
        let mut b = GraphBuilder::directed();
        let v0 = b.add_vertex();
        let v1 = b.add_vertex();
        b.add_edge(v0, v1, 1.0);
        let g = b.build();
        assert!(g.is_directed());
        assert_eq!(g.neighbors(VertexId(0)).count(), 1);
        assert_eq!(g.neighbors(VertexId(1)).count(), 0);
    }

    #[test]
    fn split_edge_preserves_total_weight() {
        let mut b = triangle();
        let mid = b.split_edge(1, 0.25); // edge v1 -> v2, weight 2.0
        assert_eq!(mid, VertexId(3));
        let g = b.build();
        let w_left: f64 =
            g.neighbors(VertexId(1)).find(|(v, _)| *v == mid).map(|(_, w)| w.get()).unwrap();
        let w_right: f64 =
            g.neighbors(VertexId(2)).find(|(v, _)| *v == mid).map(|(_, w)| w.get()).unwrap();
        assert!((w_left - 0.5).abs() < 1e-12);
        assert!((w_right - 1.5).abs() < 1e-12);
    }

    #[test]
    fn split_edge_interpolates_coordinates() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex_at(GeoPoint::new(0.0, 0.0));
        let c = b.add_vertex_at(GeoPoint::new(0.0, 1.0));
        b.add_edge(a, c, 10.0);
        let mid = b.split_edge(0, 0.5);
        let p = b.coords_of(mid).unwrap();
        assert!((p.lon - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex();
        let v1 = b.add_vertex();
        b.add_edge(v0, v1, -1.0);
    }

    #[test]
    #[should_panic(expected = "unknown head vertex")]
    fn unknown_vertex_rejected() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex();
        b.add_edge(v0, VertexId(9), 1.0);
    }

    #[test]
    fn geo_edge_weight_is_haversine() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex_at(GeoPoint::new(35.0, 139.0));
        let c = b.add_vertex_at(GeoPoint::new(35.01, 139.0));
        b.add_geo_edge(a, c);
        let g = b.build();
        let (_, w) = g.neighbors(a).next().unwrap();
        // 0.01 degrees of latitude is ~1.11 km.
        assert!((w.get() - 1112.0).abs() < 10.0, "got {}", w.get());
    }
}
