//! Semantic-score aggregation (paper Eq. 2 / Eq. 7).
//!
//! A route's semantic score `s(R) = f(h_1, …, h_|R|)` must satisfy two
//! contracts from Definition 3.5:
//!
//! 1. all `h_i = 1` ⇒ `s(R) = 0` (perfect routes have zero semantic cost);
//! 2. for a *partial* route, `s(R)` is the minimum semantic score any
//!    completion can achieve (so it is a valid lower bound — Lemma 5.2
//!    depends on this monotonicity).
//!
//! The experiments use the product form of Eq. 7:
//! `s(R) = 1 − Π sim(c_{p_i}, c_{S[i]})`, which satisfies both because the
//! running product only shrinks as factors in `(0, 1]` are appended.
//! Aggregates are expressed incrementally (an accumulator folded one
//! similarity at a time) because BSSR scores routes as it extends them.

/// Incremental semantic-score aggregation.
pub trait SemanticAggregate: Clone + std::fmt::Debug {
    /// Accumulator value of the empty route.
    fn identity(&self) -> f64;
    /// Folds the next position's similarity into the accumulator.
    fn extend(&self, acc: f64, h: f64) -> f64;
    /// Final semantic score for an accumulator.
    fn score(&self, acc: f64) -> f64;

    /// Convenience: score of a full similarity vector.
    fn score_of(&self, sims: &[f64]) -> f64 {
        self.score(sims.iter().fold(self.identity(), |a, &h| self.extend(a, h)))
    }
}

/// Eq. 7: `s(R) = 1 − Π h_i`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProductAggregate;

impl SemanticAggregate for ProductAggregate {
    #[inline]
    fn identity(&self) -> f64 {
        1.0
    }

    #[inline]
    fn extend(&self, acc: f64, h: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&h), "similarity out of range: {h}");
        acc * h
    }

    #[inline]
    fn score(&self, acc: f64) -> f64 {
        1.0 - acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_route_scores_zero() {
        let p = ProductAggregate;
        assert_eq!(p.score_of(&[1.0, 1.0, 1.0]), 0.0);
        assert_eq!(p.score_of(&[]), 0.0);
    }

    #[test]
    fn product_form_matches_eq7() {
        let p = ProductAggregate;
        let s = p.score_of(&[0.5, 0.8]);
        assert!((s - (1.0 - 0.4)).abs() < 1e-12);
    }

    #[test]
    fn score_is_monotone_in_route_extension() {
        // Lemma 5.2 prerequisite: appending a similarity cannot decrease
        // the score.
        let p = ProductAggregate;
        let mut acc = p.identity();
        let mut last = p.score(acc);
        for h in [1.0, 0.9, 0.5, 1.0, 0.2] {
            acc = p.extend(acc, h);
            let s = p.score(acc);
            assert!(s >= last);
            last = s;
        }
    }

    #[test]
    fn score_bounded_in_unit_interval() {
        let p = ProductAggregate;
        for sims in [vec![0.0], vec![1.0; 8], vec![0.3, 0.7, 0.9]] {
            let s = p.score_of(&sims);
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
