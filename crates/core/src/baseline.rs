//! The paper's competitors: `Dij` and `PNE` — iterated OSR queries that
//! together enumerate the exact skyline (§2, §7.1).
//!
//! The naive solution described in §4 runs one OSR query per
//! super-category sequence of `S_q` and filters by dominance. To make the
//! baselines *exact* (the paper reports all algorithms returning identical
//! routes), we enumerate per position the distinct **similarity levels**
//! realised by actual PoIs and run one OSR per level combination: the
//! optimal route of a combination is the best route achieving exactly that
//! similarity vector, and every sequenced route belongs to some
//! combination, so the union of the per-combination optima contains the
//! whole skyline. The enumeration is exponential in |S_q| — exactly the
//! blow-up that motivates BSSR (Figure 3).

use std::time::Instant;

use skysr_graph::fxhash::FxHashSet;
use skysr_graph::{Cost, SearchStats, VertexId};

use crate::context::QueryContext;
use crate::dominance::skyline_of;
use crate::error::QueryError;
use crate::osr::OsrSolver;
use crate::pne::PneSolver;
use crate::prepared::PreparedQuery;
use crate::query::SkySrQuery;
use crate::route::SkylineRoute;

/// Result of a baseline run.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// The exact skyline, sorted by ascending length.
    pub routes: Vec<SkylineRoute>,
    /// Number of similarity-level combinations enumerated.
    pub combos: u64,
    /// Number of OSR invocations performed.
    pub osr_calls: u64,
    /// Aggregate search counters.
    pub search: SearchStats,
    /// Wall time.
    pub total_time: std::time::Duration,
}

/// Per-position similarity levels with their candidate PoI sets.
struct Levels {
    /// (similarity, PoIs achieving exactly that similarity), sorted by
    /// descending similarity.
    levels: Vec<(f64, FxHashSet<u32>)>,
}

fn build_levels(ctx: &QueryContext<'_>, pq: &PreparedQuery) -> Vec<Levels> {
    pq.positions
        .iter()
        .map(|pos| {
            let mut by_sim: Vec<(f64, FxHashSet<u32>)> = Vec::new();
            for &p in &pos.semantic {
                let s = pos.sim_of(ctx, p);
                match by_sim.iter_mut().find(|(v, _)| *v == s) {
                    Some((_, set)) => {
                        set.insert(p.0);
                    }
                    None => {
                        let mut set = FxHashSet::default();
                        set.insert(p.0);
                        by_sim.push((s, set));
                    }
                }
            }
            by_sim.sort_by(|a, b| b.0.total_cmp(&a.0));
            Levels { levels: by_sim }
        })
        .collect()
}

/// Number of level combinations (saturating).
fn combo_count(levels: &[Levels]) -> u64 {
    levels.iter().fold(1u64, |acc, l| acc.saturating_mul(l.levels.len() as u64))
}

/// Number of OSR invocations a baseline run would need for `pq` — the
/// harness uses this to skip (and report) hopeless configurations instead
/// of hanging, mirroring the paper's "not finished after a month" bars.
pub fn level_combo_count(ctx: &QueryContext<'_>, pq: &PreparedQuery) -> u64 {
    combo_count(&build_levels(ctx, pq))
}

/// Shared driver: enumerate combinations, call `solve` per combination,
/// skyline-filter the results.
fn run_baseline<F>(
    pq: &PreparedQuery,
    levels: &[Levels],
    max_combos: u64,
    mut solve: F,
) -> Result<(Vec<SkylineRoute>, u64, u64), QueryError>
where
    F: FnMut(&[(usize, &FxHashSet<u32>)]) -> Option<(Vec<VertexId>, Cost)>,
{
    let k = pq.len();
    let total = combo_count(levels);
    assert!(total <= max_combos, "baseline combination count {total} exceeds limit {max_combos}");
    let mut candidates = Vec::new();
    let mut idx = vec![0usize; k];
    let mut osr_calls = 0u64;
    loop {
        // Current combination.
        let combo: Vec<(usize, &FxHashSet<u32>)> =
            idx.iter().enumerate().map(|(i, &j)| (j, &levels[i].levels[j].1)).collect();
        let sim_product: f64 =
            idx.iter().enumerate().map(|(i, &j)| levels[i].levels[j].0).product();
        osr_calls += 1;
        if let Some((pois, length)) = solve(&combo) {
            candidates.push(SkylineRoute { pois, length, semantic: 1.0 - sim_product });
        }
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == k {
                return Ok((skyline_of(candidates), total, osr_calls));
            }
            idx[pos] += 1;
            if idx[pos] < levels[pos].levels.len() {
                break;
            }
            idx[pos] = 0;
            pos += 1;
        }
    }
}

/// `Dij`: iterated OSR with the Dijkstra-based solution.
pub struct DijBaseline<'g> {
    ctx: QueryContext<'g>,
    solver: OsrSolver,
    /// Safety valve against accidental exponential blow-ups; raise for
    /// benchmark runs.
    pub max_combos: u64,
}

impl<'g> DijBaseline<'g> {
    /// New baseline engine.
    pub fn new(ctx: &QueryContext<'g>) -> DijBaseline<'g> {
        DijBaseline {
            ctx: *ctx,
            solver: OsrSolver::new(ctx.graph.num_vertices()),
            max_combos: 1_000_000,
        }
    }

    /// Runs the baseline on `query`.
    pub fn run(&mut self, query: &SkySrQuery) -> Result<BaselineResult, QueryError> {
        let pq = PreparedQuery::prepare(&self.ctx, query)?;
        self.run_prepared(&pq)
    }

    /// Runs the baseline on a prepared query.
    pub fn run_prepared(&mut self, pq: &PreparedQuery) -> Result<BaselineResult, QueryError> {
        let t0 = Instant::now();
        if pq.unmatchable_position().is_some() {
            return Ok(BaselineResult {
                routes: Vec::new(),
                combos: 0,
                osr_calls: 0,
                search: SearchStats::default(),
                total_time: t0.elapsed(),
            });
        }
        let levels = build_levels(&self.ctx, pq);
        let graph = self.ctx.graph;
        let solver = &mut self.solver;
        let start = pq.start;
        let (routes, combos, osr_calls) = run_baseline(pq, &levels, self.max_combos, |combo| {
            let sets: Vec<FxHashSet<u32>> = combo.iter().map(|(_, s)| (*s).clone()).collect();
            solver.solve(graph, start, &sets).map(|r| (r.pois, r.length))
        })?;
        Ok(BaselineResult {
            routes,
            combos,
            osr_calls,
            search: self.solver.stats(),
            total_time: t0.elapsed(),
        })
    }
}

/// `PNE`: iterated OSR with progressive neighbour exploration.
pub struct PneBaseline<'g> {
    ctx: QueryContext<'g>,
    /// Safety valve against accidental exponential blow-ups.
    pub max_combos: u64,
}

impl<'g> PneBaseline<'g> {
    /// New baseline engine.
    pub fn new(ctx: &QueryContext<'g>) -> PneBaseline<'g> {
        PneBaseline { ctx: *ctx, max_combos: 1_000_000 }
    }

    /// Runs the baseline on `query`.
    pub fn run(&mut self, query: &SkySrQuery) -> Result<BaselineResult, QueryError> {
        let pq = PreparedQuery::prepare(&self.ctx, query)?;
        self.run_prepared(&pq)
    }

    /// Runs the baseline on a prepared query.
    pub fn run_prepared(&mut self, pq: &PreparedQuery) -> Result<BaselineResult, QueryError> {
        let t0 = Instant::now();
        if pq.unmatchable_position().is_some() {
            return Ok(BaselineResult {
                routes: Vec::new(),
                combos: 0,
                osr_calls: 0,
                search: SearchStats::default(),
                total_time: t0.elapsed(),
            });
        }
        let levels = build_levels(&self.ctx, pq);
        // One PNE solver per query: NN streams are shared across all level
        // combinations (keyed by position and level index).
        let mut solver = PneSolver::new(self.ctx.graph);
        let start = pq.start;
        let (routes, combos, osr_calls) = run_baseline(pq, &levels, self.max_combos, |combo| {
            let sets: Vec<(u64, &FxHashSet<u32>)> = combo
                .iter()
                .enumerate()
                .map(|(pos, (level, s))| (((pos as u64) << 32) | *level as u64, *s))
                .collect();
            solver.solve(start, &sets).map(|r| (r.pois, r.length))
        })?;
        Ok(BaselineResult {
            routes,
            combos,
            osr_calls,
            search: solver.stats(),
            total_time: t0.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bssr::Bssr;
    use crate::paper_example::PaperExample;

    #[test]
    fn dij_baseline_matches_bssr_on_fixture() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let bssr = Bssr::new(&ctx).run(&ex.query()).unwrap();
        let dij = DijBaseline::new(&ctx).run(&ex.query()).unwrap();
        assert_eq!(dij.routes, bssr.routes);
        // 2 levels (restaurants) × 1 level (A&E) × 2 levels (shops) = 4.
        assert_eq!(dij.combos, 4);
        assert_eq!(dij.osr_calls, 4);
    }

    #[test]
    fn pne_baseline_matches_bssr_on_fixture() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let bssr = Bssr::new(&ctx).run(&ex.query()).unwrap();
        let pne = PneBaseline::new(&ctx).run(&ex.query()).unwrap();
        assert_eq!(pne.routes, bssr.routes);
        assert_eq!(pne.combos, 4);
    }

    #[test]
    fn combo_limit_guards() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let mut dij = DijBaseline::new(&ctx);
        dij.max_combos = 2;
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dij.run(&ex.query()).unwrap();
        }));
        assert!(err.is_err());
    }

    #[test]
    fn baselines_handle_single_position() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let gift = ex.forest.by_name("Gift Shop").unwrap();
        let q = SkySrQuery::new(ex.vq, [gift]);
        let bssr = Bssr::new(&ctx).run(&q).unwrap();
        let dij = DijBaseline::new(&ctx).run(&q).unwrap();
        let pne = PneBaseline::new(&ctx).run(&q).unwrap();
        assert_eq!(dij.routes, bssr.routes);
        assert_eq!(pne.routes, bssr.routes);
    }
}
