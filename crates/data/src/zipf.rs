//! Zipf-distributed sampling for skewed category popularity.
//!
//! §7.1: "the number of PoI vertices associated with each category is
//! significantly biased". Category assignment draws leaf ranks from a
//! Zipf(s) distribution via inverse-CDF lookup over the precomputed
//! harmonic weights.

use rand::RngExt;

/// A Zipf distribution over ranks `0..n` with exponent `s`.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative probabilities, cdf[i] = P(rank ≤ i).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution.
    ///
    /// # Panics
    /// If `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "invalid exponent {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is empty (never: construction requires
    /// n > 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: RngExt>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rank_zero_most_popular() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 50];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        assert!(counts[0] > counts[49] * 5);
    }

    #[test]
    fn all_ranks_in_range() {
        let z = Zipf::new(5, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    #[test]
    fn zero_exponent_is_uniform_ish() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_rejected() {
        Zipf::new(0, 1.0);
    }
}
