//! Property-based tests for the semantic-hierarchy substrate: the
//! Definition 3.3 similarity contract on arbitrary random forests.

use proptest::prelude::*;
use skysr_category::similarity::SimilarityTable;
use skysr_category::{
    CategoryForest, CategoryId, ForestBuilder, PathLength, ProductAggregate, SemanticAggregate,
    Similarity, WuPalmer,
};

/// A random forest described by, per category, the index of its parent
/// among previously created categories (or none for a new root).
#[derive(Debug, Clone)]
struct RandomForest {
    parents: Vec<Option<usize>>,
}

fn arb_forest() -> impl Strategy<Value = RandomForest> {
    prop::collection::vec(prop::option::of(0usize..64), 1..24).prop_map(|raw| {
        // Clamp each parent to an existing earlier index.
        let parents =
            raw.iter().enumerate().map(|(i, p)| p.filter(|_| i > 0).map(|p| p % i)).collect();
        RandomForest { parents }
    })
}

fn build(rf: &RandomForest) -> CategoryForest {
    let mut b = ForestBuilder::new();
    let mut ids: Vec<CategoryId> = Vec::new();
    for (i, parent) in rf.parents.iter().enumerate() {
        let name = format!("cat{i}");
        let id = match parent {
            None => b.add_root(&name),
            Some(p) => b.add_child(ids[*p], &name),
        };
        ids.push(id);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn similarity_contract_definition_3_3(rf in arb_forest()) {
        let f = build(&rf);
        for sim in [&WuPalmer as &dyn Similarity, &PathLength] {
            for a in f.categories() {
                for b in f.categories() {
                    let s = sim.sim(&f, a, b);
                    // Range and symmetry.
                    prop_assert!((0.0..=1.0).contains(&s));
                    prop_assert_eq!(s, sim.sim(&f, b, a));
                    if f.same_tree(a, b) {
                        // Semantic match ⇒ sim > 0; perfect ⇔ identical.
                        prop_assert!(s > 0.0);
                        prop_assert_eq!(s == 1.0, a == b, "{:?} {:?} -> {}", a, b, s);
                    } else {
                        prop_assert_eq!(s, 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn lca_is_deepest_common_ancestor(rf in arb_forest()) {
        let f = build(&rf);
        for a in f.categories() {
            for b in f.categories() {
                match f.lca(a, b) {
                    None => prop_assert!(!f.same_tree(a, b)),
                    Some(m) => {
                        prop_assert!(f.is_ancestor_or_self(m, a));
                        prop_assert!(f.is_ancestor_or_self(m, b));
                        // No deeper common ancestor exists.
                        let common: Vec<CategoryId> = f
                            .ancestors(a)
                            .filter(|&x| f.is_ancestor_or_self(x, b))
                            .collect();
                        let deepest = common.iter().map(|&c| f.depth(c)).max().unwrap();
                        prop_assert_eq!(f.depth(m), deepest);
                    }
                }
            }
        }
    }

    #[test]
    fn ancestors_are_consistent_with_depth(rf in arb_forest()) {
        let f = build(&rf);
        for c in f.categories() {
            let chain: Vec<CategoryId> = f.ancestors(c).collect();
            prop_assert_eq!(chain.len() as u32, f.depth(c));
            // Depths decrease by one along the chain and end at a root.
            for (i, &x) in chain.iter().enumerate() {
                prop_assert_eq!(f.depth(x) as usize, chain.len() - i);
            }
            prop_assert!(f.roots().contains(chain.last().unwrap()));
        }
    }

    #[test]
    fn descendants_partition_by_children(rf in arb_forest()) {
        let f = build(&rf);
        for c in f.categories() {
            let mut via_children: usize = 1;
            for &ch in f.children(c) {
                via_children += f.descendants_or_self(ch).len();
            }
            prop_assert_eq!(f.descendants_or_self(c).len(), via_children);
        }
    }

    #[test]
    fn similarity_table_agrees_with_direct(rf in arb_forest()) {
        let f = build(&rf);
        let q = CategoryId(0);
        let table = SimilarityTable::build(&f, &WuPalmer, q);
        for c in f.categories() {
            prop_assert_eq!(table.sim(c), WuPalmer.sim(&f, q, c));
        }
        if let Some(sigma) = table.best_non_perfect() {
            prop_assert!(sigma < 1.0 && sigma > 0.0);
        }
    }

    #[test]
    fn product_aggregate_monotone(sims in prop::collection::vec(0.01f64..=1.0, 0..8)) {
        let agg = ProductAggregate;
        let mut acc = agg.identity();
        let mut prev = agg.score(acc);
        for &h in &sims {
            acc = agg.extend(acc, h);
            let s = agg.score(acc);
            prop_assert!(s >= prev - 1e-12);
            prop_assert!((0.0..=1.0).contains(&s));
            prev = s;
        }
        prop_assert!((agg.score_of(&sims) - prev).abs() < 1e-12);
    }
}
