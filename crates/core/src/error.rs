//! Error type for query validation.

use skysr_category::CategoryId;
use skysr_graph::VertexId;

/// Reasons a SkySR query can be rejected before any search runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The start vertex is not in the graph.
    UnknownStart(VertexId),
    /// The category sequence is empty.
    EmptySequence,
    /// A referenced category id is out of range for the forest.
    UnknownCategory(CategoryId),
    /// A position has no semantically matching PoI anywhere in the graph,
    /// so no sequenced route can exist.
    UnmatchablePosition(usize),
    /// The destination vertex (destination variant) is not in the graph.
    UnknownDestination(VertexId),
    /// The service shed the request under overload: either the admission
    /// gate judged its deadline unmeetable, or the deadline expired while
    /// the request sat in the queue. The query itself may be perfectly
    /// valid — retry with a longer deadline or against a less loaded
    /// service.
    Overloaded,
    /// The request addressed a region this endpoint does not serve. A
    /// multi-tenant router answers it when the region id resolves to no
    /// registered shard; a single-shard service answers it when asked for
    /// any region other than its own. The payload is the raw region id.
    UnknownRegion(u16),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::UnknownStart(v) => write!(f, "start vertex {v:?} is not in the graph"),
            QueryError::EmptySequence => write!(f, "category sequence is empty"),
            QueryError::UnknownCategory(c) => write!(f, "category {c:?} is not in the forest"),
            QueryError::UnmatchablePosition(i) => {
                write!(f, "position {i} has no semantically matching PoI")
            }
            QueryError::UnknownDestination(v) => {
                write!(f, "destination vertex {v:?} is not in the graph")
            }
            QueryError::Overloaded => {
                write!(f, "service overloaded: request shed before its deadline could be met")
            }
            QueryError::UnknownRegion(r) => {
                write!(f, "region {r} is not served by this endpoint")
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(QueryError::EmptySequence.to_string().contains("empty"));
        assert!(QueryError::UnknownStart(VertexId(3)).to_string().contains("v3"));
        assert!(QueryError::UnmatchablePosition(2).to_string().contains("position 2"));
    }
}
