//! Property-based exactness: BSSR (under every optimisation configuration)
//! must return exactly the skyline computed by the exhaustive oracle, on
//! arbitrary small road networks, category forests and queries — including
//! queries whose positions share category trees (where the Lemma 5.5
//! shortcuts must disable themselves).

use proptest::prelude::*;
use skysr::category::{CategoryForest, CategoryId, ForestBuilder};
use skysr::core::bssr::{Bssr, BssrConfig, LowerBoundMode, QueuePolicy};
use skysr::core::naive::naive_skysr;
use skysr::core::variants::skyband::{naive_skyband, SkybandQuery};
use skysr::core::{PoiTable, PreparedQuery, QueryContext, SkySrQuery, SkylineRoute};
use skysr::graph::{GraphBuilder, VertexId};

/// A random but always-valid test instance.
#[derive(Debug, Clone)]
struct Instance {
    n: usize,
    directed: bool,
    path_weights: Vec<f64>,
    extra_edges: Vec<(usize, usize, f64)>,
    poi_cats: Vec<Option<usize>>,
    start: usize,
    query_cats: Vec<usize>,
}

/// Forest used by all generated instances: two trees with internal nodes
/// and leaves at different depths (8 categories total).
fn forest() -> CategoryForest {
    let mut b = ForestBuilder::new();
    let food = b.add_root("Food");
    let asian = b.add_child(food, "Asian");
    b.add_child(asian, "Sushi");
    b.add_child(food, "Italian");
    let shop = b.add_root("Shop");
    let clothing = b.add_child(shop, "Clothing");
    b.add_child(clothing, "Shoes");
    b.add_child(shop, "Gift");
    b.build()
}

const NUM_CATS: usize = 8;

fn arb_instance() -> impl Strategy<Value = Instance> {
    (4usize..10, any::<bool>())
        .prop_flat_map(|(n, directed)| {
            (
                Just(n),
                Just(directed),
                prop::collection::vec(0.5f64..8.0, n - 1),
                prop::collection::vec((0..n, 0..n, 0.5f64..8.0), 0..10),
                prop::collection::vec(prop::option::of(0..NUM_CATS), n),
                0..n,
                prop::collection::vec(0..NUM_CATS, 1..4),
            )
        })
        .prop_map(|(n, directed, path_weights, extra_edges, poi_cats, start, query_cats)| {
            Instance { n, directed, path_weights, extra_edges, poi_cats, start, query_cats }
        })
}

struct Built {
    graph: skysr::graph::RoadNetwork,
    forest: CategoryForest,
    pois: PoiTable,
    query: SkySrQuery,
}

fn build(inst: &Instance) -> Built {
    let forest = forest();
    let mut g = if inst.directed { GraphBuilder::directed() } else { GraphBuilder::new() };
    let vs: Vec<VertexId> = (0..inst.n).map(|_| g.add_vertex()).collect();
    for (i, &w) in inst.path_weights.iter().enumerate() {
        g.add_edge(vs[i], vs[i + 1], w);
        if inst.directed {
            // Keep directed instances strongly connected with an asymmetric
            // return edge (§6 "Directed graphs").
            g.add_edge(vs[i + 1], vs[i], w * 1.5 + 0.25);
        }
    }
    for &(a, b, w) in &inst.extra_edges {
        g.add_edge(vs[a], vs[b], w);
    }
    let graph = g.build();
    let mut pois = PoiTable::new(inst.n);
    for (i, cat) in inst.poi_cats.iter().enumerate() {
        if let Some(c) = cat {
            pois.add_poi(vs[i], CategoryId(*c as u32));
        }
    }
    pois.finalize(&forest);
    let query =
        SkySrQuery::new(vs[inst.start], inst.query_cats.iter().map(|&c| CategoryId(c as u32)));
    Built { graph, forest, pois, query }
}

/// Score sets (length, semantic) must match as multisets within tolerance.
///
/// A plain sorted zip is too strict here: score-equivalent routes can have
/// representative lengths differing by float noise (~1e-15, different edge
/// summation orders), which flips sort order around exact ties on one side
/// only. Tolerant greedy matching of sorted lists is order-insensitive.
fn assert_same_skyline(got: &[SkylineRoute], want: &[SkylineRoute], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: {got:?} vs {want:?}");
    let close = |g: &SkylineRoute, w: &SkylineRoute| {
        (g.length.get() - w.length.get()).abs() <= 1e-6 * (1.0 + w.length.get().abs())
            && (g.semantic - w.semantic).abs() <= 1e-9
    };
    let mut unmatched: Vec<&SkylineRoute> = got.iter().collect();
    for w in want {
        let i = unmatched
            .iter()
            .position(|g| close(g, w))
            .unwrap_or_else(|| panic!("{label}: no match for {w:?} in {got:?}"));
        unmatched.swap_remove(i);
    }
}

fn all_configs() -> Vec<(&'static str, BssrConfig)> {
    vec![
        ("default", BssrConfig::default()),
        ("unoptimized", BssrConfig::unoptimized()),
        ("no-init", BssrConfig { use_init_search: false, ..BssrConfig::default() }),
        (
            "distance-queue",
            BssrConfig { queue_policy: QueuePolicy::DistanceBased, ..BssrConfig::default() },
        ),
        ("no-bounds", BssrConfig { lower_bound: LowerBoundMode::Off, ..BssrConfig::default() }),
        (
            "semantic-bounds",
            BssrConfig { lower_bound: LowerBoundMode::Semantic, ..BssrConfig::default() },
        ),
        ("no-cache", BssrConfig { use_cache: false, ..BssrConfig::default() }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bssr_matches_oracle_under_every_config(inst in arb_instance()) {
        let built = build(&inst);
        let ctx = QueryContext::new(&built.graph, &built.forest, &built.pois);
        let pq = PreparedQuery::prepare(&ctx, &built.query).expect("valid query");
        let oracle = naive_skysr(&ctx, &pq, 5_000_000);
        for (label, cfg) in all_configs() {
            let result = Bssr::with_config(&ctx, cfg).run_prepared(&pq);
            assert_same_skyline(&result.routes, &oracle, label);
        }
    }

    #[test]
    fn warm_started_bssr_matches_oracle(inst in arb_instance()) {
        // Semantic cache reuse (skysr-service): a query warm-started from
        // the skyline of its (k−1)-prefix must return the exact skyline.
        let built = build(&inst);
        if built.query.len() < 2 {
            return; // no proper prefix to reuse
        }
        let ctx = QueryContext::new(&built.graph, &built.forest, &built.pois);
        let pq = PreparedQuery::prepare(&ctx, &built.query).expect("valid query");
        let oracle = naive_skysr(&ctx, &pq, 5_000_000);
        let prefix_query = SkySrQuery::with_positions(
            built.query.start,
            built.query.sequence[..built.query.len() - 1].to_vec(),
        );
        let mut engine = Bssr::new(&ctx);
        let prefix = engine.run(&prefix_query).expect("valid prefix").routes;
        let warm = engine.run_with_seeds(&built.query, &prefix).expect("valid query");
        assert_same_skyline(&warm.routes, &oracle, "warm-started");
    }

    #[test]
    fn skyband_matches_oracle_for_small_k(inst in arb_instance()) {
        let built = build(&inst);
        let ctx = QueryContext::new(&built.graph, &built.forest, &built.pois);
        for k in [1usize, 2, 3] {
            let got = SkybandQuery::new(built.query.clone(), k).run(&ctx).expect("valid");
            let want = naive_skyband(&ctx, &built.query, k, 5_000_000).expect("valid");
            assert_same_skyline(&got.routes, &want, "skyband");
        }
    }

    #[test]
    fn skyline_routes_are_valid_and_pareto(inst in arb_instance()) {
        let built = build(&inst);
        let ctx = QueryContext::new(&built.graph, &built.forest, &built.pois);
        let result = Bssr::new(&ctx).run(&built.query).expect("valid query");
        let k = built.query.len();
        for (i, r) in result.routes.iter().enumerate() {
            // Right size, distinct PoIs, every PoI semantically matches.
            prop_assert_eq!(r.pois.len(), k);
            let mut sorted = r.pois.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), k);
            // Pairwise non-dominance.
            for (j, other) in result.routes.iter().enumerate() {
                if i != j {
                    prop_assert!(!r.dominates(other), "{:?} dominates {:?}", r, other);
                }
            }
        }
    }
}
