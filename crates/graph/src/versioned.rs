//! Versioned scratch arrays for O(1) resets between searches.
//!
//! BSSR executes the modified Dijkstra algorithm many times per query
//! (Algorithm 1, line 9). Reinitialising a `Vec<f64>` of |V| + |P| entries
//! each time would dominate the run time on city-scale graphs, so distance /
//! label arrays are stamped with an epoch: bumping the epoch invalidates
//! every slot at once.

/// A fixed-size array whose entries are logically cleared in O(1).
#[derive(Clone, Debug)]
pub struct VersionedArray<T> {
    values: Vec<T>,
    stamps: Vec<u32>,
    epoch: u32,
}

impl<T: Copy + Default> VersionedArray<T> {
    /// Creates an array of `n` unset slots.
    pub fn new(n: usize) -> VersionedArray<T> {
        VersionedArray { values: vec![T::default(); n], stamps: vec![0; n], epoch: 1 }
    }

    /// Capacity (number of slots).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the array has zero slots.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Clears all slots in O(1) (amortised; a wrap-around forces a real
    /// clear once every 2³²−1 epochs).
    pub fn clear(&mut self) {
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamps.fill(0);
                1
            }
        };
    }

    /// Grows to at least `n` slots (keeps current epoch semantics).
    pub fn resize(&mut self, n: usize) {
        if n > self.values.len() {
            self.values.resize(n, T::default());
            self.stamps.resize(n, 0);
        }
    }

    /// Value at `i`, if set this epoch.
    #[inline]
    pub fn get(&self, i: usize) -> Option<T> {
        if self.stamps[i] == self.epoch {
            Some(self.values[i])
        } else {
            None
        }
    }

    /// Sets slot `i` for the current epoch.
    #[inline]
    pub fn set(&mut self, i: usize, v: T) {
        self.values[i] = v;
        self.stamps[i] = self.epoch;
    }

    /// Whether slot `i` is set this epoch.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.stamps[i] == self.epoch
    }

    /// Mutable access to slot `i`, inserting `default` if unset.
    #[inline]
    pub fn get_or_insert(&mut self, i: usize, default: T) -> &mut T {
        if self.stamps[i] != self.epoch {
            self.values[i] = default;
            self.stamps[i] = self.epoch;
        }
        &mut self.values[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut a: VersionedArray<f64> = VersionedArray::new(4);
        assert_eq!(a.get(0), None);
        a.set(0, 1.5);
        assert_eq!(a.get(0), Some(1.5));
        assert!(a.contains(0));
        assert!(!a.contains(1));
    }

    #[test]
    fn clear_invalidates_everything() {
        let mut a: VersionedArray<u32> = VersionedArray::new(3);
        a.set(1, 7);
        a.clear();
        assert_eq!(a.get(1), None);
        a.set(1, 9);
        assert_eq!(a.get(1), Some(9));
    }

    #[test]
    fn get_or_insert_initialises_once() {
        let mut a: VersionedArray<u32> = VersionedArray::new(2);
        *a.get_or_insert(0, 10) += 1;
        *a.get_or_insert(0, 10) += 1;
        assert_eq!(a.get(0), Some(12));
    }

    #[test]
    fn resize_preserves_existing_entries() {
        let mut a: VersionedArray<u32> = VersionedArray::new(2);
        a.set(1, 3);
        a.resize(10);
        assert_eq!(a.get(1), Some(3));
        assert_eq!(a.get(9), None);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn many_epochs_stay_consistent() {
        let mut a: VersionedArray<u8> = VersionedArray::new(1);
        for i in 0..1000u32 {
            a.clear();
            assert_eq!(a.get(0), None);
            a.set(0, (i % 256) as u8);
            assert_eq!(a.get(0), Some((i % 256) as u8));
        }
    }
}
