//! `skysr-service` — a concurrent in-process SkySR query engine.
//!
//! The algorithm crates answer one query on one thread against a borrowed
//! [`QueryContext`](skysr_core::QueryContext). This crate adds the serving
//! layer the ROADMAP's scaling work builds on: SkySR's inputs (road
//! network, category forest, PoI table, similarity measure) are immutable
//! after construction, so a single owned [`ServiceContext`] can be shared
//! by `Arc` across any number of worker threads, each running the
//! unchanged [`Bssr`](skysr_core::bssr::Bssr) engine with its own reusable
//! scratch state.
//!
//! Components:
//!
//! * [`context::ServiceContext`] — the owned, `Arc`-shared counterpart of
//!   the borrowed `QueryContext`;
//! * [`pool`] — a std-only worker pool fed by a bounded submission queue
//!   (when the queue is full, [`QueryService::submit`] blocks —
//!   backpressure), plus the singleflight [`pool::InflightTable`] behind
//!   request coalescing;
//! * [`cache`] — a cross-query LRU result cache keyed by the *canonical*
//!   query (start vertex + canonical form of every position + engine
//!   configuration; complex requirements canonicalize too), with exact
//!   hit/miss/insertion/eviction counters;
//! * [`metrics`] — aggregate counters (searches, coalesced hits,
//!   warm-started searches) and recorded per-query latencies, snapshotted
//!   into throughput / percentile reports;
//! * [`replay`] — a workload-replay driver with three stream shapes
//!   (Zipf, duplicate bursts, prefix chains), optional verification
//!   against sequential execution, summarised in a
//!   [`replay::ReplayReport`]. The CLI's `replay` subcommand is a thin
//!   wrapper around it;
//! * [`bench`] — the bench-smoke harness comparing the reuse layer to the
//!   exact-match baseline and serializing the `BENCH_pr.json` CI artifact.
//!
//! Between a request and a BSSR search sit three reuse layers, applied in
//! order by the worker loop: the result cache, request coalescing
//! (concurrent duplicates park behind one in-flight computation and share
//! its `Arc`'d skyline — the leader fills the cache *before* ending the
//! flight, so a key is never searched twice concurrently), and semantic
//! prefix reuse (a cached skyline for ⟨c₁,…,c_{k−1}⟩ warm-starts the
//! search for ⟨c₁,…,c_k⟩ via [`skysr_core::bssr::warm`], keeping results
//! exact while tightening the pruning thresholds).
//!
//! ## Quickstart
//!
//! ```
//! use skysr_data::dataset::{DatasetSpec, Preset};
//! use skysr_data::workload::WorkloadSpec;
//! use skysr_service::{QueryService, ServiceConfig, ServiceContext};
//! use std::sync::Arc;
//!
//! let dataset = DatasetSpec::preset(Preset::CalSmall).scale(0.05).seed(7).generate();
//! let workload = WorkloadSpec::new(2).queries(8).seed(11).generate(&dataset);
//!
//! let ctx = Arc::new(ServiceContext::from_dataset(dataset));
//! let service = QueryService::new(ctx, ServiceConfig { workers: 4, ..Default::default() });
//!
//! for outcome in service.run_batch(workload.queries.iter().cloned()) {
//!     let response = outcome.expect("generated queries are valid");
//!     assert!(!response.routes.is_empty());
//! }
//! let m = service.metrics();
//! assert_eq!(m.completed, 8);
//! ```

pub mod bench;
pub mod cache;
pub mod context;
pub mod metrics;
pub mod pool;
pub mod replay;
mod service;

pub use bench::{BenchReport, BenchSpec};
pub use cache::{CacheCounters, QueryKey, ResultCache};
pub use context::ServiceContext;
pub use metrics::{MetricsSnapshot, Served};
pub use replay::{ReplayReport, ReplaySpec, StreamPattern};
pub use service::{QueryResponse, QueryService, ServiceConfig, Ticket};
