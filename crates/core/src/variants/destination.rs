//! SkySR with destination (§6): the user additionally fixes where the trip
//! must end (e.g. their hotel in §7.5), and the length score extends to
//! cover the final leg.
//!
//! Implemented by appending a *pseudo-position* that matches exactly the
//! destination vertex with similarity 1 and allows revisits (the
//! destination is a waypoint, not a PoI, so Definition 3.4(iii) does not
//! apply to it). BSSR then runs unchanged — thresholds, bounds, NNinit and
//! caching all account for the final leg automatically, which realises the
//! "traverse from both the destination and the start point" efficiency
//! idea without special-casing the search.

use skysr_graph::VertexId;

use crate::bssr::{Bssr, BssrConfig, BssrResult};
use crate::context::QueryContext;
use crate::error::QueryError;
use crate::prepared::{Position, PreparedQuery};
use crate::query::SkySrQuery;

/// A SkySR query with a fixed destination.
#[derive(Clone, Debug, PartialEq)]
pub struct DestinationQuery {
    /// The underlying start + category sequence.
    pub query: SkySrQuery,
    /// Where the trip must end.
    pub destination: VertexId,
}

impl DestinationQuery {
    /// Convenience constructor.
    pub fn new(query: SkySrQuery, destination: VertexId) -> DestinationQuery {
        DestinationQuery { query, destination }
    }

    /// Runs the query with the given BSSR configuration. Returned routes
    /// list only the real PoIs (the destination is implicit); lengths
    /// include the final leg.
    pub fn run(&self, ctx: &QueryContext<'_>, cfg: BssrConfig) -> Result<BssrResult, QueryError> {
        if self.destination.index() >= ctx.graph.num_vertices() {
            return Err(QueryError::UnknownDestination(self.destination));
        }
        let mut pq = PreparedQuery::prepare(ctx, &self.query)?;
        pq.positions.push(Position::destination(self.destination));
        let mut engine = Bssr::with_config(ctx, cfg);
        let mut result = engine.run_prepared(&pq);
        for route in &mut result.routes {
            let last = route.pois.pop();
            debug_assert_eq!(last, Some(self.destination));
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_skysr;
    use crate::paper_example::PaperExample;
    use crate::prepared::Position;
    use skysr_graph::Cost;

    #[test]
    fn destination_extends_lengths() {
        // Paper query but the trip must end back at vq.
        let ex = PaperExample::new();
        let ctx = ex.context();
        let dq = DestinationQuery::new(ex.query(), ex.vq);
        let result = dq.run(&ctx, BssrConfig::default()).unwrap();
        assert!(!result.routes.is_empty());
        for r in &result.routes {
            // Routes report only real PoIs.
            assert_eq!(r.pois.len(), 3);
            // Length must exceed the destination-free optimum for the same
            // PoIs (11 / 13 in the fixture).
            assert!(r.length > Cost::new(11.0));
        }
    }

    #[test]
    fn agrees_with_oracle_including_destination() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let dq = DestinationQuery::new(ex.query(), ex.p(4));
        let got = dq.run(&ctx, BssrConfig::default()).unwrap();
        // Oracle: run on the augmented prepared query directly.
        let mut pq = PreparedQuery::prepare(&ctx, &ex.query()).unwrap();
        pq.positions.push(Position::destination(ex.p(4)));
        let mut want = naive_skysr(&ctx, &pq, crate::naive::DEFAULT_CANDIDATE_LIMIT);
        for r in &mut want {
            r.pois.pop();
        }
        assert_eq!(got.routes, want);
    }

    #[test]
    fn destination_equal_to_a_route_poi_is_allowed() {
        // Destination p8 (a gift shop): the perfect route may legitimately
        // end at its own last PoI with a zero-length final leg.
        let ex = PaperExample::new();
        let ctx = ex.context();
        let dq = DestinationQuery::new(ex.query(), ex.p(8));
        let result = dq.run(&ctx, BssrConfig::default()).unwrap();
        assert!(result.routes.iter().any(|r| r.pois.last() == Some(&ex.p(8))));
    }

    #[test]
    fn unknown_destination_rejected() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let dq = DestinationQuery::new(ex.query(), VertexId(999));
        assert_eq!(
            dq.run(&ctx, BssrConfig::default()).unwrap_err(),
            QueryError::UnknownDestination(VertexId(999))
        );
    }

    #[test]
    fn all_configs_agree() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let dq = DestinationQuery::new(ex.query(), ex.p(3));
        let a = dq.run(&ctx, BssrConfig::default()).unwrap();
        let b = dq.run(&ctx, BssrConfig::unoptimized()).unwrap();
        assert_eq!(a.routes, b.routes);
    }
}
