//! Optimal sequenced route by state-space Dijkstra — the paper's
//! "Dijkstra-based solution" of Sharifzadeh et al. \[16\] (§2, §7.1).
//!
//! Given per-position candidate PoI sets, OSR finds the shortest route from
//! the start visiting one PoI from each set, in order. The search runs over
//! the layered state space `(vertex, stage)`: settling `(v, s)` with
//! `v ∈ set_s` allows a zero-cost transition to `(v, s + 1)`; the first
//! settled state at stage `k` is optimal.
//!
//! PoI distinctness is enforced by walking the (short) chain of transition
//! states when a transition is attempted. With overlapping candidate sets
//! this check can — in pathological cases — exclude the shortest labelled
//! path without considering a detour, so exactness of this *baseline* is
//! guaranteed for pairwise-disjoint sets (which is what the paper's
//! workloads and the skyline driver produce); BSSR itself does not have
//! this limitation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use skysr_graph::fxhash::FxHashSet;
use skysr_graph::{Cost, RoadNetwork, SearchStats, VersionedArray, VertexId};

const NONE: u32 = u32::MAX;

/// A route produced by an OSR solver.
#[derive(Clone, Debug, PartialEq)]
pub struct OsrRoute {
    /// Chosen PoIs, in visiting order (one per candidate set).
    pub pois: Vec<VertexId>,
    /// Total network length from the start through all PoIs.
    pub length: Cost,
}

/// Reusable state-space Dijkstra solver.
pub struct OsrSolver {
    dist: VersionedArray<f64>,
    parent: VersionedArray<u32>,
    /// Most recent transition state on the best-known path to each state.
    last_trans: VersionedArray<u32>,
    /// Previous transition state, chained per transition state.
    prev_trans: VersionedArray<u32>,
    visited: VersionedArray<bool>,
    heap: BinaryHeap<Reverse<(Cost, u32)>>,
    num_vertices: usize,
    stats: SearchStats,
}

impl OsrSolver {
    /// Solver for graphs with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> OsrSolver {
        OsrSolver {
            dist: VersionedArray::new(0),
            parent: VersionedArray::new(0),
            last_trans: VersionedArray::new(0),
            prev_trans: VersionedArray::new(0),
            visited: VersionedArray::new(0),
            heap: BinaryHeap::new(),
            num_vertices,
            stats: SearchStats::default(),
        }
    }

    /// Cumulative search statistics across `solve` calls.
    pub fn stats(&self) -> SearchStats {
        self.stats
    }

    /// Shortest sequenced route from `start` through one member of each set
    /// in order, or `None` if no such route exists.
    pub fn solve(
        &mut self,
        graph: &RoadNetwork,
        start: VertexId,
        sets: &[FxHashSet<u32>],
    ) -> Option<OsrRoute> {
        assert_eq!(graph.num_vertices(), self.num_vertices, "solver sized for another graph");
        let k = sets.len();
        assert!(k >= 1, "OSR needs at least one candidate set");
        if sets.iter().any(|s| s.is_empty()) {
            return None;
        }
        let n = self.num_vertices;
        let states = n * (k + 1);
        self.dist.resize(states);
        self.parent.resize(states);
        self.last_trans.resize(states);
        self.prev_trans.resize(states);
        self.visited.resize(states);
        self.dist.clear();
        self.parent.clear();
        self.last_trans.clear();
        self.prev_trans.clear();
        self.visited.clear();
        self.heap.clear();

        let state = |stage: usize, v: VertexId| stage * n + v.index();
        let s0 = state(0, start);
        self.dist.set(s0, 0.0);
        self.heap.push(Reverse((Cost::ZERO, s0 as u32)));

        while let Some(Reverse((d, s))) = self.heap.pop() {
            let s = s as usize;
            if self.visited.get(s).unwrap_or(false) {
                continue;
            }
            if self.dist.get(s).is_some_and(|best| best < d.get()) {
                continue;
            }
            self.visited.set(s, true);
            self.stats.settled += 1;
            let stage = s / n;
            let v = VertexId((s % n) as u32);

            if stage == k {
                return Some(self.reconstruct(n, s, d));
            }

            // Transition: take v as the stage-th PoI (if distinct so far).
            if sets[stage].contains(&v.0) && !self.on_poi_chain(s, v) {
                let s2 = state(stage + 1, v);
                let slot = self.dist.get_or_insert(s2, f64::INFINITY);
                if d.get() < *slot {
                    *slot = d.get();
                    self.parent.set(s2, s as u32);
                    self.prev_trans.set(s2, self.last_trans.get(s).unwrap_or(NONE));
                    self.last_trans.set(s2, s2 as u32);
                    self.heap.push(Reverse((d, s2 as u32)));
                    self.stats.pushed += 1;
                }
            }

            // Stay in the stage and relax road edges.
            let lt = self.last_trans.get(s).unwrap_or(NONE);
            for (u, w) in graph.neighbors(v) {
                self.stats.relaxed += 1;
                self.stats.weight_sum += w.get();
                let s2 = state(stage, u);
                if self.visited.get(s2).unwrap_or(false) {
                    continue;
                }
                let nd = d + w;
                let slot = self.dist.get_or_insert(s2, f64::INFINITY);
                if nd.get() < *slot {
                    *slot = nd.get();
                    self.parent.set(s2, s as u32);
                    self.last_trans.set(s2, lt);
                    self.heap.push(Reverse((nd, s2 as u32)));
                    self.stats.pushed += 1;
                }
            }
        }
        None
    }

    /// Whether `v` is already one of the PoIs chosen on the path to state
    /// `s` (walks the ≤ k transition chain).
    fn on_poi_chain(&self, s: usize, v: VertexId) -> bool {
        let n = self.num_vertices;
        let mut t = self.last_trans.get(s).unwrap_or(NONE);
        while t != NONE {
            if (t as usize) % n == v.index() {
                return true;
            }
            t = self.prev_trans.get(t as usize).unwrap_or(NONE);
        }
        false
    }

    fn reconstruct(&self, n: usize, goal: usize, length: Cost) -> OsrRoute {
        let mut pois = Vec::new();
        let mut t = self.last_trans.get(goal).unwrap_or(NONE);
        while t != NONE {
            pois.push(VertexId(((t as usize) % n) as u32));
            t = self.prev_trans.get(t as usize).unwrap_or(NONE);
        }
        pois.reverse();
        OsrRoute { pois, length }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::PaperExample;

    fn set(ids: &[u32]) -> FxHashSet<u32> {
        ids.iter().copied().collect()
    }

    #[test]
    fn shortest_perfect_route_on_fixture() {
        // Perfect sets of the paper query: Asian {2, 10}, A&E {5, 9, 12},
        // Gift {8, 13}. Optimal: ⟨p10, p12, p13⟩ at 13.
        let ex = PaperExample::new();
        let mut solver = OsrSolver::new(ex.graph.num_vertices());
        let route = solver
            .solve(&ex.graph, ex.vq, &[set(&[2, 10]), set(&[5, 9, 12]), set(&[8, 13])])
            .unwrap();
        assert_eq!(route.length, Cost::new(13.0));
        assert_eq!(route.pois, vec![VertexId(10), VertexId(12), VertexId(13)]);
    }

    #[test]
    fn semantic_level_combo_route() {
        // Italian restaurants {1, 6, 11} then A&E then Gift: optimal is
        // ⟨p6, p9, p8⟩ at 11.
        let ex = PaperExample::new();
        let mut solver = OsrSolver::new(ex.graph.num_vertices());
        let route = solver
            .solve(&ex.graph, ex.vq, &[set(&[1, 6, 11]), set(&[5, 9, 12]), set(&[8, 13])])
            .unwrap();
        assert_eq!(route.length, Cost::new(11.0));
        assert_eq!(route.pois, vec![VertexId(6), VertexId(9), VertexId(8)]);
    }

    #[test]
    fn single_set_is_nearest_neighbor() {
        let ex = PaperExample::new();
        let mut solver = OsrSolver::new(ex.graph.num_vertices());
        let route = solver.solve(&ex.graph, ex.vq, &[set(&[8, 13])]).unwrap();
        // Nearest gift shop from vq: p8 at 11 (via p6, p9).
        assert_eq!(route.length, Cost::new(11.0));
        assert_eq!(route.pois, vec![VertexId(8)]);
    }

    #[test]
    fn empty_set_yields_none() {
        let ex = PaperExample::new();
        let mut solver = OsrSolver::new(ex.graph.num_vertices());
        assert!(solver.solve(&ex.graph, ex.vq, &[set(&[2]), set(&[])]).is_none());
    }

    #[test]
    fn unreachable_set_yields_none() {
        use skysr_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex();
        let _v1 = b.add_vertex(); // isolated
        let g = b.build();
        let mut solver = OsrSolver::new(g.num_vertices());
        assert!(solver.solve(&g, v0, &[set(&[1])]).is_none());
    }

    #[test]
    fn distinctness_forces_second_poi() {
        // Both sets contain only vertex 1 → no valid route. With {1, 2}
        // twice, the route must use both.
        use skysr_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..3).map(|_| b.add_vertex()).collect();
        b.add_edge(v[0], v[1], 1.0);
        b.add_edge(v[1], v[2], 1.0);
        let g = b.build();
        let mut solver = OsrSolver::new(g.num_vertices());
        assert!(solver.solve(&g, v[0], &[set(&[1]), set(&[1])]).is_none());
        let route = solver.solve(&g, v[0], &[set(&[1, 2]), set(&[1, 2])]).unwrap();
        assert_eq!(route.pois.len(), 2);
        assert_ne!(route.pois[0], route.pois[1]);
        assert_eq!(route.length, Cost::new(2.0));
    }

    #[test]
    fn revisiting_a_vertex_as_waypoint_is_allowed() {
        // Line 0-1-2; sets {2} then {1}: route walks 0→1→2 (take 2), back
        // to 1 (take 1): length 3.
        use skysr_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..3).map(|_| b.add_vertex()).collect();
        b.add_edge(v[0], v[1], 1.0);
        b.add_edge(v[1], v[2], 1.0);
        let g = b.build();
        let mut solver = OsrSolver::new(g.num_vertices());
        let route = solver.solve(&g, v[0], &[set(&[2]), set(&[1])]).unwrap();
        assert_eq!(route.length, Cost::new(3.0));
        assert_eq!(route.pois, vec![VertexId(2), VertexId(1)]);
    }
}
