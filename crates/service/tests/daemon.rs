//! Loopback integration tests of the `skysr-d` daemon: remote replay
//! parity with the oracle under mid-stream weight updates, anytime
//! streaming semantics over the wire, deadline cutoffs, and framing
//! robustness against clients that disconnect mid-frame or speak garbage.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use skysr_data::dataset::{Dataset, DatasetSpec, Preset};
use skysr_service::net::wire::{read_frame, Frame, MAX_FRAME};
use skysr_service::replay::{build_pool, replay_remote, ReplaySpec};
use skysr_service::{
    QueryRequest, QueryService, RemoteService, Served, Server, ServerConfig, Service,
    ServiceConfig, ServiceContext,
};

/// The deterministic city every fixture here is built from — daemon and
/// shadow contexts generated from the same recipe are bit-identical.
fn city() -> Dataset {
    DatasetSpec::preset(Preset::CalSmall).scale(0.08).seed(21).generate()
}

fn spawn_daemon(workers: usize) -> (Arc<Service>, Server) {
    let ctx = Arc::new(ServiceContext::from_dataset(city()));
    let service = Arc::new(Service::new(
        Arc::clone(&ctx),
        ServiceConfig { workers, ..ServiceConfig::default() },
    ));
    let server = Server::spawn("127.0.0.1:0", Arc::clone(&service), ServerConfig::default())
        .expect("bind a loopback listener");
    (service, server)
}

/// `f` is dominated-or-equal by `p` in the (length, semantic) plane.
fn covers(f: &skysr_core::SkylineRoute, p: &skysr_core::SkylineRoute) -> bool {
    f.length.get() <= p.length.get() && f.semantic <= p.semantic
}

#[test]
fn remote_replay_is_oracle_exact_with_midstream_updates() {
    // The acceptance bar: `replay --connect`-style traffic over a real
    // socket, weight updates published through the wire mid-stream, and
    // every answer score-equivalent to a sequential cold run at its
    // pinned epoch — with zero stale serves.
    let (_service, mut server) = spawn_daemon(4);
    let spec = ReplaySpec {
        total: 240,
        distinct: 24,
        seq_len: 2,
        workers: 4,
        update_every: 40,
        update_burst: 8,
        verify: true,
        ..ReplaySpec::default()
    };
    let dataset = city();
    let pool = build_pool(&dataset, &spec);
    let shadow = Arc::new(ServiceContext::from_dataset(dataset));
    let remote =
        RemoteService::connect(server.local_addr()).expect("connect to the loopback daemon");
    let report = replay_remote(&remote, shadow, &pool, &spec).expect("fingerprints match");
    assert_eq!(report.metrics.completed, 240);
    assert_eq!(report.verify_mismatches, Some(0), "remote answers must be oracle-exact");
    assert_eq!(report.verify_skipped, Some(0), "unbounded shadow history skips nothing");
    assert_eq!(report.metrics.stale_served, 0, "no answer served cross-epoch");
    assert!(report.epochs_published >= 5, "update waves must publish through the wire");
    let farewell = remote.shutdown();
    server.join();
    assert_eq!(farewell.completed, 240);
}

#[test]
fn loopback_streaming_provisionals_are_dominated_by_final() {
    let (_service, mut server) = spawn_daemon(2);
    let remote =
        RemoteService::connect(server.local_addr()).expect("connect to the loopback daemon");
    let dataset = city();
    let spec = ReplaySpec { distinct: 12, seq_len: 2, ..ReplaySpec::default() };
    let pool = build_pool(&dataset, &spec);
    let mut streamed_any = false;
    for q in &pool {
        let (response, provisional) = remote
            .submit_streaming(QueryRequest::new(q.clone()))
            .wait_with_progress()
            .expect("pool queries succeed");
        // Anytime soundness over the wire: every provisional point is a
        // genuine route dominated-or-equal by the final exact skyline.
        for p in &provisional {
            assert!(
                response.routes.iter().any(|f| covers(f, p)),
                "provisional point not dominated-or-equal by the final skyline: {p:?}"
            );
        }
        // A search streams every final member on the way (cache hits and
        // coalesced answers legitimately stream nothing).
        if matches!(response.served, Served::Search { .. }) {
            for f in response.routes.iter() {
                assert!(provisional.contains(f), "final member never streamed: {f:?}");
            }
            if !response.routes.is_empty() {
                streamed_any = true;
            }
        }
    }
    assert!(streamed_any, "a fresh daemon must cold-search and stream at least one query");
    let _ = remote.shutdown();
    server.join();
}

#[test]
fn deadline_cutoff_yields_valid_approximate_partials() {
    let (_service, mut server) = spawn_daemon(2);
    let remote =
        RemoteService::connect(server.local_addr()).expect("connect to the loopback daemon");
    let dataset = city();
    let spec = ReplaySpec { distinct: 16, seq_len: 2, ..ReplaySpec::default() };
    let pool = build_pool(&dataset, &spec);
    let mut cut = 0;
    for q in &pool {
        let anytime = remote
            .submit_streaming(QueryRequest::new(q.clone()).deadline(Duration::from_nanos(1)))
            .wait_deadline(Duration::from_nanos(1))
            .expect("pool queries succeed");
        if anytime.approximate {
            cut += 1;
            assert!(anytime.response.is_none(), "a cutoff carries no final metadata");
            // The partial must be mutually non-dominated ...
            for (i, a) in anytime.routes.iter().enumerate() {
                for b in &anytime.routes[i + 1..] {
                    assert!(
                        !(covers(a, b) && (a.length != b.length || a.semantic != b.semantic)),
                        "partial skyline contains a dominated member"
                    );
                }
            }
            // ... and every member dominated-or-equal by the exact answer
            // (re-asked after the fact; the daemon kept computing it).
            let exact = remote.submit_query(q.clone()).wait().expect("exact re-ask succeeds");
            for p in &anytime.routes {
                assert!(
                    exact.routes.iter().any(|f| covers(f, p)),
                    "approximate member not covered by the exact skyline: {p:?}"
                );
            }
        } else {
            assert!(anytime.response.is_some(), "an uncut stream carries the full response");
        }
    }
    assert!(cut > 0, "a 1ns deadline must cut at least one of {} streams", pool.len());
    let _ = remote.shutdown();
    server.join();
}

#[test]
fn hostile_clients_do_not_kill_the_daemon() {
    let (_service, mut server) = spawn_daemon(2);
    let addr = server.local_addr();

    // A client that dies mid-frame: the length prefix promises 100 bytes,
    // three arrive, then the connection drops.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(&100u32.to_le_bytes()).expect("write length");
        s.write_all(&[1, 2, 3]).expect("write partial payload");
    }

    // A client that speaks garbage: a well-formed length prefix around a
    // hostile payload. The daemon must answer with a Fault frame and
    // close — never panic.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).expect("set timeout");
        s.write_all(&2u32.to_le_bytes()).expect("write length");
        s.write_all(&[0xFF, 0xEE]).expect("write garbage");
        let mut rest = Vec::new();
        let _ = s.read_to_end(&mut rest);
        assert!(!rest.is_empty(), "the daemon answers garbage with a Fault before closing");
    }

    // An oversized length prefix is rejected before any buffering.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).expect("set timeout");
        s.write_all(&u32::MAX.to_le_bytes()).expect("write length");
        let mut rest = Vec::new();
        let _ = s.read_to_end(&mut rest);
    }

    // A version-mismatched handshake is answered with the server's
    // Welcome (so the client can report both versions) and then closed.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).expect("set timeout");
        s.write_all(&Frame::Hello { version: 9999, features: 0 }.to_bytes()).expect("write hello");
        let frame = read_frame(&mut s, MAX_FRAME).expect("read welcome");
        assert!(matches!(frame, Frame::Welcome { .. }));
        let mut rest = Vec::new();
        let _ = s.read_to_end(&mut rest);
        assert!(rest.is_empty(), "nothing follows the farewell Welcome");
    }

    // After all of that, the daemon still serves real clients.
    let remote = RemoteService::connect(addr).expect("daemon still alive");
    let dataset = city();
    let pool =
        build_pool(&dataset, &ReplaySpec { distinct: 4, seq_len: 2, ..ReplaySpec::default() });
    remote.submit_query(pool[0].clone()).wait().expect("daemon still answers queries");
    let _ = remote.shutdown();
    server.join();
}
