//! Regenerates Table 6: peak heap per algorithm (counting allocator).
#[global_allocator]
static ALLOC: skysr_bench::alloc::CountingAlloc = skysr_bench::alloc::CountingAlloc;

fn main() {
    let cfg = skysr_bench::ExpConfig::from_env();
    let datasets = cfg.datasets();
    skysr_bench::experiments::table6(&cfg, &datasets);
}
