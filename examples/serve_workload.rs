//! Serve a skewed query workload through the concurrent engine.
//!
//! ```console
//! cargo run --release --example serve_workload
//! ```

use skysr::prelude::*;

fn main() {
    let dataset = DatasetSpec::preset(Preset::CalSmall).scale(0.3).seed(3).generate();
    let spec =
        ReplaySpec { total: 500, distinct: 80, workers: 4, verify: true, ..Default::default() };
    let report = replay(dataset, &spec);
    println!("{report}");
}
