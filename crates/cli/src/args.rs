//! Tiny dependency-free argument parser for the CLI.
//!
//! Supports one leading command word, one optional positional argument,
//! and `--flag value` pairs. Unknown or leftover flags are reported.

use std::collections::BTreeMap;

/// Parsed command line.
pub struct Args {
    /// The command word (first argument).
    pub command: String,
    positional: Option<String>,
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parses `argv` (without the program name).
    pub fn parse(argv: Vec<String>) -> Result<Args, String> {
        let mut it = argv.into_iter();
        let command = it.next().ok_or("missing command")?;
        let mut positional = None;
        let mut flags = BTreeMap::new();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                if flags.insert(name.to_owned(), value).is_some() {
                    return Err(format!("--{name} given twice"));
                }
            } else if positional.is_none() {
                positional = Some(a);
            } else {
                return Err(format!("unexpected argument {a:?}"));
            }
        }
        Ok(Args { command, positional, flags })
    }

    /// The positional argument (e.g. a dataset file).
    pub fn positional(&self) -> Result<String, String> {
        self.positional.clone().ok_or_else(|| "missing dataset file argument".to_owned())
    }

    /// The positional argument if one was given (commands where it is
    /// optional, e.g. `replay` generating a city when no file is named).
    pub fn positional_opt(&self) -> Option<String> {
        self.positional.clone()
    }

    /// Takes a required flag.
    pub fn require(&mut self, name: &str) -> Result<String, String> {
        self.flags.remove(name).ok_or_else(|| format!("missing --{name}"))
    }

    /// Takes an optional flag.
    pub fn optional(&mut self, name: &str) -> Option<String> {
        self.flags.remove(name)
    }

    /// Fails if unconsumed flags remain.
    pub fn finish(&self) -> Result<(), String> {
        match self.flags.keys().next() {
            Some(k) => Err(format!("unknown flag --{k}")),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_flags_and_positional() {
        let mut a = Args::parse(sv(&["query", "city.txt", "--start", "5"])).unwrap();
        assert_eq!(a.command, "query");
        assert_eq!(a.positional().unwrap(), "city.txt");
        assert_eq!(a.require("start").unwrap(), "5");
        a.finish().unwrap();
    }

    #[test]
    fn missing_value_rejected() {
        assert!(Args::parse(sv(&["x", "--flag"])).is_err());
    }

    #[test]
    fn duplicate_flag_rejected() {
        assert!(Args::parse(sv(&["x", "--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn leftover_flags_detected() {
        let a = Args::parse(sv(&["x", "--oops", "1"])).unwrap();
        assert!(a.finish().is_err());
    }

    #[test]
    fn extra_positional_rejected() {
        assert!(Args::parse(sv(&["x", "a", "b"])).is_err());
    }

    #[test]
    fn missing_command_rejected() {
        assert!(Args::parse(vec![]).is_err());
    }

    #[test]
    fn optional_positional() {
        let a = Args::parse(sv(&["replay", "--workers", "4"])).unwrap();
        assert_eq!(a.positional_opt(), None);
        assert!(a.positional().is_err());
        let b = Args::parse(sv(&["replay", "city.txt"])).unwrap();
        assert_eq!(b.positional_opt().as_deref(), Some("city.txt"));
    }
}
