//! Loopback integration tests of the `skysr-d` daemon: remote replay
//! parity with the oracle under mid-stream weight updates, anytime
//! streaming semantics over the wire, deadline cutoffs, and framing
//! robustness against clients that disconnect mid-frame or speak garbage.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use skysr_data::dataset::{Dataset, DatasetSpec, Preset};
use skysr_service::net::wire::{read_frame, Frame, FEATURE_STREAMING, MAX_FRAME, PROTOCOL_V1};
use skysr_service::replay::{build_pool, replay_remote, ReplaySpec};
use skysr_service::{
    QueryRequest, QueryService, RegionId, RemoteService, Served, Server, ServerConfig, Service,
    ServiceConfig, ServiceContext, ShardRegistry,
};

/// The deterministic city every fixture here is built from — daemon and
/// shadow contexts generated from the same recipe are bit-identical.
fn city() -> Dataset {
    DatasetSpec::preset(Preset::CalSmall).scale(0.08).seed(21).generate()
}

fn spawn_daemon(workers: usize) -> (Arc<Service>, Server) {
    let ctx = Arc::new(ServiceContext::from_dataset(city()));
    let service = Arc::new(Service::new(
        Arc::clone(&ctx),
        ServiceConfig { workers, ..ServiceConfig::default() },
    ));
    let server = Server::spawn("127.0.0.1:0", Arc::clone(&service), ServerConfig::default())
        .expect("bind a loopback listener");
    (service, server)
}

/// `f` is dominated-or-equal by `p` in the (length, semantic) plane.
fn covers(f: &skysr_core::SkylineRoute, p: &skysr_core::SkylineRoute) -> bool {
    f.length.get() <= p.length.get() && f.semantic <= p.semantic
}

#[test]
fn remote_replay_is_oracle_exact_with_midstream_updates() {
    // The acceptance bar: `replay --connect`-style traffic over a real
    // socket, weight updates published through the wire mid-stream, and
    // every answer score-equivalent to a sequential cold run at its
    // pinned epoch — with zero stale serves.
    let (_service, mut server) = spawn_daemon(4);
    let spec = ReplaySpec {
        total: 240,
        distinct: 24,
        seq_len: 2,
        workers: 4,
        update_every: 40,
        update_burst: 8,
        verify: true,
        ..ReplaySpec::default()
    };
    let dataset = city();
    let pool = build_pool(&dataset, &spec);
    let shadow = Arc::new(ServiceContext::from_dataset(dataset));
    let remote =
        RemoteService::connect(server.local_addr()).expect("connect to the loopback daemon");
    let report = replay_remote(&remote, shadow, &pool, &spec).expect("fingerprints match");
    assert_eq!(report.metrics.completed, 240);
    assert_eq!(report.verify_mismatches, Some(0), "remote answers must be oracle-exact");
    assert_eq!(report.verify_skipped, Some(0), "unbounded shadow history skips nothing");
    assert_eq!(report.metrics.stale_served, 0, "no answer served cross-epoch");
    assert!(report.epochs_published >= 5, "update waves must publish through the wire");
    let farewell = remote.shutdown();
    server.join();
    assert_eq!(farewell.completed, 240);
}

#[test]
fn loopback_streaming_provisionals_are_dominated_by_final() {
    let (_service, mut server) = spawn_daemon(2);
    let remote =
        RemoteService::connect(server.local_addr()).expect("connect to the loopback daemon");
    let dataset = city();
    let spec = ReplaySpec { distinct: 12, seq_len: 2, ..ReplaySpec::default() };
    let pool = build_pool(&dataset, &spec);
    let mut streamed_any = false;
    for q in &pool {
        let (response, provisional) = remote
            .submit_streaming(QueryRequest::new(q.clone()))
            .wait_with_progress()
            .expect("pool queries succeed");
        // Anytime soundness over the wire: every provisional point is a
        // genuine route dominated-or-equal by the final exact skyline.
        for p in &provisional {
            assert!(
                response.routes.iter().any(|f| covers(f, p)),
                "provisional point not dominated-or-equal by the final skyline: {p:?}"
            );
        }
        // A search streams every final member on the way (cache hits and
        // coalesced answers legitimately stream nothing).
        if matches!(response.served, Served::Search { .. }) {
            for f in response.routes.iter() {
                assert!(provisional.contains(f), "final member never streamed: {f:?}");
            }
            if !response.routes.is_empty() {
                streamed_any = true;
            }
        }
    }
    assert!(streamed_any, "a fresh daemon must cold-search and stream at least one query");
    let _ = remote.shutdown();
    server.join();
}

#[test]
fn deadline_cutoff_yields_valid_approximate_partials() {
    let (_service, mut server) = spawn_daemon(2);
    let remote =
        RemoteService::connect(server.local_addr()).expect("connect to the loopback daemon");
    let dataset = city();
    let spec = ReplaySpec { distinct: 16, seq_len: 2, ..ReplaySpec::default() };
    let pool = build_pool(&dataset, &spec);
    let mut cut = 0;
    for q in &pool {
        let anytime = remote
            .submit_streaming(QueryRequest::new(q.clone()).deadline(Duration::from_nanos(1)))
            .wait_deadline(Duration::from_nanos(1))
            .expect("pool queries succeed");
        if anytime.approximate {
            cut += 1;
            assert!(anytime.response.is_none(), "a cutoff carries no final metadata");
            // The partial must be mutually non-dominated ...
            for (i, a) in anytime.routes.iter().enumerate() {
                for b in &anytime.routes[i + 1..] {
                    assert!(
                        !(covers(a, b) && (a.length != b.length || a.semantic != b.semantic)),
                        "partial skyline contains a dominated member"
                    );
                }
            }
            // ... and every member dominated-or-equal by the exact answer
            // (re-asked after the fact; the daemon kept computing it).
            let exact = remote.submit_query(q.clone()).wait().expect("exact re-ask succeeds");
            for p in &anytime.routes {
                assert!(
                    exact.routes.iter().any(|f| covers(f, p)),
                    "approximate member not covered by the exact skyline: {p:?}"
                );
            }
        } else {
            assert!(anytime.response.is_some(), "an uncut stream carries the full response");
        }
    }
    assert!(cut > 0, "a 1ns deadline must cut at least one of {} streams", pool.len());
    let _ = remote.shutdown();
    server.join();
}

#[test]
fn v1_client_is_served_unchanged_by_a_v2_multi_shard_daemon() {
    // Backward compatibility across the protocol bump: a daemon serving
    // two regions behind a router still answers a protocol-1 client
    // exactly as the old single-shard daemon did — a version-1 Welcome
    // with no registry bytes, region-less submits served by the default
    // shard — while a v2 client on the same socket sees the full
    // registry and can address either region.
    let mut registry = ShardRegistry::new();
    for (i, seed) in [21u64, 22].into_iter().enumerate() {
        let d = DatasetSpec::preset(Preset::CalSmall).scale(0.08).seed(seed).generate();
        let ctx = Arc::new(ServiceContext::from_dataset(d));
        registry.add(
            format!("region-{i}"),
            ctx,
            ServiceConfig { workers: 2, ..ServiceConfig::default() },
        );
    }
    let router = Arc::new(registry.into_router());
    let mut server = Server::spawn("127.0.0.1:0", Arc::clone(&router), ServerConfig::default())
        .expect("bind a loopback listener");
    let addr = server.local_addr();
    let pool =
        build_pool(&city(), &ReplaySpec { distinct: 6, seq_len: 2, ..ReplaySpec::default() });

    // The v1 client, frame by frame. Region-less `RequestOptions` encode
    // byte-identically to protocol 1, so these are the exact frames an
    // old binary puts on the wire.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(30))).expect("set timeout");
        s.write_all(&Frame::Hello { version: PROTOCOL_V1, features: FEATURE_STREAMING }.to_bytes())
            .expect("write v1 hello");
        let Frame::Welcome { version, registry, fingerprint, .. } =
            read_frame(&mut s, MAX_FRAME).expect("read welcome")
        else {
            panic!("handshake must answer Welcome");
        };
        assert_eq!(version, PROTOCOL_V1, "the daemon downgrades the connection, not the client");
        assert!(registry.is_empty(), "a v1 Welcome must not carry registry bytes");
        assert_eq!(fingerprint.epoch.0, 0);
        for (i, q) in pool.iter().enumerate() {
            let submit = Frame::Submit {
                id: i as u64,
                streaming: false,
                request: QueryRequest::new(q.clone()),
            };
            s.write_all(&submit.to_bytes()).expect("write v1 submit");
            let Frame::Final { id, response } = read_frame(&mut s, MAX_FRAME).expect("read final")
            else {
                panic!("a valid v1 submit must be answered Final, never faulted");
            };
            assert_eq!(id, i as u64);
            assert!(!response.routes.is_empty(), "the default shard serves v1 traffic");
        }
    }

    // Every v1 submit was served, each by the shard vertex-space routing
    // deterministically assigns its start — never misrouted, never
    // faulted.
    let expected_on = |region: RegionId| {
        pool.iter().filter(|q| router.route_start(q.start) == region).count() as u64
    };
    assert_eq!(router.shard_metrics(RegionId(0)).unwrap().completed, expected_on(RegionId(0)));
    let south_v1 = expected_on(RegionId(1));
    assert_eq!(router.shard_metrics(RegionId(1)).unwrap().completed, south_v1);
    assert_eq!(router.misrouted(), 0);

    // A v2 client on the same daemon sees both regions and reaches the
    // second one by address.
    let remote = RemoteService::connect(addr).expect("v2 connect");
    let regions = remote.regions();
    assert_eq!(regions.len(), 2);
    assert_eq!((regions[0].id, regions[1].id), (RegionId(0), RegionId(1)));
    assert_eq!(regions[0].name, "region-0");
    let pool_south = {
        let d = DatasetSpec::preset(Preset::CalSmall).scale(0.08).seed(22).generate();
        build_pool(&d, &ReplaySpec { distinct: 2, seq_len: 2, ..ReplaySpec::default() })
    };
    remote
        .submit(QueryRequest::new(pool_south[0].clone()).region(RegionId(1)))
        .wait()
        .expect("addressed v2 submit is served");
    assert_eq!(router.shard_metrics(RegionId(1)).unwrap().completed, south_v1 + 1);
    let farewell = remote.shutdown();
    server.join();
    assert_eq!(farewell.completed, pool.len() as u64 + 1, "the farewell merges every shard");
}

#[test]
fn hostile_clients_do_not_kill_the_daemon() {
    let (_service, mut server) = spawn_daemon(2);
    let addr = server.local_addr();

    // A client that dies mid-frame: the length prefix promises 100 bytes,
    // three arrive, then the connection drops.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(&100u32.to_le_bytes()).expect("write length");
        s.write_all(&[1, 2, 3]).expect("write partial payload");
    }

    // A client that speaks garbage: a well-formed length prefix around a
    // hostile payload. The daemon must answer with a Fault frame and
    // close — never panic.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).expect("set timeout");
        s.write_all(&2u32.to_le_bytes()).expect("write length");
        s.write_all(&[0xFF, 0xEE]).expect("write garbage");
        let mut rest = Vec::new();
        let _ = s.read_to_end(&mut rest);
        assert!(!rest.is_empty(), "the daemon answers garbage with a Fault before closing");
    }

    // An oversized length prefix is rejected before any buffering.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).expect("set timeout");
        s.write_all(&u32::MAX.to_le_bytes()).expect("write length");
        let mut rest = Vec::new();
        let _ = s.read_to_end(&mut rest);
    }

    // A version-mismatched handshake is answered with the server's
    // Welcome (so the client can report both versions) and then closed.
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).expect("set timeout");
        s.write_all(&Frame::Hello { version: 9999, features: 0 }.to_bytes()).expect("write hello");
        let frame = read_frame(&mut s, MAX_FRAME).expect("read welcome");
        assert!(matches!(frame, Frame::Welcome { .. }));
        let mut rest = Vec::new();
        let _ = s.read_to_end(&mut rest);
        assert!(rest.is_empty(), "nothing follows the farewell Welcome");
    }

    // After all of that, the daemon still serves real clients.
    let remote = RemoteService::connect(addr).expect("daemon still alive");
    let dataset = city();
    let pool =
        build_pool(&dataset, &ReplaySpec { distinct: 4, seq_len: 2, ..ReplaySpec::default() });
    remote.submit_query(pool[0].clone()).wait().expect("daemon still answers queries");
    let _ = remote.shutdown();
    server.join();
}
