//! City-like synthetic road networks.
//!
//! The generator lays out a `rows × cols` grid of intersections over a
//! geographic extent, jitters each intersection, and selects edges so the
//! result is (a) guaranteed connected — a serpentine backbone spans every
//! vertex — and (b) has a target edge density |E|/|V|, matching Table 5's
//! per-city ratios. Densities above the grid's maximum are reached with
//! random local shortcut edges (diagonals), mimicking arterial roads.
//! Edge weights are haversine distances in metres.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use skysr_graph::{GeoPoint, GraphBuilder, VertexId};

/// Parameters for [`generate_network`].
#[derive(Clone, Debug, PartialEq)]
pub struct NetGenSpec {
    /// Approximate number of intersections (the generator rounds to a
    /// grid).
    pub target_vertices: usize,
    /// Target |E|/|V| ratio (clamped to what a grid+shortcuts can do,
    /// ≥ the spanning minimum).
    pub edge_factor: f64,
    /// Geographic centre of the city.
    pub center: GeoPoint,
    /// Extent (degrees) of the bounding box along each axis.
    pub extent_deg: f64,
    /// RNG seed (generation is fully deterministic per seed).
    pub seed: u64,
}

impl Default for NetGenSpec {
    fn default() -> Self {
        NetGenSpec {
            target_vertices: 10_000,
            edge_factor: 1.4,
            center: GeoPoint::new(35.68, 139.77),
            extent_deg: 0.25,
            seed: 42,
        }
    }
}

/// Generates the road network. Returns the builder (so PoIs can still be
/// embedded) plus the grid dimensions used.
pub fn generate_network(spec: &NetGenSpec) -> (GraphBuilder, usize, usize) {
    assert!(spec.target_vertices >= 4, "need at least a 2x2 grid");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let cols = (spec.target_vertices as f64).sqrt().round().max(2.0) as usize;
    let rows = spec.target_vertices.div_ceil(cols).max(2);
    let n = rows * cols;

    let mut b = GraphBuilder::new();
    let spacing_lat = spec.extent_deg / rows as f64;
    let spacing_lon = spec.extent_deg / cols as f64;
    let origin_lat = spec.center.lat - spec.extent_deg / 2.0;
    let origin_lon = spec.center.lon - spec.extent_deg / 2.0;
    for r in 0..rows {
        for c in 0..cols {
            let jlat = (rng.random::<f64>() - 0.5) * 0.6 * spacing_lat;
            let jlon = (rng.random::<f64>() - 0.5) * 0.6 * spacing_lon;
            b.add_vertex_at(GeoPoint::new(
                origin_lat + r as f64 * spacing_lat + jlat,
                origin_lon + c as f64 * spacing_lon + jlon,
            ));
        }
    }
    let vid = |r: usize, c: usize| VertexId((r * cols + c) as u32);

    // Serpentine backbone: spans all vertices, guarantees connectivity.
    let mut backbone: Vec<(VertexId, VertexId)> = Vec::with_capacity(n - 1);
    for r in 0..rows {
        for c in 0..cols - 1 {
            backbone.push((vid(r, c), vid(r, c + 1)));
        }
        if r + 1 < rows {
            // Connect the snake's turn: rightmost on even rows, leftmost on
            // odd rows.
            let c = if r % 2 == 0 { cols - 1 } else { 0 };
            backbone.push((vid(r, c), vid(r + 1, c)));
        }
    }

    // Optional grid edges: remaining vertical links.
    let mut optional: Vec<(VertexId, VertexId)> = Vec::new();
    for r in 0..rows - 1 {
        let skip_c = if r % 2 == 0 { cols - 1 } else { 0 };
        for c in 0..cols {
            if c != skip_c {
                optional.push((vid(r, c), vid(r + 1, c)));
            }
        }
    }
    optional.shuffle(&mut rng);

    let target_edges = (spec.edge_factor * n as f64) as usize;
    let mut added = 0usize;
    for &(u, v) in &backbone {
        b.add_geo_edge(u, v);
        added += 1;
    }
    for &(u, v) in &optional {
        if added >= target_edges {
            break;
        }
        b.add_geo_edge(u, v);
        added += 1;
    }
    // Shortcuts (diagonals and short leaps) if the grid alone is too
    // sparse for the target density.
    while added < target_edges {
        let r = rng.random_range(0..rows - 1);
        let c = rng.random_range(0..cols - 1);
        let (u, v) = if rng.random::<bool>() {
            (vid(r, c), vid(r + 1, c + 1))
        } else {
            (vid(r + 1, c), vid(r, c + 1))
        };
        b.add_geo_edge(u, v);
        added += 1;
    }
    (b, rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysr_graph::connectivity::is_connected;

    #[test]
    fn generated_network_is_connected() {
        let (b, _, _) =
            generate_network(&NetGenSpec { target_vertices: 500, ..Default::default() });
        let g = b.build();
        assert!(is_connected(&g));
    }

    #[test]
    fn vertex_count_close_to_target() {
        let (b, rows, cols) =
            generate_network(&NetGenSpec { target_vertices: 1000, ..Default::default() });
        assert_eq!(b.num_vertices(), rows * cols);
        let n = b.num_vertices() as f64;
        assert!((0.9..1.15).contains(&(n / 1000.0)), "n = {n}");
    }

    #[test]
    fn edge_factor_respected_sparse() {
        let spec = NetGenSpec { target_vertices: 2000, edge_factor: 1.1, ..Default::default() };
        let (b, _, _) = generate_network(&spec);
        let ratio = b.num_edges() as f64 / b.num_vertices() as f64;
        assert!((1.0..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn edge_factor_respected_dense() {
        let spec = NetGenSpec { target_vertices: 2000, edge_factor: 2.6, ..Default::default() };
        let (b, _, _) = generate_network(&spec);
        let ratio = b.num_edges() as f64 / b.num_vertices() as f64;
        assert!((2.5..2.7).contains(&ratio), "ratio {ratio}");
        let g = b.build();
        assert!(is_connected(&g));
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = NetGenSpec { target_vertices: 300, seed: 7, ..Default::default() };
        let (a, _, _) = generate_network(&spec);
        let (b, _, _) = generate_network(&spec);
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.edges(), b.edges());
        let (c, _, _) = generate_network(&NetGenSpec { seed: 8, ..spec });
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn weights_are_positive_geo_distances() {
        let (b, _, _) =
            generate_network(&NetGenSpec { target_vertices: 100, ..Default::default() });
        for e in b.edges() {
            assert!(e.weight > 0.0, "zero-length edge");
            assert!(e.weight < 100_000.0, "absurd edge length {}", e.weight);
        }
    }

    #[test]
    fn coordinates_within_extent() {
        let spec = NetGenSpec { target_vertices: 100, extent_deg: 0.2, ..Default::default() };
        let (b, _, _) = generate_network(&spec);
        for i in 0..b.num_vertices() {
            let p = b.coords_of(VertexId(i as u32)).unwrap();
            assert!((p.lat - spec.center.lat).abs() < 0.2);
            assert!((p.lon - spec.center.lon).abs() < 0.2);
        }
    }
}
