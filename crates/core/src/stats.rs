//! Per-query instrumentation — the raw material for Tables 7–8 and
//! Figures 4–5.

use std::time::Duration;

use skysr_graph::SearchStats;

/// Counters and timings for one SkySR query execution.
#[derive(Clone, Debug, Default)]
pub struct QueryStats {
    /// Number of modified-Dijkstra executions actually run (cache misses).
    pub mdijkstra_runs: u64,
    /// Number of modified-Dijkstra invocations answered by the on-the-fly
    /// cache.
    pub cache_hits: u64,
    /// Aggregate graph-search counters (settled / relaxed / weight sum).
    pub search: SearchStats,
    /// Weight sum of the *first* modified Dijkstra execution — Table 7's
    /// "search space" metric.
    pub first_mdijkstra_weight_sum: f64,
    /// Number of sequenced routes found by the initial search (Table 7).
    pub init_routes: usize,
    /// Wall time of the initial search (Table 7).
    pub init_time: Duration,
    /// Table 7's "Ratio": length of the initial route with the largest
    /// semantic score divided by the length of the initial perfect route.
    pub init_length_ratio: Option<f64>,
    /// Per-gap semantic-match minimum distances `ls[i]` (Figure 4).
    pub ls: Vec<f64>,
    /// Per-gap perfect-match minimum distances `lp[i]` (Figure 4).
    pub lp: Vec<f64>,
    /// Sequenced routes seeded from a cached prefix skyline before the
    /// search started (warm start; 0 for cold runs).
    pub warm_seed_routes: usize,
    /// Routes pushed into the route priority queue.
    pub routes_enqueued: u64,
    /// Maximum size the route queue reached.
    pub queue_peak: usize,
    /// Candidate routes discarded by the threshold test (Lemma 5.3).
    pub threshold_prunes: u64,
    /// Candidate routes discarded by the minimum-distance lower bounds
    /// (§5.3.3 / Lemma 5.8).
    pub lower_bound_prunes: u64,
    /// Total wall time of the query.
    pub total_time: Duration,
}

impl QueryStats {
    /// Sum of ls over remaining gaps (diagnostic).
    pub fn ls_total(&self) -> f64 {
        self.ls.iter().sum()
    }

    /// The telemetry-facing projection of these stats (see
    /// [`EngineProfile`]).
    pub fn profile(&self) -> EngineProfile {
        EngineProfile {
            settled: self.search.settled,
            relaxed: self.search.relaxed,
            heap_pushes: self.search.pushed,
            routes_enqueued: self.routes_enqueued,
            threshold_prunes: self.threshold_prunes,
            lower_bound_prunes: self.lower_bound_prunes,
            seeds_survived: self.warm_seed_routes as u64,
            mdijkstra_runs: self.mdijkstra_runs,
            mdijkstra_cache_hits: self.cache_hits,
        }
    }

    /// Sum of lp over remaining gaps (diagnostic).
    pub fn lp_total(&self) -> f64 {
        self.lp.iter().sum()
    }

    /// Total modified-Dijkstra invocations (runs + cache hits) — Figure 5's
    /// y-axis counts runs only, the invocation count shows the gap.
    pub fn mdijkstra_invocations(&self) -> u64 {
        self.mdijkstra_runs + self.cache_hits
    }
}

/// The compact engine-work profile telemetry attaches to a trace span —
/// the counters that answer "why was this search slow" without shipping
/// the full (allocating) [`QueryStats`] around.
///
/// Derived from [`QueryStats::profile`] per run; [`EngineProfile::absorb`]
/// makes it cumulative, which is how a worker's
/// [`BssrScratch`](crate::bssr::BssrScratch) keeps a lifetime tally across
/// the engines that recycle it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineProfile {
    /// Vertices settled across every graph search of the run.
    pub settled: u64,
    /// Arcs relaxed.
    pub relaxed: u64,
    /// Vertex-heap pushes.
    pub heap_pushes: u64,
    /// Routes pushed into the route priority queue.
    pub routes_enqueued: u64,
    /// Candidate routes discarded by the threshold test.
    pub threshold_prunes: u64,
    /// Candidate routes discarded by the minimum-distance lower bounds.
    pub lower_bound_prunes: u64,
    /// Warm-start seed routes that survived validation into the search.
    pub seeds_survived: u64,
    /// Modified-Dijkstra executions actually run.
    pub mdijkstra_runs: u64,
    /// Modified-Dijkstra invocations answered by the on-the-fly cache.
    pub mdijkstra_cache_hits: u64,
}

impl EngineProfile {
    /// Labels pruned by either mechanism.
    pub fn pruned_labels(&self) -> u64 {
        self.threshold_prunes + self.lower_bound_prunes
    }

    /// Adds `other` into this profile (saturating — a lifetime tally must
    /// never wrap into nonsense).
    pub fn absorb(&mut self, other: &EngineProfile) {
        self.settled = self.settled.saturating_add(other.settled);
        self.relaxed = self.relaxed.saturating_add(other.relaxed);
        self.heap_pushes = self.heap_pushes.saturating_add(other.heap_pushes);
        self.routes_enqueued = self.routes_enqueued.saturating_add(other.routes_enqueued);
        self.threshold_prunes = self.threshold_prunes.saturating_add(other.threshold_prunes);
        self.lower_bound_prunes = self.lower_bound_prunes.saturating_add(other.lower_bound_prunes);
        self.seeds_survived = self.seeds_survived.saturating_add(other.seeds_survived);
        self.mdijkstra_runs = self.mdijkstra_runs.saturating_add(other.mdijkstra_runs);
        self.mdijkstra_cache_hits =
            self.mdijkstra_cache_hits.saturating_add(other.mdijkstra_cache_hits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = QueryStats { ls: vec![1.0, 2.0], lp: vec![3.0], ..Default::default() };
        assert_eq!(s.ls_total(), 3.0);
        assert_eq!(s.lp_total(), 3.0);
    }

    #[test]
    fn invocation_count() {
        let s = QueryStats { mdijkstra_runs: 5, cache_hits: 3, ..Default::default() };
        assert_eq!(s.mdijkstra_invocations(), 8);
    }

    #[test]
    fn profile_projects_and_absorbs() {
        let s = QueryStats {
            mdijkstra_runs: 4,
            cache_hits: 2,
            search: SearchStats { settled: 10, relaxed: 20, pushed: 30, weight_sum: 1.0 },
            warm_seed_routes: 3,
            routes_enqueued: 7,
            threshold_prunes: 5,
            lower_bound_prunes: 6,
            ..Default::default()
        };
        let p = s.profile();
        assert_eq!(p.settled, 10);
        assert_eq!(p.heap_pushes, 30);
        assert_eq!(p.seeds_survived, 3);
        assert_eq!(p.pruned_labels(), 11);
        let mut total = EngineProfile::default();
        total.absorb(&p);
        total.absorb(&p);
        assert_eq!(total.settled, 20);
        assert_eq!(total.mdijkstra_runs, 8);
        assert_eq!(total.mdijkstra_cache_hits, 4);
    }
}
