//! Runs the full experiment suite (every table and figure) in one go.
#[global_allocator]
static ALLOC: skysr_bench::alloc::CountingAlloc = skysr_bench::alloc::CountingAlloc;

fn main() {
    let cfg = skysr_bench::ExpConfig::from_env();
    eprintln!("config: {cfg:?}");
    let datasets = cfg.datasets();
    skysr_bench::ExpConfig::print_dataset_table(&datasets);
    skysr_bench::experiments::table1_and_9();
    skysr_bench::experiments::fig3(&cfg, &datasets);
    skysr_bench::experiments::table6(&cfg, &datasets);
    skysr_bench::experiments::table7(&cfg, &datasets);
    skysr_bench::experiments::table8(&cfg, &datasets);
    skysr_bench::experiments::fig4(&cfg, &datasets);
    skysr_bench::experiments::ablation_bounds(&cfg, &datasets);
    skysr_bench::experiments::fig5(&cfg, &datasets);
    skysr_bench::experiments::fig6(&cfg, &datasets);
}
