//! The `skysr-d` client: a [`RemoteService`] that implements the same
//! [`QueryService`] trait as the in-process [`Service`](crate::Service).
//!
//! One TCP connection carries any number of interleaved requests: each
//! submission gets a client-side correlation id, a background reader
//! thread demultiplexes answer frames back into per-request channels, and
//! the tickets handed out are the *same* [`Ticket`]/[`StreamTicket`]
//! types the in-process service returns — so replay, bench and the
//! examples drive either transport through one code path.
//!
//! Request/response pairs without ids (`MetricsReq` → `MetricsRep`,
//! `PublishWeights` → `WeightsPublished`) are matched FIFO, which is
//! sound because the server answers each connection's frames in order.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use skysr_core::error::QueryError;
use skysr_core::route::SkylineRoute;
use skysr_graph::{EpochId, WeightDelta};

use super::wire::{
    read_frame, DatasetFingerprint, Frame, ProtocolError, FEATURE_MULTI_TENANT, FEATURE_STREAMING,
    MAX_FRAME, PROTOCOL_VERSION,
};
use crate::metrics::MetricsSnapshot;
use crate::service::{QueryRequest, QueryService, StreamTicket, Ticket};
use crate::shard::RegionInfo;

/// Answer routing for one submitted query.
struct PendingQuery {
    reply: Sender<Result<crate::service::QueryResponse, QueryError>>,
    progress: Option<Sender<SkylineRoute>>,
}

/// State shared between callers and the reader thread.
#[derive(Default)]
struct Demux {
    queries: HashMap<u64, PendingQuery>,
    /// FIFO waiters for `MetricsRep` frames (metrics *and* shutdown).
    metrics: VecDeque<Sender<MetricsSnapshot>>,
    /// FIFO waiters for `WeightsPublished` frames.
    epochs: VecDeque<Sender<EpochId>>,
    /// Set when the connection died; the message explains why.
    fault: Option<String>,
}

struct Shared {
    demux: Mutex<Demux>,
    dead: AtomicBool,
}

impl Shared {
    /// Marks the connection dead and drops every waiter (their receivers
    /// observe the disconnect).
    fn poison(&self, why: String) {
        let mut demux = self.demux.lock().expect("client demux poisoned");
        demux.fault.get_or_insert(why);
        demux.queries.clear();
        demux.metrics.clear();
        demux.epochs.clear();
        self.dead.store(true, Ordering::Release);
    }

    fn fault_message(&self) -> String {
        let demux = self.demux.lock().expect("client demux poisoned");
        demux.fault.clone().unwrap_or_else(|| "connection closed".into())
    }
}

/// A connection to a running `skysr-d`, speaking [`QueryService`].
///
/// # Panics
///
/// Like the in-process service (whose `submit` panics after shutdown),
/// the remote client treats a lost daemon as fatal to the work driven
/// over it: submitting or waiting on a dead connection panics with the
/// transport fault. Connection *establishment* and handshake problems are
/// ordinary [`ProtocolError`] values from [`RemoteService::connect`].
pub struct RemoteService {
    writer: Mutex<TcpStream>,
    shared: Arc<Shared>,
    next_id: AtomicU64,
    fingerprint: DatasetFingerprint,
    features: u32,
    registry: Vec<RegionInfo>,
    reader: Mutex<Option<JoinHandle<()>>>,
}

impl RemoteService {
    /// Connects and performs the version handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<RemoteService, ProtocolError> {
        let stream = TcpStream::connect(addr).map_err(|e| ProtocolError::io("connect", e))?;
        let _ = stream.set_nodelay(true);
        let mut writer = stream;
        super::wire::write_frame(
            &mut writer,
            &Frame::Hello {
                version: PROTOCOL_VERSION,
                features: FEATURE_STREAMING | FEATURE_MULTI_TENANT,
            },
        )?;
        let mut read_half = writer.try_clone().map_err(|e| ProtocolError::io("clone stream", e))?;
        let (version, features, fingerprint, registry) =
            match read_frame(&mut read_half, MAX_FRAME)? {
                Frame::Welcome { version, features, fingerprint, registry } => {
                    (version, features, fingerprint, registry)
                }
                Frame::Fault { message } => return Err(ProtocolError::Disconnected(message)),
                _ => return Err(ProtocolError::UnexpectedFrame("expected Welcome")),
            };
        if version != PROTOCOL_VERSION {
            return Err(ProtocolError::VersionMismatch { ours: PROTOCOL_VERSION, theirs: version });
        }
        let shared =
            Arc::new(Shared { demux: Mutex::new(Demux::default()), dead: AtomicBool::new(false) });
        let reader_shared = Arc::clone(&shared);
        let reader = std::thread::Builder::new()
            .name("skysr-client-reader".into())
            .spawn(move || reader_loop(read_half, reader_shared))
            .expect("spawn client reader thread");
        Ok(RemoteService {
            writer: Mutex::new(writer),
            shared,
            next_id: AtomicU64::new(1),
            fingerprint,
            features,
            registry,
            reader: Mutex::new(Some(reader)),
        })
    }

    /// [`RemoteService::connect`] with retries until `timeout` — for
    /// racing a daemon that is still binding its socket (CI startup).
    pub fn connect_retry<A: ToSocketAddrs + Clone>(
        addr: A,
        timeout: Duration,
    ) -> Result<RemoteService, ProtocolError> {
        let deadline = Instant::now() + timeout;
        loop {
            match RemoteService::connect(addr.clone()) {
                Ok(remote) => return Ok(remote),
                Err(e @ ProtocolError::VersionMismatch { .. }) => return Err(e),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// The dataset identity the daemon advertised in its handshake.
    pub fn fingerprint(&self) -> DatasetFingerprint {
        self.fingerprint
    }

    /// The feature flags the daemon advertised.
    pub fn features(&self) -> u32 {
        self.features
    }

    /// The dataset registry the daemon's `Welcome` carried — one entry
    /// per resident region. (Also available as
    /// [`QueryService::regions`].)
    pub fn registry(&self) -> &[RegionInfo] {
        &self.registry
    }

    fn send(&self, frame: &Frame) {
        if self.shared.dead.load(Ordering::Acquire) {
            panic!("skysr-d connection lost: {}", self.shared.fault_message());
        }
        let mut writer = self.writer.lock().expect("client writer poisoned");
        if writer.write_all(&frame.to_bytes()).is_err() {
            self.shared.poison("write failed".into());
            panic!("skysr-d connection lost: write failed");
        }
    }

    fn submit_inner(
        &self,
        request: QueryRequest,
        streaming: bool,
    ) -> (Ticket, Option<Receiver<SkylineRoute>>) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply, ticket) = Ticket::channel();
        let (progress_tx, progress_rx) = if streaming {
            let (tx, rx) = std::sync::mpsc::channel();
            (Some(tx), Some(rx))
        } else {
            (None, None)
        };
        // Register before writing: the answer may race back before the
        // write call even returns.
        {
            let mut demux = self.shared.demux.lock().expect("client demux poisoned");
            demux.queries.insert(id, PendingQuery { reply, progress: progress_tx });
        }
        self.send(&Frame::Submit { id, streaming, request });
        (ticket, progress_rx)
    }
}

impl QueryService for RemoteService {
    fn submit(&self, request: QueryRequest) -> Ticket {
        self.submit_inner(request, false).0
    }

    fn submit_streaming(&self, request: QueryRequest) -> StreamTicket {
        let (ticket, progress) = self.submit_inner(request, true);
        StreamTicket::new(progress.expect("streaming submit has a progress channel"), ticket)
    }

    fn metrics(&self) -> MetricsSnapshot {
        let (tx, rx) = std::sync::mpsc::channel();
        self.shared.demux.lock().expect("client demux poisoned").metrics.push_back(tx);
        self.send(&Frame::MetricsReq);
        match rx.recv() {
            Ok(snapshot) => snapshot,
            Err(_) => panic!("skysr-d connection lost: {}", self.shared.fault_message()),
        }
    }

    fn publish_weights(&self, deltas: &[WeightDelta]) -> EpochId {
        let (tx, rx) = std::sync::mpsc::channel();
        self.shared.demux.lock().expect("client demux poisoned").epochs.push_back(tx);
        self.send(&Frame::PublishWeights(deltas.to_vec()));
        match rx.recv() {
            Ok(epoch) => epoch,
            Err(_) => panic!("skysr-d connection lost: {}", self.shared.fault_message()),
        }
    }

    fn shutdown(&self) -> MetricsSnapshot {
        // The server answers Shutdown with one final MetricsRep after
        // draining, so the reply rides the same FIFO as plain metrics.
        let (tx, rx) = std::sync::mpsc::channel();
        self.shared.demux.lock().expect("client demux poisoned").metrics.push_back(tx);
        self.send(&Frame::Shutdown);
        let snapshot = match rx.recv() {
            Ok(snapshot) => snapshot,
            Err(_) => panic!("skysr-d connection lost: {}", self.shared.fault_message()),
        };
        // The daemon closes the connection after the farewell; reap the
        // reader thread so nothing lingers.
        self.shared.dead.store(true, Ordering::Release);
        if let Some(handle) = self.reader.lock().expect("client reader poisoned").take() {
            let _ = handle.join();
        }
        snapshot
    }

    fn regions(&self) -> Vec<RegionInfo> {
        self.registry.clone()
    }
}

impl Drop for RemoteService {
    fn drop(&mut self) {
        self.shared.dead.store(true, Ordering::Release);
        // Closing the write half makes the blocking reader observe EOF.
        if let Ok(writer) = self.writer.lock() {
            let _ = writer.shutdown(std::net::Shutdown::Both);
        }
        if let Some(handle) = self.reader.lock().expect("client reader poisoned").take() {
            let _ = handle.join();
        }
    }
}

/// The background demultiplexer: blocking-reads frames and routes them to
/// the request that owns them.
fn reader_loop(mut stream: TcpStream, shared: Arc<Shared>) {
    loop {
        let frame = match read_frame(&mut stream, MAX_FRAME) {
            Ok(frame) => frame,
            Err(e) => {
                // A close after shutdown is the expected end of life; any
                // other cause is recorded for the panic message of
                // whoever calls next.
                shared.poison(e.to_string());
                return;
            }
        };
        let mut demux = shared.demux.lock().expect("client demux poisoned");
        match frame {
            Frame::Progress { id, route } => {
                if let Some(pending) = demux.queries.get(&id) {
                    if let Some(progress) = &pending.progress {
                        // The caller may have stopped listening (deadline
                        // cutoff dropped the receiver) — not an error.
                        let _ = progress.send(route);
                    }
                }
            }
            Frame::Final { id, response } => {
                if let Some(pending) = demux.queries.remove(&id) {
                    let _ = pending.reply.send(Ok(response));
                }
            }
            Frame::QueryFailed { id, error } => {
                if let Some(pending) = demux.queries.remove(&id) {
                    let _ = pending.reply.send(Err(error));
                }
            }
            Frame::MetricsRep(snapshot) => {
                if let Some(waiter) = demux.metrics.pop_front() {
                    let _ = waiter.send(*snapshot);
                }
            }
            Frame::WeightsPublished { epoch } => {
                if let Some(waiter) = demux.epochs.pop_front() {
                    let _ = waiter.send(epoch);
                }
            }
            Frame::Fault { message } => {
                drop(demux);
                shared.poison(format!("server fault: {message}"));
                return;
            }
            Frame::Hello { .. }
            | Frame::Welcome { .. }
            | Frame::Submit { .. }
            | Frame::MetricsReq
            | Frame::PublishWeights(_)
            | Frame::Shutdown => {
                drop(demux);
                shared.poison("server sent a client-to-server frame".into());
                return;
            }
        }
    }
}
