//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) subset of the `rand` API the workspace uses:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic generator
//!   (xoshiro256++ seeded via SplitMix64);
//! * [`SeedableRng::seed_from_u64`];
//! * [`RngExt::random`] for `f64`, `bool`, `u32`, `u64`;
//! * [`RngExt::random_range`] over half-open integer ranges;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Streams are deterministic per seed but are **not** bit-compatible with
//! the upstream `rand` crate — everything downstream only relies on
//! per-seed determinism, never on specific values.

use std::ops::Range;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministically derives full generator state from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from the "standard" distribution of a type: uniform over the
/// domain for integers and `bool`, uniform in `[0, 1)` for floats.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Integer types usable with [`RngExt::random_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[start, end)`. `end` must be `> start`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                let span = (end - start) as u64;
                // Multiply-shift bounded sampling (Lemire); the residual
                // bias over a 64-bit draw is negligible for our purposes.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

impl_uniform_int!(u32, u64, usize);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`]. Mirrors `rand::Rng` (named `RngExt` upstream since 0.10).
pub trait RngExt: RngCore {
    /// A value from the type's standard distribution.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in the half-open `range`.
    ///
    /// # Panics
    /// If the range is empty.
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "cannot sample from an empty range");
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// state derived from the seed with SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                // Modulo bias over u64 is immaterial for shuffling.
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(3usize..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range appear");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(4);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "{trues}");
    }
}
