//! Regenerates Tables 1 and 9: the worked example skyline route sets.
fn main() {
    skysr_bench::experiments::table1_and_9();
}
