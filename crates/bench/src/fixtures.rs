//! Hand-crafted scenario fixtures reproducing the paper's worked examples.
//!
//! * [`table1_fixture`] — the New York walk of Table 1 (cupcake shop →
//!   art museum → jazz club). Edge weights are engineered so the exact
//!   four skyline rows of Table 1 appear, metre for metre.
//! * [`table9_fixture`] — the Tokyo night out of Table 9 / §7.5 (beer
//!   garden → sushi restaurant → sake bar, ending at the hotel), where a
//!   "Bar" route dramatically undercuts the perfect "Beer Garden" route.

use skysr_category::{foursquare::foursquare_forest, CategoryForest};
use skysr_core::{PoiTable, SkySrQuery};
use skysr_graph::{GraphBuilder, RoadNetwork, VertexId};

/// A self-contained scenario: graph + forest + PoIs + the query to run.
pub struct Scenario {
    /// Road network.
    pub graph: RoadNetwork,
    /// Foursquare-style forest.
    pub forest: CategoryForest,
    /// PoI table (finalised).
    pub pois: PoiTable,
    /// The scenario's query.
    pub query: SkySrQuery,
    /// Destination for the Table 9 variant (the hotel), if any.
    pub destination: Option<VertexId>,
}

impl Scenario {
    /// Name of the category of PoI vertex `v` (first category).
    pub fn poi_label(&self, v: VertexId) -> &str {
        self.pois.categories_of(v).first().map(|&c| self.forest.name(c)).unwrap_or("?")
    }
}

/// Builds the Table 1 scenario. The skyline of the returned query is
/// exactly the paper's four rows:
///
/// | metres | route |
/// |---|---|
/// | 3239 | Cupcake Shop → Art Museum → Jazz Club |
/// | 1858 | Dessert Shop → Art Museum → Jazz Club |
/// | 1392 | Dessert Shop → Museum → Jazz Club |
/// | 823  | Dessert Shop → Museum → Music Venue |
pub fn table1_fixture() -> Scenario {
    let forest = foursquare_forest();
    let cat = |n: &str| forest.by_name(n).unwrap_or_else(|| panic!("missing category {n}"));

    let mut g = GraphBuilder::new();
    let vq = g.add_vertex(); // 0: start (somewhere in Manhattan)
    let cupcake = g.add_vertex(); // 1
    let dessert = g.add_vertex(); // 2
    let art_museum = g.add_vertex(); // 3
    let museum = g.add_vertex(); // 4
    let jazz = g.add_vertex(); // 5
    let music_venue = g.add_vertex(); // 6

    // Engineered distances (metres); see module docs.
    g.add_edge(vq, cupcake, 1500.0);
    g.add_edge(cupcake, art_museum, 781.0);
    g.add_edge(vq, dessert, 200.0);
    g.add_edge(dessert, museum, 300.0);
    g.add_edge(dessert, art_museum, 700.0);
    g.add_edge(museum, jazz, 892.0);
    g.add_edge(museum, music_venue, 323.0);
    g.add_edge(art_museum, jazz, 958.0);
    let graph = g.build();

    let mut pois = PoiTable::new(graph.num_vertices());
    pois.add_poi(cupcake, cat("Cupcake Shop"));
    pois.add_poi(dessert, cat("Dessert Shop"));
    pois.add_poi(art_museum, cat("Art Museum"));
    pois.add_poi(museum, cat("Museum"));
    pois.add_poi(jazz, cat("Jazz Club"));
    pois.add_poi(music_venue, cat("Music Venue"));
    pois.finalize(&forest);

    let query = SkySrQuery::new(vq, [cat("Cupcake Shop"), cat("Art Museum"), cat("Jazz Club")]);
    Scenario { graph, forest, pois, query, destination: None }
}

/// Builds the Table 9 scenario: ⟨Beer Garden, Sushi Restaurant, Sake Bar⟩
/// from the current location, ending at the hotel. The perfect route is
/// long (the only beer garden is across town); swapping the beer garden
/// for a nearby plain bar shortens the trip dramatically — the paper's
/// 7451 m vs 1295 m contrast.
pub fn table9_fixture() -> Scenario {
    let forest = foursquare_forest();
    let cat = |n: &str| forest.by_name(n).unwrap_or_else(|| panic!("missing category {n}"));

    let mut g = GraphBuilder::new();
    let start = g.add_vertex(); // 0
    let beer_garden = g.add_vertex(); // 1: far across town
    let bar = g.add_vertex(); // 2: around the corner
    let sushi_a = g.add_vertex(); // 3: near the bar
    let sushi_b = g.add_vertex(); // 4: near the beer garden
    let sake_a = g.add_vertex(); // 5: near sushi_a
    let sake_b = g.add_vertex(); // 6: near sushi_b
    let hotel = g.add_vertex(); // 7
    g.add_edge(start, beer_garden, 3300.0);
    g.add_edge(start, bar, 250.0);
    g.add_edge(bar, sushi_a, 400.0);
    g.add_edge(sushi_a, sake_a, 345.0);
    g.add_edge(sake_a, hotel, 300.0);
    g.add_edge(beer_garden, sushi_b, 2000.0);
    g.add_edge(sushi_b, sake_b, 1500.0);
    g.add_edge(sake_b, hotel, 651.0);
    g.add_edge(hotel, start, 500.0);
    let graph = g.build();

    let mut pois = PoiTable::new(graph.num_vertices());
    pois.add_poi(beer_garden, cat("Beer Garden"));
    pois.add_poi(bar, cat("Pub")); // a plain bar-tree PoI
    pois.add_poi(sushi_a, cat("Sushi Restaurant"));
    pois.add_poi(sushi_b, cat("Sushi Restaurant"));
    pois.add_poi(sake_a, cat("Sake Bar"));
    pois.add_poi(sake_b, cat("Sake Bar"));
    pois.finalize(&forest);

    let query =
        SkySrQuery::new(start, [cat("Beer Garden"), cat("Sushi Restaurant"), cat("Sake Bar")]);
    Scenario { graph, forest, pois, query, destination: Some(hotel) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysr_core::bssr::Bssr;
    use skysr_core::QueryContext;
    use skysr_graph::Cost;

    #[test]
    fn table1_reproduces_all_four_rows() {
        let s = table1_fixture();
        let ctx = QueryContext::new(&s.graph, &s.forest, &s.pois);
        let result = Bssr::new(&ctx).run(&s.query).unwrap();
        let rows: Vec<(f64, String)> = result
            .routes
            .iter()
            .map(|r| {
                (
                    r.length.get(),
                    r.pois.iter().map(|&p| s.poi_label(p)).collect::<Vec<_>>().join(" -> "),
                )
            })
            .collect();
        assert_eq!(rows.len(), 4, "{rows:?}");
        assert_eq!(rows[0].0, 823.0);
        assert_eq!(rows[0].1, "Dessert Shop -> Museum -> Music Venue");
        assert_eq!(rows[1].0, 1392.0);
        assert_eq!(rows[1].1, "Dessert Shop -> Museum -> Jazz Club");
        assert_eq!(rows[2].0, 1858.0);
        assert_eq!(rows[2].1, "Dessert Shop -> Art Museum -> Jazz Club");
        assert_eq!(rows[3].0, 3239.0);
        assert_eq!(rows[3].1, "Cupcake Shop -> Art Museum -> Jazz Club");
        // Semantic scores strictly decrease with length (skyline shape).
        for w in result.routes.windows(2) {
            assert!(w[0].semantic > w[1].semantic);
        }
    }

    #[test]
    fn table9_bar_route_undercuts_beer_garden_route() {
        let s = table9_fixture();
        let ctx = QueryContext::new(&s.graph, &s.forest, &s.pois);
        let dq = skysr_core::variants::destination::DestinationQuery::new(
            s.query.clone(),
            s.destination.unwrap(),
        );
        let result = dq.run(&ctx, skysr_core::bssr::BssrConfig::default()).unwrap();
        // Table 9's exact numbers: the perfect route (beer garden across
        // town) costs 3300 + 2000 + 1500 + 651 = 7451 m including the
        // hotel leg; the "Bar" route costs 250 + 400 + 345 + 300 = 1295 m.
        let perfect = result.routes.iter().find(|r| r.semantic == 0.0).expect("perfect route");
        let semantic = result.routes.iter().find(|r| r.semantic > 0.0).expect("semantic route");
        assert_eq!(perfect.length, Cost::new(7451.0));
        assert_eq!(semantic.length, Cost::new(1295.0));
        // The semantic route swaps only the beer garden for the pub.
        assert_eq!(s.poi_label(semantic.pois[0]), "Pub");
        assert_eq!(s.poi_label(semantic.pois[1]), "Sushi Restaurant");
        assert_eq!(s.poi_label(semantic.pois[2]), "Sake Bar");
    }
}
