//! Connectivity utilities.
//!
//! The paper assumes a *connected* graph (§3). The dataset generators use
//! these helpers to verify (and, if necessary, repair) connectivity of the
//! synthetic road networks before PoIs are embedded.

use crate::csr::RoadNetwork;
use crate::VertexId;

/// Connected-component labelling (treats arcs as traversable in the stored
/// direction; for undirected graphs this is full connectivity).
#[derive(Clone, Debug)]
pub struct Components {
    /// Component id per vertex.
    pub label: Vec<u32>,
    /// Number of components.
    pub count: u32,
}

impl Components {
    /// Size of each component.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count as usize];
        for &l in &self.label {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Id of the largest component.
    pub fn largest(&self) -> u32 {
        self.sizes().iter().enumerate().max_by_key(|(_, &s)| s).map(|(i, _)| i as u32).unwrap_or(0)
    }
}

/// Labels connected components with an iterative BFS.
pub fn components(graph: &RoadNetwork) -> Components {
    let n = graph.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if label[start] != u32::MAX {
            continue;
        }
        label[start] = count;
        queue.push_back(VertexId(start as u32));
        while let Some(u) = queue.pop_front() {
            for (v, _) in graph.neighbors(u) {
                if label[v.index()] == u32::MAX {
                    label[v.index()] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    Components { label, count }
}

/// Whether the graph is connected (single component; empty graphs count as
/// connected).
pub fn is_connected(graph: &RoadNetwork) -> bool {
    graph.num_vertices() == 0 || components(graph).count == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn single_component_detected() {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..4).map(|_| b.add_vertex()).collect();
        for w in v.windows(2) {
            b.add_edge(w[0], w[1], 1.0);
        }
        let g = b.build();
        assert!(is_connected(&g));
        assert_eq!(components(&g).count, 1);
    }

    #[test]
    fn two_components_detected() {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..4).map(|_| b.add_vertex()).collect();
        b.add_edge(v[0], v[1], 1.0);
        b.add_edge(v[2], v[3], 1.0);
        let g = b.build();
        let c = components(&g);
        assert_eq!(c.count, 2);
        assert!(!is_connected(&g));
        assert_eq!(c.sizes(), vec![2, 2]);
    }

    #[test]
    fn largest_component_identified() {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..5).map(|_| b.add_vertex()).collect();
        b.add_edge(v[0], v[1], 1.0);
        b.add_edge(v[1], v[2], 1.0);
        b.add_edge(v[3], v[4], 1.0);
        let g = b.build();
        let c = components(&g);
        assert_eq!(c.count, 2);
        assert_eq!(c.sizes()[c.largest() as usize], 3);
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = GraphBuilder::new().build();
        assert!(is_connected(&g));
    }

    #[test]
    fn isolated_vertices_are_own_components() {
        let mut b = GraphBuilder::new();
        b.add_vertex();
        b.add_vertex();
        b.add_vertex();
        let g = b.build();
        assert_eq!(components(&g).count, 3);
    }
}
