//! Aggregate service metrics: counters, latency histograms, snapshots.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use skysr_graph::EpochGcStats;

use crate::cache::CacheCounters;
use crate::plan::SeedSource;
use crate::telemetry::{Histogram, HistogramSnapshot, Rung, RungSummary};

/// At most this many skyline-size samples are retained; beyond it,
/// reservoir sampling keeps a uniform subset so the size summary stays
/// statistically faithful while memory stays bounded on long-lived
/// services. (Latency needs no reservoir — the log-bucketed
/// [`Histogram`]s summarise every observation exactly.)
const SAMPLE_CAP: usize = 65_536;

#[derive(Debug, Default)]
struct SampleSet {
    /// Skyline size per sampled query.
    samples: Vec<u32>,
    /// Total samples offered (≥ `samples.len()`).
    seen: u64,
    /// SplitMix64 state for reservoir replacement choices.
    rng: u64,
}

impl SampleSet {
    /// Algorithm R: uniform reservoir over everything offered so far.
    fn offer(&mut self, sample: u32) {
        self.seen += 1;
        if self.samples.len() < SAMPLE_CAP {
            self.samples.push(sample);
            return;
        }
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let j = (z ^ (z >> 31)) % self.seen;
        if let Some(slot) = self.samples.get_mut(j as usize) {
            *slot = sample;
        }
    }
}

/// Where one response's time went — recorded split so saturation (queue
/// wait under open-loop overload) never masquerades as service time.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyBreakdown {
    /// Submission → dequeue: time spent waiting in the bounded queue.
    pub queue_wait: Duration,
    /// Dequeue → completion: planning, coalesced parking, engine work,
    /// cache fill.
    pub service: Duration,
    /// The engine-execution portion of `service` (search or repair);
    /// `None` when no engine ran for this response (cache hits, coalesced
    /// followers).
    pub engine: Option<Duration>,
}

impl LatencyBreakdown {
    /// End-to-end latency (what callers experience).
    pub fn total(&self) -> Duration {
        self.queue_wait + self.service
    }

    /// A breakdown with everything attributed to service time — for tests
    /// and callers that never queued.
    pub fn service_only(service: Duration) -> LatencyBreakdown {
        LatencyBreakdown { queue_wait: Duration::ZERO, service, engine: None }
    }
}

/// How one successfully answered query was served — drives which counters
/// [`MetricsRecorder::record`] bumps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Served {
    /// A BSSR search ran; `seeded` records which cached skyline
    /// warm-started it (semantic reuse), if any actually contributed
    /// seeds.
    Search {
        /// The reuse source whose seeds survived into the skyline set
        /// (`None` for a cold search, or when the probe came up dry).
        seeded: Option<SeedSource>,
    },
    /// Answered from the result cache.
    CacheHit,
    /// Answered by joining another request's in-flight computation
    /// (request coalescing).
    Coalesced,
    /// Answered by incrementally repairing a cached skyline from an older
    /// epoch instead of recomputing it (a subset of executed work).
    Repaired {
        /// The repair could not be resolved in place and fell back to a
        /// full warm-seeded re-search.
        fallback: bool,
        /// Cached routes proven untouched without any graph search.
        routes_untouched: usize,
        /// Cached routes whose legs were re-run at the new epoch.
        routes_rescored: usize,
    },
    /// Degraded mode: the request's deadline expired mid-engine, so the
    /// search stopped and returned the mutually non-dominated partial
    /// skyline proven so far. Every returned route is a genuine valid
    /// sequenced route dominated-or-equal by the exact skyline, but the
    /// set may be incomplete. Requests coalesced onto a truncated flight
    /// are also served `Approximate` — the flag must never be laundered
    /// away through sharing.
    Approximate,
}

/// Shared recorder the workers write into.
///
/// Counters and latency histograms are atomics (lock-free, contention-
/// free recording); skyline sizes go into a mutex-guarded, size-capped
/// reservoir (one push per query — negligible next to a BSSR search).
/// Latency is recorded as a [`LatencyBreakdown`]: end-to-end, queue-wait
/// and engine-time each get their own histogram, and end-to-end is
/// additionally keyed by serving [`Rung`] so per-rung tails are visible.
#[derive(Debug, Default)]
pub struct MetricsRecorder {
    completed: AtomicU64,
    failed: AtomicU64,
    executed: AtomicU64,
    coalesced: AtomicU64,
    seeded_prefix: AtomicU64,
    seeded_ancestor: AtomicU64,
    seeded_suffix: AtomicU64,
    stale_served: AtomicU64,
    repairs: AtomicU64,
    repair_fallbacks: AtomicU64,
    routes_untouched: AtomicU64,
    routes_rescored: AtomicU64,
    approximate_served: AtomicU64,
    rejected: AtomicU64,
    shed_deadline: AtomicU64,
    latency: Histogram,
    queue_wait: Histogram,
    engine: Histogram,
    rungs: [Histogram; 8],
    samples: Mutex<SampleSet>,
}

impl MetricsRecorder {
    /// Records one successfully answered query. `latency` carries the
    /// queue-wait / service / engine split; `served` tells whether a
    /// search actually ran and how the answer was shared.
    pub fn record(&self, latency: LatencyBreakdown, skyline_size: usize, served: Served) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        match served {
            Served::Search { seeded } => {
                self.executed.fetch_add(1, Ordering::Relaxed);
                match seeded {
                    Some(SeedSource::Prefix) => self.seeded_prefix.fetch_add(1, Ordering::Relaxed),
                    Some(SeedSource::Ancestor) => {
                        self.seeded_ancestor.fetch_add(1, Ordering::Relaxed)
                    }
                    Some(SeedSource::Suffix) => self.seeded_suffix.fetch_add(1, Ordering::Relaxed),
                    None => 0,
                };
            }
            Served::CacheHit => {}
            Served::Coalesced => {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
            }
            Served::Repaired { fallback, routes_untouched, routes_rescored } => {
                // A repair runs real graph work (legs / relevance ball /
                // fallback search), so it counts as executed — `hits +
                // coalesced + executed == completed` stays exact.
                self.executed.fetch_add(1, Ordering::Relaxed);
                if fallback {
                    self.repair_fallbacks.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.repairs.fetch_add(1, Ordering::Relaxed);
                }
                self.routes_untouched.fetch_add(routes_untouched as u64, Ordering::Relaxed);
                self.routes_rescored.fetch_add(routes_rescored as u64, Ordering::Relaxed);
            }
            Served::Approximate => {
                // Not `executed`: that counter means "an engine run produced
                // an exact answer" (the invariant the span audit checks).
                // Approximate responses get their own term, so `completed ==
                // executed + hits + coalesced + approximate_served` stays
                // exact.
                self.approximate_served.fetch_add(1, Ordering::Relaxed);
            }
        }
        let total = latency.total();
        self.latency.record(total);
        self.queue_wait.record(latency.queue_wait);
        if let Some(engine) = latency.engine {
            self.engine.record(engine);
        }
        self.rungs[Rung::of(served).index()].record(total);
        self.samples
            .lock()
            .expect("metrics poisoned")
            .offer(skyline_size.min(u32::MAX as usize) as u32);
    }

    /// Records a query rejected by validation.
    pub fn record_failure(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a *stale serve*: a response whose skyline was computed under
    /// a different weight epoch than the request was pinned to.
    ///
    /// The epoch-stamped cache refuses cross-epoch answers by construction,
    /// so this counter staying at zero is the serving layer's staleness
    /// guarantee — CI gates on it. A nonzero value means the invalidation
    /// layer is broken.
    pub fn record_stale_serve(&self) {
        self.stale_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request the admission gate refused outright: its deadline
    /// was judged unmeetable given the current backlog and cost model, so
    /// no work was queued. The request was answered
    /// [`QueryError::Overloaded`](skysr_core::error::QueryError) — neither
    /// `completed` nor `failed` (it was not invalid, just shed).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request whose deadline expired while it sat in the queue:
    /// it was dropped at dequeue without executing and answered
    /// [`QueryError::Overloaded`](skysr_core::error::QueryError).
    pub fn record_shed_deadline(&self) {
        self.shed_deadline.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot over everything recorded so far. `wall` is the wall-clock
    /// window the caller observed (used for throughput); `cache` the
    /// cache's counters and `epochs` the weight-epoch history accounting
    /// at the same instant.
    pub fn snapshot(
        &self,
        wall: Duration,
        cache: CacheCounters,
        epochs: EpochGcStats,
    ) -> MetricsSnapshot {
        let sizes = self.samples.lock().expect("metrics poisoned").samples.clone();
        let completed = self.completed.load(Ordering::Relaxed);
        let executed = self.executed.load(Ordering::Relaxed);
        let latency_hist = self.latency.snapshot();
        MetricsSnapshot {
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            executed,
            coalesced: self.coalesced.load(Ordering::Relaxed),
            seeded_prefix: self.seeded_prefix.load(Ordering::Relaxed),
            seeded_ancestor: self.seeded_ancestor.load(Ordering::Relaxed),
            seeded_suffix: self.seeded_suffix.load(Ordering::Relaxed),
            stale_served: self.stale_served.load(Ordering::Relaxed),
            repairs: self.repairs.load(Ordering::Relaxed),
            repair_fallbacks: self.repair_fallbacks.load(Ordering::Relaxed),
            routes_untouched: self.routes_untouched.load(Ordering::Relaxed),
            routes_rescored: self.routes_rescored.load(Ordering::Relaxed),
            approximate_served: self.approximate_served.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            wall,
            throughput_qps: if wall.as_secs_f64() > 0.0 {
                completed as f64 / wall.as_secs_f64()
            } else {
                0.0
            },
            latency_mean: latency_hist.mean(),
            latency_p50: latency_hist.quantile(0.50),
            latency_p90: latency_hist.quantile(0.90),
            latency_p99: latency_hist.quantile(0.99),
            latency_max: latency_hist.max(),
            latency_hist,
            queue_wait_hist: self.queue_wait.snapshot(),
            engine_hist: self.engine.snapshot(),
            rungs: Rung::ALL
                .iter()
                .map(|&rung| RungSummary { rung, hist: self.rungs[rung.index()].snapshot() })
                .collect(),
            mean_skyline_size: if sizes.is_empty() {
                0.0
            } else {
                sizes.iter().map(|&s| s as f64).sum::<f64>() / sizes.len() as f64
            },
            max_skyline_size: sizes.iter().copied().max().unwrap_or(0) as usize,
            cache,
            epochs,
        }
    }
}

/// Aggregate view of a service's activity over an observation window.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Queries answered successfully (cache hits included).
    pub completed: u64,
    /// Queries rejected by validation.
    pub failed: u64,
    /// Queries that ran an actual BSSR search.
    pub executed: u64,
    /// Queries answered by joining another request's in-flight search
    /// (request coalescing). `executed + coalesced + cache hits =
    /// completed`.
    pub coalesced: u64,
    /// Searches warm-started from a cached *prefix* skyline (semantic
    /// reuse); a subset of `executed`.
    pub seeded_prefix: u64,
    /// Searches warm-started from a cached *ancestor-category* variant's
    /// skyline (a position's category replaced by one of its ancestors);
    /// a subset of `executed`.
    pub seeded_ancestor: u64,
    /// Searches warm-started from a cached *suffix* skyline (⟨c₂…c_k⟩
    /// prepended one leg); a subset of `executed`.
    pub seeded_suffix: u64,
    /// Responses served from a cache entry of a *different* weight epoch
    /// than the request was pinned to. Always zero unless the
    /// epoch-invalidation layer is broken — the CI staleness gate asserts
    /// on it.
    pub stale_served: u64,
    /// Cached skylines promoted to a newer epoch by incremental repair
    /// (the cheap tiers: untouched / rescored), without a full re-search.
    /// A subset of `executed`.
    pub repairs: u64,
    /// Repair attempts that had to fall back to a full warm-seeded
    /// re-search. Also a subset of `executed`; `repairs +
    /// repair_fallbacks` is the total number of repair attempts.
    pub repair_fallbacks: u64,
    /// Cached routes proven untouched by repair's lower-bound tier (no
    /// graph search at all), summed over all repair attempts.
    pub routes_untouched: u64,
    /// Cached routes whose shortest-path legs were re-run at the new
    /// epoch, summed over all repair attempts.
    pub routes_rescored: u64,
    /// Responses served in degraded mode: the deadline expired mid-engine
    /// and the partial skyline proven so far was returned flagged
    /// approximate (leaders of truncated flights plus any requests
    /// coalesced onto them). Counted in `completed` — the caller got a
    /// valid (if incomplete) answer. `completed == executed + cache hits +
    /// coalesced + approximate_served`.
    pub approximate_served: u64,
    /// Requests the admission gate refused before queueing: deadline
    /// judged unmeetable under the current backlog. Answered
    /// `Overloaded`; counted in neither `completed` nor `failed`.
    pub rejected: u64,
    /// Requests whose deadline expired while queued: dropped at dequeue,
    /// never executed, answered `Overloaded`. Counted in neither
    /// `completed` nor `failed`.
    pub shed_deadline: u64,
    /// Observation window.
    pub wall: Duration,
    /// Completed queries per second of the window.
    pub throughput_qps: f64,
    /// Mean submission-to-completion latency (exact, over every response).
    pub latency_mean: Duration,
    /// Median latency (log-bucketed: within 1/32 above the true value).
    pub latency_p50: Duration,
    /// 90th-percentile latency.
    pub latency_p90: Duration,
    /// 99th-percentile latency.
    pub latency_p99: Duration,
    /// Worst observed latency (exact).
    pub latency_max: Duration,
    /// Full end-to-end latency histogram (every response; queueing
    /// included), mergeable across snapshots.
    pub latency_hist: HistogramSnapshot,
    /// Submission-to-dequeue wait histogram — the queueing share of
    /// `latency_hist`, split out so open-loop saturation shows honest
    /// service time.
    pub queue_wait_hist: HistogramSnapshot,
    /// Engine-execution histogram (search / repair time only; one sample
    /// per response that actually ran an engine).
    pub engine_hist: HistogramSnapshot,
    /// Per-rung end-to-end latency histograms, ladder order (one entry
    /// per [`Rung`], empty histograms included).
    pub rungs: Vec<RungSummary>,
    /// Mean number of skyline routes per answer.
    pub mean_skyline_size: f64,
    /// Largest skyline returned.
    pub max_skyline_size: usize,
    /// Result-cache counters at snapshot time.
    pub cache: CacheCounters,
    /// Weight-epoch history / GC accounting at snapshot time (retained
    /// overlays, compactions, rebases).
    pub epochs: EpochGcStats,
}

impl MetricsSnapshot {
    /// Folds `other` into `self` — how a [`crate::shard::Router`] builds
    /// the deployment-wide aggregate out of per-shard snapshots.
    ///
    /// Counters and histograms add exactly (bucket boundaries are fixed,
    /// so histogram merging loses nothing); the latency summaries are
    /// recomputed from the merged histogram. `wall` is the *longest* of
    /// the two windows — shards serve concurrently, not back-to-back —
    /// and `throughput_qps` is total completed over that window.
    /// `mean_skyline_size` is the completed-weighted combination of two
    /// sampled means. Cache counters sum; the epoch/GC gauges sum except
    /// `retention`, reported as the largest configured ring (each shard
    /// owns its own ring — there is no shared retention to report).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        let self_weight = self.completed as f64;
        let other_weight = other.completed as f64;
        if self_weight + other_weight > 0.0 {
            self.mean_skyline_size = (self.mean_skyline_size * self_weight
                + other.mean_skyline_size * other_weight)
                / (self_weight + other_weight);
        }
        self.max_skyline_size = self.max_skyline_size.max(other.max_skyline_size);

        self.completed += other.completed;
        self.failed += other.failed;
        self.executed += other.executed;
        self.coalesced += other.coalesced;
        self.seeded_prefix += other.seeded_prefix;
        self.seeded_ancestor += other.seeded_ancestor;
        self.seeded_suffix += other.seeded_suffix;
        self.stale_served += other.stale_served;
        self.repairs += other.repairs;
        self.repair_fallbacks += other.repair_fallbacks;
        self.routes_untouched += other.routes_untouched;
        self.routes_rescored += other.routes_rescored;
        self.approximate_served += other.approximate_served;
        self.rejected += other.rejected;
        self.shed_deadline += other.shed_deadline;

        self.wall = self.wall.max(other.wall);
        self.throughput_qps = if self.wall.as_secs_f64() > 0.0 {
            self.completed as f64 / self.wall.as_secs_f64()
        } else {
            0.0
        };

        self.latency_hist.merge(&other.latency_hist);
        self.queue_wait_hist.merge(&other.queue_wait_hist);
        self.engine_hist.merge(&other.engine_hist);
        self.latency_mean = self.latency_hist.mean();
        self.latency_p50 = self.latency_hist.quantile(0.50);
        self.latency_p90 = self.latency_hist.quantile(0.90);
        self.latency_p99 = self.latency_hist.quantile(0.99);
        self.latency_max = self.latency_hist.max();
        for (mine, theirs) in self.rungs.iter_mut().zip(&other.rungs) {
            debug_assert_eq!(mine.rung, theirs.rung, "rung summaries are ladder-ordered");
            mine.hist.merge(&theirs.hist);
        }

        self.cache.hits += other.cache.hits;
        self.cache.misses += other.cache.misses;
        self.cache.insertions += other.cache.insertions;
        self.cache.evictions += other.cache.evictions;
        self.cache.invalidations += other.cache.invalidations;
        self.cache.len += other.cache.len;

        self.epochs.retained += other.epochs.retained;
        self.epochs.retained_max += other.epochs.retained_max;
        self.epochs.retention = self.epochs.retention.max(other.epochs.retention);
        self.epochs.compacted += other.epochs.compacted;
        self.epochs.rebases += other.epochs.rebases;
        self.epochs.overlay_len += other.epochs.overlay_len;
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn ms(d: Duration) -> f64 {
            d.as_secs_f64() * 1e3
        }
        writeln!(f, "queries     {} completed, {} failed", self.completed, self.failed)?;
        let shared = self.completed - self.executed.min(self.completed);
        writeln!(
            f,
            "executed    {} searches ({} answers shared: {} cache hits, {} coalesced)",
            self.executed,
            shared,
            shared - self.coalesced.min(shared),
            self.coalesced
        )?;
        writeln!(
            f,
            "reuse       {} prefix-, {} ancestor-, {} suffix-seeded warm starts",
            self.seeded_prefix, self.seeded_ancestor, self.seeded_suffix
        )?;
        writeln!(
            f,
            "throughput  {:.1} queries/s over {:.2} s",
            self.throughput_qps,
            self.wall.as_secs_f64()
        )?;
        writeln!(
            f,
            "latency     mean {:.3} ms  p50 {:.3} ms  p90 {:.3} ms  p99 {:.3} ms  max {:.3} ms",
            ms(self.latency_mean),
            ms(self.latency_p50),
            ms(self.latency_p90),
            ms(self.latency_p99),
            ms(self.latency_max)
        )?;
        writeln!(
            f,
            "split       queue-wait p50 {:.3} ms  p99 {:.3} ms · engine p50 {:.3} ms  p99 {:.3} \
             ms ({} engine runs)",
            ms(self.queue_wait_hist.quantile(0.50)),
            ms(self.queue_wait_hist.quantile(0.99)),
            ms(self.engine_hist.quantile(0.50)),
            ms(self.engine_hist.quantile(0.99)),
            self.engine_hist.count()
        )?;
        writeln!(
            f,
            "rungs       {:<13} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "rung", "count", "p50 ms", "p90 ms", "p99 ms", "p99.9 ms", "max ms"
        )?;
        for r in &self.rungs {
            if r.hist.is_empty() {
                continue;
            }
            writeln!(
                f,
                "            {:<13} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                r.rung.label(),
                r.hist.count(),
                ms(r.hist.quantile(0.50)),
                ms(r.hist.quantile(0.90)),
                ms(r.hist.quantile(0.99)),
                ms(r.hist.quantile(0.999)),
                ms(r.hist.max())
            )?;
        }
        writeln!(
            f,
            "cache       {:.1}% hit rate ({} hits / {} misses, {} evictions, {} resident)",
            self.cache.hit_rate() * 100.0,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.len
        )?;
        writeln!(
            f,
            "staleness   {} entries invalidated by epoch change, {} stale serves",
            self.cache.invalidations, self.stale_served
        )?;
        writeln!(
            f,
            "repair      {} skylines repaired in place, {} fell back to re-search ({} routes \
             untouched, {} rescored)",
            self.repairs, self.repair_fallbacks, self.routes_untouched, self.routes_rescored
        )?;
        writeln!(
            f,
            "overload    {} rejected at admission, {} shed expired in queue, {} served \
             approximate",
            self.rejected, self.shed_deadline, self.approximate_served
        )?;
        {
            let e = &self.epochs;
            let cap =
                if e.retention == 0 { "unlimited".to_owned() } else { e.retention.to_string() };
            writeln!(
                f,
                "epochs      {} retained (max {}, cap {}), {} overlays compacted, {} rebases, \
                 {} overlay arcs",
                e.retained, e.retained_max, cap, e.compacted, e.rebases, e.overlay_len
            )?;
        }
        write!(
            f,
            "skylines    {:.2} routes/answer mean, {} max",
            self.mean_skyline_size, self.max_skyline_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Asserts a bucketed duration is within the histogram's 1/32 bound
    /// above the exact value.
    fn assert_bucketed(got: Duration, exact: Duration) {
        assert!(got >= exact, "bucketed {got:?} below exact {exact:?}");
        let slack = Duration::from_nanos((exact.as_nanos() as u64 / 32).max(1));
        assert!(got <= exact + slack, "bucketed {got:?} beyond {exact:?} + 1/32");
    }

    fn lat(us: u64) -> LatencyBreakdown {
        LatencyBreakdown::service_only(Duration::from_micros(us))
    }

    #[test]
    fn reservoir_bounds_memory_and_stays_representative() {
        let rec = MetricsRecorder::default();
        // Far beyond the cap, all with the same latency: the reservoir must
        // stay capped and every retained sample must be a real observation.
        for _ in 0..(SAMPLE_CAP as u64 + 10_000) {
            rec.record(lat(5), 1, Served::Search { seeded: None });
        }
        let inner = rec.samples.lock().unwrap();
        assert_eq!(inner.samples.len(), SAMPLE_CAP);
        assert_eq!(inner.seen, SAMPLE_CAP as u64 + 10_000);
        assert!(inner.samples.iter().all(|&s| s == 1));
        drop(inner);
        let snap =
            rec.snapshot(Duration::from_secs(1), CacheCounters::default(), EpochGcStats::default());
        assert_eq!(snap.completed, SAMPLE_CAP as u64 + 10_000);
        // Histograms summarise *every* sample, not a reservoir subset.
        assert_eq!(snap.latency_hist.count(), SAMPLE_CAP as u64 + 10_000);
        assert_bucketed(snap.latency_p50, Duration::from_micros(5));
    }

    #[test]
    fn snapshot_aggregates_counters_and_sizes() {
        let rec = MetricsRecorder::default();
        rec.record(lat(100), 2, Served::Search { seeded: None });
        rec.record(lat(300), 4, Served::CacheHit);
        rec.record(lat(200), 3, Served::Search { seeded: Some(SeedSource::Prefix) });
        rec.record(lat(150), 2, Served::Coalesced);
        rec.record(lat(120), 2, Served::Search { seeded: Some(SeedSource::Ancestor) });
        rec.record(lat(130), 2, Served::Search { seeded: Some(SeedSource::Suffix) });
        rec.record_failure();
        let snap =
            rec.snapshot(Duration::from_secs(2), CacheCounters::default(), EpochGcStats::default());
        assert_eq!(snap.completed, 6);
        assert_eq!(snap.executed, 4);
        assert_eq!(snap.coalesced, 1);
        assert_eq!(snap.seeded_prefix, 1);
        assert_eq!(snap.seeded_ancestor, 1);
        assert_eq!(snap.seeded_suffix, 1);
        assert_eq!(snap.failed, 1);
        assert!((snap.throughput_qps - 3.0).abs() < 1e-12);
        assert_bucketed(snap.latency_p50, Duration::from_micros(130));
        assert_eq!(snap.latency_max, Duration::from_micros(300), "max is tracked exactly");
        assert!((snap.mean_skyline_size - 2.5).abs() < 1e-12);
        assert_eq!(snap.max_skyline_size, 4);
        // Per-rung histograms partition the responses.
        let count_of = |r: Rung| {
            snap.rungs.iter().find(|s| s.rung == r).expect("all rungs present").hist.count()
        };
        assert_eq!(count_of(Rung::Cold), 1);
        assert_eq!(count_of(Rung::ExactHit), 1);
        assert_eq!(count_of(Rung::Coalesced), 1);
        assert_eq!(count_of(Rung::WarmPrefix), 1);
        assert_eq!(count_of(Rung::WarmAncestor), 1);
        assert_eq!(count_of(Rung::WarmSuffix), 1);
        assert_eq!(count_of(Rung::Repaired), 0);
        assert_eq!(snap.rungs.iter().map(|s| s.hist.count()).sum::<u64>(), snap.completed);
        // The report renders without panicking and mentions the headline
        // numbers.
        let text = snap.to_string();
        assert!(text.contains("6 completed"), "{text}");
        assert!(text.contains("1 coalesced"), "{text}");
        assert!(text.contains("1 prefix-, 1 ancestor-, 1 suffix-seeded"), "{text}");
        assert!(text.contains("queries/s"), "{text}");
        assert!(text.contains("0 stale serves"), "{text}");
        assert!(text.contains("split       queue-wait"), "{text}");
        assert!(text.contains("warm_prefix"), "{text}");
        assert!(!text.contains("repaired  "), "empty rungs are omitted: {text}");
    }

    #[test]
    fn latency_breakdown_splits_queue_wait_from_service_time() {
        let rec = MetricsRecorder::default();
        // 1 ms of queueing around 10 µs of work: end-to-end is dominated
        // by the queue, and the split must expose that honestly.
        for _ in 0..100 {
            rec.record(
                LatencyBreakdown {
                    queue_wait: Duration::from_millis(1),
                    service: Duration::from_micros(10),
                    engine: Some(Duration::from_micros(8)),
                },
                1,
                Served::Search { seeded: None },
            );
        }
        let snap =
            rec.snapshot(Duration::from_secs(1), CacheCounters::default(), EpochGcStats::default());
        assert_bucketed(snap.latency_p50, Duration::from_micros(1_010));
        assert_bucketed(snap.queue_wait_hist.quantile(0.5), Duration::from_millis(1));
        assert_bucketed(snap.engine_hist.quantile(0.5), Duration::from_micros(8));
        assert_eq!(snap.engine_hist.count(), 100);
        // A cache hit records no engine sample.
        rec.record(lat(5), 1, Served::CacheHit);
        let snap =
            rec.snapshot(Duration::from_secs(1), CacheCounters::default(), EpochGcStats::default());
        assert_eq!(snap.engine_hist.count(), 100);
        assert_eq!(snap.latency_hist.count(), 101);
    }

    #[test]
    fn overload_counters_keep_the_completed_partition_exact() {
        let rec = MetricsRecorder::default();
        rec.record(lat(40), 1, Served::Search { seeded: None });
        rec.record(lat(5), 1, Served::CacheHit);
        rec.record(lat(8), 1, Served::Coalesced);
        rec.record(lat(30), 1, Served::Approximate);
        rec.record(lat(25), 2, Served::Approximate);
        rec.record_rejected();
        rec.record_shed_deadline();
        rec.record_shed_deadline();
        let snap =
            rec.snapshot(Duration::from_secs(1), CacheCounters::default(), EpochGcStats::default());
        // Shed requests never reach `completed` or `failed`; approximate
        // responses complete without counting as exact executions.
        assert_eq!(snap.completed, 5);
        assert_eq!(snap.failed, 0);
        assert_eq!(snap.executed, 1);
        assert_eq!(snap.approximate_served, 2);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.shed_deadline, 2);
        let hits = snap.rungs.iter().find(|s| s.rung == Rung::ExactHit).unwrap().hist.count();
        assert_eq!(snap.completed, snap.executed + hits + snap.coalesced + snap.approximate_served);
        let approx = snap.rungs.iter().find(|s| s.rung == Rung::Approximate).unwrap();
        assert_eq!(approx.hist.count(), 2);
        assert_eq!(snap.rungs.iter().map(|s| s.hist.count()).sum::<u64>(), snap.completed);
        let text = snap.to_string();
        assert!(text.contains("1 rejected at admission"), "{text}");
        assert!(text.contains("2 shed expired in queue"), "{text}");
        assert!(text.contains("2 served approximate"), "{text}");
        assert!(text.contains("approximate"), "{text}");
    }

    #[test]
    fn stale_serves_are_counted_and_reported() {
        // The tripwire behind the CI staleness gate: in a healthy service
        // this counter is never bumped; when it is, the snapshot and the
        // rendered report must expose it.
        let rec = MetricsRecorder::default();
        let clean =
            rec.snapshot(Duration::from_secs(1), CacheCounters::default(), EpochGcStats::default());
        assert_eq!(clean.stale_served, 0);
        rec.record_stale_serve();
        rec.record_stale_serve();
        let snap =
            rec.snapshot(Duration::from_secs(1), CacheCounters::default(), EpochGcStats::default());
        assert_eq!(snap.stale_served, 2);
        assert!(snap.to_string().contains("2 stale serves"), "{snap}");
    }
}
