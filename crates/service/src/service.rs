//! The query service: shared context + worker pool + cache + metrics.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use skysr_core::bssr::{Bssr, BssrConfig};
use skysr_core::error::QueryError;
use skysr_core::query::SkySrQuery;
use skysr_core::route::SkylineRoute;

use crate::cache::{QueryKey, ResultCache};
use crate::context::ServiceContext;
use crate::metrics::{MetricsRecorder, MetricsSnapshot};
use crate::pool::BoundedQueue;

/// Sizing and engine configuration of a [`QueryService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads. `0` means "one per available CPU".
    pub workers: usize,
    /// Bounded submission-queue capacity; full ⇒ `submit` blocks.
    pub queue_capacity: usize,
    /// Result-cache entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Engine configuration every worker runs with.
    pub engine: BssrConfig,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 0,
            queue_capacity: 256,
            cache_capacity: 1024,
            engine: BssrConfig::default(),
        }
    }
}

/// A successfully answered query.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The skyline routes, shared with the cache (and other waiters).
    pub routes: Arc<[SkylineRoute]>,
    /// Whether the answer came from the result cache.
    pub cache_hit: bool,
    /// Submission-to-completion latency (queueing included).
    pub latency: Duration,
}

/// Waitable handle for one submitted query.
pub struct Ticket {
    rx: mpsc::Receiver<Result<QueryResponse, QueryError>>,
}

impl Ticket {
    /// Blocks until the worker finishes this query.
    pub fn wait(self) -> Result<QueryResponse, QueryError> {
        self.rx.recv().expect("worker dropped a job without responding")
    }
}

struct Job {
    query: SkySrQuery,
    submitted: Instant,
    reply: mpsc::Sender<Result<QueryResponse, QueryError>>,
}

/// A multi-threaded in-process SkySR query engine.
///
/// Construction spawns the worker pool; each worker owns a [`Bssr`] engine
/// (reusing its Dijkstra workspace and scratch state across queries) over
/// the shared [`ServiceContext`]. Dropping the service closes the
/// submission queue, drains in-flight work and joins every worker.
pub struct QueryService {
    ctx: Arc<ServiceContext>,
    queue: Arc<BoundedQueue<Job>>,
    cache: Arc<ResultCache>,
    metrics: Arc<MetricsRecorder>,
    workers: Vec<JoinHandle<()>>,
    started: Instant,
    config: ServiceConfig,
}

impl QueryService {
    /// Spawns a service over `ctx` with `config`.
    pub fn new(ctx: Arc<ServiceContext>, config: ServiceConfig) -> QueryService {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            config.workers
        };
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity.max(1)));
        // Capacity 0 disables caching: keep a 1-entry cache object for
        // uniform counters but never consult it.
        let caching = config.cache_capacity > 0;
        let cache = Arc::new(ResultCache::new(config.cache_capacity.max(1)));
        let metrics = Arc::new(MetricsRecorder::default());

        let handles = (0..workers)
            .map(|i| {
                let ctx = Arc::clone(&ctx);
                let queue = Arc::clone(&queue);
                let cache = Arc::clone(&cache);
                let metrics = Arc::clone(&metrics);
                let engine_cfg = config.engine;
                std::thread::Builder::new()
                    .name(format!("skysr-worker-{i}"))
                    .spawn(move || worker_loop(&ctx, &queue, &cache, &metrics, engine_cfg, caching))
                    .expect("spawning a worker thread")
            })
            .collect();

        QueryService {
            ctx,
            queue,
            cache,
            metrics,
            workers: handles,
            started: Instant::now(),
            config,
        }
    }

    /// Service with the default configuration.
    pub fn with_defaults(ctx: Arc<ServiceContext>) -> QueryService {
        QueryService::new(ctx, ServiceConfig::default())
    }

    /// Enqueues one query. Blocks while the submission queue is full
    /// (backpressure).
    ///
    /// # Panics
    /// If called after the service started shutting down (impossible
    /// through the public API, which consumes the service on shutdown).
    pub fn submit(&self, query: SkySrQuery) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let job = Job { query, submitted: Instant::now(), reply: tx };
        if self.queue.push(job).is_err() {
            unreachable!("submission queue closed while the service was alive");
        }
        Ticket { rx }
    }

    /// Submits every query and waits for all answers, preserving order.
    ///
    /// A batch larger than the queue capacity cannot deadlock the caller:
    /// the bounded queue holds only unstarted work and each ticket buffers
    /// its answer, so an oversized batch merely throttles submission to
    /// the workers' pace.
    pub fn run_batch(
        &self,
        queries: impl IntoIterator<Item = SkySrQuery>,
    ) -> Vec<Result<QueryResponse, QueryError>> {
        let tickets: Vec<Ticket> = queries.into_iter().map(|q| self.submit(q)).collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// The shared context.
    pub fn context(&self) -> &Arc<ServiceContext> {
        &self.ctx
    }

    /// The configuration the service was built with (with `workers`
    /// resolved to the actual pool size).
    pub fn config(&self) -> ServiceConfig {
        ServiceConfig { workers: self.workers.len(), ..self.config.clone() }
    }

    /// Metrics snapshot over the service's lifetime so far.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot(self.started.elapsed(), self.cache.counters())
    }

    /// Closes the queue, drains in-flight work and joins the workers.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_in_place();
        self.metrics()
    }

    fn shutdown_in_place(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            // Propagate worker panics loudly — except while already
            // unwinding, where a second panic would abort the process and
            // destroy the original diagnostic.
            if handle.join().is_err() && !std::thread::panicking() {
                panic!("worker panicked");
            }
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop(
    ctx: &ServiceContext,
    queue: &BoundedQueue<Job>,
    cache: &ResultCache,
    metrics: &MetricsRecorder,
    engine_cfg: BssrConfig,
    caching: bool,
) {
    let qctx = ctx.query_context();
    let mut engine = Bssr::with_config(&qctx, engine_cfg);
    while let Some(job) = queue.pop() {
        let key = if caching { QueryKey::canonicalize(&job.query, engine_cfg) } else { None };
        if let Some(routes) = cache.get(key.as_ref()) {
            let latency = job.submitted.elapsed();
            metrics.record(latency, routes.len(), true);
            let _ = job.reply.send(Ok(QueryResponse { routes, cache_hit: true, latency }));
            continue;
        }
        match engine.run(&job.query) {
            Ok(result) => {
                let routes: Arc<[SkylineRoute]> = result.routes.into();
                if let Some(key) = key {
                    cache.insert(key, Arc::clone(&routes));
                }
                let latency = job.submitted.elapsed();
                metrics.record(latency, routes.len(), false);
                let _ = job.reply.send(Ok(QueryResponse { routes, cache_hit: false, latency }));
            }
            Err(e) => {
                metrics.record_failure();
                let _ = job.reply.send(Err(e));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysr_core::paper_example::PaperExample;
    use skysr_graph::VertexId;

    fn service(workers: usize, cache: usize) -> (PaperExample, QueryService) {
        let ex = PaperExample::new();
        let ctx =
            Arc::new(ServiceContext::new(ex.graph.clone(), ex.forest.clone(), ex.pois.clone()));
        let cfg = ServiceConfig { workers, cache_capacity: cache, ..ServiceConfig::default() };
        (ex, QueryService::new(ctx, cfg))
    }

    #[test]
    fn answers_match_the_paper_example() {
        let (ex, service) = service(2, 16);
        let response = service.submit(ex.query()).wait().unwrap();
        assert_eq!(response.routes.len(), 2);
        assert!(!response.cache_hit);
        assert_eq!(response.routes[0].pois, vec![VertexId(6), VertexId(9), VertexId(8)]);
    }

    #[test]
    fn repeat_queries_hit_the_cache_with_identical_results() {
        let (ex, service) = service(1, 16);
        let cold = service.submit(ex.query()).wait().unwrap();
        let warm = service.submit(ex.query()).wait().unwrap();
        assert!(!cold.cache_hit);
        assert!(warm.cache_hit);
        assert_eq!(cold.routes, warm.routes);
        let m = service.metrics();
        assert_eq!(m.completed, 2);
        assert_eq!(m.executed, 1);
        assert_eq!(m.cache.hits, 1);
    }

    #[test]
    fn cache_capacity_zero_disables_caching() {
        let (ex, service) = service(1, 0);
        service.submit(ex.query()).wait().unwrap();
        let again = service.submit(ex.query()).wait().unwrap();
        assert!(!again.cache_hit);
        assert_eq!(service.metrics().executed, 2);
    }

    #[test]
    fn invalid_queries_report_errors_not_hangs() {
        let (_ex, service) = service(2, 16);
        let bad = SkySrQuery::new(VertexId(9_999), [skysr_category::CategoryId(0)]);
        let err = service.submit(bad).wait().unwrap_err();
        assert_eq!(err, QueryError::UnknownStart(VertexId(9_999)));
        assert_eq!(service.metrics().failed, 1);
    }

    #[test]
    fn batches_larger_than_the_queue_complete() {
        let (ex, _) = service(1, 0);
        let ctx =
            Arc::new(ServiceContext::new(ex.graph.clone(), ex.forest.clone(), ex.pois.clone()));
        let svc = QueryService::new(
            ctx,
            ServiceConfig { workers: 2, queue_capacity: 2, ..ServiceConfig::default() },
        );
        let outcomes = svc.run_batch((0..64).map(|_| ex.query()));
        assert_eq!(outcomes.len(), 64);
        for o in outcomes {
            assert_eq!(o.unwrap().routes.len(), 2);
        }
        assert_eq!(svc.shutdown().completed, 64);
    }
}
