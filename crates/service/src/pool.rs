//! Std-only worker-pool plumbing: a bounded MPMC queue with blocking
//! producers (backpressure) and blocking consumers.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A bounded multi-producer multi-consumer queue.
///
/// `push` blocks while the queue is full — submission pressure propagates
/// back to callers instead of growing an unbounded backlog. `pop` blocks
/// while the queue is empty and returns `None` once the queue is closed
/// *and* drained, which is the workers' shutdown signal.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

struct Inner<T> {
    buf: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// Queue admitting at most `capacity` pending items.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner {
                buf: VecDeque::with_capacity(capacity),
                capacity,
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueues `item`, blocking while the queue is full. Returns the item
    /// back as `Err` if the queue was closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if inner.closed {
                return Err(item);
            }
            if inner.buf.len() < inner.capacity {
                inner.buf.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).expect("queue poisoned");
        }
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.buf.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// blocked consumers wake up.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").buf.len()
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.push(2), Err(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_queue_blocks_until_a_consumer_drains() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1).is_ok())
        };
        // Give the producer time to hit the full queue.
        std::thread::sleep(Duration::from_millis(30));
        assert!(!producer.is_finished(), "push must block while full");
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything() {
        let q = Arc::new(BoundedQueue::new(8));
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        q.push(p * 1_000 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let mut expect: Vec<u64> =
            (0..4u64).flat_map(|p| (0..250u64).map(move |i| p * 1_000 + i)).collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
