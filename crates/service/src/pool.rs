//! Std-only worker-pool plumbing: a bounded, deadline/cost-ordered MPMC
//! scheduling queue with blocking producers (backpressure) and a
//! singleflight in-flight table for request coalescing.
//!
//! The queue replaced a plain FIFO when overload handling landed: under
//! open-loop saturation a FIFO lets one cold search starve a burst of
//! cache hits queued behind it, collapsing the cheap rungs' tail latency
//! for no reason. [`ScheduledQueue`] instead dequeues by *cost band*
//! first (the admission-time plan rung — see
//! [`CostClass`](crate::plan::CostClass)) and by *effective deadline*
//! within a band, with an aging bound so expensive work can never be
//! starved forever by a stream of cheap work.

use std::collections::{BinaryHeap, HashMap};
use std::hash::Hash;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Number of scheduling bands (cost classes) a [`ScheduledQueue`] keeps.
/// Classes beyond the last band are clamped into it.
pub const SCHED_BANDS: usize = 4;

/// Deadline-less entries order by submission time this far in the future —
/// behind every entry with a real deadline, FIFO among themselves.
const FAR: Duration = Duration::from_secs(365 * 24 * 3600);

/// Scheduling metadata for one queued item.
#[derive(Clone, Copy, Debug)]
pub struct SchedKey {
    /// Cost band, 0 = cheapest (served first). Clamped to
    /// [`SCHED_BANDS`]` - 1`.
    pub class: u8,
    /// Absolute deadline, if the request carries one. Within a band,
    /// earlier deadlines pop first; entries without one pop FIFO after
    /// every deadline-carrying entry.
    pub deadline: Option<Instant>,
    /// When the item was submitted — the aging clock.
    pub submitted: Instant,
}

impl SchedKey {
    /// A key that reproduces plain FIFO behaviour (band 0, no deadline):
    /// what callers without a cost model use.
    pub fn fifo(submitted: Instant) -> SchedKey {
        SchedKey { class: 0, deadline: None, submitted }
    }

    fn effective(&self) -> Instant {
        self.deadline.unwrap_or(self.submitted + FAR)
    }
}

struct Entry<T> {
    effective: Instant,
    submitted: Instant,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Entry<T>) -> bool {
        self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Entry<T>) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    /// Reversed on (effective deadline, seq) so [`BinaryHeap`]'s max-heap
    /// pops the earliest deadline, FIFO within ties.
    fn cmp(&self, other: &Entry<T>) -> std::cmp::Ordering {
        other.effective.cmp(&self.effective).then(other.seq.cmp(&self.seq))
    }
}

struct SchedInner<T> {
    bands: Vec<BinaryHeap<Entry<T>>>,
    len: usize,
    capacity: usize,
    closed: bool,
    seq: u64,
    age_limit: Duration,
}

impl<T> SchedInner<T> {
    /// The band the next pop should serve: any band whose head has aged
    /// past the limit (oldest such head first — the anti-starvation
    /// escape hatch), otherwise the cheapest non-empty band.
    fn select_band(&self) -> Option<usize> {
        let now = Instant::now();
        let mut aged: Option<(Instant, usize)> = None;
        for (b, heap) in self.bands.iter().enumerate() {
            if let Some(head) = heap.peek() {
                if now.duration_since(head.submitted) >= self.age_limit
                    && aged.is_none_or(|(oldest, _)| head.submitted < oldest)
                {
                    aged = Some((head.submitted, b));
                }
            }
        }
        aged.map(|(_, b)| b).or_else(|| self.bands.iter().position(|h| !h.is_empty()))
    }

    fn insert(&mut self, item: T, key: SchedKey) {
        let band = (key.class as usize).min(SCHED_BANDS - 1);
        self.seq += 1;
        self.bands[band].push(Entry {
            effective: key.effective(),
            submitted: key.submitted,
            seq: self.seq,
            item,
        });
        self.len += 1;
    }

    fn remove(&mut self) -> Option<T> {
        let band = self.select_band()?;
        let entry = self.bands[band].pop().expect("selected band is non-empty");
        self.len -= 1;
        Some(entry.item)
    }
}

/// A bounded multi-producer multi-consumer scheduling queue.
///
/// `push` blocks while the queue is full — submission pressure propagates
/// back to callers instead of growing an unbounded backlog. `pop` blocks
/// while the queue is empty and returns `None` once the queue is closed
/// *and* drained, which is the workers' shutdown signal.
///
/// Ordering is *not* FIFO: items pop cheapest cost band first, earliest
/// effective deadline within a band, except that a band whose head has
/// waited at least the queue's age limit is served unconditionally —
/// cheap rungs overtake cold searches, but cold searches cannot starve.
/// Expiry is the consumer's job: the queue never drops items, so the
/// dequeuer can account honestly for a deadline that lapsed in queue.
pub struct ScheduledQueue<T> {
    inner: Mutex<SchedInner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> ScheduledQueue<T> {
    /// Queue admitting at most `capacity` pending items; a band head older
    /// than `age_limit` preempts cheaper bands (see type docs).
    pub fn new(capacity: usize, age_limit: Duration) -> ScheduledQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        ScheduledQueue {
            inner: Mutex::new(SchedInner {
                bands: (0..SCHED_BANDS).map(|_| BinaryHeap::new()).collect(),
                len: 0,
                capacity,
                closed: false,
                seq: 0,
                age_limit,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueues `item` under `key`, blocking while the queue is full.
    /// Returns the item back as `Err` if the queue was closed.
    pub fn push(&self, item: T, key: SchedKey) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if inner.closed {
                return Err(item);
            }
            if inner.len < inner.capacity {
                inner.insert(item, key);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).expect("queue poisoned");
        }
    }

    /// Non-blocking [`ScheduledQueue::push`]: enqueues `item` if there is
    /// room right now, otherwise hands it straight back. `Err(item)` means
    /// "full or closed" — the caller decides whether to retry later (the
    /// network server parks the request and keeps its event loop turning
    /// instead of stalling every connection behind one slow producer).
    pub fn try_push(&self, item: T, key: SchedKey) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed || inner.len >= inner.capacity {
            return Err(item);
        }
        inner.insert(item, key);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the highest-priority item, blocking while the queue is
    /// empty. Returns `None` once the queue is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        self.pop_with_depth().map(|(item, _)| item)
    }

    /// Like [`ScheduledQueue::pop`], but also reports how many items
    /// remain queued *behind* the dequeued one, read under the same lock —
    /// the queue-depth figure a trace span records without a second lock
    /// round-trip.
    pub fn pop_with_depth(&self) -> Option<(T, usize)> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.remove() {
                let depth = inner.len;
                self.not_full.notify_one();
                return Some((item, depth));
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: pending items still drain, new pushes fail, and
    /// blocked consumers wake up.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").len
    }

    /// Queued items per band — the backlog composition the admission
    /// gate's wait estimate is computed from.
    pub fn band_lens(&self) -> [usize; SCHED_BANDS] {
        let inner = self.inner.lock().expect("queue poisoned");
        let mut lens = [0; SCHED_BANDS];
        for (slot, heap) in lens.iter_mut().zip(&inner.bands) {
            *slot = heap.len();
        }
        lens
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A singleflight-style in-flight table: the first caller to `begin` a key
/// becomes its *leader* (and runs the computation); every later caller
/// becomes a *follower* whose waiter is parked under the key until the
/// leader calls [`InflightTable::complete`] and answers them all with the
/// shared result.
///
/// The begin decision and the waiter parking are one atomic step under the
/// table lock — there is no window in which a follower can park under a
/// key whose leader has already completed. The converse race (a leader
/// completes, *then* a new request begins the same key) is handled by the
/// caller checking the result cache before `begin`, and by inserting into
/// the cache *before* completing (see `worker_loop` in `service.rs`); with
/// caching disabled such a latecomer simply leads a fresh computation.
pub struct InflightTable<K, W> {
    inner: Mutex<HashMap<K, Vec<W>>>,
}

/// Outcome of [`InflightTable::begin`].
pub enum Begin<W> {
    /// No one is computing this key: the caller leads, and gets its waiter
    /// back to answer directly when done.
    Leader(W),
    /// Someone else is computing this key; the waiter was parked.
    Joined,
}

impl<K: Eq + Hash, W> InflightTable<K, W> {
    /// Empty table.
    pub fn new() -> InflightTable<K, W> {
        InflightTable { inner: Mutex::new(HashMap::new()) }
    }

    /// Atomically claims `key` (becoming its leader) or parks `waiter`
    /// under the existing leader.
    pub fn begin(&self, key: K, waiter: W) -> Begin<W> {
        use std::collections::hash_map::Entry;
        match self.inner.lock().expect("inflight table poisoned").entry(key) {
            Entry::Occupied(mut e) => {
                e.get_mut().push(waiter);
                Begin::Joined
            }
            Entry::Vacant(e) => {
                e.insert(Vec::new());
                Begin::Leader(waiter)
            }
        }
    }

    /// Whether `key` currently has a flight in progress — the cheap probe
    /// admission-time classification uses to predict a coalesced join.
    pub fn contains(&self, key: &K) -> bool {
        self.inner.lock().expect("inflight table poisoned").contains_key(key)
    }

    /// Ends the flight for `key`, returning every parked waiter (empty if
    /// none joined). The leader must call this exactly once, even on
    /// failure — parked waiters would otherwise never be answered.
    pub fn complete(&self, key: &K) -> Vec<W> {
        self.inner.lock().expect("inflight table poisoned").remove(key).unwrap_or_default()
    }

    /// Number of keys currently in flight.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("inflight table poisoned").len()
    }

    /// Whether no key is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Eq + Hash, W> Default for InflightTable<K, W> {
    fn default() -> InflightTable<K, W> {
        InflightTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// An age limit no test waits out: scheduling order is purely
    /// band/deadline-driven.
    const NO_AGING: Duration = Duration::from_secs(3600);

    fn fifo_now() -> SchedKey {
        SchedKey::fifo(Instant::now())
    }

    fn classed(class: u8) -> SchedKey {
        SchedKey { class, deadline: None, submitted: Instant::now() }
    }

    #[test]
    fn try_push_rejects_when_full_or_closed_without_blocking() {
        let q: ScheduledQueue<u32> = ScheduledQueue::new(2, NO_AGING);
        assert_eq!(q.try_push(1, fifo_now()), Ok(()));
        assert_eq!(q.try_push(2, fifo_now()), Ok(()));
        assert_eq!(q.try_push(3, fifo_now()), Err(3), "full queue hands the item back");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3, fifo_now()), Ok(()), "room reopened after a pop");
        q.close();
        assert_eq!(q.try_push(4, fifo_now()), Err(4), "closed queue rejects");
        // Pending items still drain after close.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn singleflight_one_leader_many_followers() {
        let t: InflightTable<u32, &'static str> = InflightTable::new();
        let Begin::Leader(w) = t.begin(7, "leader") else {
            panic!("first begin must lead");
        };
        assert_eq!(w, "leader");
        assert!(t.contains(&7));
        assert!(!t.contains(&8));
        assert!(matches!(t.begin(7, "f1"), Begin::Joined));
        assert!(matches!(t.begin(7, "f2"), Begin::Joined));
        // A different key gets its own leader.
        assert!(matches!(t.begin(8, "other"), Begin::Leader("other")));
        assert_eq!(t.len(), 2);
        let waiters = t.complete(&7);
        assert_eq!(waiters, vec!["f1", "f2"]);
        assert!(!t.contains(&7));
        // The key is free again: the next begin leads.
        assert!(matches!(t.begin(7, "again"), Begin::Leader("again")));
        assert_eq!(t.complete(&7), Vec::<&str>::new());
        assert_eq!(t.complete(&8), Vec::<&str>::new());
        assert!(t.is_empty());
    }

    #[test]
    fn concurrent_begins_elect_exactly_one_leader() {
        let t: Arc<InflightTable<u32, usize>> = Arc::new(InflightTable::new());
        let handles: Vec<_> = (0..16)
            .map(|i| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || matches!(t.begin(1, i), Begin::Leader(_)))
            })
            .collect();
        let leaders = handles.into_iter().map(|h| h.join().unwrap()).filter(|&led| led).count();
        assert_eq!(leaders, 1);
        assert_eq!(t.complete(&1).len(), 15);
    }

    #[test]
    fn fifo_within_a_band_without_deadlines() {
        let q = ScheduledQueue::new(4, NO_AGING);
        for i in 0..4 {
            q.push(i, fifo_now()).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn cheap_bands_overtake_expensive_ones() {
        let q = ScheduledQueue::new(8, NO_AGING);
        q.push("cold-1", classed(3)).unwrap();
        q.push("repair", classed(1)).unwrap();
        q.push("cold-2", classed(3)).unwrap();
        q.push("hit", classed(0)).unwrap();
        assert_eq!(q.pop(), Some("hit"), "cheapest band first");
        assert_eq!(q.pop(), Some("repair"));
        assert_eq!(q.pop(), Some("cold-1"), "FIFO within the cold band");
        assert_eq!(q.pop(), Some("cold-2"));
    }

    #[test]
    fn earlier_deadline_pops_first_within_a_band() {
        let now = Instant::now();
        let at = |ms: u64| SchedKey {
            class: 2,
            deadline: Some(now + Duration::from_millis(ms)),
            submitted: now,
        };
        let q = ScheduledQueue::new(8, NO_AGING);
        q.push("lenient", at(500)).unwrap();
        q.push("urgent", at(10)).unwrap();
        q.push("none", SchedKey { class: 2, deadline: None, submitted: now }).unwrap();
        q.push("middling", at(100)).unwrap();
        assert_eq!(q.pop(), Some("urgent"));
        assert_eq!(q.pop(), Some("middling"));
        assert_eq!(q.pop(), Some("lenient"));
        assert_eq!(q.pop(), Some("none"), "deadline-less entries go last");
    }

    #[test]
    fn aging_band_head_preempts_cheaper_bands() {
        let age_limit = Duration::from_millis(20);
        let q = ScheduledQueue::new(16, age_limit);
        q.push("cold", classed(3)).unwrap();
        std::thread::sleep(age_limit + Duration::from_millis(5));
        // A stream of cheap work arrives after the cold entry aged out:
        // the cold entry must still be served next, not starved.
        for _ in 0..4 {
            q.push("hit", classed(0)).unwrap();
        }
        assert_eq!(q.pop(), Some("cold"), "aged head preempts cheaper bands");
        assert_eq!(q.pop(), Some("hit"));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = ScheduledQueue::new(4, NO_AGING);
        q.push(1, fifo_now()).unwrap();
        q.close();
        assert_eq!(q.push(2, fifo_now()), Err(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_queue_blocks_until_a_consumer_drains() {
        let q = Arc::new(ScheduledQueue::new(1, NO_AGING));
        q.push(0u32, fifo_now()).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1, fifo_now()).is_ok())
        };
        // Give the producer time to hit the full queue.
        std::thread::sleep(Duration::from_millis(30));
        assert!(!producer.is_finished(), "push must block while full");
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything() {
        let q = Arc::new(ScheduledQueue::new(8, NO_AGING));
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        q.push(p * 1_000 + i, classed((i % SCHED_BANDS as u64) as u8)).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let mut expect: Vec<u64> =
            (0..4u64).flat_map(|p| (0..250u64).map(move |i| p * 1_000 + i)).collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
