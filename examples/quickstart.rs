//! Quickstart: generate a synthetic city, build a workload, run a SkySR
//! query and inspect the skyline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use skysr::prelude::*;

fn main() {
    // 1. A synthetic city in the style of the paper's California dataset:
    //    a small road network, densely covered with PoIs whose categories
    //    come from a generated semantic hierarchy.
    let dataset = DatasetSpec::preset(Preset::CalSmall).scale(0.25).seed(42).generate();
    let (v, p, e) = dataset.stats();
    println!("city: |V| = {v}, |P| = {p}, |E| = {e}\n");

    // 2. A paper-style workload: random start, popular leaf categories
    //    from distinct category trees.
    let workload = WorkloadSpec::new(3).queries(1).seed(9).generate(&dataset);
    let query = &workload.queries[0];
    println!("query: start at vertex {}, visit in order:", query.start);
    for spec in &query.sequence {
        if let skysr::core::PositionSpec::Category(c) = spec {
            println!("  - {}", dataset.forest.name(*c));
        }
    }

    // 3. Run BSSR (all four optimisations on by default).
    let ctx = dataset.context();
    let result = Bssr::new(&ctx).run(query).expect("valid query");

    // 4. The skyline: every route here is Pareto-optimal — shorter routes
    //    deviate more from the requested categories.
    println!("\n{} skyline sequenced route(s):", result.routes.len());
    for route in &result.routes {
        let stops: Vec<&str> = route
            .pois
            .iter()
            .map(|&p| dataset.forest.name(dataset.pois.categories_of(p)[0]))
            .collect();
        println!(
            "  {:>9.1} m   semantic score {:.3}   {}",
            route.length.get(),
            route.semantic,
            stops.join(" -> ")
        );
    }
    println!(
        "\nstats: {} modified-Dijkstra runs, {} cache hits, {} vertices settled, {:?} total",
        result.stats.mdijkstra_runs,
        result.stats.cache_hits,
        result.stats.search.settled,
        result.stats.total_time
    );
}
