//! Possible minimum distances — the tightened lower bound of §5.3.3
//! (Algorithm 4, Definition 5.7, Lemmas 5.8–5.9).
//!
//! For each gap between consecutive positions the *semantic-match minimum
//! distance* `ls[i]` (closest pair between the positions' semantic PoI
//! sets) and the *perfect-match minimum distance* `lp[i]` (destination set
//! restricted to perfect matches) are computed with one multi-source
//! multi-destination Dijkstra each. Endpoint sets are restricted to PoIs
//! within `l̄(ϕ)` of the start (Algorithm 4, lines 3–4): any sequenced
//! route using a PoI outside that ball is already longer than the best
//! perfect route and hence dominated.
//!
//! Pruning rules applied to a candidate partial route `R` of size `k`:
//!
//! * **semantic bound** — `l(R) + Σ_{g>k} ls[g] ≥ l̄(s(R))` ⇒ every
//!   completion is dominated (its length can only exceed the left side and
//!   its semantic score can only exceed `s(R)`);
//! * **perfect bound (Lemma 5.8)** — every completion either stays perfect
//!   on all remaining positions (length grows by ≥ `Σ lp[g]`) or deviates
//!   at least once (semantic score grows by ≥ δ); if both branches are
//!   dominated by members of `S`, prune. δ is route-dependent:
//!   `δ(R) = sim_acc(R) · (1 − σ*)` with σ\* the best non-perfect
//!   similarity over the remaining positions.

use skysr_graph::fxhash::FxHashSet;
use skysr_graph::multi_source::min_set_distance;
use skysr_graph::{dijkstra_with, Cost, DijkstraWorkspace, Settle, VertexId};

use crate::context::QueryContext;
use crate::dominance::SkylineSet;
use crate::prepared::PreparedQuery;
use crate::route::PartialRoute;
use crate::stats::QueryStats;

/// Which lower-bound machinery is active (Optimisation 3 ablation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LowerBoundMode {
    /// No minimum-distance bounds.
    Off,
    /// Semantic-match minimum distance only.
    Semantic,
    /// Semantic- and perfect-match minimum distances (the full §5.3.3).
    #[default]
    Full,
}

/// Precomputed minimum-distance bounds for one query.
#[derive(Clone, Debug)]
pub struct MinDistBounds {
    mode: LowerBoundMode,
    /// `ls[g]`, `g ∈ 1..k`: min semantic-set distance between positions
    /// g−1 and g. Index 0 unused (gap from the start is counted in l(R)).
    ls: Vec<f64>,
    /// `lp[g]`: as `ls` but destinations restricted to perfect matches.
    lp: Vec<f64>,
    /// Suffix sums: `ls_suffix[k] = Σ_{g=k.. } ls[g]` for a route of size k
    /// (clamped so ∞ gaps stay ∞).
    ls_suffix: Vec<f64>,
    lp_suffix: Vec<f64>,
    /// Max σ\* over positions k.. (None ⇒ no remaining position can
    /// deviate from a perfect match).
    sigma_suffix: Vec<Option<f64>>,
}

impl MinDistBounds {
    /// Computes the bounds. `l_phi` is `l̄(ϕ)` (the best perfect-route
    /// length known so far, `+∞` if none) — it restricts the endpoint sets.
    pub fn compute(
        ctx: &QueryContext<'_>,
        pq: &PreparedQuery,
        l_phi: Cost,
        mode: LowerBoundMode,
        ws: &mut DijkstraWorkspace,
        stats: &mut QueryStats,
    ) -> MinDistBounds {
        let k = pq.len();
        let mut ls = vec![0.0f64; k];
        let mut lp = vec![0.0f64; k];

        if mode != LowerBoundMode::Off && k >= 2 {
            // Restrict endpoints to the l̄(ϕ) ball around the start
            // (Algorithm 4 lines 3–4). With no known perfect route the
            // ball is the whole graph.
            let in_ball: Option<FxHashSet<u32>> = if l_phi.is_finite() {
                let mut ball = FxHashSet::default();
                let s = dijkstra_with(ctx.graph, ws, &[(pq.start, Cost::ZERO)], |v, d| {
                    if d >= l_phi {
                        Settle::Stop
                    } else {
                        ball.insert(v.0);
                        Settle::Continue
                    }
                });
                stats.search.merge(&s);
                Some(ball)
            } else {
                None
            };
            let contains = |set: &Option<FxHashSet<u32>>, v: VertexId| match set {
                Some(s) => s.contains(&v.0),
                None => true,
            };

            // A pair of in-ball PoIs is at distance < 2·l̄(ϕ) via the
            // start, so the search radius can be bounded accordingly.
            let radius = if l_phi.is_finite() { l_phi * 2.0 } else { Cost::INFINITY };

            for g in 1..k {
                let sources: Vec<VertexId> = pq.positions[g - 1]
                    .semantic
                    .iter()
                    .copied()
                    .filter(|&p| contains(&in_ball, p))
                    .collect();
                let sem_dest: FxHashSet<u32> = pq.positions[g]
                    .semantic
                    .iter()
                    .filter(|&&p| contains(&in_ball, p))
                    .map(|p| p.0)
                    .collect();
                let per_dest: FxHashSet<u32> = pq.positions[g]
                    .perfect
                    .iter()
                    .filter(|&&p| contains(&in_ball, p))
                    .map(|p| p.0)
                    .collect();
                let r =
                    min_set_distance(ctx.graph, ws, &sources, |v| sem_dest.contains(&v.0), radius);
                stats.search.merge(&r.stats);
                ls[g] = r.hit.map_or(f64::INFINITY, |(_, d)| d.get());
                let r =
                    min_set_distance(ctx.graph, ws, &sources, |v| per_dest.contains(&v.0), radius);
                stats.search.merge(&r.stats);
                lp[g] = r.hit.map_or(f64::INFINITY, |(_, d)| d.get());
            }
        }

        // Suffix sums and σ* suffix maxima.
        let mut ls_suffix = vec![0.0f64; k + 1];
        let mut lp_suffix = vec![0.0f64; k + 1];
        let mut sigma_suffix: Vec<Option<f64>> = vec![None; k + 1];
        for g in (1..k).rev() {
            ls_suffix[g] = ls[g] + ls_suffix[g + 1];
            lp_suffix[g] = lp[g] + lp_suffix[g + 1];
        }
        ls_suffix[0] = ls_suffix[1.min(k)];
        lp_suffix[0] = lp_suffix[1.min(k)];
        for i in (0..k).rev() {
            sigma_suffix[i] = match (pq.positions[i].sigma_star, sigma_suffix[i + 1]) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }

        stats.ls = ls[1..].to_vec();
        stats.lp = lp[1..].to_vec();

        MinDistBounds { mode, ls, lp, ls_suffix, lp_suffix, sigma_suffix }
    }

    /// Bounds that never prune (Off mode, used when the optimisation is
    /// disabled).
    pub fn disabled(seq_len: usize) -> MinDistBounds {
        MinDistBounds {
            mode: LowerBoundMode::Off,
            ls: vec![0.0; seq_len],
            lp: vec![0.0; seq_len],
            ls_suffix: vec![0.0; seq_len + 1],
            lp_suffix: vec![0.0; seq_len + 1],
            sigma_suffix: vec![None; seq_len + 1],
        }
    }

    /// Per-gap semantic-match minimum distances (Figure 4).
    pub fn ls_gaps(&self) -> &[f64] {
        &self.ls[1.min(self.ls.len())..]
    }

    /// Per-gap perfect-match minimum distances (Figure 4).
    pub fn lp_gaps(&self) -> &[f64] {
        &self.lp[1.min(self.lp.len())..]
    }

    /// Whether partial route `rt` (just extended, size ≥ 1, not complete)
    /// can be pruned given the current skyline set.
    pub fn should_prune(&self, rt: &PartialRoute, skyline: &SkylineSet) -> bool {
        if self.mode == LowerBoundMode::Off {
            return false;
        }
        let k = rt.len();
        let s_rt = rt.semantic();

        // Semantic-match bound: always safe to add.
        let min_total = rt.length().get() + self.ls_suffix[k];
        if min_total >= skyline.threshold(s_rt).get() {
            return true;
        }

        if self.mode == LowerBoundMode::Full {
            // Lemma 5.8. Branch (ii): some remaining position deviates →
            // semantic grows by ≥ δ.
            let cond_a = match self.sigma_suffix[k] {
                Some(sigma) => {
                    let delta = rt.sim_acc() * (1.0 - sigma);
                    skyline.threshold(s_rt + delta) <= rt.length()
                }
                // No remaining position *can* deviate: branch (ii) is
                // impossible, so only the all-perfect branch matters.
                None => true,
            };
            if cond_a {
                // Branch (i): all remaining positions perfect → length
                // grows by ≥ lp_suffix, semantic stays s_rt.
                let lb = rt.length().get() + self.lp_suffix[k];
                if Cost::new(lb) >= skyline.threshold(s_rt) {
                    return true;
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example::PaperExample;
    use crate::route::SkylineRoute;

    fn skyline(entries: &[(f64, f64)]) -> SkylineSet {
        let mut s = SkylineSet::new();
        for &(l, sem) in entries {
            s.update(SkylineRoute { pois: vec![], length: Cost::new(l), semantic: sem });
        }
        s
    }

    #[test]
    fn disabled_never_prunes() {
        let b = MinDistBounds::disabled(3);
        let sky = skyline(&[(1.0, 0.0)]);
        let rt = PartialRoute::empty().extend(VertexId(1), Cost::new(100.0), 1.0);
        assert!(!b.should_prune(&rt, &sky));
    }

    #[test]
    fn computed_on_paper_example() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let pq = ex.prepared(&ctx);
        let mut ws = DijkstraWorkspace::new(ctx.graph.num_vertices());
        let mut stats = QueryStats::default();
        // Best perfect route in the fixture is 13 (p10, p12, p13).
        let b = MinDistBounds::compute(
            &ctx,
            &pq,
            Cost::new(13.0),
            LowerBoundMode::Full,
            &mut ws,
            &mut stats,
        );
        // Gap 1 (restaurant→A&E): closest semantic pair is p10–p12 at 2.0.
        assert_eq!(b.ls_gaps()[0], 2.0);
        // Gap 2 (A&E→shop): p9–p8 at 1.5.
        assert_eq!(b.ls_gaps()[1], 1.5);
        // Perfect destinations coincide for gap 1 (A&E has only perfect
        // PoIs) and for gap 2 the closest perfect shop is p8 at 1.5 too.
        assert_eq!(b.lp_gaps()[0], 2.0);
        assert_eq!(b.lp_gaps()[1], 1.5);
        // lp ≥ ls always.
        for (lp, ls) in b.lp_gaps().iter().zip(b.ls_gaps()) {
            assert!(lp >= ls);
        }
        assert_eq!(stats.ls, b.ls_gaps());
    }

    #[test]
    fn semantic_bound_prunes_hopeless_route() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let pq = ex.prepared(&ctx);
        let mut ws = DijkstraWorkspace::new(ctx.graph.num_vertices());
        let mut stats = QueryStats::default();
        let b = MinDistBounds::compute(
            &ctx,
            &pq,
            Cost::new(13.0),
            LowerBoundMode::Semantic,
            &mut ws,
            &mut stats,
        );
        let sky = skyline(&[(13.0, 0.0)]);
        // A size-1 route of length 12 needs ≥ 2.0 + 1.5 more: 15.5 ≥ 13 →
        // prune even though 12 < 13.
        let rt = PartialRoute::empty().extend(ex.p(2), Cost::new(12.0), 1.0);
        assert!(b.should_prune(&rt, &sky));
        // Length 9 → 12.5 < 13: keep.
        let rt = PartialRoute::empty().extend(ex.p(2), Cost::new(9.0), 1.0);
        assert!(!b.should_prune(&rt, &sky));
    }

    #[test]
    fn perfect_bound_uses_lemma_5_8() {
        let ex = PaperExample::new();
        let ctx = ex.context();
        let pq = ex.prepared(&ctx);
        let mut ws = DijkstraWorkspace::new(ctx.graph.num_vertices());
        let mut stats = QueryStats::default();
        let b = MinDistBounds::compute(
            &ctx,
            &pq,
            Cost::new(13.0),
            LowerBoundMode::Full,
            &mut ws,
            &mut stats,
        );
        // Skyline has a perfect route (13, 0) and a semantic route (11, 0.5).
        let sky = skyline(&[(13.0, 0.0), (11.0, 0.5)]);
        // Perfect-so-far route of size 1, length 11.2: semantic bound gives
        // 11.2 + 3.5 = 14.7 ≥ 13 → pruned by ls alone.
        let rt = PartialRoute::empty().extend(ex.p(2), Cost::new(11.2), 1.0);
        assert!(b.should_prune(&rt, &sky));
        // Length 9.6: ls bound gives 13.1 ≥ 13 → prune. Length 9.4: ls
        // gives 12.9 < 13; Lemma 5.8: δ = 1·(1−0.5) = 0.5 →
        // threshold(0+0.5) = 11 ≤ 9.4? No → cond (a) fails → keep.
        let rt = PartialRoute::empty().extend(ex.p(2), Cost::new(9.6), 1.0);
        assert!(b.should_prune(&rt, &sky));
        let rt = PartialRoute::empty().extend(ex.p(2), Cost::new(9.4), 1.0);
        assert!(!b.should_prune(&rt, &sky));
    }

    #[test]
    fn infinite_gap_prunes_everything_needing_it() {
        // If a gap has no reachable pair, any partial route that still
        // needs it is pruned once any threshold exists.
        let b = MinDistBounds {
            mode: LowerBoundMode::Semantic,
            ls: vec![0.0, f64::INFINITY],
            lp: vec![0.0, f64::INFINITY],
            ls_suffix: vec![f64::INFINITY, f64::INFINITY, 0.0],
            lp_suffix: vec![f64::INFINITY, f64::INFINITY, 0.0],
            sigma_suffix: vec![None, None, None],
        };
        let sky = skyline(&[(100.0, 0.0)]);
        let rt = PartialRoute::empty().extend(VertexId(0), Cost::new(1.0), 1.0);
        assert!(b.should_prune(&rt, &sky));
    }
}
