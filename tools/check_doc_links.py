#!/usr/bin/env python3
"""Check relative links and #anchors in the repo's markdown documentation.

Scans README.md and docs/*.md for inline markdown links. For every
relative link it asserts the target file exists; for every fragment
(`path#anchor` or in-page `#anchor`) it asserts the target document
declares a heading whose GitHub-style slug matches. External links
(http/https/mailto) are not fetched — CI must stay offline-clean.

Exit status is the number of broken links (0 = all good).
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOCS = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]

# Inline links only: [text](target). Reference-style links are not used
# in this repo. Images share the syntax; the target check is identical.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Fenced code blocks must not contribute links (ASCII diagrams contain
# bracket-paren sequences that look like links).
FENCE = re.compile(r"^(```|~~~)")


def slugify(heading: str) -> str:
    """GitHub's anchor algorithm: lowercase, drop punctuation, dash spaces."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    # Strip markdown emphasis before slugging.
    text = re.sub(r"[*_]", "", text)
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors(path: Path) -> set:
    out, counts, in_fence = set(), {}, False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence or not line.startswith("#"):
            continue
        m = re.match(r"#{1,6}\s+(.*)", line)
        if not m:
            continue
        slug = slugify(m.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        out.add(slug if n == 0 else f"{slug}-{n}")
    return out


def links(path: Path):
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK.finditer(line):
            yield lineno, m.group(1)


def main() -> int:
    anchor_cache = {}
    broken = 0
    for doc in DOCS:
        for lineno, target in links(doc):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            dest = (doc.parent / path_part).resolve() if path_part else doc
            where = f"{doc.relative_to(ROOT)}:{lineno}"
            if not dest.exists():
                print(f"{where}: broken link {target!r} (no such file)")
                broken += 1
                continue
            if fragment and dest.suffix == ".md":
                if dest not in anchor_cache:
                    anchor_cache[dest] = anchors(dest)
                if fragment not in anchor_cache[dest]:
                    print(f"{where}: broken anchor {target!r} "
                          f"(no heading slugs to #{fragment})")
                    broken += 1
    checked = ", ".join(str(d.relative_to(ROOT)) for d in DOCS)
    print(f"checked {checked}: {broken} broken link(s)")
    return broken


if __name__ == "__main__":
    sys.exit(main())
