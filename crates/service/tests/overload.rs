//! Overload-resilience guarantees: deadline-aware scheduling, admission
//! control and QoS degradation under sustained 2× overload.
//!
//! Three invariants, each end-to-end through the public service API:
//!
//! * **No wrong answers under overload.** At twice measured capacity with
//!   a tight deadline and admission on, every request either completes
//!   *exactly* (oracle-equivalent at its pinned epoch), is shed with
//!   [`QueryError::Overloaded`] (admission-refused or expired in queue),
//!   or is served as a *valid* approximate partial — every partial route
//!   dominated-or-equal by the exact skyline, the partial itself mutually
//!   non-dominated. The replay driver's `--verify` oracle checks all
//!   three cases; the counters must tile exactly.
//! * **Expired-in-queue work is never executed.** A request whose
//!   deadline has already lapsed is dropped at dequeue: the engine never
//!   runs, `executed` never moves, `shed_deadline` accounts for every one.
//! * **Aging bounds starvation.** A continuous flood of cheap band-0
//!   traffic cannot starve a queued cold search: the scheduler's aging
//!   bound promotes the expensive band's head after `age_limit`, so the
//!   cold answer lands orders of magnitude sooner than the flood ends.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use skysr_core::error::QueryError;
use skysr_data::dataset::{Dataset, DatasetSpec, Preset};
use skysr_service::replay::{build_pool, replay_on, ReplaySpec, StreamPattern};
use skysr_service::{QueryRequest, QueryService, Service, ServiceConfig, ServiceContext};

fn city(seed: u64) -> Dataset {
    DatasetSpec::preset(Preset::CalSmall).scale(0.08).seed(seed).generate()
}

/// A low-reuse churned Zipf stream — wide pool, flat exponent, weight
/// updates in flight — so load genuinely lands on the search rungs and 2×
/// the cold-calibrated capacity overloads the service for real.
fn overload_spec(seed: u64) -> ReplaySpec {
    ReplaySpec {
        total: 192,
        distinct: 96,
        seq_len: 2,
        pattern: StreamPattern::Zipf,
        zipf_exponent: 0.5,
        workers: 4,
        seed,
        repair: true,
        update_rate: 100.0,
        update_burst: 8,
        verify: true,
        ..ReplaySpec::default()
    }
}

#[test]
fn two_x_overload_serves_only_exact_shed_or_valid_approximate() {
    let seed = 33;
    let d = city(seed);
    let base = overload_spec(seed);
    let pool = build_pool(&d, &base);
    let ctx = Arc::new(ServiceContext::from_dataset(d));

    // Uncontended pass at half measured capacity: genuine service-time
    // latencies. The overloaded pass takes the *median* as its deadline —
    // trivially meetable for the cheap rungs, unmeetable for the slower
    // half of the searches once any 2×-capacity backlog builds (and
    // robust against capacity mis-calibration under a noisy scheduler,
    // which a generous multiple of the tail would not be).
    let uncontended = ReplaySpec { overload: 0.5, ..base.clone() };
    let calm = replay_on(Arc::clone(&ctx), &pool, &uncontended);
    assert_eq!(calm.verify_mismatches, Some(0), "uncontended run must be oracle-exact");
    assert_eq!(calm.metrics.completed, 192, "nothing sheds without a deadline");
    let deadline = calm.metrics.latency_p50.max(Duration::from_millis(1));

    let overloaded =
        ReplaySpec { overload: 2.0, admission: true, deadline: Some(deadline), ..base };
    let report = replay_on(ctx, &pool, &overloaded);

    // The oracle audited every produced response: exact answers as
    // score-equivalent skylines, approximate ones as valid partials
    // (dominated-or-equal by the exact skyline, mutually non-dominated).
    assert_eq!(report.verify_mismatches, Some(0), "overload must never produce a wrong answer");
    assert_eq!(report.metrics.stale_served, 0, "degraded is not stale");

    // Accounting tiles exactly: every request completed or was shed, and
    // every completion is attributable to exactly one rung.
    let m = &report.metrics;
    assert_eq!(m.failed, 0, "overload surfaces as Overloaded sheds, not failures");
    assert_eq!(
        m.completed + m.rejected + m.shed_deadline,
        192,
        "every request completes or sheds: {m:?}"
    );
    assert_eq!(
        m.completed,
        m.executed + m.cache.hits + m.coalesced + m.approximate_served,
        "served-outcome taxonomy must tile: {m:?}"
    );

    // 2× capacity against a deadline near the uncontended p99 must
    // actually overload: part of the stream sheds (admission or expiry).
    assert!(report.shed() > 0, "2x capacity with a p99-scale deadline must shed: {m:?}");

    // The met-deadline split covers exactly the requests that finished.
    let (met, finished) = report.met_deadline.expect("deadline runs report the split");
    assert_eq!(finished as u64, m.completed);
    assert!(met <= finished);
}

#[test]
fn expired_in_queue_requests_are_never_executed() {
    let d = city(5);
    let spec = ReplaySpec { distinct: 8, seq_len: 2, ..ReplaySpec::default() };
    let pool = build_pool(&d, &spec);
    let ctx = Arc::new(ServiceContext::from_dataset(d));
    let service = Service::new(ctx, ServiceConfig { workers: 2, ..ServiceConfig::default() });

    // A zero deadline has lapsed by the time any worker can dequeue it:
    // the scheduler must drop every one at dequeue, engine untouched.
    let tickets: Vec<_> = (0..32)
        .map(|i| {
            service.submit(QueryRequest::new(pool[i % pool.len()].clone()).deadline(Duration::ZERO))
        })
        .collect();
    for t in tickets {
        match t.wait() {
            Err(QueryError::Overloaded) => {}
            other => panic!("an expired request must shed with Overloaded, got {other:?}"),
        }
    }
    let m = service.metrics();
    assert_eq!(m.executed, 0, "expired-in-queue work must never reach the engine");
    assert_eq!(m.completed, 0);
    assert_eq!(m.approximate_served, 0);
    assert_eq!(m.shed_deadline, 32, "every shed is accounted: {m:?}");

    // The service stays healthy: a deadline-less request still serves.
    let r = service.submit_query(pool[0].clone()).wait().expect("service must stay serviceable");
    assert!(!r.routes.is_empty());
    let m = service.shutdown();
    assert_eq!(m.completed, 1);
    assert_eq!(m.executed, 1);
}

#[test]
fn aging_bound_prevents_cold_starvation_under_cheap_flood() {
    let d = city(13);
    let spec = ReplaySpec { distinct: 8, seq_len: 2, ..ReplaySpec::default() };
    let pool = build_pool(&d, &spec);
    let ctx = Arc::new(ServiceContext::from_dataset(d));
    let age_limit = Duration::from_millis(50);
    let service = Arc::new(Service::new(
        ctx,
        ServiceConfig { workers: 1, age_limit, ..ServiceConfig::default() },
    ));

    // Prime the cache so `pool[0]` duplicates classify and serve as hits
    // (band 0); `pool[1]` stays uncached — a band-2 cold search.
    service.submit_query(pool[0].clone()).wait().expect("prime the hit query");

    let flood = Duration::from_millis(1200);
    let stop = Arc::new(AtomicBool::new(false));
    let feeders: Vec<_> = (0..4)
        .map(|_| {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let hit = pool[0].clone();
            std::thread::spawn(move || {
                let t0 = Instant::now();
                let mut tickets = Vec::new();
                // Four submitters against one worker keep band 0 non-empty
                // for the whole flood window.
                while t0.elapsed() < flood && !stop.load(Ordering::Relaxed) {
                    tickets.push(service.submit_query(hit.clone()));
                    if tickets.len() >= 64 {
                        for t in tickets.drain(..) {
                            let _ = t.wait();
                        }
                    }
                }
                for t in tickets {
                    let _ = t.wait();
                }
            })
        })
        .collect();

    // Let the flood build a backlog, then queue the cold search behind it.
    std::thread::sleep(Duration::from_millis(50));
    let submitted = Instant::now();
    let cold = service.submit_query(pool[1].clone());
    let response = cold.wait().expect("the cold search must complete");
    let waited = submitted.elapsed();
    stop.store(true, Ordering::Relaxed);
    for f in feeders {
        f.join().expect("feeder thread");
    }

    assert!(!response.routes.is_empty());
    // Without the aging bound the cold search drains only after the flood
    // stops (≥ 1.15 s from its submission). With it, the band-2 head is
    // promoted after `age_limit`, plus queue-drain and search slack.
    assert!(
        waited < Duration::from_millis(600),
        "cold search starved for {waited:?} under a cheap-traffic flood (age_limit {age_limit:?})"
    );
    let m = service.shutdown();
    assert!(m.cache.hits > 0, "the flood must actually exercise the hit band");
    assert!(m.executed >= 2, "prime + cold search");
}
