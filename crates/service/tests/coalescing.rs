//! Deterministic request-coalescing and semantic-reuse guarantees.
//!
//! Timing-free invariants (hold on any scheduler / core count):
//!
//! * with caching + coalescing, N identical queries trigger **exactly one**
//!   engine search, however they interleave — a duplicate either hits the
//!   cache, or joins the in-flight leader, or (first arrival only) leads;
//!   the leader inserts into the cache *before* ending the flight, so no
//!   second search can ever start;
//! * every answer shares the leader's allocation (`Arc::ptr_eq`) —
//!   byte-identical results by construction.
//!
//! To additionally pin down *observed* coalescing (followers parked while
//! the leader is mid-search), the slow-service tests throttle the
//! similarity oracle: query preparation then takes tens of milliseconds
//! inside the flight window, so every queued duplicate provably arrives
//! while the leader is still searching.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use skysr_category::{CategoryForest, CategoryId, Similarity, WuPalmer};
use skysr_core::paper_example::PaperExample;
use skysr_service::{QueryService, Service, ServiceConfig, ServiceContext};

/// Wu–Palmer with a per-call delay and an invocation counter: makes every
/// query preparation slow (it happens inside the engine run, i.e. inside
/// the coalescing flight) and counts how many preparations actually ran.
#[derive(Debug)]
struct ThrottledSim {
    delay: Duration,
    calls: AtomicU64,
}

impl Similarity for ThrottledSim {
    fn sim(&self, forest: &CategoryForest, a: CategoryId, b: CategoryId) -> f64 {
        self.calls.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(self.delay);
        WuPalmer.sim(forest, a, b)
    }
}

fn slow_service(workers: usize, delay: Duration) -> (PaperExample, Arc<ThrottledSim>, Service) {
    let ex = PaperExample::new();
    let sim = Arc::new(ThrottledSim { delay, calls: AtomicU64::new(0) });
    let ctx = Arc::new(ServiceContext::with_similarity(
        ex.graph.clone(),
        ex.forest.clone(),
        ex.pois.clone(),
        Arc::clone(&sim) as Arc<dyn Similarity>,
    ));
    let service = Service::new(ctx, ServiceConfig { workers, ..ServiceConfig::default() });
    (ex, sim, service)
}

#[test]
fn n_identical_queries_run_exactly_one_search() {
    // 64 identical queries on 8 workers against a deliberately slow
    // engine: the first arrival leads, and since the leader's search far
    // outlasts the drain of the 64-job queue, every other request joins
    // the flight — none can even be a cache hit until the leader finishes.
    let (ex, _sim, service) = slow_service(8, Duration::from_micros(500));
    let responses: Vec<_> = service
        .run_batch((0..64).map(|_| ex.query()))
        .into_iter()
        .map(|r| r.expect("valid query"))
        .collect();
    let m = service.shutdown();
    assert_eq!(m.completed, 64);
    assert_eq!(m.executed, 1, "exactly one engine search");
    assert_eq!(m.coalesced + m.cache.hits, 63, "everyone else shared it");
    assert!(m.coalesced > 0, "the slow flight must park followers");
    // Byte-identical: every response shares the leader's allocation.
    for r in &responses[1..] {
        assert!(Arc::ptr_eq(&r.routes, &responses[0].routes));
    }
    assert_eq!(responses[0].routes.len(), 2, "paper-example skyline");
    // Exactly one response is the leader's (neither cached nor coalesced).
    let leaders = responses.iter().filter(|r| !r.cache_hit() && !r.coalesced()).count();
    assert_eq!(leaders, 1);
}

#[test]
fn interleaved_distinct_queries_coalesce_per_key() {
    // Two distinct queries interleaved 32 times each: exactly one search
    // per canonical key, results shared within each key only.
    let (ex, _sim, service) = slow_service(8, Duration::from_micros(300));
    let gift = ex.forest.by_name("Gift Shop").unwrap();
    let hobby = ex.forest.by_name("Hobby Shop").unwrap();
    let qa = skysr_core::SkySrQuery::new(ex.vq, [gift, hobby]);
    let qb = skysr_core::SkySrQuery::new(ex.vq, [hobby, gift]);
    let queries: Vec<_> =
        (0..64).map(|i| if i % 2 == 0 { qa.clone() } else { qb.clone() }).collect();
    let responses: Vec<_> =
        service.run_batch(queries).into_iter().map(|r| r.expect("valid query")).collect();
    let m = service.shutdown();
    assert_eq!(m.completed, 64);
    assert_eq!(m.executed, 2, "one search per distinct key");
    for pair in responses.chunks(2).skip(1) {
        assert!(Arc::ptr_eq(&pair[0].routes, &responses[0].routes));
        assert!(Arc::ptr_eq(&pair[1].routes, &responses[1].routes));
    }
    assert!(
        !Arc::ptr_eq(&responses[0].routes, &responses[1].routes),
        "distinct keys do not share results"
    );
}

#[test]
fn coalescing_disabled_searches_duplicates_redundantly() {
    // The PR 1 failure mode this PR removes, pinned as a contrast test:
    // with coalescing off, duplicates in flight during the slow leader
    // search each run their own redundant search.
    let ex = PaperExample::new();
    let sim =
        Arc::new(ThrottledSim { delay: Duration::from_micros(500), calls: AtomicU64::new(0) });
    let ctx = Arc::new(ServiceContext::with_similarity(
        ex.graph.clone(),
        ex.forest.clone(),
        ex.pois.clone(),
        Arc::clone(&sim) as Arc<dyn Similarity>,
    ));
    let service = Service::new(
        ctx,
        ServiceConfig { workers: 8, coalesce: false, ..ServiceConfig::default() },
    );
    for outcome in service.run_batch((0..64).map(|_| ex.query())) {
        outcome.expect("valid query");
    }
    let m = service.shutdown();
    assert_eq!(m.completed, 64);
    assert_eq!(m.coalesced, 0);
    assert!(
        m.executed > 1,
        "without coalescing, slow in-flight duplicates each search ({} searches)",
        m.executed
    );
}
