//! Micro-benchmarks for the Dijkstra substrate: full single-source search,
//! early-terminating point-to-point queries, resumable NN streams, and the
//! multi-source minimum-set-distance search of Lemma 5.9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skysr_data::netgen::{generate_network, NetGenSpec};
use skysr_graph::dijkstra::{dijkstra, shortest_distance, DijkstraWorkspace};
use skysr_graph::multi_source::min_set_distance;
use skysr_graph::{Cost, ResumableDijkstra, RoadNetwork, VertexId};
use std::hint::black_box;

fn network(n: usize) -> RoadNetwork {
    let (b, _, _) =
        generate_network(&NetGenSpec { target_vertices: n, seed: 5, ..Default::default() });
    b.build()
}

fn bench_dijkstra(c: &mut Criterion) {
    let mut group = c.benchmark_group("dijkstra");
    for n in [1_000usize, 10_000] {
        let g = network(n);
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        group.bench_with_input(BenchmarkId::new("full_sssp", n), &n, |b, _| {
            b.iter(|| {
                dijkstra(&g, &mut ws, VertexId(0));
                black_box(ws.distance(VertexId((n / 2) as u32)))
            })
        });
        group.bench_with_input(BenchmarkId::new("point_to_point", n), &n, |b, _| {
            b.iter(|| {
                black_box(shortest_distance(&g, &mut ws, VertexId(0), VertexId((n - 1) as u32)))
            })
        });
        group.bench_with_input(BenchmarkId::new("resumable_first_100", n), &n, |b, _| {
            b.iter(|| {
                let mut rd = ResumableDijkstra::new(&g, VertexId(0));
                for _ in 0..100 {
                    black_box(rd.next_settled());
                }
            })
        });
        let sources: Vec<VertexId> = (0..20).map(|i| VertexId(i * 7)).collect();
        group.bench_with_input(BenchmarkId::new("multi_source_min_dist", n), &n, |b, _| {
            b.iter(|| {
                black_box(min_set_distance(
                    &g,
                    &mut ws,
                    &sources,
                    |v| v.0 as usize > n - 50,
                    Cost::INFINITY,
                ))
            })
        });
    }
    group.finish();
}

fn bench_landmarks(c: &mut Criterion) {
    use skysr_graph::Landmarks;
    let mut group = c.benchmark_group("alt");
    for n in [1_000usize, 10_000] {
        let g = network(n);
        let lm = Landmarks::build(&g, 8, VertexId(0));
        let mut ws = DijkstraWorkspace::new(g.num_vertices());
        let pairs: Vec<(VertexId, VertexId)> = (0..8)
            .map(|i| (VertexId(i * 31 % n as u32), VertexId((n as u32 - 1) - i * 17)))
            .collect();
        group.bench_with_input(BenchmarkId::new("dijkstra_p2p", n), &n, |b, _| {
            b.iter(|| {
                for &(s, t) in &pairs {
                    black_box(shortest_distance(&g, &mut ws, s, t));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("astar_landmarks_p2p", n), &n, |b, _| {
            b.iter(|| {
                for &(s, t) in &pairs {
                    black_box(lm.astar(&g, s, t).0);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dijkstra, bench_landmarks);
criterion_main!(benches);
