//! Aggregate service metrics: counters, recorded latencies, snapshots.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use skysr_graph::EpochGcStats;

use crate::cache::CacheCounters;
use crate::plan::SeedSource;

/// At most this many (latency, skyline-size) samples are retained;
/// beyond it, reservoir sampling keeps a uniform subset so percentiles
/// stay statistically faithful while memory stays bounded on long-lived
/// services.
const SAMPLE_CAP: usize = 65_536;

#[derive(Debug, Default)]
struct SampleSet {
    /// (latency in nanoseconds, skyline size) per sampled query.
    samples: Vec<(u64, u32)>,
    /// Total samples offered (≥ `samples.len()`).
    seen: u64,
    /// SplitMix64 state for reservoir replacement choices.
    rng: u64,
}

impl SampleSet {
    /// Algorithm R: uniform reservoir over everything offered so far.
    fn offer(&mut self, sample: (u64, u32)) {
        self.seen += 1;
        if self.samples.len() < SAMPLE_CAP {
            self.samples.push(sample);
            return;
        }
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let j = (z ^ (z >> 31)) % self.seen;
        if let Some(slot) = self.samples.get_mut(j as usize) {
            *slot = sample;
        }
    }
}

/// How one successfully answered query was served — drives which counters
/// [`MetricsRecorder::record`] bumps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Served {
    /// A BSSR search ran; `seeded` records which cached skyline
    /// warm-started it (semantic reuse), if any actually contributed
    /// seeds.
    Search {
        /// The reuse source whose seeds survived into the skyline set
        /// (`None` for a cold search, or when the probe came up dry).
        seeded: Option<SeedSource>,
    },
    /// Answered from the result cache.
    CacheHit,
    /// Answered by joining another request's in-flight computation
    /// (request coalescing).
    Coalesced,
    /// Answered by incrementally repairing a cached skyline from an older
    /// epoch instead of recomputing it (a subset of executed work).
    Repaired {
        /// The repair could not be resolved in place and fell back to a
        /// full warm-seeded re-search.
        fallback: bool,
        /// Cached routes proven untouched without any graph search.
        routes_untouched: usize,
        /// Cached routes whose legs were re-run at the new epoch.
        routes_rescored: usize,
    },
}

/// Shared recorder the workers write into.
///
/// Counters are atomics; per-query latencies and skyline sizes go into a
/// mutex-guarded, size-capped reservoir (one push per query — negligible
/// next to a BSSR search) so snapshots can compute percentiles without
/// unbounded growth.
#[derive(Debug, Default)]
pub struct MetricsRecorder {
    completed: AtomicU64,
    failed: AtomicU64,
    executed: AtomicU64,
    coalesced: AtomicU64,
    seeded_prefix: AtomicU64,
    seeded_ancestor: AtomicU64,
    seeded_suffix: AtomicU64,
    stale_served: AtomicU64,
    repairs: AtomicU64,
    repair_fallbacks: AtomicU64,
    routes_untouched: AtomicU64,
    routes_rescored: AtomicU64,
    samples: Mutex<SampleSet>,
}

impl MetricsRecorder {
    /// Records one successfully answered query. `latency` is
    /// submission-to-completion (queueing included); `served` tells
    /// whether a search actually ran and how the answer was shared.
    pub fn record(&self, latency: Duration, skyline_size: usize, served: Served) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        match served {
            Served::Search { seeded } => {
                self.executed.fetch_add(1, Ordering::Relaxed);
                match seeded {
                    Some(SeedSource::Prefix) => self.seeded_prefix.fetch_add(1, Ordering::Relaxed),
                    Some(SeedSource::Ancestor) => {
                        self.seeded_ancestor.fetch_add(1, Ordering::Relaxed)
                    }
                    Some(SeedSource::Suffix) => self.seeded_suffix.fetch_add(1, Ordering::Relaxed),
                    None => 0,
                };
            }
            Served::CacheHit => {}
            Served::Coalesced => {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
            }
            Served::Repaired { fallback, routes_untouched, routes_rescored } => {
                // A repair runs real graph work (legs / relevance ball /
                // fallback search), so it counts as executed — `hits +
                // coalesced + executed == completed` stays exact.
                self.executed.fetch_add(1, Ordering::Relaxed);
                if fallback {
                    self.repair_fallbacks.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.repairs.fetch_add(1, Ordering::Relaxed);
                }
                self.routes_untouched.fetch_add(routes_untouched as u64, Ordering::Relaxed);
                self.routes_rescored.fetch_add(routes_rescored as u64, Ordering::Relaxed);
            }
        }
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.samples
            .lock()
            .expect("metrics poisoned")
            .offer((ns, skyline_size.min(u32::MAX as usize) as u32));
    }

    /// Records a query rejected by validation.
    pub fn record_failure(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a *stale serve*: a response whose skyline was computed under
    /// a different weight epoch than the request was pinned to.
    ///
    /// The epoch-stamped cache refuses cross-epoch answers by construction,
    /// so this counter staying at zero is the serving layer's staleness
    /// guarantee — CI gates on it. A nonzero value means the invalidation
    /// layer is broken.
    pub fn record_stale_serve(&self) {
        self.stale_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot over everything recorded so far. `wall` is the wall-clock
    /// window the caller observed (used for throughput); `cache` the
    /// cache's counters and `epochs` the weight-epoch history accounting
    /// at the same instant.
    pub fn snapshot(
        &self,
        wall: Duration,
        cache: CacheCounters,
        epochs: EpochGcStats,
    ) -> MetricsSnapshot {
        let mut samples = self.samples.lock().expect("metrics poisoned").samples.clone();
        samples.sort_unstable_by_key(|&(ns, _)| ns);
        let completed = self.completed.load(Ordering::Relaxed);
        let executed = self.executed.load(Ordering::Relaxed);
        let latencies: Vec<u64> = samples.iter().map(|&(ns, _)| ns).collect();
        let sizes: Vec<u32> = samples.iter().map(|&(_, s)| s).collect();
        let mean_ns = if latencies.is_empty() {
            0
        } else {
            latencies.iter().sum::<u64>() / latencies.len() as u64
        };
        MetricsSnapshot {
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            executed,
            coalesced: self.coalesced.load(Ordering::Relaxed),
            seeded_prefix: self.seeded_prefix.load(Ordering::Relaxed),
            seeded_ancestor: self.seeded_ancestor.load(Ordering::Relaxed),
            seeded_suffix: self.seeded_suffix.load(Ordering::Relaxed),
            stale_served: self.stale_served.load(Ordering::Relaxed),
            repairs: self.repairs.load(Ordering::Relaxed),
            repair_fallbacks: self.repair_fallbacks.load(Ordering::Relaxed),
            routes_untouched: self.routes_untouched.load(Ordering::Relaxed),
            routes_rescored: self.routes_rescored.load(Ordering::Relaxed),
            wall,
            throughput_qps: if wall.as_secs_f64() > 0.0 {
                completed as f64 / wall.as_secs_f64()
            } else {
                0.0
            },
            latency_mean: Duration::from_nanos(mean_ns),
            latency_p50: percentile(&latencies, 50.0),
            latency_p90: percentile(&latencies, 90.0),
            latency_p99: percentile(&latencies, 99.0),
            latency_max: Duration::from_nanos(latencies.last().copied().unwrap_or(0)),
            mean_skyline_size: if sizes.is_empty() {
                0.0
            } else {
                sizes.iter().map(|&s| s as f64).sum::<f64>() / sizes.len() as f64
            },
            max_skyline_size: sizes.iter().copied().max().unwrap_or(0) as usize,
            cache,
            epochs,
        }
    }
}

/// Nearest-rank percentile over latencies already sorted ascending.
fn percentile(sorted_ns: &[u64], p: f64) -> Duration {
    if sorted_ns.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0 * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    Duration::from_nanos(sorted_ns[rank - 1])
}

/// Aggregate view of a service's activity over an observation window.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Queries answered successfully (cache hits included).
    pub completed: u64,
    /// Queries rejected by validation.
    pub failed: u64,
    /// Queries that ran an actual BSSR search.
    pub executed: u64,
    /// Queries answered by joining another request's in-flight search
    /// (request coalescing). `executed + coalesced + cache hits =
    /// completed`.
    pub coalesced: u64,
    /// Searches warm-started from a cached *prefix* skyline (semantic
    /// reuse); a subset of `executed`.
    pub seeded_prefix: u64,
    /// Searches warm-started from a cached *ancestor-category* variant's
    /// skyline (a position's category replaced by one of its ancestors);
    /// a subset of `executed`.
    pub seeded_ancestor: u64,
    /// Searches warm-started from a cached *suffix* skyline (⟨c₂…c_k⟩
    /// prepended one leg); a subset of `executed`.
    pub seeded_suffix: u64,
    /// Responses served from a cache entry of a *different* weight epoch
    /// than the request was pinned to. Always zero unless the
    /// epoch-invalidation layer is broken — the CI staleness gate asserts
    /// on it.
    pub stale_served: u64,
    /// Cached skylines promoted to a newer epoch by incremental repair
    /// (the cheap tiers: untouched / rescored), without a full re-search.
    /// A subset of `executed`.
    pub repairs: u64,
    /// Repair attempts that had to fall back to a full warm-seeded
    /// re-search. Also a subset of `executed`; `repairs +
    /// repair_fallbacks` is the total number of repair attempts.
    pub repair_fallbacks: u64,
    /// Cached routes proven untouched by repair's lower-bound tier (no
    /// graph search at all), summed over all repair attempts.
    pub routes_untouched: u64,
    /// Cached routes whose shortest-path legs were re-run at the new
    /// epoch, summed over all repair attempts.
    pub routes_rescored: u64,
    /// Observation window.
    pub wall: Duration,
    /// Completed queries per second of the window.
    pub throughput_qps: f64,
    /// Mean submission-to-completion latency.
    pub latency_mean: Duration,
    /// Median latency.
    pub latency_p50: Duration,
    /// 90th-percentile latency.
    pub latency_p90: Duration,
    /// 99th-percentile latency.
    pub latency_p99: Duration,
    /// Worst observed latency.
    pub latency_max: Duration,
    /// Mean number of skyline routes per answer.
    pub mean_skyline_size: f64,
    /// Largest skyline returned.
    pub max_skyline_size: usize,
    /// Result-cache counters at snapshot time.
    pub cache: CacheCounters,
    /// Weight-epoch history / GC accounting at snapshot time (retained
    /// overlays, compactions, rebases).
    pub epochs: EpochGcStats,
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn ms(d: Duration) -> f64 {
            d.as_secs_f64() * 1e3
        }
        writeln!(f, "queries     {} completed, {} failed", self.completed, self.failed)?;
        let shared = self.completed - self.executed.min(self.completed);
        writeln!(
            f,
            "executed    {} searches ({} answers shared: {} cache hits, {} coalesced)",
            self.executed,
            shared,
            shared - self.coalesced.min(shared),
            self.coalesced
        )?;
        writeln!(
            f,
            "reuse       {} prefix-, {} ancestor-, {} suffix-seeded warm starts",
            self.seeded_prefix, self.seeded_ancestor, self.seeded_suffix
        )?;
        writeln!(
            f,
            "throughput  {:.1} queries/s over {:.2} s",
            self.throughput_qps,
            self.wall.as_secs_f64()
        )?;
        writeln!(
            f,
            "latency     mean {:.3} ms  p50 {:.3} ms  p90 {:.3} ms  p99 {:.3} ms  max {:.3} ms",
            ms(self.latency_mean),
            ms(self.latency_p50),
            ms(self.latency_p90),
            ms(self.latency_p99),
            ms(self.latency_max)
        )?;
        writeln!(
            f,
            "cache       {:.1}% hit rate ({} hits / {} misses, {} evictions, {} resident)",
            self.cache.hit_rate() * 100.0,
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.len
        )?;
        writeln!(
            f,
            "staleness   {} entries invalidated by epoch change, {} stale serves",
            self.cache.invalidations, self.stale_served
        )?;
        writeln!(
            f,
            "repair      {} skylines repaired in place, {} fell back to re-search ({} routes \
             untouched, {} rescored)",
            self.repairs, self.repair_fallbacks, self.routes_untouched, self.routes_rescored
        )?;
        {
            let e = &self.epochs;
            let cap =
                if e.retention == 0 { "unlimited".to_owned() } else { e.retention.to_string() };
            writeln!(
                f,
                "epochs      {} retained (max {}, cap {}), {} overlays compacted, {} rebases, \
                 {} overlay arcs",
                e.retained, e.retained_max, cap, e.compacted, e.rebases, e.overlay_len
            )?;
        }
        write!(
            f,
            "skylines    {:.2} routes/answer mean, {} max",
            self.mean_skyline_size, self.max_skyline_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let ns: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&ns, 50.0), Duration::from_nanos(50));
        assert_eq!(percentile(&ns, 99.0), Duration::from_nanos(99));
        assert_eq!(percentile(&ns, 100.0), Duration::from_nanos(100));
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
        assert_eq!(percentile(&[7], 1.0), Duration::from_nanos(7));
    }

    #[test]
    fn reservoir_bounds_memory_and_stays_representative() {
        let rec = MetricsRecorder::default();
        // Far beyond the cap, all with the same latency: the reservoir must
        // stay capped and every retained sample must be a real observation.
        for _ in 0..(SAMPLE_CAP as u64 + 10_000) {
            rec.record(Duration::from_micros(5), 1, Served::Search { seeded: None });
        }
        let inner = rec.samples.lock().unwrap();
        assert_eq!(inner.samples.len(), SAMPLE_CAP);
        assert_eq!(inner.seen, SAMPLE_CAP as u64 + 10_000);
        assert!(inner.samples.iter().all(|&(ns, s)| ns == 5_000 && s == 1));
        drop(inner);
        let snap =
            rec.snapshot(Duration::from_secs(1), CacheCounters::default(), EpochGcStats::default());
        assert_eq!(snap.completed, SAMPLE_CAP as u64 + 10_000);
        assert_eq!(snap.latency_p50, Duration::from_micros(5));
    }

    #[test]
    fn snapshot_aggregates_counters_and_sizes() {
        let rec = MetricsRecorder::default();
        rec.record(Duration::from_micros(100), 2, Served::Search { seeded: None });
        rec.record(Duration::from_micros(300), 4, Served::CacheHit);
        rec.record(
            Duration::from_micros(200),
            3,
            Served::Search { seeded: Some(SeedSource::Prefix) },
        );
        rec.record(Duration::from_micros(150), 2, Served::Coalesced);
        rec.record(
            Duration::from_micros(120),
            2,
            Served::Search { seeded: Some(SeedSource::Ancestor) },
        );
        rec.record(
            Duration::from_micros(130),
            2,
            Served::Search { seeded: Some(SeedSource::Suffix) },
        );
        rec.record_failure();
        let snap =
            rec.snapshot(Duration::from_secs(2), CacheCounters::default(), EpochGcStats::default());
        assert_eq!(snap.completed, 6);
        assert_eq!(snap.executed, 4);
        assert_eq!(snap.coalesced, 1);
        assert_eq!(snap.seeded_prefix, 1);
        assert_eq!(snap.seeded_ancestor, 1);
        assert_eq!(snap.seeded_suffix, 1);
        assert_eq!(snap.failed, 1);
        assert!((snap.throughput_qps - 3.0).abs() < 1e-12);
        assert_eq!(snap.latency_p50, Duration::from_micros(130));
        assert_eq!(snap.latency_max, Duration::from_micros(300));
        assert!((snap.mean_skyline_size - 2.5).abs() < 1e-12);
        assert_eq!(snap.max_skyline_size, 4);
        // The report renders without panicking and mentions the headline
        // numbers.
        let text = snap.to_string();
        assert!(text.contains("6 completed"), "{text}");
        assert!(text.contains("1 coalesced"), "{text}");
        assert!(text.contains("1 prefix-, 1 ancestor-, 1 suffix-seeded"), "{text}");
        assert!(text.contains("queries/s"), "{text}");
        assert!(text.contains("0 stale serves"), "{text}");
    }

    #[test]
    fn stale_serves_are_counted_and_reported() {
        // The tripwire behind the CI staleness gate: in a healthy service
        // this counter is never bumped; when it is, the snapshot and the
        // rendered report must expose it.
        let rec = MetricsRecorder::default();
        let clean =
            rec.snapshot(Duration::from_secs(1), CacheCounters::default(), EpochGcStats::default());
        assert_eq!(clean.stale_served, 0);
        rec.record_stale_serve();
        rec.record_stale_serve();
        let snap =
            rec.snapshot(Duration::from_secs(1), CacheCounters::default(), EpochGcStats::default());
        assert_eq!(snap.stale_served, 2);
        assert!(snap.to_string().contains("2 stale serves"), "{snap}");
    }
}
