//! Multi-tenant sharding: several regions, one process, one front door.
//!
//! One [`Service`] serves one dataset. "Millions of users" means many
//! regions, each with its own road network, PoI table, live-traffic epoch
//! stream and load profile — and the deliberate design decision here is
//! that those regions **share nothing**. A [`ShardRegistry`] builds one
//! complete serving stack per region (worker pool, result cache, epoch
//! manager, cost model, telemetry — the whole of [`Service`]), and the
//! [`Router`] in front of it does exactly one thing: pick the owning
//! shard and hand the request over. Weight updates, cache invalidation,
//! admission control and overload shedding are shard-local *by
//! construction* — there is no cross-shard state to protect, so a
//! weight-delta storm on region A cannot touch region B's epoch ring,
//! cache residency or latency profile (the isolation property
//! `crates/service/tests/shards.rs` pins down).
//!
//! Addressing: a [`QueryRequest`] carrying
//! [`region`](crate::RequestOptions::region) is dispatched to that shard
//! (or answered [`QueryError::UnknownRegion`] when no such shard is
//! registered). A region-less request — every pre-v2 caller — falls back
//! to *vertex-space routing*: the start vertex is mapped against each
//! shard's vertex-id space and the choice is a pure function of the
//! start id and the registry shape, so the same start vertex always
//! resolves to the same shard ([`Router::route_start`]).
//!
//! [`Router`] implements [`QueryService`], so every driver in this crate
//! (replay, bench, the daemon event loop) serves a multi-tenant registry
//! exactly as it serves one [`Service`]. [`Router::region_service`]
//! adapts one region back into a `QueryService` view — how the sharded
//! replay driver runs per-region workloads through the front door without
//! teaching the stream generators about addressing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use skysr_core::error::QueryError;
use skysr_graph::{EpochId, VertexId, WeightDelta};

use crate::context::ServiceContext;
use crate::metrics::MetricsSnapshot;
use crate::net::DatasetFingerprint;
use crate::service::{QueryRequest, QueryService, Service, ServiceConfig, StreamTicket, Ticket};

/// Identifies one region (one resident dataset / shard) of a multi-tenant
/// deployment. Assigned densely from 0 in registration order by
/// [`ShardRegistry::add`]; carried by requests
/// ([`crate::RequestOptions::region`]) and on the wire (`Submit` frames,
/// the `Welcome` registry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u16);

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One entry of the region registry an endpoint advertises
/// ([`QueryService::regions`]): the address, the human-readable dataset
/// name, and the dataset fingerprint a verifying client compares its
/// shadow copy against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionInfo {
    /// The routable address.
    pub id: RegionId,
    /// Human-readable region/dataset name (`--shards` synthesizes
    /// `region0`, `region1`, …).
    pub name: String,
    /// Fingerprint of the shard's dataset at registration time.
    pub fingerprint: DatasetFingerprint,
}

/// One registered shard: a complete, isolated serving stack for one
/// region.
struct Shard {
    id: RegionId,
    name: String,
    ctx: Arc<ServiceContext>,
    service: Arc<Service>,
}

/// Builder for a multi-tenant deployment: registers one complete
/// [`Service`] per region, then seals into a [`Router`].
///
/// `add` stamps each shard's [`ServiceConfig::region`] /
/// [`ServiceConfig::region_name`] with the assigned identity, so a shard
/// rejects mis-addressed requests itself even if handed one directly —
/// the router's dispatch and the shard's own guard cannot disagree.
#[derive(Default)]
pub struct ShardRegistry {
    shards: Vec<Shard>,
}

impl ShardRegistry {
    /// An empty registry.
    pub fn new() -> ShardRegistry {
        ShardRegistry { shards: Vec::new() }
    }

    /// Registers one region: builds its full serving stack (spawning the
    /// worker pool) over `ctx` with `config`, and returns the assigned
    /// address. Ids are dense and registration-ordered: the first shard
    /// is region 0 — the *default shard* region-less publishes and
    /// unroutable starts fall back to.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        ctx: Arc<ServiceContext>,
        config: ServiceConfig,
    ) -> RegionId {
        let id = RegionId(u16::try_from(self.shards.len()).expect("more than 65536 shards"));
        let name = name.into();
        let config = ServiceConfig { region: id, region_name: name.clone(), ..config };
        let service = Arc::new(Service::new(Arc::clone(&ctx), config));
        self.shards.push(Shard { id, name, ctx, service });
        id
    }

    /// Number of registered shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True before the first [`add`](ShardRegistry::add).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Seals the registry into a [`Router`].
    ///
    /// # Panics
    /// If no shard was registered — an empty deployment serves nothing
    /// and has no default shard to fall back to.
    pub fn into_router(self) -> Router {
        Router::new(self)
    }
}

/// The thin multi-tenant front door: implements [`QueryService`] by
/// resolving each request's region and dispatching to the owning shard.
///
/// The router itself holds no query state — no queue, no cache, no
/// metrics recorder. [`metrics`](QueryService::metrics) and
/// [`shutdown`](QueryService::shutdown) merge the per-shard snapshots
/// ([`MetricsSnapshot::merge`]); per-shard views stay available through
/// [`shard_metrics`](Router::shard_metrics) and are what the CLI exports
/// under the per-shard `shard` label.
pub struct Router {
    shards: Vec<Shard>,
    /// Requests that addressed a region nobody serves — answered with
    /// [`QueryError::UnknownRegion`] here at the front door, so no shard's
    /// `failed` counter moves. Observable via [`Router::misrouted`].
    misrouted: AtomicU64,
}

impl Router {
    /// Seals `registry` into a router.
    ///
    /// # Panics
    /// If the registry is empty.
    pub fn new(registry: ShardRegistry) -> Router {
        assert!(!registry.is_empty(), "a Router needs at least one shard");
        Router { shards: registry.shards, misrouted: AtomicU64::new(0) }
    }

    /// Number of shards behind this router.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Routers are never empty ([`Router::new`] asserts), but clippy
    /// expects `is_empty` next to `len`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The shard owning `region`, if registered.
    pub fn shard(&self, region: RegionId) -> Option<&Arc<Service>> {
        self.entry(region).map(|s| &s.service)
    }

    /// The shared context of `region`'s shard, if registered.
    pub fn context(&self, region: RegionId) -> Option<&Arc<ServiceContext>> {
        self.entry(region).map(|s| &s.ctx)
    }

    /// `region`'s own metrics snapshot — the per-shard view the merged
    /// [`QueryService::metrics`] is built from.
    pub fn shard_metrics(&self, region: RegionId) -> Option<MetricsSnapshot> {
        self.entry(region).map(|s| s.service.metrics())
    }

    /// Requests answered [`QueryError::UnknownRegion`] at the front door.
    pub fn misrouted(&self) -> u64 {
        self.misrouted.load(Ordering::Relaxed)
    }

    /// Publishes a weight-update batch to one region's epoch stream —
    /// shard-local by construction: no other shard's epoch ring, cache
    /// validity or repair path observes it. `None` if `region` is not
    /// registered.
    pub fn publish_weights_to(&self, region: RegionId, deltas: &[WeightDelta]) -> Option<EpochId> {
        self.entry(region).map(|s| s.ctx.publish_weights(deltas))
    }

    /// A [`QueryService`] view of one region: every submission is stamped
    /// with `region` before entering the router, and metrics/publishes are
    /// shard-local. `None` if `region` is not registered.
    pub fn region_service(&self, region: RegionId) -> Option<RegionService<'_>> {
        self.entry(region)?;
        Some(RegionService { router: self, region })
    }

    /// Legacy vertex-space routing for region-less requests: the owning
    /// region is a pure function of the start vertex and the registry
    /// shape. Shards whose vertex-id space contains the start are
    /// *eligible*; the start id picks one of them deterministically. No
    /// eligible shard ⇒ the default shard (region 0), whose own
    /// validation then answers `UnknownStart` — the same error a
    /// single-shard deployment gives.
    pub fn route_start(&self, start: VertexId) -> RegionId {
        let eligible: Vec<&Shard> = self
            .shards
            .iter()
            .filter(|s| (start.0 as usize) < s.ctx.graph().num_vertices())
            .collect();
        match eligible.len() {
            0 => self.shards[0].id,
            n => eligible[start.0 as usize % n].id,
        }
    }

    /// The region a request resolves to: its explicit address, or
    /// [`route_start`](Router::route_start) for region-less requests.
    /// `Err` when the explicit address is not registered.
    pub fn resolve(&self, request: &QueryRequest) -> Result<RegionId, QueryError> {
        match request.options.region {
            Some(region) => match self.entry(region) {
                Some(shard) => Ok(shard.id),
                None => Err(QueryError::UnknownRegion(region.0)),
            },
            None => Ok(self.route_start(request.query.start)),
        }
    }

    fn entry(&self, region: RegionId) -> Option<&Shard> {
        // Ids are dense and registration-ordered, so the address is the
        // index; the equality check keeps this honest.
        self.shards.get(region.0 as usize).filter(|s| s.id == region)
    }

    fn dispatch(&self, request: QueryRequest) -> Result<(&Shard, QueryRequest), QueryError> {
        let region = self.resolve(&request)?;
        let shard = self.entry(region).expect("resolve returned a registered region");
        let mut request = request;
        request.options.region = Some(region);
        Ok((shard, request))
    }

    fn unknown_region_ticket(&self, err: QueryError) -> Ticket {
        self.misrouted.fetch_add(1, Ordering::Relaxed);
        let (tx, ticket) = Ticket::channel();
        let _ = tx.send(Err(err));
        ticket
    }

    /// [`Router::dispatch`] for the network server's non-blocking path:
    /// resolves and stamps the request and hands back the owning shard's
    /// service (cloned out so the borrow does not pin the router).
    pub(crate) fn dispatch_request(
        &self,
        request: QueryRequest,
    ) -> Result<(Arc<Service>, QueryRequest), QueryError> {
        let (shard, request) = self.dispatch(request)?;
        Ok((Arc::clone(&shard.service), request))
    }

    /// A pre-resolved failure ticket, counted as a misroute.
    pub(crate) fn resolved_error_ticket(&self, err: QueryError) -> Ticket {
        self.unknown_region_ticket(err)
    }
}

impl QueryService for Router {
    fn submit(&self, request: QueryRequest) -> Ticket {
        match self.dispatch(request) {
            Ok((shard, request)) => shard.service.submit(request),
            Err(err) => self.unknown_region_ticket(err),
        }
    }

    fn submit_streaming(&self, request: QueryRequest) -> StreamTicket {
        match self.dispatch(request) {
            Ok((shard, request)) => shard.service.submit_streaming(request),
            Err(err) => {
                let (_progress_tx, progress_rx) = std::sync::mpsc::channel();
                StreamTicket::new(progress_rx, self.unknown_region_ticket(err))
            }
        }
    }

    /// The deployment-wide aggregate: every shard's snapshot merged
    /// ([`MetricsSnapshot::merge`]). Per-shard truth stays at
    /// [`Router::shard_metrics`].
    fn metrics(&self) -> MetricsSnapshot {
        let mut merged = self.shards[0].service.metrics();
        for shard in &self.shards[1..] {
            merged.merge(&shard.service.metrics());
        }
        merged
    }

    /// Region-less publishes go to the default shard (region 0) — the
    /// single-shard legacy contract. Multi-tenant publishers address a
    /// region with [`Router::publish_weights_to`].
    fn publish_weights(&self, deltas: &[WeightDelta]) -> EpochId {
        self.shards[0].ctx.publish_weights(deltas)
    }

    /// Drains and stops every shard (in registration order) and returns
    /// the merged final metrics. Idempotent, like each shard's own
    /// shutdown.
    fn shutdown(&self) -> MetricsSnapshot {
        let mut merged: Option<MetricsSnapshot> = None;
        for shard in &self.shards {
            let snapshot = shard.service.shutdown();
            match &mut merged {
                Some(m) => m.merge(&snapshot),
                None => merged = Some(snapshot),
            }
        }
        merged.expect("a Router has at least one shard")
    }

    fn regions(&self) -> Vec<RegionInfo> {
        self.shards
            .iter()
            .map(|s| RegionInfo {
                id: s.id,
                name: s.name.clone(),
                fingerprint: DatasetFingerprint::of(&s.ctx),
            })
            .collect()
    }
}

/// One region of a [`Router`], viewed as a [`QueryService`].
///
/// Submissions are stamped with the region id and still travel through
/// the router's dispatch (exercising the same path an addressed network
/// request takes); metrics, weight publishes and regions() are
/// shard-local. `shutdown` is deployment-wide and left to the router
/// owner — calling it here drains only this shard.
pub struct RegionService<'a> {
    router: &'a Router,
    region: RegionId,
}

impl RegionService<'_> {
    /// The fixed region every submission is stamped with.
    pub fn region(&self) -> RegionId {
        self.region
    }

    fn stamp(&self, mut request: QueryRequest) -> QueryRequest {
        request.options.region = Some(self.region);
        request
    }

    fn shard(&self) -> &Shard {
        self.router.entry(self.region).expect("RegionService regions are registered")
    }
}

impl QueryService for RegionService<'_> {
    fn submit(&self, request: QueryRequest) -> Ticket {
        self.router.submit(self.stamp(request))
    }

    fn submit_streaming(&self, request: QueryRequest) -> StreamTicket {
        self.router.submit_streaming(self.stamp(request))
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.shard().service.metrics()
    }

    fn publish_weights(&self, deltas: &[WeightDelta]) -> EpochId {
        self.shard().ctx.publish_weights(deltas)
    }

    fn shutdown(&self) -> MetricsSnapshot {
        self.shard().service.shutdown()
    }

    fn regions(&self) -> Vec<RegionInfo> {
        let shard = self.shard();
        vec![RegionInfo {
            id: shard.id,
            name: shard.name.clone(),
            fingerprint: DatasetFingerprint::of(&shard.ctx),
        }]
    }
}
