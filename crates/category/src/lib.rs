//! Semantic hierarchy substrate for the SkySR workspace.
//!
//! The paper (§1, §3) models PoI categories as a *forest* of rooted trees —
//! a "category tree" per top-level domain, as in the Foursquare taxonomy
//! (Figure 2). Category similarity (Definition 3.3, Eq. 6) is computed over
//! this forest with the Wu–Palmer measure, and per-route semantic scores
//! (Eq. 7) aggregate the per-position similarities with a product.
//!
//! Modules:
//! * [`tree`] — the forest itself ([`CategoryForest`], [`ForestBuilder`]),
//!   ancestors, LCA, leaves;
//! * [`similarity`] — [`Similarity`] implementations: [`WuPalmer`] (Eq. 6)
//!   and [`PathLength`];
//! * [`aggregate`] — semantic-score aggregation (Eq. 7);
//! * [`foursquare`] — the built-in 10-tree Foursquare-style taxonomy used
//!   by the Tokyo/NYC presets;
//! * [`synth`] — generated forests (the Cal dataset's height-3/branching-3
//!   substitution, paper footnote 5);
//! * [`requirement`] — complex category requirements (§6): conjunction,
//!   disjunction, negation.

pub mod aggregate;
pub mod foursquare;
pub mod requirement;
pub mod similarity;
pub mod synth;
pub mod tree;

pub use aggregate::{ProductAggregate, SemanticAggregate};
pub use requirement::Requirement;
pub use similarity::{PathLength, Similarity, WuPalmer};
pub use tree::{CategoryForest, CategoryId, ForestBuilder};
