//! Workload replay: skewed query streams over a pool of distinct generated
//! queries, executed through a [`QueryService`].
//!
//! Real query traffic repeats itself — popular start areas and category
//! sequences recur, which is exactly what the cross-query reuse layer
//! (result cache, request coalescing, semantic prefix reuse) exploits.
//! Three stream shapes are supported ([`StreamPattern`]):
//!
//! * **Zipf** — `total` requests drawn from the pool with
//!   Zipf(`zipf_exponent`) popularity, shuffled into an arrival order
//!   (PR 1's original stream; exercises the cache).
//! * **Duplicate bursts** — the Zipf draw repeated in consecutive bursts
//!   of [`ReplaySpec::burst`] identical requests, so duplicates are in
//!   flight *simultaneously*; exercises request coalescing.
//! * **Prefix chains** — the pool is expanded with every proper prefix
//!   ⟨c₁,…,c_j⟩ of each generated query and the stream walks chains
//!   short-to-long; exercises semantic prefix reuse (warm starts).
//!
//! With [`ReplaySpec::verify`] set, every request is also answered by a
//! sequential cold [`Bssr`] run and the skylines compared with
//! [`equivalent_skylines`]: same size and score-identical up to the score
//! tolerance. (Exact route equality is deliberately not required — a
//! warm-started search may return a different *representative* route for a
//! score-tied skyline point.)

use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use skysr_core::bssr::{Bssr, BssrConfig};
use skysr_core::query::SkySrQuery;
use skysr_core::route::{equivalent_skylines, SkylineRoute};
use skysr_data::dataset::Dataset;
use skysr_data::workload::WorkloadSpec;
use skysr_data::zipf::Zipf;

use crate::context::ServiceContext;
use crate::metrics::MetricsSnapshot;
use crate::service::{QueryService, ServiceConfig};

/// Shape of the replayed request stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamPattern {
    /// Zipf-popular requests in shuffled arrival order.
    Zipf,
    /// Zipf-popular requests arriving in bursts of identical duplicates.
    DuplicateBursts,
    /// Chains ⟨c₁⟩, ⟨c₁,c₂⟩, …, ⟨c₁,…,c_k⟩ walked short-to-long.
    PrefixChains,
}

impl std::fmt::Display for StreamPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StreamPattern::Zipf => "zipf",
            StreamPattern::DuplicateBursts => "duplicate",
            StreamPattern::PrefixChains => "prefix",
        })
    }
}

/// Parameters of one replay run.
#[derive(Clone, Debug)]
pub struct ReplaySpec {
    /// Total requests replayed.
    pub total: usize,
    /// Distinct *generated* queries (the prefix pattern additionally pools
    /// every proper prefix of each).
    pub distinct: usize,
    /// Category-sequence length of generated queries.
    pub seq_len: usize,
    /// Stream shape.
    pub pattern: StreamPattern,
    /// Consecutive identical requests per burst
    /// ([`StreamPattern::DuplicateBursts`] only).
    pub burst: usize,
    /// Zipf exponent of query popularity (0 = uniform, 1 = classic skew).
    pub zipf_exponent: f64,
    /// RNG seed for pool generation and stream sampling.
    pub seed: u64,
    /// Worker threads (0 = one per CPU).
    pub workers: usize,
    /// Result-cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Request coalescing (see [`ServiceConfig::coalesce`]).
    pub coalesce: bool,
    /// Semantic prefix reuse (see [`ServiceConfig::prefix_reuse`]).
    pub prefix_reuse: bool,
    /// Submission-queue capacity.
    pub queue_capacity: usize,
    /// Engine configuration.
    pub engine: BssrConfig,
    /// Also run every request sequentially on one thread and compare
    /// skylines (score-equivalent multisets).
    pub verify: bool,
}

impl Default for ReplaySpec {
    fn default() -> ReplaySpec {
        ReplaySpec {
            total: 1000,
            distinct: 100,
            seq_len: 3,
            pattern: StreamPattern::Zipf,
            burst: 16,
            zipf_exponent: 1.0,
            seed: 7,
            workers: 4,
            cache_capacity: 1024,
            coalesce: true,
            prefix_reuse: true,
            queue_capacity: 256,
            engine: BssrConfig::default(),
            verify: false,
        }
    }
}

/// Outcome of a replay run.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Requests replayed.
    pub total: usize,
    /// Distinct queries in the (possibly prefix-expanded) pool.
    pub distinct: usize,
    /// Stream shape replayed.
    pub pattern: StreamPattern,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the concurrent replay.
    pub wall: Duration,
    /// Service metrics over the replay window.
    pub metrics: MetricsSnapshot,
    /// `Some(mismatches)` when verification ran: the number of requests
    /// whose concurrent skyline was not score-equivalent to the
    /// sequential one.
    pub verify_mismatches: Option<usize>,
}

impl std::fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "replayed    {} requests ({} distinct, {} stream) on {} workers in {:.2} s",
            self.total,
            self.distinct,
            self.pattern,
            self.workers,
            self.wall.as_secs_f64()
        )?;
        write!(f, "{}", self.metrics)?;
        if let Some(m) = self.verify_mismatches {
            write!(f, "\nverify      ")?;
            if m == 0 {
                write!(f, "OK — concurrent skylines equivalent to sequential execution")?;
            } else {
                write!(f, "FAILED — {m} mismatching request(s)")?;
            }
        }
        Ok(())
    }
}

/// Builds the query pool the stream draws from. The prefix pattern expands
/// each generated k-position query into its full chain (indices
/// `q*seq_len + (len-1)`).
pub fn build_pool(dataset: &Dataset, spec: &ReplaySpec) -> Vec<SkySrQuery> {
    let base = WorkloadSpec::new(spec.seq_len)
        .queries(spec.distinct)
        .seed(spec.seed)
        .generate(dataset)
        .queries;
    match spec.pattern {
        StreamPattern::Zipf | StreamPattern::DuplicateBursts => base,
        StreamPattern::PrefixChains => base
            .into_iter()
            .flat_map(|q| {
                (1..=q.len())
                    .map(|l| SkySrQuery::with_positions(q.start, q.sequence[..l].to_vec()))
                    .collect::<Vec<_>>()
            })
            .collect(),
    }
}

/// Builds the request stream: `spec.total` indexes into the pool.
fn request_stream(spec: &ReplaySpec, pool_len: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x7e_706c_6179); // "replay"
    match spec.pattern {
        StreamPattern::Zipf => {
            let zipf = Zipf::new(pool_len, spec.zipf_exponent);
            let mut stream: Vec<usize> = (0..spec.total).map(|_| zipf.sample(&mut rng)).collect();
            stream.shuffle(&mut rng);
            stream
        }
        StreamPattern::DuplicateBursts => {
            // Bursts stay consecutive (no shuffle): the point is duplicates
            // being in flight at the same time.
            let zipf = Zipf::new(pool_len, spec.zipf_exponent);
            let burst = spec.burst.max(2);
            let mut stream = Vec::with_capacity(spec.total);
            while stream.len() < spec.total {
                let i = zipf.sample(&mut rng);
                for _ in 0..burst.min(spec.total - stream.len()) {
                    stream.push(i);
                }
            }
            stream
        }
        StreamPattern::PrefixChains => {
            // Walk chains short-to-long in *length wavefronts*: every
            // chain's length-1 query, then every length-2 query, and so
            // on (cycling until `total`). Separating a chain's successive
            // lengths by a whole wavefront ensures the prefix result is
            // cached — not merely in flight — when the extension arrives,
            // so warm starts happen from the first cycle on.
            let seq_len = spec.seq_len;
            assert!(
                pool_len >= seq_len && pool_len.is_multiple_of(seq_len),
                "a prefix-chain pool must hold whole chains of {seq_len} entries (got \
                 {pool_len}) — build it with build_pool and the same spec"
            );
            let chains = pool_len / seq_len;
            let mut stream = Vec::with_capacity(spec.total);
            'outer: loop {
                for l in 0..seq_len {
                    for chain in 0..chains {
                        if stream.len() == spec.total {
                            break 'outer;
                        }
                        stream.push(chain * seq_len + l);
                    }
                }
            }
            stream
        }
    }
}

/// Replays `spec` against `dataset` and reports service metrics.
///
/// The dataset is consumed: its graph, forest and PoI table become the
/// shared [`ServiceContext`]. Use [`build_pool`] + [`replay_on`] directly
/// to run several replays (e.g. config comparisons) over one context.
///
/// # Panics
/// If `spec.total` or `spec.distinct` is zero, or the dataset cannot
/// populate a workload of `spec.seq_len` (see [`WorkloadSpec::generate`]).
pub fn replay(dataset: Dataset, spec: &ReplaySpec) -> ReplayReport {
    assert!(spec.total > 0 && spec.distinct > 0, "replay needs a non-empty stream");
    let pool = build_pool(&dataset, spec);
    let ctx = Arc::new(ServiceContext::from_dataset(dataset));
    replay_on(ctx, &pool, spec)
}

/// Replays `spec`'s stream over an already-built pool and shared context.
pub fn replay_on(ctx: Arc<ServiceContext>, pool: &[SkySrQuery], spec: &ReplaySpec) -> ReplayReport {
    assert!(!pool.is_empty(), "replay needs a non-empty pool");
    let stream = request_stream(spec, pool.len());
    let service = QueryService::new(
        Arc::clone(&ctx),
        ServiceConfig {
            workers: spec.workers,
            queue_capacity: spec.queue_capacity,
            cache_capacity: spec.cache_capacity,
            coalesce: spec.coalesce,
            prefix_reuse: spec.prefix_reuse,
            engine: spec.engine,
        },
    );
    let workers = service.config().workers;

    let t0 = Instant::now();
    let outcomes = service.run_batch(stream.iter().map(|&i| pool[i].clone()));
    let wall = t0.elapsed();
    let metrics = service.metrics();
    drop(service);

    let verify_mismatches = spec.verify.then(|| {
        let sequential = sequential_skylines(&ctx, pool, spec.engine);
        stream
            .iter()
            .zip(&outcomes)
            .filter(|&(&i, outcome)| match outcome {
                Ok(response) => !equivalent_skylines(&response.routes, &sequential[i]),
                Err(_) => true,
            })
            .count()
    });

    ReplayReport {
        total: stream.len(),
        distinct: pool.len(),
        pattern: spec.pattern,
        workers,
        wall,
        metrics,
        verify_mismatches,
    }
}

/// One-threaded cold reference answers for every pool query.
fn sequential_skylines(
    ctx: &ServiceContext,
    pool: &[SkySrQuery],
    engine: BssrConfig,
) -> Vec<Vec<SkylineRoute>> {
    let qctx = ctx.query_context();
    let mut bssr = Bssr::with_config(&qctx, engine);
    pool.iter().map(|q| bssr.run(q).expect("generated queries are valid").routes).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_stream_is_skewed_and_deterministic() {
        let spec = ReplaySpec { total: 2_000, distinct: 50, ..ReplaySpec::default() };
        let a = request_stream(&spec, 50);
        let b = request_stream(&spec, 50);
        assert_eq!(a, b);
        assert!(a.iter().all(|&i| i < 50));
        // Zipf(1) over 50 ranks: rank 0 draws ~22% of all requests.
        let zeros = a.iter().filter(|&&i| i == 0).count();
        assert!(zeros > a.len() / 10, "rank 0 appeared only {zeros} times");
        let spec2 = ReplaySpec { seed: 8, ..spec };
        assert_ne!(request_stream(&spec2, 50), a);
    }

    #[test]
    fn uniform_exponent_spreads_requests() {
        let spec =
            ReplaySpec { total: 5_000, distinct: 10, zipf_exponent: 0.0, ..ReplaySpec::default() };
        let stream = request_stream(&spec, 10);
        for rank in 0..10 {
            let n = stream.iter().filter(|&&i| i == rank).count();
            assert!((250..=750).contains(&n), "rank {rank}: {n}");
        }
    }

    #[test]
    fn duplicate_stream_arrives_in_bursts() {
        let spec = ReplaySpec {
            total: 200,
            distinct: 10,
            burst: 8,
            pattern: StreamPattern::DuplicateBursts,
            ..ReplaySpec::default()
        };
        let stream = request_stream(&spec, 10);
        assert_eq!(stream.len(), 200);
        for chunk in stream.chunks(8) {
            assert!(chunk.iter().all(|&i| i == chunk[0]), "burst not uniform: {chunk:?}");
        }
        // More than one distinct query appears overall.
        let mut uniq = stream.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() > 1);
    }

    #[test]
    fn prefix_stream_walks_length_wavefronts() {
        let spec = ReplaySpec {
            total: 50,
            distinct: 4,
            seq_len: 3,
            pattern: StreamPattern::PrefixChains,
            ..ReplaySpec::default()
        };
        // Pool: 4 chains × 3 lengths; chain c occupies indices 3c..3c+3.
        let stream = request_stream(&spec, 12);
        assert_eq!(stream.len(), 50);
        // Wavefront of all length-1 queries, then all length-2 queries.
        assert_eq!(&stream[..8], &[0, 3, 6, 9, 1, 4, 7, 10]);
        // The stream cycles: entry 12 restarts the length-1 wavefront.
        assert_eq!(stream[12], 0);
    }
}
