//! Dataset presets and generation (Table 5 equivalents).
//!
//! Each preset fixes the structural parameters that drive the algorithms'
//! behaviour: vertex count, PoI count, edge density, category forest shape,
//! PoI spatial skew and category popularity skew. Full-scale presets match
//! Table 5's sizes; the `*Small` presets are laptop-sized scale-downs with
//! identical ratios (and are what the bundled experiments use by default —
//! absolute numbers shrink, relative behaviour is preserved).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use skysr_category::{
    foursquare::foursquare_forest, synth::uniform_forest, CategoryForest, CategoryId,
};
use skysr_core::{PoiTable, QueryContext};
use skysr_graph::{GeoPoint, RoadNetwork, VertexId};

use crate::netgen::{generate_network, NetGenSpec};
use crate::spatial::EdgeIndex;
use crate::zipf::Zipf;

/// The category forest a dataset uses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ForestKind {
    /// The built-in 10-tree Foursquare-style taxonomy (Tokyo, NYC).
    Foursquare,
    /// Generated uniform forest (Cal; paper footnote 5).
    Uniform {
        /// Number of trees.
        trees: usize,
        /// Tree height (root = level 1).
        height: u32,
        /// Children per non-leaf node.
        branching: usize,
    },
}

/// Named dataset presets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Preset {
    /// Table 5 Tokyo at full scale (401 893 vertices).
    Tokyo,
    /// Table 5 New York City at full scale (1 150 744 vertices).
    Nyc,
    /// Table 5 California at full scale (21 048 vertices, dense PoIs).
    Cal,
    /// Tokyo scaled to ~5% (default experiment size).
    TokyoSmall,
    /// NYC scaled to ~3% (default experiment size).
    NycSmall,
    /// California scaled to ~25% (default experiment size).
    CalSmall,
}

/// Full parameter set for dataset generation.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetSpec {
    /// Display name (used in experiment tables).
    pub name: String,
    /// Road-network intersections (the paper's |V|).
    pub vertices: usize,
    /// PoIs to embed (the paper's |P|).
    pub pois: usize,
    /// Road edges per vertex before PoI embedding.
    pub edge_factor: f64,
    /// Category forest.
    pub forest: ForestKind,
    /// Number of PoI clusters (0 = fully uniform placement).
    pub poi_clusters: usize,
    /// Fraction of PoIs drawn from clusters rather than uniformly.
    pub cluster_fraction: f64,
    /// Zipf exponent for category popularity.
    pub zipf_exponent: f64,
    /// Geographic centre.
    pub center: GeoPoint,
    /// Extent in degrees.
    pub extent_deg: f64,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Spec for a named preset.
    pub fn preset(p: Preset) -> DatasetSpec {
        let tokyo = GeoPoint::new(35.68, 139.77);
        let nyc = GeoPoint::new(40.73, -73.98);
        let cal = GeoPoint::new(36.5, -119.5);
        match p {
            Preset::Tokyo => DatasetSpec {
                name: "Tokyo".into(),
                vertices: 401_893,
                pois: 174_421,
                edge_factor: 1.24,
                forest: ForestKind::Foursquare,
                poi_clusters: 0,
                cluster_fraction: 0.0,
                zipf_exponent: 1.0,
                center: tokyo,
                extent_deg: 0.5,
                seed: 42,
            },
            Preset::Nyc => DatasetSpec {
                name: "NYC".into(),
                vertices: 1_150_744,
                pois: 451_051,
                edge_factor: 1.50,
                forest: ForestKind::Foursquare,
                poi_clusters: 8,
                cluster_fraction: 0.7,
                zipf_exponent: 1.0,
                center: nyc,
                extent_deg: 0.6,
                seed: 43,
            },
            Preset::Cal => DatasetSpec {
                name: "Cal".into(),
                vertices: 21_048,
                pois: 87_365,
                edge_factor: 1.03,
                forest: ForestKind::Uniform { trees: 7, height: 3, branching: 3 },
                poi_clusters: 12,
                cluster_fraction: 0.8,
                zipf_exponent: 1.0,
                center: cal,
                extent_deg: 8.0,
                seed: 44,
            },
            Preset::TokyoSmall => DatasetSpec {
                name: "Tokyo-small".into(),
                vertices: 20_000,
                pois: 8_700,
                ..DatasetSpec::preset(Preset::Tokyo)
            },
            Preset::NycSmall => DatasetSpec {
                name: "NYC-small".into(),
                vertices: 34_500,
                pois: 13_500,
                ..DatasetSpec::preset(Preset::Nyc)
            },
            Preset::CalSmall => DatasetSpec {
                name: "Cal-small".into(),
                vertices: 5_300,
                pois: 21_800,
                ..DatasetSpec::preset(Preset::Cal)
            },
        }
    }

    /// Scales |V| and |P| by `factor` (≥ 4 vertices enforced).
    pub fn scale(mut self, factor: f64) -> DatasetSpec {
        assert!(factor > 0.0);
        self.vertices = ((self.vertices as f64 * factor) as usize).max(16);
        self.pois = ((self.pois as f64 * factor) as usize).max(4);
        self
    }

    /// Overrides the RNG seed.
    pub fn seed(mut self, seed: u64) -> DatasetSpec {
        self.seed = seed;
        self
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5eed);
        let forest = match self.forest {
            ForestKind::Foursquare => foursquare_forest(),
            ForestKind::Uniform { trees, height, branching } => {
                uniform_forest(trees, height, branching)
            }
        };

        let (mut builder, _, _) = generate_network(&NetGenSpec {
            target_vertices: self.vertices,
            edge_factor: self.edge_factor,
            center: self.center,
            extent_deg: self.extent_deg,
            seed: self.seed,
        });

        // PoI positions: a mixture of uniform noise and Gaussian clusters.
        let centers: Vec<GeoPoint> = (0..self.poi_clusters)
            .map(|_| {
                GeoPoint::new(
                    self.center.lat + (rng.random::<f64>() - 0.5) * self.extent_deg * 0.8,
                    self.center.lon + (rng.random::<f64>() - 0.5) * self.extent_deg * 0.8,
                )
            })
            .collect();
        let sigma = self.extent_deg / 25.0;
        let mut points = Vec::with_capacity(self.pois);
        for _ in 0..self.pois {
            let p = if !centers.is_empty() && rng.random::<f64>() < self.cluster_fraction {
                let c = centers[rng.random_range(0..centers.len())];
                GeoPoint::new(
                    c.lat + gaussian(&mut rng) * sigma,
                    c.lon + gaussian(&mut rng) * sigma,
                )
            } else {
                GeoPoint::new(
                    self.center.lat + (rng.random::<f64>() - 0.5) * self.extent_deg,
                    self.center.lon + (rng.random::<f64>() - 0.5) * self.extent_deg,
                )
            };
            points.push(p);
        }

        // Embed each PoI on its closest edge (paper §7.1 / [10]): project
        // all points first, then split each original edge at its sorted
        // projection parameters.
        let index = EdgeIndex::build(&builder, (self.vertices as f64).sqrt() as usize / 2 + 4);
        let mut by_edge: Vec<(usize, f64)> = points
            .iter()
            .filter_map(|&p| index.closest_edge(&builder, p).map(|(e, proj)| (e, proj.t)))
            .collect();
        by_edge.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));

        let mut poi_vertices = Vec::with_capacity(by_edge.len());
        let mut i = 0;
        while i < by_edge.len() {
            let edge = by_edge[i].0;
            let mut j = i;
            while j < by_edge.len() && by_edge[j].0 == edge {
                j += 1;
            }
            // Split this edge left to right; `remaining` tracks the live
            // sub-edge covering parameter range [consumed, 1].
            let mut remaining = edge;
            let mut consumed = 0.0f64;
            for &(_, t) in &by_edge[i..j] {
                let span = 1.0 - consumed;
                let rel = if span <= f64::EPSILON {
                    0.0
                } else {
                    ((t - consumed) / span).clamp(0.0, 1.0)
                };
                let mid = builder.split_edge(remaining, rel);
                poi_vertices.push(mid);
                // split_edge keeps [0, rel] under the old index and appends
                // the [rel, 1] part as the newest edge.
                remaining = builder.num_edges() - 1;
                consumed = t.max(consumed);
            }
            i = j;
        }

        // Categories: Zipf-ranked leaves (rank order shuffled per seed).
        let mut leaves: Vec<CategoryId> = forest.leaves().collect();
        leaves.shuffle(&mut rng);
        let zipf = Zipf::new(leaves.len(), self.zipf_exponent);
        let graph = builder.build();
        let mut pois = PoiTable::new(graph.num_vertices());
        for &v in &poi_vertices {
            pois.add_poi(v, leaves[zipf.sample(&mut rng)]);
        }
        pois.finalize(&forest);

        Dataset {
            name: self.name.clone(),
            graph,
            forest,
            pois,
            poi_vertices,
            spec: Some(self.clone()),
        }
    }
}

/// Box–Muller standard normal.
fn gaussian<R: RngExt>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A generated (or loaded) dataset.
pub struct Dataset {
    /// Display name.
    pub name: String,
    /// The road network including embedded PoI vertices.
    pub graph: RoadNetwork,
    /// Category forest.
    pub forest: CategoryForest,
    /// PoI associations (finalised).
    pub pois: PoiTable,
    /// The PoI vertex ids.
    pub poi_vertices: Vec<VertexId>,
    /// Generation parameters (absent for datasets loaded from disk).
    pub spec: Option<DatasetSpec>,
}

impl Dataset {
    /// Borrowed query context over this dataset.
    pub fn context(&self) -> QueryContext<'_> {
        QueryContext::new(&self.graph, &self.forest, &self.pois)
    }

    /// Deterministic synthetic PoI ratings for the §9 multi-attribute
    /// variant: unimodal quality scores in `[0, 1]`, seeded.
    pub fn ratings(&self, seed: u64) -> skysr_core::variants::rated::RatingTable {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7a7e);
        let mut table =
            skysr_core::variants::rated::RatingTable::new(self.graph.num_vertices(), 0.5);
        for &p in &self.poi_vertices {
            // Mean of two uniforms: unimodal around 0.5 like real review
            // score distributions.
            let r = (rng.random::<f64>() + rng.random::<f64>()) / 2.0;
            table.set(p, r);
        }
        table
    }

    /// Number of category trees with at least one PoI on a leaf — the
    /// ceiling on a workload's sequence length, since §7.1 draws each
    /// position from a distinct tree (see [`crate::workload::WorkloadSpec`]).
    pub fn populated_trees(&self) -> usize {
        let trees: std::collections::HashSet<u32> = self
            .pois
            .category_histogram()
            .into_iter()
            .filter(|&(c, n)| n > 0 && self.forest.is_leaf(c))
            .map(|(c, _)| self.forest.tree_of(c))
            .collect();
        trees.len()
    }

    /// Table 5-style statistics: (|V| road vertices, |P| PoIs, |E| edges).
    pub fn stats(&self) -> (usize, usize, usize) {
        let p = self.pois.num_pois();
        (self.graph.num_vertices() - p, p, self.graph.num_edges())
    }
}

impl std::fmt::Debug for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (v, p, e) = self.stats();
        write!(f, "Dataset({} |V|={v} |P|={p} |E|={e})", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysr_graph::connectivity::is_connected;

    fn tiny() -> Dataset {
        DatasetSpec::preset(Preset::CalSmall).scale(0.1).seed(9).generate()
    }

    #[test]
    fn generated_dataset_is_connected_with_pois() {
        let d = tiny();
        assert!(is_connected(&d.graph));
        let (v, p, e) = d.stats();
        assert!(p > 0 && v > 0 && e > 0);
        assert_eq!(p, d.poi_vertices.len());
    }

    #[test]
    fn poi_counts_match_spec() {
        let d = tiny();
        let spec = d.spec.as_ref().unwrap();
        // All points project onto some edge, so counts match exactly.
        assert_eq!(d.pois.num_pois(), spec.pois);
    }

    #[test]
    fn every_poi_has_a_category_and_splits_an_edge() {
        let d = tiny();
        for &v in &d.poi_vertices {
            assert!(!d.pois.categories_of(v).is_empty());
            // Embedded PoIs have degree ≥ 2 (they split an edge).
            assert!(d.graph.degree(v) >= 2, "PoI {v:?} degree {}", d.graph.degree(v));
        }
    }

    #[test]
    fn category_popularity_is_skewed() {
        let d = DatasetSpec::preset(Preset::CalSmall).scale(0.3).seed(5).generate();
        let mut counts: Vec<usize> =
            d.pois.category_histogram().into_iter().map(|(_, c)| c).filter(|&c| c > 0).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        assert!(counts[0] > counts[counts.len() - 1] * 3, "not skewed: {counts:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = DatasetSpec::preset(Preset::CalSmall).scale(0.05).seed(3).generate();
        let b = DatasetSpec::preset(Preset::CalSmall).scale(0.05).seed(3).generate();
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.poi_vertices, b.poi_vertices);
    }

    #[test]
    fn populated_trees_counts_only_trees_with_pois() {
        let d = tiny();
        let n = d.populated_trees();
        assert!(n >= 2, "workloads need at least two populated trees, got {n}");
        assert!(n <= d.forest.num_trees());
        // Consistency with the workload generator's own constraint: a
        // sequence of exactly `n` positions must be generatable.
        let w = crate::workload::WorkloadSpec::new(n).queries(1).generate(&d);
        assert_eq!(w.queries[0].len(), n);
    }

    #[test]
    fn presets_have_table5_ratios() {
        // Structural ratios of the small presets track Table 5.
        let tokyo = DatasetSpec::preset(Preset::TokyoSmall);
        assert!((tokyo.pois as f64 / tokyo.vertices as f64 - 0.43).abs() < 0.02);
        let cal = DatasetSpec::preset(Preset::CalSmall);
        assert!(cal.pois > cal.vertices * 4, "Cal is PoI-dense");
    }

    #[test]
    fn queries_run_on_generated_dataset() {
        let d = tiny();
        let ctx = d.context();
        // Pick a popular leaf category and run a 2-position query.
        let mut hist = d.pois.category_histogram();
        hist.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        let c0 = hist[0].0;
        let c1 = hist
            .iter()
            .find(|(c, n)| *n > 0 && d.forest.tree_of(*c) != d.forest.tree_of(c0))
            .map(|(c, _)| *c)
            .expect("two populated trees");
        let q = skysr_core::SkySrQuery::new(VertexId(0), [c0, c1]);
        let result = skysr_core::bssr::Bssr::new(&ctx).run(&q).unwrap();
        assert!(!result.routes.is_empty());
        assert!(result.routes.iter().any(|r| r.semantic == 0.0));
    }
}
