//! Generated category forests.
//!
//! The Cal dataset has no hierarchy, so the paper "generates a category
//! tree of height three where a non-leaf node has three child nodes"
//! (footnote 5). [`uniform_forest`] reproduces that construction for any
//! (trees, height, branching) triple.

use crate::tree::{CategoryForest, CategoryId, ForestBuilder};

/// Builds `trees` complete trees of the given `height` (root = level 1) and
/// `branching` factor. Category names are `"t{tree}/n{index}"`.
///
/// # Panics
/// If `height == 0` or `branching == 0`.
pub fn uniform_forest(trees: usize, height: u32, branching: usize) -> CategoryForest {
    assert!(height >= 1, "height must be at least 1");
    assert!(branching >= 1, "branching must be at least 1");
    let mut b = ForestBuilder::new();
    for t in 0..trees {
        let mut counter = 0usize;
        let root = b.add_root(&format!("t{t}/n{counter}"));
        counter += 1;
        let mut level: Vec<CategoryId> = vec![root];
        for _ in 1..height {
            let mut next = Vec::with_capacity(level.len() * branching);
            for &parent in &level {
                for _ in 0..branching {
                    next.push(b.add_child(parent, &format!("t{t}/n{counter}")));
                    counter += 1;
                }
            }
            level = next;
        }
    }
    b.build()
}

/// Number of categories in one tree of [`uniform_forest`].
pub fn tree_size(height: u32, branching: usize) -> usize {
    (0..height).map(|l| branching.pow(l)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::{Similarity, WuPalmer};

    #[test]
    fn cal_footnote5_shape() {
        // Height 3, branching 3: 1 + 3 + 9 = 13 nodes per tree.
        let f = uniform_forest(5, 3, 3);
        assert_eq!(f.num_trees(), 5);
        assert_eq!(f.num_categories(), 5 * 13);
        assert_eq!(tree_size(3, 3), 13);
        assert_eq!(f.max_depth(), 3);
    }

    #[test]
    fn leaves_count() {
        let f = uniform_forest(2, 3, 3);
        assert_eq!(f.leaves().count(), 2 * 9);
    }

    #[test]
    fn single_level_forest_is_roots_only() {
        let f = uniform_forest(4, 1, 3);
        assert_eq!(f.num_categories(), 4);
        assert_eq!(f.leaves().count(), 4);
    }

    #[test]
    fn sibling_similarity_uniform() {
        let f = uniform_forest(1, 3, 2);
        let root = f.roots()[0];
        let kids = f.children(root);
        // Siblings at depth 2: lca is root → 2*1/(2+2) = 0.5.
        assert_eq!(WuPalmer.sim(&f, kids[0], kids[1]), 0.5);
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let f = uniform_forest(3, 3, 3);
        for c in f.categories() {
            assert_eq!(f.by_name(f.name(c)), Some(c));
        }
    }

    #[test]
    #[should_panic(expected = "height")]
    fn zero_height_rejected() {
        uniform_forest(1, 0, 3);
    }
}
