//! Cross-query LRU result cache with epoch-versioned entries.
//!
//! Keys are *canonicalized* queries: start vertex, the canonical form of
//! every sequence position, and the engine configuration the result was
//! computed under. Since PR 2, complex
//! [`Requirement`](skysr_category::Requirement) positions canonicalize too
//! (sorted/deduplicated/flattened connectives, normalized exclusion
//! chains — see [`skysr_core::CanonicalPosition`]), so *every* valid query
//! is cacheable and structurally different spellings of one requirement
//! share a single entry.
//!
//! Values are `Arc<[SkylineRoute]>` *stamped with the weight
//! [`EpochId`] they were computed under*. Dynamic edge weights make a
//! skyline valid only for its epoch, so a lookup supplies the requester's
//! pinned epoch and an entry answers only when the stamps match:
//!
//! * an **older** entry is dropped on sight and the lookup counts a miss
//!   plus an `invalidations` counter bump — *lazy invalidation*: no epoch
//!   publish ever scans the cache, stale entries die on first touch (or by
//!   ordinary LRU pressure);
//! * a **newer** entry (the requester pinned an epoch that has since been
//!   superseded) also misses, but is left in place — and
//!   [`insert`](ResultCache::insert) refuses to overwrite a newer-epoch
//!   entry with an older result, so a slow straggler can never regress the
//!   cache.
//!
//! Since the reuse-planner refactor all reads go through one non-counting,
//! non-invalidating primitive — [`probe`](ResultCache::probe) — which the
//! `ReusePlanner` drives (exact-hit, repair-source, prefix / ancestor /
//! suffix seed probes are all the same call). Accounting is explicit and
//! lives with the *policy*, not the probe: the planner counts exactly one
//! lookup per cached request ([`note_lookup`](ResultCache::note_lookup))
//! and performs lazy invalidation deliberately
//! ([`discard_older`](ResultCache::discard_older)) when a stale entry has
//! no repair path.
//!
//! Counters are exact: `hits + misses` equals the number of counted
//! lookups (uncacheable traffic never reaches the cache since
//! canonicalization is total; a service running with caching disabled
//! performs no lookups at all), seed probes are not counted, inserting
//! over an identical key refreshes the entry without counting an
//! eviction, and `insertions` counts stored results so CI perf artifacts
//! can cross-check `hits + coalesced + executed` against completed
//! queries. `invalidations` (epoch-stale drops) and `evictions` (capacity
//! displacement) are disjoint by construction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use skysr_category::CategoryId;
use skysr_core::bssr::BssrConfig;
use skysr_core::query::CanonicalPosition;
use skysr_core::query::SkySrQuery;
use skysr_core::route::SkylineRoute;
use skysr_graph::{EpochId, VertexId};

/// Canonical cache key for a SkySR query under one engine configuration.
///
/// Deliberately *epoch-free*: the epoch lives on the entry, not in the
/// key, so one logical query occupies one slot whose stamp advances with
/// traffic instead of leaking an entry per epoch.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryKey {
    start: VertexId,
    positions: Box<[CanonicalPosition]>,
    config: BssrConfig,
}

impl QueryKey {
    /// Canonicalizes `query`. Total: every syntactically valid query has a
    /// key (complex requirements are reduced to their canonical form).
    pub fn canonicalize(query: &SkySrQuery, config: BssrConfig) -> QueryKey {
        QueryKey {
            start: query.start,
            positions: query.canonical_positions().into_boxed_slice(),
            config,
        }
    }

    /// The key of this query's (k−1)-position prefix under the same start
    /// and configuration — the entry a warm start reuses. `None` for
    /// single-position queries.
    pub fn prefix(&self) -> Option<QueryKey> {
        (self.positions.len() >= 2).then(|| QueryKey {
            start: self.start,
            positions: self.positions[..self.positions.len() - 1].into(),
            config: self.config,
        })
    }

    /// The key of this query's ⟨c₂, …, c_k⟩ *suffix* under the same start
    /// and configuration — the entry suffix reuse prepends one leg to.
    /// `None` for single-position queries.
    pub fn suffix(&self) -> Option<QueryKey> {
        (self.positions.len() >= 2).then(|| QueryKey {
            start: self.start,
            positions: self.positions[1..].into(),
            config: self.config,
        })
    }

    /// The plain category at position `i`, if that position is (or
    /// canonicalizes to) one — the anchor for ancestor-category probes.
    pub fn position_category(&self, i: usize) -> Option<CategoryId> {
        match self.positions.get(i)? {
            CanonicalPosition::Category(c) => Some(*c),
            CanonicalPosition::Requirement(_) => None,
        }
    }

    /// This key with position `i` replaced by the plain category `c` —
    /// the key an ancestor-category variant of the query lives under.
    ///
    /// # Panics
    /// If `i` is out of range.
    pub fn with_position_category(&self, i: usize, c: CategoryId) -> QueryKey {
        let mut positions = self.positions.clone();
        positions[i] = CanonicalPosition::Category(c);
        QueryKey { start: self.start, positions, config: self.config }
    }

    /// Number of sequence positions.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the key has no positions (never true for keys built by
    /// [`QueryKey::canonicalize`] from a valid query).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// One cached skyline: the routes plus the weight epoch they are valid
/// for.
#[derive(Clone, Debug)]
struct CacheEntry {
    epoch: EpochId,
    routes: Arc<[SkylineRoute]>,
}

// Placeholder left in freed slab slots (see `Lru::remove`): must not keep
// any skyline alive.
impl Default for CacheEntry {
    fn default() -> CacheEntry {
        CacheEntry { epoch: EpochId::BASE, routes: Vec::new().into() }
    }
}

/// Plain LRU map: `HashMap` for lookup plus an index-linked list for
/// recency order. All operations are O(1); no allocation after the node
/// slab reaches capacity.
struct Lru<K, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    /// Most recently used, or `NIL`.
    head: usize,
    /// Least recently used, or `NIL`.
    tail: usize,
    free: Vec<usize>,
    capacity: usize,
}

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl<K: Clone + Eq + std::hash::Hash, V: Default> Lru<K, V> {
    fn new(capacity: usize) -> Lru<K, V> {
        assert!(capacity > 0, "LRU capacity must be positive");
        Lru {
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            capacity,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        match prev {
            NIL => self.head = next,
            p => self.nodes[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.nodes[h].prev = i,
        }
        self.head = i;
    }

    /// Reads `key`'s value without touching recency order.
    fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&i| &self.nodes[i].value)
    }

    /// Slot index of `key`, if resident. The index stays valid until the
    /// entry is removed or evicted; index-based accessors below let a
    /// lookup hash the key once instead of once per operation (this all
    /// runs under the cache mutex every worker contends on).
    fn index_of(&self, key: &K) -> Option<usize> {
        self.map.get(key).copied()
    }

    /// The value stored in slot `i`.
    fn value(&self, i: usize) -> &V {
        &self.nodes[i].value
    }

    /// Marks slot `i` most recently used.
    fn promote_index(&mut self, i: usize) {
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    /// Removes slot `i`'s entry. The freed slot's value is dropped
    /// immediately — an invalidated skyline must not stay heap-resident
    /// until some later insert happens to reuse the slot.
    fn remove_index(&mut self, i: usize) {
        self.map.remove(&self.nodes[i].key);
        self.unlink(i);
        self.nodes[i].value = V::default();
        self.free.push(i);
    }

    /// Inserts (or refreshes) `key`; returns `true` when an older entry
    /// was evicted to make room. Refreshing an identical key never
    /// evicts — the entry count does not grow.
    fn insert(&mut self, key: K, value: V) -> bool {
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return false;
        }
        let mut evicted = false;
        if self.map.len() == self.capacity {
            let lru = self.tail;
            self.unlink(lru);
            self.map.remove(&self.nodes[lru].key);
            self.free.push(lru);
            evicted = true;
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node { key: key.clone(), value, prev: NIL, next: NIL };
                i
            }
            None => {
                self.nodes.push(Node { key: key.clone(), value, prev: NIL, next: NIL });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Counter values of a [`ResultCache`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the cache (same-epoch entries only).
    pub hits: u64,
    /// Lookups that missed (no entry, or an entry of another epoch).
    pub misses: u64,
    /// Results stored (first-time inserts and refreshes).
    pub insertions: u64,
    /// Entries displaced by capacity pressure. Refreshing an existing key
    /// is not an eviction, and epoch-stale drops are counted separately as
    /// `invalidations`.
    pub evictions: u64,
    /// Entries dropped because their epoch was older than a requester's
    /// pinned epoch (lazy invalidation of stale skylines).
    pub invalidations: u64,
    /// Entries currently stored.
    pub len: u64,
}

impl CacheCounters {
    /// Hits over total lookups, `0.0` when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe LRU cache from canonicalized queries to epoch-stamped
/// shared skylines.
pub struct ResultCache {
    inner: Mutex<Lru<QueryKey, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl ResultCache {
    /// Cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Lru::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The unified non-counting, non-invalidating read primitive the
    /// reuse planner drives.
    ///
    /// Returns the resident entry with whatever epoch stamp it carries,
    /// as long as that stamp is **not newer** than `epoch` (a requester
    /// must never observe a future epoch's skyline; an entry published
    /// after its pin simply does not exist for it). The caller decides
    /// what the stamp means: equal ⇒ exact hit; older ⇒ repair source,
    /// provably-untouched seed material, or lazy-invalidation candidate
    /// ([`discard_older`](ResultCache::discard_older)).
    ///
    /// Probes never touch the hit/miss counters — the planner counts
    /// exactly one lookup per cached request via
    /// [`note_lookup`](ResultCache::note_lookup), so seed probes cannot
    /// distort the hit rate. A found entry is marked recently used: reuse
    /// as a seed or repair source is a use.
    pub fn probe(&self, key: &QueryKey, epoch: EpochId) -> Option<(EpochId, Arc<[SkylineRoute]>)> {
        let mut lru = self.inner.lock().expect("cache poisoned");
        let i = lru.index_of(key)?;
        let entry_epoch = lru.value(i).epoch;
        if entry_epoch > epoch {
            return None;
        }
        let routes = Arc::clone(&lru.value(i).routes);
        lru.promote_index(i);
        Some((entry_epoch, routes))
    }

    /// Counts one request-level lookup. The serving layer calls this once
    /// per cached request after planning: `hit` iff the plan serves
    /// straight from a same-epoch entry. Keeps `hits + misses` equal to
    /// counted lookups and `hits` equal to responses served from the
    /// cache.
    pub fn note_lookup(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Lazy invalidation: removes `key`'s entry iff it is stamped strictly
    /// older than `epoch`, counting an invalidation. The planner calls
    /// this when a stale entry has no repair path (repair disabled, or the
    /// epoch pair's delta was compacted away); with repair on, stale
    /// entries are left in place as repair raw material instead.
    pub fn discard_older(&self, key: &QueryKey, epoch: EpochId) -> bool {
        let mut lru = self.inner.lock().expect("cache poisoned");
        let Some(i) = lru.index_of(key) else {
            return false;
        };
        if lru.value(i).epoch >= epoch {
            return false;
        }
        lru.remove_index(i);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Reclassifies one already-counted miss as a hit.
    ///
    /// A flight leader whose post-claim re-probe finds the answer (a
    /// racing previous leader cached it between this request's counted
    /// lookup and the flight claim — see `worker_loop`) is ultimately
    /// served from the cache. Converting its miss keeps both invariants
    /// exact: `hits + misses` equals counted lookups, and `hits` equals
    /// responses served from the cache.
    pub fn reclassify_miss_as_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.misses.fetch_sub(1, Ordering::Relaxed);
    }

    /// Stores a skyline computed at `epoch`.
    ///
    /// Refused (silently) when the cache already holds a *newer*-epoch
    /// entry for the key: a leader that started before an update published
    /// must not clobber the post-update result — its flight was pinned to
    /// the older epoch and its answer is already stale for new traffic.
    pub fn insert(&self, key: QueryKey, epoch: EpochId, routes: Arc<[SkylineRoute]>) {
        let mut lru = self.inner.lock().expect("cache poisoned");
        if lru.peek(&key).is_some_and(|e| e.epoch > epoch) {
            return;
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if lru.insert(key, CacheEntry { epoch, routes }) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current counter values.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            len: self.inner.lock().expect("cache poisoned").len() as u64,
        }
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache").field("counters", &self.counters()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysr_category::{CategoryId, Requirement};
    use skysr_core::bssr::QueuePolicy;
    use skysr_core::query::PositionSpec;
    use skysr_graph::Cost;

    const E0: EpochId = EpochId::BASE;
    const E1: EpochId = EpochId(1);
    const E2: EpochId = EpochId(2);

    fn routes(n: u32) -> Arc<[SkylineRoute]> {
        vec![SkylineRoute { pois: vec![VertexId(n)], length: Cost::new(n as f64), semantic: 0.0 }]
            .into()
    }

    fn key(start: u32) -> QueryKey {
        let q = SkySrQuery::new(VertexId(start), [CategoryId(0), CategoryId(1)]);
        QueryKey::canonicalize(&q, BssrConfig::default())
    }

    /// The planner's counted request lookup, reconstructed from the
    /// unified primitives: probe, count the one lookup, lazily invalidate
    /// a stale entry (the no-repair policy).
    fn get(cache: &ResultCache, key: &QueryKey, epoch: EpochId) -> Option<Arc<[SkylineRoute]>> {
        let hit = cache.probe(key, epoch).filter(|&(e, _)| e == epoch);
        cache.note_lookup(hit.is_some());
        if hit.is_none() {
            cache.discard_older(key, epoch);
        }
        hit.map(|(_, r)| r)
    }

    /// The planner's same-epoch seed probe (not counted), with the
    /// no-repair lazy invalidation of stale seed entries.
    fn peek(cache: &ResultCache, key: &QueryKey, epoch: EpochId) -> Option<Arc<[SkylineRoute]>> {
        match cache.probe(key, epoch) {
            Some((e, r)) if e == epoch => Some(r),
            Some(_) => {
                cache.discard_older(key, epoch);
                None
            }
            None => None,
        }
    }

    #[test]
    fn requirement_queries_are_cacheable_and_spelling_insensitive() {
        let cfg = BssrConfig::default();
        let plain = SkySrQuery::new(VertexId(0), [CategoryId(0)]);
        let wrapped = SkySrQuery::with_positions(
            VertexId(0),
            [PositionSpec::Requirement(Requirement::any_of([CategoryId(0)]))],
        );
        // A requirement that reduces to one category shares the plain
        // query's entry.
        assert_eq!(QueryKey::canonicalize(&plain, cfg), QueryKey::canonicalize(&wrapped, cfg));
        // Branch order of a genuine disjunction is canonicalized away.
        let ab = SkySrQuery::with_positions(
            VertexId(0),
            [PositionSpec::Requirement(Requirement::any_of([CategoryId(0), CategoryId(1)]))],
        );
        let ba = SkySrQuery::with_positions(
            VertexId(0),
            [PositionSpec::Requirement(Requirement::any_of([CategoryId(1), CategoryId(0)]))],
        );
        assert_eq!(QueryKey::canonicalize(&ab, cfg), QueryKey::canonicalize(&ba, cfg));
        assert_ne!(QueryKey::canonicalize(&ab, cfg), QueryKey::canonicalize(&plain, cfg));
    }

    #[test]
    fn prefix_key_drops_the_last_position() {
        let cfg = BssrConfig::default();
        let q3 = SkySrQuery::new(VertexId(7), [CategoryId(0), CategoryId(1), CategoryId(2)]);
        let q2 = SkySrQuery::new(VertexId(7), [CategoryId(0), CategoryId(1)]);
        let q1 = SkySrQuery::new(VertexId(7), [CategoryId(0)]);
        let k3 = QueryKey::canonicalize(&q3, cfg);
        let k2 = k3.prefix().expect("3-position key has a prefix");
        assert_eq!(k2, QueryKey::canonicalize(&q2, cfg));
        let k1 = k2.prefix().expect("2-position key has a prefix");
        assert_eq!(k1, QueryKey::canonicalize(&q1, cfg));
        assert_eq!(k1.prefix(), None, "single-position keys have no prefix");
        assert_eq!((k3.len(), k2.len(), k1.len()), (3, 2, 1));
        assert!(!k3.is_empty());
    }

    #[test]
    fn config_distinguishes_keys() {
        let q = SkySrQuery::new(VertexId(0), [CategoryId(0)]);
        let a = QueryKey::canonicalize(&q, BssrConfig::default());
        let b = QueryKey::canonicalize(
            &q,
            BssrConfig { queue_policy: QueuePolicy::DistanceBased, ..BssrConfig::default() },
        );
        assert_ne!(a, b);
    }

    #[test]
    fn hit_miss_and_counters() {
        let cache = ResultCache::new(4);
        assert!(get(&cache, &key(1), E0).is_none());
        cache.insert(key(1), E0, routes(1));
        let hit = get(&cache, &key(1), E0).expect("hit");
        assert_eq!(hit[0].pois, vec![VertexId(1)]);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.insertions, c.evictions, c.len), (1, 1, 1, 0, 1));
        assert_eq!(c.invalidations, 0);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stale_entries_miss_and_are_invalidated() {
        let cache = ResultCache::new(4);
        cache.insert(key(1), E0, routes(1));
        // A requester pinned to a later epoch must not see the old skyline.
        assert!(get(&cache, &key(1), E1).is_none());
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (0, 1));
        assert_eq!(c.invalidations, 1, "the stale entry was dropped");
        assert_eq!(c.len, 0);
        assert_eq!(c.evictions, 0, "invalidation is not an eviction");
        // Gone for everyone, including its own epoch.
        assert!(get(&cache, &key(1), E0).is_none());
        // Refill at the new epoch serves the new epoch.
        cache.insert(key(1), E1, routes(2));
        assert!(get(&cache, &key(1), E1).is_some());
    }

    #[test]
    fn newer_entries_miss_for_older_pins_but_survive() {
        let cache = ResultCache::new(4);
        cache.insert(key(1), E2, routes(2));
        // A straggler pinned to an older epoch cannot use it...
        assert!(get(&cache, &key(1), E1).is_none());
        let c = cache.counters();
        assert_eq!(c.invalidations, 0, "newer entries are not invalidated");
        assert_eq!(c.len, 1);
        // ...and cannot overwrite it with its older result.
        cache.insert(key(1), E1, routes(1));
        let r = get(&cache, &key(1), E2).expect("newer entry survives");
        assert_eq!(r[0].pois, vec![VertexId(2)]);
        // The refused insert was not counted.
        assert_eq!(cache.counters().insertions, 1);
    }

    #[test]
    fn reclassify_converts_a_counted_miss_into_a_hit() {
        // The flight-leader re-probe path: one counted lookup missed, the
        // answer then appeared; after reclassification the request reads
        // as the cache hit it was ultimately served as.
        let cache = ResultCache::new(4);
        assert!(get(&cache, &key(1), E0).is_none());
        cache.insert(key(1), E0, routes(1));
        assert!(peek(&cache, &key(1), E0).is_some());
        cache.reclassify_miss_as_hit();
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (1, 0));
        assert!((c.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn seed_probes_do_not_count_lookups_and_respect_epochs() {
        let cache = ResultCache::new(4);
        assert!(peek(&cache, &key(1), E0).is_none());
        cache.insert(key(1), E0, routes(1));
        assert!(peek(&cache, &key(1), E0).is_some());
        // Same-epoch only: a prefix skyline from epoch 0 must not seed an
        // epoch-1 search.
        assert!(peek(&cache, &key(1), E1).is_none());
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (0, 0), "probes are not traffic");
        // The stale probe's explicit discard lazily invalidated the entry.
        assert_eq!(c.invalidations, 1);
        // But a probe refreshes recency: after probing 1 in a full cache,
        // the other entry is the eviction victim.
        let cache = ResultCache::new(2);
        cache.insert(key(1), E0, routes(1));
        cache.insert(key(2), E0, routes(2));
        assert!(peek(&cache, &key(1), E0).is_some());
        cache.insert(key(3), E0, routes(3));
        assert!(peek(&cache, &key(2), E0).is_none(), "2 was evicted");
        assert!(peek(&cache, &key(1), E0).is_some());
    }

    #[test]
    fn probe_returns_stale_entries_without_invalidating() {
        // The repair-source path: a stale probe leaves the entry in place
        // (it is the flight's repair raw material), and the planner counts
        // the request as a miss.
        let cache = ResultCache::new(4);
        cache.insert(key(1), E0, routes(1));
        let (e, r) = cache.probe(&key(1), E1).expect("stale entry visible to a newer pin");
        assert_eq!(e, E0);
        assert_eq!(r[0].pois, vec![VertexId(1)]);
        cache.note_lookup(false);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (0, 1), "a stale return is a miss, not a serve");
        assert_eq!(c.invalidations, 0, "the entry was left for repair");
        assert_eq!(c.len, 1);
        // ...and promoting it refreshes the same slot.
        cache.insert(key(1), E1, routes(2));
        let (e, r) = cache.probe(&key(1), E1).expect("promoted entry answers its epoch");
        assert_eq!(e, E1);
        assert_eq!(r[0].pois, vec![VertexId(2)]);
        cache.note_lookup(true);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.len, c.evictions), (1, 1, 1, 0));
        // Newer entries are invisible to older pins, and stay.
        assert!(cache.probe(&key(1), E0).is_none());
        assert_eq!(cache.counters().len, 1);
        // Absent keys miss.
        assert!(cache.probe(&key(9), E0).is_none());
    }

    #[test]
    fn discard_older_only_drops_strictly_older_entries() {
        let cache = ResultCache::new(4);
        cache.insert(key(1), E1, routes(1));
        assert!(!cache.discard_older(&key(1), E1), "same epoch is not stale");
        assert!(!cache.discard_older(&key(1), E0), "newer entries survive older pins");
        assert!(!cache.discard_older(&key(9), E2), "absent keys are a no-op");
        assert_eq!(cache.counters().invalidations, 0);
        assert!(cache.discard_older(&key(1), E2), "strictly older entries drop");
        let c = cache.counters();
        assert_eq!((c.invalidations, c.len, c.evictions), (1, 0, 0));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ResultCache::new(2);
        cache.insert(key(1), E0, routes(1));
        cache.insert(key(2), E0, routes(2));
        // Touch 1, making 2 the eviction victim.
        assert!(get(&cache, &key(1), E0).is_some());
        cache.insert(key(3), E0, routes(3));
        assert!(get(&cache, &key(2), E0).is_none(), "2 was evicted");
        assert!(get(&cache, &key(1), E0).is_some());
        assert!(get(&cache, &key(3), E0).is_some());
        assert_eq!(cache.counters().evictions, 1);
        assert_eq!(cache.counters().invalidations, 0);
    }

    #[test]
    fn reinsert_over_identical_key_counts_no_eviction() {
        // Regression guard for the CI perf artifacts: refreshing an entry
        // (e.g. two uncoalesced workers finishing the same query) must not
        // inflate the eviction counter, even at capacity.
        let cache = ResultCache::new(2);
        cache.insert(key(1), E0, routes(1));
        cache.insert(key(2), E0, routes(2));
        // At capacity: re-inserting both existing keys evicts nothing.
        cache.insert(key(1), E0, routes(10));
        cache.insert(key(2), E0, routes(20));
        let c = cache.counters();
        assert_eq!(c.evictions, 0);
        assert_eq!(c.insertions, 4, "refreshes still count as insertions");
        assert_eq!(c.len, 2);
        assert_eq!(get(&cache, &key(1), E0).unwrap()[0].length, Cost::new(10.0));
        // 1 was refreshed more recently... then got, so 2 is LRU now.
        cache.insert(key(3), E0, routes(3));
        assert_eq!(cache.counters().evictions, 1);
        assert!(get(&cache, &key(2), E0).is_none());
    }

    #[test]
    fn epoch_refresh_over_identical_key_keeps_one_slot() {
        // Advancing an entry's epoch in place must not grow the cache or
        // count an eviction — one logical query, one slot.
        let cache = ResultCache::new(2);
        cache.insert(key(1), E0, routes(1));
        cache.insert(key(1), E1, routes(11));
        cache.insert(key(1), E2, routes(12));
        let c = cache.counters();
        assert_eq!((c.len, c.evictions), (1, 0));
        let r = get(&cache, &key(1), E2).expect("latest stamp answers");
        assert_eq!(r[0].pois, vec![VertexId(12)]);
    }

    #[test]
    fn slab_reuse_after_many_evictions() {
        let cache = ResultCache::new(3);
        for i in 0..100 {
            cache.insert(key(i), E0, routes(i));
        }
        let c = cache.counters();
        assert_eq!(c.len, 3);
        assert_eq!(c.evictions, 97);
        assert_eq!(c.insertions, 100);
        for i in 97..100 {
            assert!(get(&cache, &key(i), E0).is_some(), "newest entries survive");
        }
    }

    #[test]
    fn slab_reuse_after_many_invalidations() {
        // Invalidation frees slots back to the slab; interleaved reuse at
        // successive epochs must stay consistent.
        let cache = ResultCache::new(3);
        for e in 0..50u64 {
            let epoch = EpochId(e);
            cache.insert(key(1), epoch, routes(1));
            cache.insert(key(2), epoch, routes(2));
            // Next epoch's lookups invalidate both.
            assert!(get(&cache, &key(1), EpochId(e + 1)).is_none());
            assert!(get(&cache, &key(2), EpochId(e + 1)).is_none());
        }
        let c = cache.counters();
        assert_eq!(c.invalidations, 100);
        assert_eq!(c.evictions, 0);
        assert_eq!(c.len, 0);
    }
}
