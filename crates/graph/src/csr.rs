//! Immutable CSR (compressed sparse row) road network.
//!
//! The paper's graph `G = (V ∪ P, E)` is stored as one vertex id space with
//! a packed adjacency array: `offsets[v] .. offsets[v + 1]` indexes into
//! parallel `targets` / `weights` arrays. Undirected graphs store both arc
//! directions so traversal never branches on directedness.

use crate::geometry::GeoPoint;
use crate::weight::Cost;
use crate::{builder::InputEdge, VertexId};

/// An immutable weighted road network.
#[derive(Clone, Debug)]
pub struct RoadNetwork {
    offsets: Vec<u32>,
    targets: Vec<VertexId>,
    weights: Vec<f64>,
    coords: Vec<Option<GeoPoint>>,
    directed: bool,
    num_input_edges: usize,
}

impl RoadNetwork {
    /// Packs input edges into CSR form. Undirected graphs get both arcs.
    pub(crate) fn from_edges(
        coords: Vec<Option<GeoPoint>>,
        edges: &[InputEdge],
        directed: bool,
    ) -> RoadNetwork {
        let n = coords.len();
        let arcs = if directed { edges.len() } else { edges.len() * 2 };
        let mut degree = vec![0u32; n + 1];
        for e in edges {
            degree[e.from.index() + 1] += 1;
            if !directed {
                degree[e.to.index() + 1] += 1;
            }
        }
        for i in 0..n {
            degree[i + 1] += degree[i];
        }
        let offsets = degree.clone();
        let mut cursor = degree;
        let mut targets = vec![VertexId(0); arcs];
        let mut weights = vec![0.0f64; arcs];
        let mut place = |cursor: &mut Vec<u32>, from: VertexId, to: VertexId, w: f64| {
            let slot = cursor[from.index()] as usize;
            targets[slot] = to;
            weights[slot] = w;
            cursor[from.index()] += 1;
        };
        for e in edges {
            place(&mut cursor, e.from, e.to, e.weight);
            if !directed {
                place(&mut cursor, e.to, e.from, e.weight);
            }
        }
        RoadNetwork { offsets, targets, weights, coords, directed, num_input_edges: edges.len() }
    }

    /// Number of vertices (|V| + |P| in the paper's terms).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.coords.len()
    }

    /// Number of *input* edges (each undirected edge counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_input_edges
    }

    /// Number of stored arcs (2·|E| for undirected graphs).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Whether this network is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Out-neighbours of `v` with arc costs.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Cost)> + '_ {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        self.targets[lo..hi].iter().zip(&self.weights[lo..hi]).map(|(&t, &w)| (t, Cost::new(w)))
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Coordinates of `v`, if present.
    #[inline]
    pub fn coords_of(&self, v: VertexId) -> Option<GeoPoint> {
        self.coords.get(v.index()).copied().flatten()
    }

    /// All vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.num_vertices() as u32).map(VertexId)
    }

    /// Sum of all arc weights; a rough "size" of the road network used by
    /// search-space instrumentation.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Approximate heap footprint in bytes (CSR arrays + coordinates).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
            + self.weights.len() * std::mem::size_of::<f64>()
            + self.coords.len() * std::mem::size_of::<Option<GeoPoint>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn line(n: usize) -> RoadNetwork {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..n).map(|_| b.add_vertex()).collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1], 1.0);
        }
        b.build()
    }

    #[test]
    fn csr_degrees_and_counts() {
        let g = line(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_arcs(), 8);
        assert_eq!(g.degree(VertexId(0)), 1);
        assert_eq!(g.degree(VertexId(2)), 2);
    }

    #[test]
    fn neighbors_yield_costs() {
        let g = line(3);
        let n: Vec<_> = g.neighbors(VertexId(1)).collect();
        assert_eq!(n.len(), 2);
        for (_, c) in n {
            assert_eq!(c, Cost::new(1.0));
        }
    }

    #[test]
    fn isolated_vertex_has_no_neighbors() {
        let mut b = GraphBuilder::new();
        b.add_vertex();
        let g = b.build();
        assert_eq!(g.neighbors(VertexId(0)).count(), 0);
        assert_eq!(g.degree(VertexId(0)), 0);
    }

    #[test]
    fn parallel_edges_are_preserved() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_vertex();
        let v1 = b.add_vertex();
        b.add_edge(v0, v1, 1.0);
        b.add_edge(v0, v1, 3.0);
        let g = b.build();
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn total_weight_counts_arcs() {
        let g = line(3); // two edges of weight 1 stored in both directions
        assert_eq!(g.total_weight(), 4.0);
    }

    #[test]
    fn self_loop_supported() {
        let mut b = GraphBuilder::new();
        let v = b.add_vertex();
        b.add_edge(v, v, 5.0);
        let g = b.build();
        // Undirected self loop stores two arcs.
        assert_eq!(g.degree(v), 2);
    }

    #[test]
    fn heap_bytes_positive() {
        assert!(line(10).heap_bytes() > 0);
    }
}
