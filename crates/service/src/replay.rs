//! Workload replay: skewed query streams over a pool of distinct generated
//! queries, executed through a [`QueryService`] — optionally as an
//! *open-loop* arrival process with live weight updates underneath.
//!
//! Real query traffic repeats itself — popular start areas and category
//! sequences recur, which is exactly what the cross-query reuse layer
//! (result cache, request coalescing, semantic prefix reuse) exploits.
//! Three stream shapes are supported ([`StreamPattern`]):
//!
//! * **Zipf** — `total` requests drawn from the pool with
//!   Zipf(`zipf_exponent`) popularity, shuffled into an arrival order
//!   (PR 1's original stream; exercises the cache).
//! * **Duplicate bursts** — the Zipf draw repeated in consecutive bursts
//!   of [`ReplaySpec::burst`] identical requests, so duplicates are in
//!   flight *simultaneously*; exercises request coalescing.
//! * **Prefix chains** — the pool is expanded with every proper prefix
//!   ⟨c₁,…,c_j⟩ of each generated query and the stream walks chains
//!   short-to-long; exercises semantic prefix reuse (warm starts).
//! * **Hierarchy** — each generated query ⟨c₁,…,c_k⟩ expands into a
//!   3-entry chain walking a category subtree: its suffix ⟨c₂,…,c_k⟩,
//!   the ancestor variant ⟨parent(c₁),c₂,…,c_k⟩, then the query itself.
//!   Walked in wavefronts (all chains' first entries, then all second
//!   entries, …), so the ancestor variant is *suffix*-seeded from the
//!   cached suffix and the full query is *ancestor*-seeded from the
//!   cached parent variant — both new reuse sources fire from cycle 1.
//!
//! Two orthogonal realism knobs turn the closed-loop batch into a live
//! serving experiment:
//!
//! * **Open-loop load** ([`ReplaySpec::qps`] > 0): requests are submitted
//!   at exponentially distributed inter-arrival times targeting the given
//!   rate, independent of completion — so latency under saturation is
//!   measured honestly (queueing delay included) instead of the closed
//!   loop's self-throttling. (If the bounded submission queue fills, the
//!   submitter blocks; a sustained-overload run measures exactly that
//!   backpressure.)
//! * **Weight updates** ([`ReplaySpec::update_rate`] > 0): a background
//!   updater publishes bursts of [`update_burst`](ReplaySpec::update_burst)
//!   random edge reweightings (log-uniform factors within
//!   [`update_magnitude`](ReplaySpec::update_magnitude) of the base
//!   weight) as new weight epochs, at exponentially distributed instants,
//!   while the stream is in flight. Queries pin the epoch current at
//!   dequeue time; cached skylines from older epochs are lazily
//!   invalidated and must never be served.
//!
//! With [`ReplaySpec::verify`] set, every answered request is re-answered
//! by a sequential cold [`Bssr`] run *at the epoch the response reports it
//! was pinned to*. With unbounded retention historical epochs stay
//! pinnable and every response is audited; with a bounded
//! [`ReplaySpec::retention`] ring, responses whose pinned epoch has been
//! compacted away are skipped and counted
//! ([`ReplayReport::verify_skipped`]) instead of refusing the flag
//! combination. The skylines are
//! compared with [`equivalent_skylines`]: same size and score-identical up
//! to the score tolerance. (Exact route equality is deliberately not
//! required — a warm-started search may return a different
//! *representative* route for a score-tied skyline point.) Together with
//! the report's stale-serve count (which must be zero) this is the
//! end-to-end proof that staleness never leaks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use skysr_core::bssr::{Bssr, BssrConfig, BssrScratch};
use skysr_core::dominance::{skyline_of, SkylineSet};
use skysr_core::error::QueryError;
use skysr_core::query::SkySrQuery;
use skysr_core::route::{equivalent_skylines, SkylineRoute};
use skysr_data::dataset::Dataset;
use skysr_data::workload::WorkloadSpec;
use skysr_data::zipf::Zipf;
use skysr_graph::{EpochGcStats, EpochId, RoadNetwork, WeightDelta};

use crate::context::ServiceContext;
use crate::metrics::{MetricsSnapshot, Served};
use crate::net::{DatasetFingerprint, ProtocolError, RemoteService};
use crate::service::{QueryRequest, QueryResponse, QueryService, Service, ServiceConfig, Ticket};
use crate::shard::{RegionId, ShardRegistry};
use crate::telemetry::{Rung, TelemetryConfig, TraceSpan};

/// Span-retention policy of a replay run (histograms always record).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TelemetryMode {
    /// Default sampled tracing: every 64th span plus the slowest.
    Sampled,
    /// Retain a span for *every* request — the mode `--trace-out` uses,
    /// and the only one under which the trace-completeness invariant is
    /// audited ([`ReplayReport::trace_violations`]).
    Full,
    /// No span retention (the overhead-gate baseline).
    Off,
}

/// Shape of the replayed request stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamPattern {
    /// Zipf-popular requests in shuffled arrival order.
    Zipf,
    /// Zipf-popular requests arriving in bursts of identical duplicates.
    DuplicateBursts,
    /// Chains ⟨c₁⟩, ⟨c₁,c₂⟩, …, ⟨c₁,…,c_k⟩ walked short-to-long.
    PrefixChains,
    /// Category-subtree chains ⟨c₂…c_k⟩, ⟨parent(c₁),c₂…c_k⟩,
    /// ⟨c₁,c₂…c_k⟩ walked in wavefronts (ancestor + suffix reuse).
    Hierarchy,
}

/// Entries per hierarchy chain: suffix, ancestor variant, full query.
pub const HIERARCHY_CHAIN: usize = 3;

impl std::fmt::Display for StreamPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StreamPattern::Zipf => "zipf",
            StreamPattern::DuplicateBursts => "duplicate",
            StreamPattern::PrefixChains => "prefix",
            StreamPattern::Hierarchy => "hierarchy",
        })
    }
}

/// Parameters of one replay run.
#[derive(Clone, Debug)]
pub struct ReplaySpec {
    /// Total requests replayed.
    pub total: usize,
    /// Distinct *generated* queries (the prefix pattern additionally pools
    /// every proper prefix of each).
    pub distinct: usize,
    /// Category-sequence length of generated queries.
    pub seq_len: usize,
    /// Stream shape.
    pub pattern: StreamPattern,
    /// Consecutive identical requests per burst
    /// ([`StreamPattern::DuplicateBursts`] only).
    pub burst: usize,
    /// Zipf exponent of query popularity (0 = uniform, 1 = classic skew).
    pub zipf_exponent: f64,
    /// RNG seed for pool generation, stream sampling, arrival times and
    /// update placement.
    pub seed: u64,
    /// Worker threads (0 = one per CPU).
    pub workers: usize,
    /// Result-cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Request coalescing (see [`ServiceConfig::coalesce`]).
    pub coalesce: bool,
    /// Semantic prefix reuse (see [`ServiceConfig::prefix_reuse`]).
    pub prefix_reuse: bool,
    /// Ancestor-category reuse (see [`ServiceConfig::ancestor_reuse`]).
    pub ancestor_reuse: bool,
    /// Suffix reuse (see [`ServiceConfig::suffix_reuse`]).
    pub suffix_reuse: bool,
    /// Submission-queue capacity.
    pub queue_capacity: usize,
    /// Engine configuration.
    pub engine: BssrConfig,
    /// Open-loop target arrival rate in queries/second; `0` replays the
    /// stream as a closed-loop batch (submit-everything, PR 1 behaviour).
    pub qps: f64,
    /// Weight-update bursts per second published while the stream is in
    /// flight; `0` keeps the network static. Mutually exclusive with
    /// [`update_every`](ReplaySpec::update_every).
    pub update_rate: f64,
    /// Synchronous update waves: publish one weight-delta burst after
    /// every `update_every` *completed* requests (closed loop: submit the
    /// chunk, drain it, publish, continue). `0` disables. Unlike the
    /// wall-clock updater this makes the number of epoch crossings per
    /// cached key deterministic, which is what a perf comparison of
    /// repair vs. invalidate-and-recompute needs — open-loop churn has a
    /// feedback loop (a slow service clumps requests inside one epoch and
    /// dodges its own invalidation penalty).
    pub update_every: usize,
    /// Edge reweightings per update burst.
    pub update_burst: usize,
    /// Maximum multiplicative weight change per update: each reweighted
    /// edge gets `base_weight × magnitude^u` with `u` uniform in [−1, 1].
    /// Must be ≥ 1; factors are relative to the *base* weights, so traffic
    /// stays bounded over arbitrarily long runs.
    pub update_magnitude: f64,
    /// Incremental skyline repair (see [`ServiceConfig::repair`]): cached
    /// entries at older epochs are repaired against the exact epoch delta
    /// and promoted in place instead of invalidated and recomputed.
    pub repair: bool,
    /// Weight-epoch history retention: keep at most this many epochs
    /// pinnable, compacting older unleased overlays (`0` = unlimited).
    /// Combines with [`verify`](ReplaySpec::verify): the oracle pins only
    /// epochs still within the ring and skips (and counts) responses
    /// whose epoch was compacted away.
    pub retention: usize,
    /// Also re-answer every request sequentially at its pinned epoch and
    /// compare skylines (score-equivalent multisets).
    pub verify: bool,
    /// Span retention: sampled (default), full (audits the one-span-per-
    /// response invariant), or off.
    pub telemetry: TelemetryMode,
    /// Serving deadline attached to every submitted request (`None` = no
    /// deadline). With one, the service schedules deadline-aware, sheds
    /// requests whose deadline lapsed in queue
    /// ([`QueryError::Overloaded`]), and serves mid-engine expiries as
    /// valid approximate partials; the report carries the shed /
    /// approximate / met-deadline split.
    pub deadline: Option<Duration>,
    /// Overload factor: `> 0` replays open-loop at this multiple of the
    /// service's *measured* capacity — a short closed-loop calibration
    /// pass on an identically configured scratch service (own cache, same
    /// shared context) measures sustainable throughput first, then the
    /// real run arrives at `overload ×` that rate. `2.0` is the canonical
    /// "2× capacity" overload cell. Mutually exclusive with an explicit
    /// [`qps`](ReplaySpec::qps) and with closed-loop update waves.
    pub overload: f64,
    /// Admission control (see [`ServiceConfig::admission`]): shed
    /// provably-unmeetable deadlines at submission instead of queueing
    /// them to fail.
    pub admission: bool,
}

impl Default for ReplaySpec {
    fn default() -> ReplaySpec {
        ReplaySpec {
            total: 1000,
            distinct: 100,
            seq_len: 3,
            pattern: StreamPattern::Zipf,
            burst: 16,
            zipf_exponent: 1.0,
            seed: 7,
            workers: 4,
            cache_capacity: 1024,
            coalesce: true,
            prefix_reuse: true,
            ancestor_reuse: true,
            suffix_reuse: true,
            queue_capacity: 256,
            engine: BssrConfig::default(),
            qps: 0.0,
            update_rate: 0.0,
            update_burst: 32,
            update_magnitude: 2.0,
            update_every: 0,
            repair: false,
            retention: 0,
            verify: false,
            telemetry: TelemetryMode::Sampled,
            deadline: None,
            overload: 0.0,
            admission: false,
        }
    }
}

/// Outcome of a replay run.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Requests replayed.
    pub total: usize,
    /// Distinct queries in the (possibly prefix-expanded) pool.
    pub distinct: usize,
    /// Stream shape replayed.
    pub pattern: StreamPattern,
    /// Worker threads used.
    pub workers: usize,
    /// Open-loop target rate (0 = closed loop).
    pub qps: f64,
    /// Wall-clock time of the concurrent replay.
    pub wall: Duration,
    /// Weight epochs published while the stream was in flight.
    pub epochs_published: u64,
    /// Epoch history / GC accounting measured *after* the service drained
    /// and (when retention is bounded) a final compaction sweep ran — the
    /// numbers the soak gate checks against the configured cap.
    pub epoch_gc: EpochGcStats,
    /// Service metrics over the replay window.
    pub metrics: MetricsSnapshot,
    /// `Some(mismatches)` when verification ran: the number of requests
    /// whose concurrent skyline was not score-equivalent to a fresh
    /// sequential run at the request's pinned epoch.
    pub verify_mismatches: Option<usize>,
    /// `Some(skipped)` when verification ran: responses that could not be
    /// audited because their pinned epoch had already been compacted out
    /// of a bounded retention ring. Always `Some(0)` with unlimited
    /// retention.
    pub verify_skipped: Option<usize>,
    /// Trace spans drained from the service after the stream completed
    /// (retention governed by [`ReplaySpec::telemetry`]), sorted by
    /// request id.
    pub spans: Vec<TraceSpan>,
    /// `Some(violations)` when full tracing ran: breaks of the trace-
    /// completeness invariant (every successful response has exactly one
    /// span, the span's rung and epoch match the response, no span is
    /// orphaned, and per-rung span counts agree with the metrics
    /// counters and per-rung histograms). Must be zero.
    pub trace_violations: Option<usize>,
    /// Overload factor driven (0 = none). When set, [`qps`](Self::qps) is
    /// the *resolved* open-loop rate: factor × measured capacity.
    pub overload: f64,
    /// `Some((met, finished))` when a per-request deadline was set:
    /// `finished` counts requests that produced a response (shed requests
    /// excluded — they produced none), `met` those answered within the
    /// deadline.
    pub met_deadline: Option<(usize, usize)>,
}

impl ReplayReport {
    /// Stale serves observed (cache answers from a non-pinned epoch).
    /// The staleness gate: must be zero.
    pub fn stale_served(&self) -> u64 {
        self.metrics.stale_served
    }

    /// Requests shed under overload: admission rejections plus deadlines
    /// expired in queue (or parked at the daemon). In neither `completed`
    /// nor `failed`.
    pub fn shed(&self) -> u64 {
        self.metrics.rejected + self.metrics.shed_deadline
    }

    /// Responses served in degraded mode (deadline expired mid-engine;
    /// valid partial skyline, never cached).
    pub fn approximate_served(&self) -> u64 {
        self.metrics.approximate_served
    }
}

impl std::fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "replayed    {} requests ({} distinct, {} stream) on {} workers in {:.2} s",
            self.total,
            self.distinct,
            self.pattern,
            self.workers,
            self.wall.as_secs_f64()
        )?;
        if self.qps > 0.0 {
            write!(f, " (open loop @ {:.0} q/s target", self.qps)?;
            if self.overload > 0.0 {
                write!(f, " = {:.1}x measured capacity", self.overload)?;
            }
            write!(f, ")")?;
        }
        writeln!(f)?;
        if let Some((met, finished)) = self.met_deadline {
            writeln!(
                f,
                "deadline    {met}/{finished} responses within deadline; {} shed ({} at \
                 admission, {} expired in queue), {} served approximate",
                self.shed(),
                self.metrics.rejected,
                self.metrics.shed_deadline,
                self.approximate_served(),
            )?;
        }
        if self.epochs_published > 0 {
            writeln!(
                f,
                "updates     {} weight epochs published mid-stream",
                self.epochs_published
            )?;
        }
        if self.epoch_gc.retention > 0 {
            let e = &self.epoch_gc;
            writeln!(
                f,
                "history     {} epochs retained after drain (max {}, cap {}), {} overlays \
                 compacted, {} rebases",
                e.retained, e.retained_max, e.retention, e.compacted, e.rebases
            )?;
        }
        write!(f, "{}", self.metrics)?;
        if !self.spans.is_empty() || self.trace_violations.is_some() {
            write!(f, "\ntrace       {} spans retained", self.spans.len())?;
            match self.trace_violations {
                Some(0) => {
                    write!(f, " — completeness OK (one span per response, rungs match)")?;
                }
                Some(v) => write!(f, " — {v} completeness violation(s)")?,
                None => write!(f, " (sampled)")?,
            }
        }
        if let Some(m) = self.verify_mismatches {
            write!(f, "\nverify      ")?;
            if m == 0 {
                write!(f, "OK — every skyline equivalent to a fresh search at its pinned epoch")?;
            } else {
                write!(f, "FAILED — {m} mismatching request(s)")?;
            }
            if let Some(skipped) = self.verify_skipped.filter(|&n| n > 0) {
                write!(f, " ({skipped} unverifiable: pinned epochs beyond the retention ring)")?;
            }
        }
        Ok(())
    }
}

/// Builds the query pool the stream draws from. The prefix pattern expands
/// each generated k-position query into its full chain (indices
/// `q*seq_len + (len-1)`).
pub fn build_pool(dataset: &Dataset, spec: &ReplaySpec) -> Vec<SkySrQuery> {
    let base = WorkloadSpec::new(spec.seq_len)
        .queries(spec.distinct)
        .seed(spec.seed)
        .generate(dataset)
        .queries;
    match spec.pattern {
        StreamPattern::Zipf | StreamPattern::DuplicateBursts => base,
        StreamPattern::PrefixChains => base
            .into_iter()
            .flat_map(|q| {
                (1..=q.len())
                    .map(|l| SkySrQuery::with_positions(q.start, q.sequence[..l].to_vec()))
                    .collect::<Vec<_>>()
            })
            .collect(),
        StreamPattern::Hierarchy => {
            assert!(
                spec.seq_len >= 2,
                "the hierarchy pattern needs at least 2 positions (a suffix must exist)"
            );
            base.into_iter()
                .flat_map(|q| {
                    // Chain indices c*HIERARCHY_CHAIN + {0: suffix,
                    // 1: ancestor variant, 2: full}. A root first category
                    // degenerates entry 1 to the full query (an exact-hit
                    // step rather than an ancestor-seeded one).
                    let suffix = SkySrQuery::with_positions(q.start, q.sequence[1..].to_vec());
                    let mut anc_seq = q.sequence.clone();
                    if let skysr_core::PositionSpec::Category(c) = &q.sequence[0] {
                        anc_seq[0] = dataset.forest.parent(*c).unwrap_or(*c).into();
                    }
                    let anc_q = SkySrQuery::with_positions(q.start, anc_seq);
                    [suffix, anc_q, q]
                })
                .collect()
        }
    }
}

/// Builds the request stream: `spec.total` indexes into the pool.
fn request_stream(spec: &ReplaySpec, pool_len: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x7e_706c_6179); // "replay"
    match spec.pattern {
        StreamPattern::Zipf => {
            let zipf = Zipf::new(pool_len, spec.zipf_exponent);
            let mut stream: Vec<usize> = (0..spec.total).map(|_| zipf.sample(&mut rng)).collect();
            stream.shuffle(&mut rng);
            stream
        }
        StreamPattern::DuplicateBursts => {
            // Bursts stay consecutive (no shuffle): the point is duplicates
            // being in flight at the same time.
            let zipf = Zipf::new(pool_len, spec.zipf_exponent);
            let burst = spec.burst.max(2);
            let mut stream = Vec::with_capacity(spec.total);
            while stream.len() < spec.total {
                let i = zipf.sample(&mut rng);
                for _ in 0..burst.min(spec.total - stream.len()) {
                    stream.push(i);
                }
            }
            stream
        }
        StreamPattern::PrefixChains => {
            // Walk chains short-to-long in *length wavefronts*: every
            // chain's length-1 query, then every length-2 query, and so
            // on (cycling until `total`). Separating a chain's successive
            // lengths by a whole wavefront ensures the prefix result is
            // cached — not merely in flight — when the extension arrives,
            // so warm starts happen from the first cycle on.
            chain_wavefronts(spec.total, pool_len, spec.seq_len, "prefix-chain")
        }
        StreamPattern::Hierarchy => {
            // Same wavefront walk over 3-entry chains: every chain's
            // suffix, then every ancestor variant (suffix-seeded), then
            // every full query (ancestor-seeded).
            chain_wavefronts(spec.total, pool_len, HIERARCHY_CHAIN, "hierarchy")
        }
    }
}

/// Walks fixed-stride chains in wavefronts: entry 0 of every chain, then
/// entry 1 of every chain, … cycling until `total` requests. Each entry's
/// predecessor is separated by a whole wavefront, so its result is cached
/// — not merely in flight — when the successor arrives.
fn chain_wavefronts(total: usize, pool_len: usize, stride: usize, what: &str) -> Vec<usize> {
    assert!(
        pool_len >= stride && pool_len.is_multiple_of(stride),
        "a {what} pool must hold whole chains of {stride} entries (got {pool_len}) — build it \
         with build_pool and the same spec"
    );
    let chains = pool_len / stride;
    let mut stream = Vec::with_capacity(total);
    'outer: loop {
        for l in 0..stride {
            for chain in 0..chains {
                if stream.len() == total {
                    break 'outer;
                }
                stream.push(chain * stride + l);
            }
        }
    }
    stream
}

/// One exponential(1) draw — inter-arrival times of a Poisson process.
fn exp_sample(rng: &mut StdRng) -> f64 {
    let u: f64 = rng.random(); // [0, 1)
    -(1.0 - u).ln()
}

/// `count` random edge reweightings over `graph`: arcs sampled uniformly,
/// each assigned `base_weight × magnitude^u` with `u` uniform in [−1, 1].
/// Factors are relative to the base weights so repeated bursts never drift
/// the network off to extremes.
pub fn random_traffic_deltas(
    graph: &RoadNetwork,
    count: usize,
    magnitude: f64,
    rng: &mut StdRng,
) -> Vec<WeightDelta> {
    assert!(magnitude >= 1.0, "update magnitude must be >= 1, got {magnitude}");
    assert!(graph.num_arcs() > 0, "cannot reweight an edgeless graph");
    (0..count)
        .map(|_| {
            let slot = rng.random_range(0usize..graph.num_arcs());
            let (from, to, _) = graph.arc(slot);
            let base = graph.base_arc_weight(slot).get();
            let u: f64 = rng.random::<f64>() * 2.0 - 1.0;
            WeightDelta::new(from, to, base * magnitude.powf(u))
        })
        .collect()
}

/// Replays `spec` against `dataset` and reports service metrics.
///
/// The dataset is consumed: its graph, forest and PoI table become the
/// shared [`ServiceContext`]. Use [`build_pool`] + [`replay_on`] directly
/// to run several replays (e.g. config comparisons) over one context.
///
/// # Panics
/// If `spec.total` or `spec.distinct` is zero, or the dataset cannot
/// populate a workload of `spec.seq_len` (see [`WorkloadSpec::generate`]).
pub fn replay(dataset: Dataset, spec: &ReplaySpec) -> ReplayReport {
    assert!(spec.total > 0 && spec.distinct > 0, "replay needs a non-empty stream");
    let pool = build_pool(&dataset, spec);
    let ctx = Arc::new(ServiceContext::from_dataset(dataset));
    replay_on(ctx, &pool, spec)
}

/// Replays `spec`'s stream over an already-built pool and shared context.
pub fn replay_on(ctx: Arc<ServiceContext>, pool: &[SkySrQuery], spec: &ReplaySpec) -> ReplayReport {
    assert!(!pool.is_empty(), "replay needs a non-empty pool");
    assert!(
        !(spec.update_every > 0 && (spec.qps > 0.0 || spec.update_rate > 0.0)),
        "synchronous update waves (update_every) are closed-loop and exclusive with the \
         open-loop qps/update_rate knobs"
    );
    assert!(
        spec.overload == 0.0 || (spec.qps == 0.0 && spec.update_every == 0),
        "overload resolves its own open-loop rate: exclusive with an explicit qps and with \
         closed-loop update waves"
    );
    let stream = request_stream(spec, pool.len());
    if spec.retention > 0 {
        ctx.set_epoch_retention(spec.retention);
    }
    if spec.repair {
        // Build the landmark oracle before the clock starts: repair's
        // cheap tiers consult it on the very first repaired request.
        let _ = ctx.landmarks();
    }
    // Overload mode resolves its open-loop rate from *measured* capacity
    // before the real service exists, so the calibration pass cannot warm
    // the cache the measured run will use.
    let spec = &ReplaySpec {
        qps: if spec.overload > 0.0 {
            measure_capacity(&ctx, pool, &stream, spec) * spec.overload
        } else {
            spec.qps
        },
        ..spec.clone()
    };
    let service = Service::new(Arc::clone(&ctx), service_config(spec, stream.len()));
    let workers = service.config().workers;
    let epoch_before = ctx.current_epoch();

    let publish_ctx = Arc::clone(&ctx);
    let publish = move |deltas: &[WeightDelta]| publish_ctx.publish_weights(deltas);
    let (outcomes, wall) = drive(&service, pool, &stream, spec, ctx.graph(), &publish);
    let metrics = service.metrics();
    let spans = service.traces().drain();
    drop(service);
    // With a bounded ring, measure the history *after* every worker lease
    // is released and a final sweep ran: the soak gate asserts the drained
    // service holds at most K epochs.
    if spec.retention > 0 {
        ctx.compact_epochs();
    }
    let epoch_gc = ctx.epoch_gc_stats();
    let epochs_published = ctx.current_epoch().get() - epoch_before.get();

    let audit =
        spec.verify.then(|| count_oracle_mismatches(&ctx, pool, spec.engine, &stream, &outcomes));
    let trace_violations =
        (spec.telemetry == TelemetryMode::Full).then(|| audit_spans(&spans, &outcomes, &metrics));

    ReplayReport {
        total: stream.len(),
        distinct: pool.len(),
        pattern: spec.pattern,
        workers,
        qps: spec.qps,
        wall,
        epochs_published,
        epoch_gc,
        metrics,
        verify_mismatches: audit.map(|(mismatches, _)| mismatches),
        verify_skipped: audit.map(|(_, skipped)| skipped),
        spans,
        trace_violations,
        overload: spec.overload,
        met_deadline: met_deadline(spec, &outcomes),
    }
}

/// One shard's slice of a [`replay_sharded`] run.
#[derive(Clone, Debug)]
pub struct ShardReplay {
    /// The shard's region address.
    pub region: RegionId,
    /// The region's human-readable name.
    pub name: String,
    /// The shard's own full replay report. Metrics, epoch accounting,
    /// oracle verification and the trace audit are all shard-local —
    /// exactly the single-tenant [`replay_on`] report, computed against
    /// this shard's private context.
    pub report: ReplayReport,
}

/// Outcome of a multi-tenant replay: one [`ReplayReport`] per shard plus
/// the router-level accounting no single shard can see.
#[derive(Clone, Debug)]
pub struct ShardedReplayReport {
    /// Per-shard reports, registration-ordered (region 0 first).
    pub shards: Vec<ShardReplay>,
    /// Wall clock of the whole run (every shard driven concurrently).
    pub wall: Duration,
    /// Requests the router refused for naming a region no shard serves.
    /// A replay stamps every request with its own lane's region, so this
    /// must be zero.
    pub misrouted: u64,
}

impl ShardedReplayReport {
    /// Requests replayed across all shards.
    pub fn total(&self) -> usize {
        self.shards.iter().map(|s| s.report.total).sum()
    }

    /// The fleet-wide metrics view — what [`QueryService::metrics`] on the
    /// router itself serves: every shard's snapshot folded through
    /// [`MetricsSnapshot::merge`].
    pub fn merged_metrics(&self) -> MetricsSnapshot {
        let mut shards = self.shards.iter();
        let mut merged =
            shards.next().expect("a router holds at least one shard").report.metrics.clone();
        for s in shards {
            merged.merge(&s.report.metrics);
        }
        merged
    }

    /// Whether every shard passed its gates: zero oracle mismatches (when
    /// verification ran), zero stale serves, zero trace violations (when
    /// full tracing ran) and nothing misrouted.
    pub fn all_ok(&self) -> bool {
        self.misrouted == 0
            && self.shards.iter().all(|s| {
                s.report.verify_mismatches.unwrap_or(0) == 0
                    && s.report.stale_served() == 0
                    && s.report.trace_violations.unwrap_or(0) == 0
            })
    }
}

impl std::fmt::Display for ShardedReplayReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for s in &self.shards {
            writeln!(f, "--- shard {} ({}) ---", s.region, s.name)?;
            writeln!(f, "{}", s.report)?;
        }
        write!(
            f,
            "fleet       {} requests over {} shards in {:.2} s ({} misrouted)",
            self.total(),
            self.shards.len(),
            self.wall.as_secs_f64(),
            self.misrouted
        )
    }
}

/// A shard lane of [`replay_sharded`]: one region's dataset, pool, stream
/// and salted spec, plus the epoch watermark its accounting starts from.
struct ShardLane {
    region: RegionId,
    name: String,
    ctx: Arc<ServiceContext>,
    pool: Vec<SkySrQuery>,
    stream: Vec<usize>,
    spec: ReplaySpec,
    epoch_before: EpochId,
}

/// Replays `spec` concurrently against several regions behind one
/// [`Router`](crate::Router) — the multi-tenant twin of [`replay`].
///
/// Each `(name, dataset)` pair becomes one shard with its own
/// [`ServiceContext`], worker pool, cache and telemetry, registered
/// through a [`ShardRegistry`]. Every shard gets its own query pool,
/// request stream and (if enabled) weight-update process, derived from
/// `spec` with a shard-salted seed (shard 0 keeps the caller's seed, so a
/// one-shard sharded replay is bit-identical to [`replay`]). Each lane
/// drives its stream through
/// [`Router::region_service`](crate::shard::Router::region_service) —
/// requests are region-stamped and dispatched exactly like network
/// traffic — while its updater publishes through
/// [`Router::publish_weights_to`](crate::shard::Router::publish_weights_to),
/// so weight
/// churn stays shard-local by construction.
///
/// Verification, stale-serve and trace audits run *per shard* against that
/// shard's private context: a mismatch on shard A cannot be masked by
/// shard B, which is precisely the isolation proof the multi-tenant
/// architecture claims.
///
/// # Panics
/// If `datasets` is empty, the stream is empty, or `spec.overload` is set
/// (capacity calibration is single-tenant — drive shards with an explicit
/// [`qps`](ReplaySpec::qps) instead).
pub fn replay_sharded(datasets: Vec<(String, Dataset)>, spec: &ReplaySpec) -> ShardedReplayReport {
    assert!(!datasets.is_empty(), "a sharded replay needs at least one region");
    assert!(spec.total > 0 && spec.distinct > 0, "replay needs a non-empty stream");
    assert!(
        spec.overload == 0.0,
        "overload capacity calibration is single-tenant; drive shards with an explicit qps"
    );

    let mut registry = ShardRegistry::new();
    let mut lanes = Vec::with_capacity(datasets.len());
    for (i, (name, dataset)) in datasets.into_iter().enumerate() {
        // Salt the seed per shard so pools, streams and updater bursts
        // differ across regions; shard 0 keeps the caller's seed.
        let spec = ReplaySpec {
            seed: spec.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ..spec.clone()
        };
        let pool = build_pool(&dataset, &spec);
        let stream = request_stream(&spec, pool.len());
        let ctx = Arc::new(ServiceContext::from_dataset(dataset));
        if spec.retention > 0 {
            ctx.set_epoch_retention(spec.retention);
        }
        if spec.repair {
            let _ = ctx.landmarks();
        }
        let epoch_before = ctx.current_epoch();
        let region =
            registry.add(name.clone(), Arc::clone(&ctx), service_config(&spec, stream.len()));
        lanes.push(ShardLane { region, name, ctx, pool, stream, spec, epoch_before });
    }
    let router = registry.into_router();

    // Drive every lane concurrently, each through its own region-scoped
    // service view so the router's dispatch path is on the hot path.
    let t0 = Instant::now();
    let driven: Vec<(Vec<Result<QueryResponse, QueryError>>, Duration)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = lanes
                .iter()
                .map(|lane| {
                    let router = &router;
                    scope.spawn(move || {
                        let service =
                            router.region_service(lane.region).expect("region was registered");
                        let publish = move |deltas: &[WeightDelta]| {
                            router
                                .publish_weights_to(lane.region, deltas)
                                .expect("region was registered")
                        };
                        drive(
                            &service,
                            &lane.pool,
                            &lane.stream,
                            &lane.spec,
                            lane.ctx.graph(),
                            &publish,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard driver panicked")).collect()
        });
    let wall = t0.elapsed();

    // Capture per-shard metrics and spans while the services are still
    // up, then shut the whole fleet down so every worker lease is
    // released before the per-shard history is measured.
    let observed: Vec<(MetricsSnapshot, Vec<TraceSpan>, usize)> = lanes
        .iter()
        .map(|lane| {
            let service = router.shard(lane.region).expect("region was registered");
            (service.metrics(), service.traces().drain(), service.config().workers)
        })
        .collect();
    let misrouted = router.misrouted();
    let _ = router.shutdown();

    let shards = lanes
        .into_iter()
        .zip(driven)
        .zip(observed)
        .map(|((lane, (outcomes, _)), (metrics, spans, workers))| {
            let ShardLane { region, name, ctx, pool, stream, spec, epoch_before } = lane;
            if spec.retention > 0 {
                ctx.compact_epochs();
            }
            let epoch_gc = ctx.epoch_gc_stats();
            let epochs_published = ctx.current_epoch().get() - epoch_before.get();
            let audit = spec
                .verify
                .then(|| count_oracle_mismatches(&ctx, &pool, spec.engine, &stream, &outcomes));
            let trace_violations = (spec.telemetry == TelemetryMode::Full)
                .then(|| audit_spans(&spans, &outcomes, &metrics));
            ShardReplay {
                region,
                name,
                report: ReplayReport {
                    total: stream.len(),
                    distinct: pool.len(),
                    pattern: spec.pattern,
                    workers,
                    qps: spec.qps,
                    wall,
                    epochs_published,
                    epoch_gc,
                    metrics,
                    verify_mismatches: audit.map(|(mismatches, _)| mismatches),
                    verify_skipped: audit.map(|(_, skipped)| skipped),
                    spans,
                    trace_violations,
                    overload: 0.0,
                    met_deadline: met_deadline(&spec, &outcomes),
                },
            }
        })
        .collect();

    ShardedReplayReport { shards, wall, misrouted }
}

/// The [`ServiceConfig`] a replay spec resolves to.
fn service_config(spec: &ReplaySpec, stream_len: usize) -> ServiceConfig {
    ServiceConfig {
        workers: spec.workers,
        queue_capacity: spec.queue_capacity,
        cache_capacity: spec.cache_capacity,
        coalesce: spec.coalesce,
        prefix_reuse: spec.prefix_reuse,
        ancestor_reuse: spec.ancestor_reuse,
        suffix_reuse: spec.suffix_reuse,
        repair: spec.repair,
        admission: spec.admission,
        engine: spec.engine,
        telemetry: match spec.telemetry {
            TelemetryMode::Sampled => TelemetryConfig::default(),
            TelemetryMode::Full => TelemetryConfig::trace_all(stream_len),
            TelemetryMode::Off => TelemetryConfig::disabled(),
        },
        ..ServiceConfig::default()
    }
}

/// Measures the service's sustainable throughput (completed requests per
/// second) with a short closed-loop pass over a prefix of the stream, on a
/// scratch service configured like the real one — its own cache, no
/// deadlines, no admission — so calibration neither warms nor sheds
/// anything the measured run will see. The closed loop self-throttles to
/// the pool's pace, which *is* capacity.
fn measure_capacity(
    ctx: &Arc<ServiceContext>,
    pool: &[SkySrQuery],
    stream: &[usize],
    spec: &ReplaySpec,
) -> f64 {
    let n = stream.len().min(256);
    let calibration =
        ReplaySpec { deadline: None, admission: false, overload: 0.0, ..spec.clone() };
    let service = Service::new(
        Arc::clone(ctx),
        ServiceConfig { telemetry: TelemetryConfig::disabled(), ..service_config(&calibration, n) },
    );
    let t0 = Instant::now();
    let outcomes = service.run_batch(stream[..n].iter().map(|&i| pool[i].clone()));
    let wall = t0.elapsed().max(Duration::from_micros(1));
    drop(service);
    let completed = outcomes.iter().filter(|o| o.is_ok()).count().max(1);
    completed as f64 / wall.as_secs_f64()
}

/// The met-deadline split, when the spec set one: of the requests that
/// produced a response at all (shed ones did not), how many were answered
/// within the deadline.
fn met_deadline(
    spec: &ReplaySpec,
    outcomes: &[Result<QueryResponse, QueryError>],
) -> Option<(usize, usize)> {
    let deadline = spec.deadline?;
    let mut met = 0usize;
    let mut finished = 0usize;
    for r in outcomes.iter().flat_map(|o| o.as_ref().ok()) {
        finished += 1;
        if r.latency <= deadline {
            met += 1;
        }
    }
    Some((met, finished))
}

/// The trace-completeness audit (full tracing only). Counts violations of:
/// exactly one span per successful response, span rung == the response's
/// [`Served`](crate::metrics::Served) rung and span epoch == the pinned
/// epoch, no orphaned spans, and per-rung span counts equal to both the
/// per-rung histogram counts and the executed/coalesced counters.
fn audit_spans(
    spans: &[TraceSpan],
    outcomes: &[Result<QueryResponse, QueryError>],
    metrics: &MetricsSnapshot,
) -> usize {
    use std::collections::HashMap;
    let mut violations = 0usize;
    let mut by_id: HashMap<u64, &TraceSpan> = HashMap::with_capacity(spans.len());
    for s in spans {
        if by_id.insert(s.request_id, s).is_some() {
            violations += 1; // two spans claim one request
        }
    }
    let mut matched = 0usize;
    for r in outcomes.iter().flat_map(|o| o.as_ref().ok()) {
        match by_id.get(&r.request_id) {
            Some(s) => {
                matched += 1;
                if s.rung != Rung::of(r.served) || s.epoch != r.epoch {
                    violations += 1; // span disagrees with its response
                }
            }
            None => violations += 1, // response without a span
        }
    }
    violations += by_id.len().saturating_sub(matched); // orphaned spans
    let rung_count = |r: Rung| spans.iter().filter(|s| s.rung == r).count() as u64;
    for rs in &metrics.rungs {
        if rung_count(rs.rung) != rs.hist.count() {
            violations += 1;
        }
    }
    let searched = rung_count(Rung::Repaired)
        + rung_count(Rung::WarmPrefix)
        + rung_count(Rung::WarmAncestor)
        + rung_count(Rung::WarmSuffix)
        + rung_count(Rung::Cold);
    if searched != metrics.executed {
        violations += 1;
    }
    if rung_count(Rung::Coalesced) != metrics.coalesced {
        violations += 1;
    }
    if rung_count(Rung::Approximate) != metrics.approximate_served {
        violations += 1;
    }
    violations
}

/// The transport-agnostic stream driver shared by [`replay_on`] and
/// [`replay_remote`]: runs `spec`'s arrival process (closed-loop batch,
/// synchronous update waves, or open-loop Poisson arrivals) against any
/// [`QueryService`], with the optional wall-clock updater publishing
/// weight bursts through `publish` from a scoped thread until the stream
/// drains. `graph` is only used to *generate* deltas (base weights, which
/// never change) — publication itself goes through `publish`, so a remote
/// driver can route it over the wire and mirror it locally.
fn drive(
    service: &dyn QueryService,
    pool: &[SkySrQuery],
    stream: &[usize],
    spec: &ReplaySpec,
    graph: &RoadNetwork,
    publish: &(dyn Fn(&[WeightDelta]) -> EpochId + Sync),
) -> (Vec<Result<QueryResponse, QueryError>>, Duration) {
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // The updater publishes weight-delta bursts at exponential
        // instants until the stream drains.
        let updater = (spec.update_rate > 0.0).then(|| {
            let stop = &stop;
            let rate = spec.update_rate;
            let burst = spec.update_burst.max(1);
            let magnitude = spec.update_magnitude.max(1.0);
            let seed = spec.seed ^ 0x7570_6474; // "updt"
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                while !stop.load(Ordering::Relaxed) {
                    // Sleep in small slices so a drained stream stops the
                    // updater promptly.
                    let deadline =
                        Instant::now() + Duration::from_secs_f64(exp_sample(&mut rng) / rate);
                    while let Some(left) = deadline.checked_duration_since(Instant::now()) {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(left.min(Duration::from_millis(2)));
                    }
                    let deltas = random_traffic_deltas(graph, burst, magnitude, &mut rng);
                    publish(&deltas);
                }
            })
        });

        let t0 = Instant::now();
        let outcomes = if spec.qps > 0.0 {
            open_loop_batch(service, pool, stream, spec.qps, spec.seed, spec.deadline)
        } else if spec.update_every > 0 {
            // Closed-loop epoch waves: drain a chunk, publish a burst,
            // repeat.
            let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x7761_7665); // "wave"
            let burst = spec.update_burst.max(1);
            let magnitude = spec.update_magnitude.max(1.0);
            let mut outcomes = Vec::with_capacity(stream.len());
            for chunk in stream.chunks(spec.update_every) {
                outcomes.extend(run_requests(service, pool, chunk, spec.deadline));
                let deltas = random_traffic_deltas(graph, burst, magnitude, &mut rng);
                publish(&deltas);
            }
            outcomes
        } else {
            run_requests(service, pool, stream, spec.deadline)
        };
        let wall = t0.elapsed();
        stop.store(true, Ordering::Relaxed);
        if let Some(handle) = updater {
            handle.join().expect("updater thread panicked");
        }
        (outcomes, wall)
    })
}

/// Replays `spec`'s stream through a live `skysr-d` daemon, auditing the
/// answers against a local *shadow* dataset.
///
/// `shadow` must be built from the same dataset spec (and start at the
/// same weight epoch) as the daemon's context — checked up front via the
/// handshake's [`DatasetFingerprint`]. Weight updates are published
/// *through the wire* and mirrored into the shadow in lockstep; the
/// returned epoch must match the shadow's on every burst, so the oracle
/// ([`ReplaySpec::verify`]) re-answers each response at its pinned epoch
/// from an epoch history provably identical to the daemon's.
///
/// Unsupported over the wire (asserted): bounded retention (the shadow
/// cannot mirror server-side compaction) and full trace retention (spans
/// are not exported per-request).
///
/// # Panics
/// On spec combinations the wire cannot support (see above), and on a
/// mid-run epoch divergence between daemon and shadow.
pub fn replay_remote(
    remote: &RemoteService,
    shadow: Arc<ServiceContext>,
    pool: &[SkySrQuery],
    spec: &ReplaySpec,
) -> Result<ReplayReport, ProtocolError> {
    assert!(!pool.is_empty(), "replay needs a non-empty pool");
    assert!(
        spec.retention == 0,
        "remote replay audits against an unbounded shadow history (retention must be 0)"
    );
    assert!(
        spec.telemetry != TelemetryMode::Full,
        "trace spans are not exported over the wire; use sampled or off telemetry"
    );
    assert!(
        !(spec.update_every > 0 && (spec.qps > 0.0 || spec.update_rate > 0.0)),
        "synchronous update waves (update_every) are closed-loop and exclusive with the \
         open-loop qps/update_rate knobs"
    );
    assert!(
        spec.overload == 0.0,
        "overload capacity calibration runs on a local scratch service; drive a daemon with \
         an explicit qps instead"
    );
    let ours = DatasetFingerprint::of(&shadow);
    let theirs = remote.fingerprint();
    if ours != theirs {
        return Err(ProtocolError::DatasetMismatch(format!(
            "daemon serves {theirs:?}, the local shadow is {ours:?} — rebuild the shadow from \
             the daemon's dataset spec (and epoch)"
        )));
    }
    let stream = request_stream(spec, pool.len());
    let epoch_before = shadow.current_epoch();

    let publish = |deltas: &[WeightDelta]| {
        let published = remote.publish_weights(deltas);
        let mirrored = shadow.publish_weights(deltas);
        assert_eq!(
            published, mirrored,
            "shadow context diverged from the daemon's epoch sequence — is something else \
             publishing weights to this daemon?"
        );
        published
    };
    let (outcomes, wall) = drive(remote, pool, &stream, spec, shadow.graph(), &publish);
    let metrics = remote.metrics();
    let epochs_published = shadow.current_epoch().get() - epoch_before.get();

    let audit = spec
        .verify
        .then(|| count_oracle_mismatches(&shadow, pool, spec.engine, &stream, &outcomes));

    Ok(ReplayReport {
        total: stream.len(),
        distinct: pool.len(),
        pattern: spec.pattern,
        workers: spec.workers,
        qps: spec.qps,
        wall,
        epochs_published,
        // Server-side accounting, as carried in the metrics snapshot.
        epoch_gc: metrics.epochs,
        metrics,
        verify_mismatches: audit.map(|(mismatches, _)| mismatches),
        verify_skipped: audit.map(|(_, skipped)| skipped),
        spans: Vec::new(),
        trace_violations: None,
        overload: spec.overload,
        met_deadline: met_deadline(spec, &outcomes),
    })
}

/// Builds the stream entry's request with the spec's deadline attached.
fn request_for(pool: &[SkySrQuery], i: usize, deadline: Option<Duration>) -> QueryRequest {
    let mut request = QueryRequest::new(pool[i].clone());
    request.options.deadline = deadline;
    request
}

/// Closed-loop batch: submits every stream entry (deadline attached, if
/// any) and waits for all answers, preserving order.
fn run_requests(
    service: &dyn QueryService,
    pool: &[SkySrQuery],
    stream: &[usize],
    deadline: Option<Duration>,
) -> Vec<Result<QueryResponse, QueryError>> {
    let tickets: Vec<Ticket> =
        stream.iter().map(|&i| service.submit(request_for(pool, i, deadline))).collect();
    tickets.into_iter().map(Ticket::wait).collect()
}

/// Submits the stream at exponentially distributed inter-arrival times
/// targeting `qps`, then waits for every answer (order preserved).
fn open_loop_batch(
    service: &dyn QueryService,
    pool: &[SkySrQuery],
    stream: &[usize],
    qps: f64,
    seed: u64,
    deadline: Option<Duration>,
) -> Vec<Result<QueryResponse, QueryError>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6f70_656e); // "open"
    let started = Instant::now();
    let mut at = 0.0f64;
    let mut tickets: Vec<Ticket> = Vec::with_capacity(stream.len());
    for &i in stream {
        at += exp_sample(&mut rng) / qps;
        let target = started + Duration::from_secs_f64(at);
        if let Some(wait) = target.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        // Submission may block on a full queue: open-loop overload turns
        // into measured backpressure, not an unbounded client-side buffer.
        // (With admission on, unmeetable deadlines are shed right here
        // instead — the ticket resolves to `Overloaded` immediately.)
        tickets.push(service.submit(request_for(pool, i, deadline)));
    }
    tickets.into_iter().map(Ticket::wait).collect()
}

/// Epoch-aware verification: every answered request is recomputed by a
/// cold sequential [`Bssr`] over a snapshot pinned to the epoch the
/// response reports, and compared as score-equivalent multisets. Each
/// (epoch, pool entry) reference is computed once. Returns
/// `(mismatches, skipped)`: a response whose pinned epoch is no longer
/// pinnable (compacted out of a bounded retention ring) cannot be audited
/// and is skipped — counted, never silently dropped.
fn count_oracle_mismatches(
    ctx: &ServiceContext,
    pool: &[SkySrQuery],
    engine: BssrConfig,
    stream: &[usize],
    outcomes: &[Result<QueryResponse, QueryError>],
) -> (usize, usize) {
    use std::collections::{BTreeMap, BTreeSet, HashMap};
    let mut need: BTreeMap<EpochId, BTreeSet<usize>> = BTreeMap::new();
    for (&i, outcome) in stream.iter().zip(outcomes) {
        if let Ok(r) = outcome {
            need.entry(r.epoch).or_default().insert(i);
        }
    }
    let mut reference: HashMap<(EpochId, usize), Vec<SkylineRoute>> = HashMap::new();
    let mut scratch = BssrScratch::new(ctx.graph().num_vertices());
    for (&epoch, indexes) in &need {
        // With a bounded retention ring, an epoch the stream was served
        // under may have been compacted since; its responses are skipped.
        let Some(pinned) = ctx.pin_at(epoch) else {
            continue;
        };
        let qctx = pinned.query_context();
        let mut bssr = Bssr::with_scratch(&qctx, engine, scratch);
        for &i in indexes {
            let routes = bssr.run(&pool[i]).expect("generated queries are valid").routes;
            reference.insert((epoch, i), routes);
        }
        scratch = bssr.into_scratch();
    }
    let mut mismatches = 0usize;
    let mut skipped = 0usize;
    for (&i, outcome) in stream.iter().zip(outcomes) {
        match outcome {
            Ok(r) => match reference.get(&(r.epoch, i)) {
                Some(oracle) => {
                    // A degraded-mode partial is not expected to *equal*
                    // the exact skyline — it must be *consistent* with it.
                    let ok = if r.served == Served::Approximate {
                        valid_approximate(&r.routes, oracle)
                    } else {
                        equivalent_skylines(&r.routes, oracle)
                    };
                    if !ok {
                        mismatches += 1;
                    }
                }
                None => skipped += 1,
            },
            // Shed under overload (admission or expired in queue): the
            // request produced no skyline to audit, by design.
            Err(QueryError::Overloaded) => {}
            Err(_) => mismatches += 1,
        }
    }
    (mismatches, skipped)
}

/// Whether a degraded-mode partial skyline is *valid*: mutually
/// non-dominated (a minimal set — no member dominates another), and never
/// better than the exact answer (every partial point is dominated by or
/// ties a point of the exact skyline; a partial that beat the oracle would
/// mean the "exact" rungs are not exact).
fn valid_approximate(routes: &[SkylineRoute], oracle: &[SkylineRoute]) -> bool {
    let mut exact = SkylineSet::new();
    for r in oracle {
        exact.update(r.clone());
    }
    routes.iter().all(|p| exact.dominated_or_equal(p.length, p.semantic))
        && skyline_of(routes.iter().cloned()).len() == routes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_stream_is_skewed_and_deterministic() {
        let spec = ReplaySpec { total: 2_000, distinct: 50, ..ReplaySpec::default() };
        let a = request_stream(&spec, 50);
        let b = request_stream(&spec, 50);
        assert_eq!(a, b);
        assert!(a.iter().all(|&i| i < 50));
        // Zipf(1) over 50 ranks: rank 0 draws ~22% of all requests.
        let zeros = a.iter().filter(|&&i| i == 0).count();
        assert!(zeros > a.len() / 10, "rank 0 appeared only {zeros} times");
        let spec2 = ReplaySpec { seed: 8, ..spec };
        assert_ne!(request_stream(&spec2, 50), a);
    }

    #[test]
    fn uniform_exponent_spreads_requests() {
        let spec =
            ReplaySpec { total: 5_000, distinct: 10, zipf_exponent: 0.0, ..ReplaySpec::default() };
        let stream = request_stream(&spec, 10);
        for rank in 0..10 {
            let n = stream.iter().filter(|&&i| i == rank).count();
            assert!((250..=750).contains(&n), "rank {rank}: {n}");
        }
    }

    #[test]
    fn duplicate_stream_arrives_in_bursts() {
        let spec = ReplaySpec {
            total: 200,
            distinct: 10,
            burst: 8,
            pattern: StreamPattern::DuplicateBursts,
            ..ReplaySpec::default()
        };
        let stream = request_stream(&spec, 10);
        assert_eq!(stream.len(), 200);
        for chunk in stream.chunks(8) {
            assert!(chunk.iter().all(|&i| i == chunk[0]), "burst not uniform: {chunk:?}");
        }
        // More than one distinct query appears overall.
        let mut uniq = stream.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() > 1);
    }

    #[test]
    fn prefix_stream_walks_length_wavefronts() {
        let spec = ReplaySpec {
            total: 50,
            distinct: 4,
            seq_len: 3,
            pattern: StreamPattern::PrefixChains,
            ..ReplaySpec::default()
        };
        // Pool: 4 chains × 3 lengths; chain c occupies indices 3c..3c+3.
        let stream = request_stream(&spec, 12);
        assert_eq!(stream.len(), 50);
        // Wavefront of all length-1 queries, then all length-2 queries.
        assert_eq!(&stream[..8], &[0, 3, 6, 9, 1, 4, 7, 10]);
        // The stream cycles: entry 12 restarts the length-1 wavefront.
        assert_eq!(stream[12], 0);
    }

    #[test]
    fn hierarchy_pool_expands_subtree_chains() {
        use skysr_core::PositionSpec;
        use skysr_data::dataset::{DatasetSpec, Preset};
        let d = DatasetSpec::preset(Preset::CalSmall).scale(0.05).seed(3).generate();
        let spec = ReplaySpec {
            distinct: 4,
            seq_len: 3,
            pattern: StreamPattern::Hierarchy,
            ..ReplaySpec::default()
        };
        let pool = build_pool(&d, &spec);
        assert_eq!(pool.len(), 4 * HIERARCHY_CHAIN);
        for chunk in pool.chunks(HIERARCHY_CHAIN) {
            let (suffix, anc, full) = (&chunk[0], &chunk[1], &chunk[2]);
            assert_eq!((suffix.len(), anc.len(), full.len()), (2, 3, 3));
            assert_eq!(suffix.start, full.start);
            assert_eq!(anc.start, full.start);
            assert_eq!(suffix.sequence[..], full.sequence[1..], "entry 0 is the suffix");
            assert_eq!(anc.sequence[1..], full.sequence[1..], "only position 0 varies");
            let PositionSpec::Category(c) = full.sequence[0] else {
                panic!("workloads use plain categories")
            };
            let PositionSpec::Category(a) = anc.sequence[0] else {
                panic!("the ancestor variant stays a plain category")
            };
            assert!(d.forest.is_ancestor_or_self(a, c), "{a:?} must be an ancestor of {c:?}");
        }
    }

    #[test]
    fn hierarchy_stream_walks_chain_wavefronts() {
        let spec = ReplaySpec {
            total: 30,
            distinct: 4,
            seq_len: 3,
            pattern: StreamPattern::Hierarchy,
            ..ReplaySpec::default()
        };
        // Pool: 4 chains × 3 entries; chain c occupies indices 3c..3c+3.
        let stream = request_stream(&spec, 12);
        assert_eq!(stream.len(), 30);
        // Wavefront of all suffixes, then all ancestor variants.
        assert_eq!(&stream[..8], &[0, 3, 6, 9, 1, 4, 7, 10]);
        // The stream cycles: entry 12 restarts the suffix wavefront.
        assert_eq!(stream[12], 0);
    }

    #[test]
    fn exponential_samples_are_positive_with_unit_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| exp_sample(&mut rng)).sum();
        assert!((sum / n as f64 - 1.0).abs() < 0.05, "mean {}", sum / n as f64);
        let mut rng = StdRng::seed_from_u64(4);
        assert!((0..10_000).all(|_| exp_sample(&mut rng) >= 0.0));
    }

    #[test]
    fn traffic_deltas_stay_within_magnitude_of_base() {
        use skysr_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..10).map(|_| b.add_vertex()).collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1], 4.0);
        }
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(11);
        let deltas = random_traffic_deltas(&g, 500, 3.0, &mut rng);
        assert_eq!(deltas.len(), 500);
        for d in &deltas {
            assert!(d.weight >= 4.0 / 3.0 - 1e-9 && d.weight <= 4.0 * 3.0 + 1e-9, "{d:?}");
        }
        // Deterministic per seed.
        let mut rng2 = StdRng::seed_from_u64(11);
        assert_eq!(random_traffic_deltas(&g, 500, 3.0, &mut rng2), deltas);
    }
}
